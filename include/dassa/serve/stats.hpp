// Live introspection: the kStats protocol (docs/SERVING.md).
//
// A running daemon's telemetry used to be post-mortem only -- JSONL
// written at exit, inspected by das_health. kStats closes that gap:
// any client can send a one-byte kStatsRequest frame over the audited
// socket layer and get back a versioned snapshot of every global
// counter, every registered gauge, and the exact 64-bucket contents of
// every latency histogram. das_serve answers it inline on its main
// socket; das_ingest exposes a dedicated StatsListener. das_top polls
// either, diffs consecutive snapshots, and renders the live view.
//
// The wire format follows the untrusted-byte discipline of
// protocol.cpp: bounded entry counts before any allocation, bounded
// name lengths, strictly increasing names (the encoder walks sorted
// maps, so anything else is a forgery), strictly increasing bucket
// indexes, histogram counts that must equal their bucket sums, and an
// exact-consumption check. Every violation is dassa::FormatError.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dassa/common/metrics.hpp"
#include "dassa/common/sync.hpp"
#include "dassa/serve/protocol.hpp"
#include "dassa/serve/socket.hpp"

namespace dassa::serve {

/// Wire-format version stamped into every kStatsOk frame; a decoder
/// refuses anything else rather than guessing at field layouts.
inline constexpr std::uint32_t kStatsVersion = 1;

/// Ceilings a decoder enforces before allocating: entries per section
/// and bytes per metric name.
inline constexpr std::size_t kMaxStatsEntries = 4096;
inline constexpr std::size_t kMaxStatsNameBytes = 256;

/// One live snapshot of a process's observable state. Counters are
/// cumulative, gauges instantaneous, histograms bucket-exact (so a
/// poller can diff two snapshots into an interval view with
/// HistogramSnapshot::diff). `wall_ns` is the daemon's trace clock at
/// snapshot time -- deltas between two snapshots give the exact
/// sampling interval without any client/daemon clock agreement.
struct StatsSnapshot {
  std::uint32_t version = kStatsVersion;
  std::uint64_t wall_ns = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> hists;

  friend bool operator==(const StatsSnapshot&, const StatsSnapshot&) = default;
};

/// Snapshot this process now: global counters, registered gauges
/// (telemetry::read_gauges), and every histogram in global_metrics().
/// The snapshot is reconciled (below) before it is returned, so
/// encoding it always yields a decodable frame.
[[nodiscard]] StatsSnapshot collect_process_stats();

/// Derive every histogram's count from its bucket sum. A live
/// LatencyHistogram updates buckets and count as independent relaxed
/// atomics, so a registry snapshot taken against concurrent
/// record_ns() can be torn -- count ahead of or behind the bucket sum
/// -- while the wire format pins count == sum(buckets). Reconciling on
/// the encoding side keeps every frame a daemon emits self-consistent
/// (the strict decoder check stays, guarding against forgeries);
/// records in flight at snapshot time surface in the next poll.
void reconcile_torn_histograms(StatsSnapshot& s);

[[nodiscard]] std::vector<std::byte> encode_stats_request();
[[nodiscard]] std::vector<std::byte> encode_stats(const StatsSnapshot& s);

/// Validate a received kStatsRequest frame (exactly one type byte).
void decode_stats_request(const std::vector<std::byte>& frame);

/// Decode a kStatsOk frame; throws FormatError on version mismatch,
/// truncation, trailing bytes, oversized or unsorted sections, bucket
/// indexes out of range, or a histogram count that disagrees with its
/// bucket sum.
[[nodiscard]] StatsSnapshot decode_stats(const std::vector<std::byte>& frame);

/// One kStats round trip on an established connection (das_top's poll
/// body). Throws IoError if the daemon vanished, FormatError on a
/// malformed reply, StateError if the daemon refused the request.
[[nodiscard]] StatsSnapshot fetch_stats(Connection& conn);

/// A stats-only endpoint for daemons whose primary socket speaks some
/// other protocol (das_ingest): accepts connections on its own path
/// and answers kStatsRequest frames, refusing anything else with a
/// typed kBadRequest so a confused client gets an explicit answer, not
/// a hangup. Reuses the audited Listener/Connection layer -- no raw
/// socket syscalls (no-naked-socket holds).
class StatsListener {
 public:
  explicit StatsListener(std::string socket_path);
  ~StatsListener();

  StatsListener(const StatsListener&) = delete;
  StatsListener& operator=(const StatsListener&) = delete;

  void start();
  /// Idempotent; joins the accept loop and every connection thread.
  void stop();

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Connection slots currently tracked (live plus finished-but-not-
  /// yet-reaped). Reaping runs on every accept, so this stays bounded
  /// by the live-client count no matter how many short-lived pollers
  /// come and go -- the property the listener tests pin.
  [[nodiscard]] std::size_t tracked_connections();

 private:
  /// One accepted stats client: its service thread, the connection
  /// (shutdown() from stop() unblocks the thread), and the flag the
  /// thread raises on exit so accept_loop can reap the slot.
  struct ConnSlot {
    std::thread thread;
    std::shared_ptr<Connection> conn;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  /// Join and erase every slot whose thread has finished. Without
  /// this, a long-lived daemon scraped by repeated short-lived clients
  /// (das_top --once, Prometheus) accumulates joinable threads until
  /// stop().
  void reap_finished() DASSA_REQUIRES(conns_mu_);

  std::string path_;
  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  Mutex conns_mu_;
  std::vector<ConnSlot> conns_ DASSA_GUARDED_BY(conns_mu_);
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace dassa::serve
