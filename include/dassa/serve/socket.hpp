// Query serving: RAII Unix-domain stream sockets + framing.
//
// This header and src/serve/socket.cpp are the ONLY places in the tree
// allowed to make raw socket syscalls (socket/bind/listen/accept/
// connect and fd-level reads/writes) -- das_lint's
// `no-naked-socket-call` rule pins everything else to this API, the
// same confinement pattern as the SIMD layer for intrinsics. That
// keeps EINTR handling, partial-read/write loops, frame-size limits,
// and byte accounting (serve.bytes_sent / serve.bytes_received) in one
// audited file.
//
// Framing: a 32-bit little-endian payload length, then the payload
// (see protocol.hpp for payload layouts). recv_frame() distinguishes a
// clean end-of-stream (nullopt, the peer closed between frames) from a
// torn one (IoError mid-frame) and rejects oversized length prefixes
// (FormatError) before allocating.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dassa::serve {

/// One connected stream socket. Movable, not copyable; the destructor
/// closes. send_frame and recv_frame may run concurrently (one writer
/// thread, one reader thread); neither may run concurrently with
/// itself.
class Connection {
 public:
  Connection() = default;
  /// Adopt an already-connected file descriptor.
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection();

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Write one length-prefixed frame (full-write loop, EINTR-safe).
  /// Throws IoError if the peer is gone, InvalidArgument beyond
  /// kMaxFrameBytes.
  void send_frame(std::span<const std::byte> payload);

  /// Read one frame. nullopt on clean end-of-stream; IoError on a torn
  /// frame or syscall failure; FormatError on an oversized prefix.
  [[nodiscard]] std::optional<std::vector<std::byte>> recv_frame();

  /// Shut down both directions, waking a thread blocked in
  /// recv_frame() on another thread (it sees end-of-stream). The fd
  /// stays open until destruction, so this is safe to call
  /// concurrently with recv_frame/send_frame.
  void shutdown();

 private:
  void close_fd() noexcept;
  int fd_ = -1;
};

/// A listening Unix-domain socket bound to a filesystem path. The
/// constructor removes a stale socket file at `path`; the destructor
/// unlinks it again.
class Listener {
 public:
  explicit Listener(const std::string& path);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Block for the next client. nullopt once shutdown() was called;
  /// IoError on unexpected syscall failure.
  [[nodiscard]] std::optional<Connection> accept();

  /// Wake a blocked accept() and make all future accepts return
  /// nullopt. Idempotent; safe to call from another thread.
  void shutdown();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::atomic<bool> down_{false};
};

/// Client side: connect to a das_serve socket at `path`.
[[nodiscard]] Connection connect_local(const std::string& path);

}  // namespace dassa::serve
