// Query serving: the wire protocol (docs/SERVING.md).
//
// das_serve speaks length-prefixed frames over a local stream socket:
// a 32-bit little-endian payload length followed by the payload, whose
// first byte is the message type. Requests address a hyperslab of the
// served archive either directly by columns or by a wall-clock time
// window [begin, end) that the server resolves through its interval
// index. Responses carry the resolved slab coordinates plus the
// row-major f64 payload, so a client never needs the archive's
// metadata to interpret what it got.
//
// Decoding treats every byte as untrusted (frames arrive from
// arbitrary local clients): truncation, trailing bytes, unknown types,
// and payload sizes that disagree with the declared shape all surface
// as dassa::FormatError, never out-of-bounds access or unbounded
// allocation -- the same contract as the DASH5 parsers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dassa/common/shape.hpp"

namespace dassa::serve {

/// Hard ceiling on one frame's payload; a length prefix beyond it is
/// rejected before any allocation (64 MiB holds an 8M-sample slab).
inline constexpr std::size_t kMaxFrameBytes = 64ull << 20;

enum class MsgType : std::uint8_t {
  kReadRequest = 1,
  kReadOk = 2,
  kError = 3,
  // Live introspection (stats.hpp): a one-byte stats request and the
  // versioned counter/gauge/histogram snapshot it returns. Answered
  // inline by das_serve's main socket and by the das_ingest
  // StatsListener.
  kStatsRequest = 4,
  kStatsOk = 5,
};

/// How a request names its column range.
enum class Addressing : std::uint8_t {
  kColumns = 0,  ///< archive column offsets
  kTime = 1,     ///< epoch-second window resolved via the interval index
};

enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,    ///< malformed or unresolvable request
  kOutOfRange = 2,    ///< slab exceeds the archive extents
  kEmptyRange = 3,    ///< time window overlaps no member
  kShuttingDown = 4,  ///< server draining; request was not admitted
  kInternal = 5,      ///< read failed server-side
};

/// One hyperslab read. row_cnt = 0 selects every channel; col_cnt = 0
/// (columns mode) selects through the last column.
struct ReadRequest {
  std::uint64_t id = 0;  ///< echoed in the response
  Addressing addressing = Addressing::kColumns;
  std::uint64_t row_off = 0;
  std::uint64_t row_cnt = 0;
  std::uint64_t col_off = 0;  ///< columns mode
  std::uint64_t col_cnt = 0;  ///< columns mode
  std::int64_t begin_s = 0;   ///< time mode, inclusive
  std::int64_t end_s = 0;     ///< time mode, exclusive
  friend bool operator==(const ReadRequest&, const ReadRequest&) = default;
};

/// The server's answer: either the resolved slab plus its payload, or
/// a typed error. `id` matches the request.
struct ReadResponse {
  std::uint64_t id = 0;
  bool ok = false;
  ErrorCode code = ErrorCode::kInternal;  ///< meaningful when !ok
  std::string error;                      ///< human-readable when !ok
  std::uint64_t row_off = 0;              ///< resolved archive coordinates
  std::uint64_t col_off = 0;
  Shape2D shape;              ///< payload extents
  std::vector<double> data;   ///< row-major, shape.size() elements
};

[[nodiscard]] std::vector<std::byte> encode_request(const ReadRequest& req);
[[nodiscard]] std::vector<std::byte> encode_response(const ReadResponse& resp);

/// Decode a frame payload; throws FormatError on anything malformed
/// (wrong type byte, truncation, trailing bytes, shape/payload
/// disagreement).
[[nodiscard]] ReadRequest decode_request(const std::vector<std::byte>& frame);
[[nodiscard]] ReadResponse decode_response(
    const std::vector<std::byte>& frame);

}  // namespace dassa::serve
