// Query serving: the das_serve front end (docs/SERVING.md).
//
// Thread topology:
//
//   accept loop ──► one reader thread per connection
//                        │  decode + validate, admit
//                        ▼
//                 admission queue (BoundedQueue, serve.queue.*)
//                        │
//                 dispatcher: hold up to coalesce_window_us for more
//                 requests, coalesce() overlapping slabs into groups
//                        │
//                        ▼
//                 group queue ──► worker pool: ONE union read per
//                 group through the shared archive handle (all chunk
//                 decodes land in the global ChunkCache once), then
//                 slice + reply per member request.
//
// Admission control is backpressure, not load shedding: when the
// admission queue is full, readers block on push() and the kernel's
// socket buffer throttles the client. serve.queue.push_blocked counts
// how often that happened.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dassa/common/bounded_queue.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/sync.hpp"
#include "dassa/io/interval_index.hpp"
#include "dassa/io/vca.hpp"
#include "dassa/serve/protocol.hpp"
#include "dassa/serve/socket.hpp"

namespace dassa::serve {

/// Stage-latency histogram names fed by request-scoped tracing: one
/// record per answered request per stage, so every serve.lat.* count
/// equals the serve.request end-to-end count (pinned by
/// tests/serve/test_serve_stats.cpp). Kept next to ServeConfig so the
/// server, the tests, the bench, and das_top cannot drift apart.
namespace lat {
inline constexpr const char* kRequest = "serve.request";
inline constexpr const char* kQueueWait = "serve.lat.queue_wait";
inline constexpr const char* kCoalesce = "serve.lat.coalesce";
inline constexpr const char* kDecode = "serve.lat.decode";
inline constexpr const char* kWrite = "serve.lat.write";
}  // namespace lat

struct ServeConfig {
  std::string socket_path;
  /// Archive to serve: a .vca logical file, or a single DASH5 file.
  std::string archive;
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  /// Max requests the dispatcher folds into one coalesce round.
  std::size_t max_batch = 16;
  /// How long the dispatcher holds the first admitted request hoping
  /// for overlapping company. 0 = dispatch immediately.
  std::uint64_t coalesce_window_us = 500;
  /// Column gap two slabs may leave and still share a union read.
  std::size_t gap_cols = 0;
  /// Off = every request is its own group (the bench baseline's
  /// "unbatched server" lever).
  bool batching = true;
  /// Request-scoped tracing: per-stage timestamps (received ->
  /// admitted -> dequeued -> grouped -> decode begin/end -> reply
  /// written) feeding the serve.lat.* histograms and the slow-request
  /// log. Off: no stage clock reads -- only the end-to-end
  /// serve.request histogram survives.
  bool request_tracing = true;
  /// End-to-end latency above which a request earns a structured
  /// serve.slow_request log record with its stage breakdown
  /// (das_serve --slow-ms). 0 = never. Needs request_tracing.
  std::uint64_t slow_ns = 0;
};

/// A das_serve instance. start() spawns the thread topology above;
/// stop() drains: in-flight requests are answered, late ones are
/// refused with kShuttingDown. Construction loads the archive and its
/// time-interval sidecar (or falls back to building the index from
/// member headers -- io.index.fallbacks).
class Server {
 public:
  explicit Server(ServeConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  /// Graceful drain; idempotent. Safe to call while clients are
  /// mid-request: admitted work is finished, not abandoned.
  void stop();

  [[nodiscard]] const ServeConfig& config() const { return cfg_; }
  [[nodiscard]] Shape2D shape() const { return vca_.shape(); }
  /// Admission-queue depth right now (the das_serve telemetry gauge).
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }

 private:
  /// One connected client, shared between its reader thread and any
  /// worker holding a reply for it. write_mu serialises frames from
  /// concurrent workers onto the single stream.
  struct ClientConn {
    Connection conn;
    Mutex write_mu;
    std::uint64_t client_id = 0;
  };

  /// One admitted read, resolved to archive coordinates. The *_ns
  /// stamps are the request-scoped trace record (0 when tracing is
  /// off, except admit_ns which the end-to-end histogram always
  /// needs); request_seq is the server-assigned request ID the
  /// slow-request log keys on.
  struct Job {
    ReadRequest req;
    Slab2D slab;
    std::shared_ptr<ClientConn> conn;
    std::uint64_t request_seq = 0;
    std::uint64_t received_ns = 0;
    std::uint64_t admit_ns = 0;
    std::uint64_t dequeued_ns = 0;
    std::uint64_t grouped_ns = 0;
  };

  /// One coalesced batch handed to a worker.
  struct GroupWork {
    Slab2D span;
    std::vector<Job> jobs;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<ClientConn> client);
  void dispatch_loop();
  void worker_loop();
  void dispatch_round(std::vector<Job> batch);
  /// Record a finished request's stage latencies and, past the
  /// slow_ns threshold, emit the structured slow-request record.
  /// write_begin_ns is per job -- the previous batch member's reply
  /// stamp (decode_end_ns for the first) -- so the write stage charges
  /// only this job's slice + socket write, not its predecessors'.
  void record_request_trace(const Job& job, std::uint64_t decode_begin_ns,
                            std::uint64_t decode_end_ns,
                            std::uint64_t write_begin_ns,
                            std::uint64_t reply_ns);

  /// Map a validated request onto archive coordinates; throws
  /// InvalidArgument (kBadRequest / kOutOfRange semantics handled by
  /// the caller).
  [[nodiscard]] Slab2D resolve(const ReadRequest& req) const;

  static void send_response(ClientConn& client, const ReadResponse& resp);
  static void send_error(ClientConn& client, std::uint64_t id, ErrorCode code,
                         const std::string& message);

  ServeConfig cfg_;
  io::Vca vca_;
  io::IntervalIndex index_;
  bool has_time_index_ = false;

  BoundedQueue<Job> queue_;
  BoundedQueue<GroupWork> groups_;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::vector<std::thread> worker_threads_;

  Mutex readers_mu_;
  std::vector<std::thread> reader_threads_ DASSA_GUARDED_BY(readers_mu_);
  std::vector<std::shared_ptr<ClientConn>> clients_
      DASSA_GUARDED_BY(readers_mu_);

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_client_id_{1};
  std::atomic<std::uint64_t> next_request_seq_{1};

  // Stage histograms resolved once at construction (registry entries
  // live for the process), so the per-request hot path never takes the
  // registry's name-lookup lock.
  LatencyHistogram& h_request_;
  LatencyHistogram& h_queue_wait_;
  LatencyHistogram& h_coalesce_;
  LatencyHistogram& h_decode_;
  LatencyHistogram& h_write_;
};

}  // namespace dassa::serve
