// Query serving: the das_query client side.
//
// One Client is one connection speaking the length-prefixed protocol
// (protocol.hpp). call() is a synchronous request/response round trip;
// read_slab() / read_window() are the conveniences the tools and the
// equivalence tests use. Not thread-safe: give each client thread its
// own Client (which is exactly what the bench's load driver does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dassa/common/shape.hpp"
#include "dassa/serve/protocol.hpp"
#include "dassa/serve/socket.hpp"

namespace dassa::serve {

class Client {
 public:
  /// Connect to a das_serve socket (IoError if no server listens).
  explicit Client(const std::string& socket_path);

  /// One round trip. A zero req.id is replaced by a fresh one. Throws
  /// IoError if the server vanishes, FormatError on a reply whose id
  /// does not match the request.
  [[nodiscard]] ReadResponse call(ReadRequest req);

  /// Column-addressed read; throws StateError carrying the server's
  /// message if the request was refused.
  [[nodiscard]] std::vector<double> read_slab(const Slab2D& slab);

  /// Time-addressed read of [begin_s, end_s) epoch seconds over rows
  /// [row_off, row_off + row_cnt) (row_cnt 0 = all rows). The reply's
  /// resolved coordinates land in *out_slab when non-null.
  [[nodiscard]] std::vector<double> read_window(std::int64_t begin_s,
                                                std::int64_t end_s,
                                                std::size_t row_off = 0,
                                                std::size_t row_cnt = 0,
                                                Slab2D* out_slab = nullptr);

 private:
  [[nodiscard]] std::vector<double> checked(ReadRequest req,
                                            Slab2D* out_slab);

  Connection conn_;
  std::uint64_t next_id_ = 1;
};

}  // namespace dassa::serve
