// Query serving: shared-decode batching of overlapping hyperslabs.
//
// The server's economic argument (ROADMAP, docs/SERVING.md): N clients
// asking for nearby time windows should cost one chunk decode, not N.
// The dispatcher holds admitted requests for a short coalesce window,
// then groups slabs whose column ranges overlap (or sit within a
// configurable gap); each group is served by ONE union read through
// the shared archive handle -- every chunk the group touches is
// decoded once, hot in the global ChunkCache, and each member's
// payload is sliced out of the union buffer.
//
// coalesce() is a pure, deterministic function of its inputs so the
// batching policy is unit-testable without sockets or threads
// (tests/serve/test_serve_batcher.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "dassa/common/shape.hpp"

namespace dassa::serve {

/// One batch: the union bounding slab plus the member slabs it serves,
/// as indices into coalesce()'s input order.
struct BatchGroup {
  Slab2D span;
  std::vector<std::size_t> jobs;
};

/// Group `slabs` so members of a group overlap in columns (allowing a
/// gap of up to `gap_cols` unrequested columns between them). Row
/// extents are unioned per group. Deterministic: slabs are swept in
/// ascending (col_off, input index) order, so the same inputs always
/// produce the same groups. Empty slabs get a group of their own.
[[nodiscard]] std::vector<BatchGroup> coalesce(
    const std::vector<Slab2D>& slabs, std::size_t gap_cols);

/// Slice `slab`'s payload out of the union read of `span` (row-major
/// `span_data`, span.size() elements). `slab` must lie within `span`.
[[nodiscard]] std::vector<double> slice_from_union(
    const std::vector<double>& span_data, const Slab2D& span,
    const Slab2D& slab);

}  // namespace dassa::serve
