// SIMD kernel layer for the codec hot loops.
//
// One dispatch point for every vectorized inner loop in DASSA: the
// codec stages (shuffle / delta / lz) call these kernels instead of
// writing intrinsics inline, so exactly one translation unit
// (src/common/simd.cpp) contains architecture-specific code — das_lint
// enforces that boundary. Each kernel has an always-correct scalar
// implementation plus SSE2/AVX2 (x86-64) and NEON (aarch64) variants
// where they pay; dispatch is per-kernel, so a level without a native
// variant of some kernel falls through to the widest one it has.
//
// Every variant of a kernel computes the *identical* function (bit
// exact, including encoder-side helpers such as match_length), so
// encoded streams do not depend on the host CPU and the parity tests
// in tests/common/test_simd.cpp can compare levels byte for byte.
//
// The active level is resolved once on first use: the `DASSA_SIMD`
// environment variable ("scalar", "sse2", "avx2", "neon") when set and
// supported, otherwise the best level the CPU reports. Tests may
// switch levels in-process with set_level().
#pragma once

#include <cstddef>
#include <cstdint>

namespace dassa::simd {

/// Instruction-set levels in dispatch order. Levels above the detected
/// capability are clamped down by set_level()/active_level().
enum class Level : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Short lowercase name ("scalar", "sse2", ...), as accepted by the
/// DASSA_SIMD environment variable.
[[nodiscard]] const char* level_name(Level level);

/// Best level the running CPU supports (ignores DASSA_SIMD).
[[nodiscard]] Level detect_level();

/// Level used by the kernels: DASSA_SIMD override when valid, else
/// detect_level(). Resolved once and cached; set_level() replaces it.
[[nodiscard]] Level active_level();

/// Force a dispatch level in-process (test hook). Requests beyond the
/// CPU's capability are clamped to detect_level().
void set_level(Level level);

// ---- byte-plane transpose (shuffle stage) ----------------------------

/// Scatter `n_elem` little-endian elements of `elem_size` bytes into
/// per-byte planes: out[p * n_elem + e] = in[e * elem_size + p].
/// Vectorized for elem_size 4 and 8; other widths run a scalar loop.
/// `in` and `out` must not alias.
void shuffle_bytes(const std::byte* in, std::byte* out, std::size_t n_elem,
                   std::size_t elem_size);

/// Inverse of shuffle_bytes: out[e * elem_size + p] = in[p * n_elem + e].
void unshuffle_bytes(const std::byte* in, std::byte* out, std::size_t n_elem,
                     std::size_t elem_size);

// ---- delta + zigzag (delta stage) ------------------------------------

/// Lane-wise wrap-around difference + zigzag map for u32 lanes:
/// out[i] = zigzag(in[i] - in[i-1]) with in[-1] = 0, all mod 2^32.
/// Reads/writes unaligned little-endian lanes; in/out must not alias.
void delta_zigzag_w4(const std::byte* in, std::byte* out, std::size_t n);

/// Same for u64 lanes (mod 2^64).
void delta_zigzag_w8(const std::byte* in, std::byte* out, std::size_t n);

/// In-place inverse: buf holds zigzagged deltas; after the call it
/// holds the running prefix sum (the reconstructed u32 lanes).
void unzigzag_prefix_w4(std::byte* buf, std::size_t n);

/// Same for u64 lanes.
void unzigzag_prefix_w8(std::byte* buf, std::size_t n);

// ---- LEB128 varint batch codecs (delta stage) ------------------------

enum class VarintStatus : std::uint8_t {
  kOk = 0,
  kTruncated,  ///< input ended inside a varint
  kOverlong,   ///< varint does not fit the lane width
};

struct VarintResult {
  VarintStatus status = VarintStatus::kOk;
  std::size_t consumed = 0;  ///< input bytes consumed (valid on kOk)
};

/// Varint packers emit whole 8-byte words and advance by the true
/// encoded length, so `out` needs this much slack past the worst-case
/// payload size.
inline constexpr std::size_t kVarintPad = 8;

/// Pack `n` u32 lanes as LEB128 varints into `out`; returns the bytes
/// written. `out` must hold at least 5 * n + kVarintPad bytes.
std::size_t varint_encode_w4(const std::byte* lanes, std::size_t n,
                             std::byte* out);

/// u64 flavour; `out` must hold at least 10 * n + kVarintPad bytes.
std::size_t varint_encode_w8(const std::byte* lanes, std::size_t n,
                             std::byte* out);

/// Decode exactly `n` varints from `in` into u32 lanes. Single-byte
/// runs take a word-at-a-time fast path. Varints that do not fit 32
/// bits report kOverlong; exhausted input reports kTruncated. Kernels
/// never throw — the caller owns the error surface.
[[nodiscard]] VarintResult varint_decode_w4(const std::byte* in,
                                            std::size_t in_size,
                                            std::byte* lanes, std::size_t n);

/// u64 flavour (rejects > 64-bit encodings as kOverlong).
[[nodiscard]] VarintResult varint_decode_w8(const std::byte* in,
                                            std::size_t in_size,
                                            std::byte* lanes, std::size_t n);

// ---- LZ helpers ------------------------------------------------------

/// Number of leading equal bytes of a and b, at most `max`. Exact on
/// every level (the LZ encoder's output must not depend on dispatch).
[[nodiscard]] std::size_t match_length(const std::byte* a, const std::byte* b,
                                       std::size_t max);

/// Wide copy kernels may write up to this many bytes past `dst + n`;
/// callers must reserve the slack.
inline constexpr std::size_t kCopySlack = 16;

/// LZ match copy: reproduce n bytes at dst from dst - dist, byte-
/// serially in effect (dist < n repeats the pattern, the RLE case).
/// Requires dist >= 1 and at least `dist` valid bytes before dst; may
/// write up to kCopySlack bytes past dst + n.
void copy_match(std::byte* dst, std::size_t dist, std::size_t n);

}  // namespace dassa::simd
