// DASSA common: structured span tracing (docs/OBSERVABILITY.md).
//
// The paper's headline claims are wall-clock claims -- collective-per-
// file vs communication-avoiding reads (Fig. 7), HAEE hybrid scaling
// (Figs. 8-11) -- and flat counters cannot say *where* a run spends its
// time. The tracer records begin/end spans into thread-local ring
// buffers (zero allocation in steady state) behind one runtime toggle
// that compiles down to a relaxed load + branch when tracing is off,
// so the instrumentation can stay on the hot DSP and I/O paths
// permanently.
//
// Spans are emitted ONLY through DASSA_TRACE_SPAN (enforced by
// das_lint's trace-span-macro rule). Names and categories must be
// string literals: the ring stores the pointers, never copies.
//
// Collection merges every thread's buffer -- MiniMPI rank threads are
// labeled by Runtime::run, ApplyMT pool workers inherit their creating
// rank -- into one time-ordered trace, exportable as chrome://tracing
// JSON ("B"/"E" pairs, one process lane per rank) or as a flat
// per-span summary with p50/p95/p99 latency quantiles drawn from the
// metrics registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dassa::trace {

/// One completed span, in collection order units: nanoseconds since
/// the process trace epoch. `name`/`cat` point at the string literals
/// passed to DASSA_TRACE_SPAN.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  int rank = -1;       ///< MiniMPI rank, -1 outside any rank
  std::uint32_t tid = 0;  ///< process-unique small thread id
};

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<std::int64_t> g_open_spans;
[[nodiscard]] std::uint64_t now_ns();
void emit_span(const char* cat, const char* name, std::uint64_t start_ns,
               std::uint64_t end_ns);
}  // namespace detail

/// Master switch. Off (the default) every DASSA_TRACE_SPAN is a single
/// relaxed atomic load and a branch; no clock reads, no buffer writes.
void set_enabled(bool enabled);
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Label the calling thread's spans with a MiniMPI rank (chrome export
/// groups lanes by rank). Runtime::run sets this for rank threads;
/// ThreadPool workers inherit the rank of the thread that built the
/// pool. -1 means "no rank".
void set_thread_rank(int rank);
[[nodiscard]] int thread_rank();

/// Ring capacity (spans per thread) for buffers created after the
/// call. Existing buffers keep their capacity. The default is
/// kDefaultRingCapacity; tests shrink it to exercise the drop path.
void set_ring_capacity(std::size_t spans);
inline constexpr std::size_t kDefaultRingCapacity = 1u << 15;

/// Snapshot every thread's buffer into one trace ordered by
/// (rank, tid, start). Does not consume the events; clear() does.
[[nodiscard]] std::vector<TraceEvent> collect();

/// Drop all recorded spans (buffer memory is retained, and buffers of
/// finished threads are released).
void clear();

/// Spans dropped because a thread's ring filled (newest-dropped).
[[nodiscard]] std::uint64_t dropped_spans();

/// Spans currently open (entered but not yet exited) across all
/// threads. Only counted while tracing is enabled; the telemetry
/// sampler reads this to flag stalls (zero counter progress while work
/// is nominally in flight).
[[nodiscard]] inline std::uint64_t open_spans() {
  const std::int64_t n = detail::g_open_spans.load(std::memory_order_relaxed);
  return n > 0 ? static_cast<std::uint64_t>(n) : 0;
}

/// Copy the tracer's own statistics (trace.spans_emitted,
/// trace.spans_dropped, trace.threads) into global_counters().
void publish_trace_counters();

// ---- exporters -------------------------------------------------------

/// chrome://tracing JSON ("traceEvents" array of balanced "B"/"E"
/// pairs plus "M" process-name metadata; pid = rank + 1, 0 = unranked).
/// Load the output via chrome://tracing or https://ui.perfetto.dev.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events);

/// Flat per-span-name summary: count, total wall, and p50/p95/p99
/// drawn from the global metrics histograms (falls back to exact
/// quantiles over `events` for spans with no histogram).
void write_summary(std::ostream& os, const std::vector<TraceEvent>& events);

// ---- chrome-trace inspection (das_trace, schema tests) ---------------

/// One parsed chrome-trace event (subset of fields DASSA emits).
struct ChromeEvent {
  std::string name;
  std::string cat;
  std::string ph;  ///< "B", "E", or "M"
  double ts_us = 0.0;
  long long pid = 0;
  long long tid = 0;
};

/// Parse the JSON text produced by write_chrome_trace (or any
/// chrome-trace JSON limited to the fields above). Throws
/// dassa::FormatError on malformed JSON or a missing required field.
[[nodiscard]] std::vector<ChromeEvent> parse_chrome_trace(
    const std::string& json);

/// Validate chrome-trace structure: every "B"/"E" carries name, cat,
/// ts, pid, tid; begin/end pairs balance per (pid, tid) lane with
/// matching names; timestamps are non-decreasing per lane. Throws
/// dassa::FormatError describing the first violation.
void validate_chrome_trace(const std::vector<ChromeEvent>& events);

namespace detail {
/// RAII guard emitting one span; construct only via DASSA_TRACE_SPAN.
class SpanGuard {
 public:
  SpanGuard(const char* cat, const char* name) {
    if (enabled()) {
      cat_ = cat;
      name_ = name;
      g_open_spans.fetch_add(1, std::memory_order_relaxed);
      start_ns_ = now_ns();
    }
  }
  ~SpanGuard() {
    if (cat_ != nullptr) {
      emit_span(cat_, name_, start_ns_, now_ns());
      g_open_spans.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};
}  // namespace detail

}  // namespace dassa::trace

#define DASSA_TRACE_CONCAT_INNER(a, b) a##b
#define DASSA_TRACE_CONCAT(a, b) DASSA_TRACE_CONCAT_INNER(a, b)

/// Trace the enclosing scope as one span. `cat` groups related spans
/// ("io", "cache", "codec", "par_read", "haee", "dsp", "mpi",
/// "pipeline"); `name` is the dotted span name ("io.read_slab"). Both
/// MUST be string literals -- the tracer keeps the pointers.
#define DASSA_TRACE_SPAN(cat, name)                        \
  ::dassa::trace::detail::SpanGuard DASSA_TRACE_CONCAT(    \
      dassa_trace_span_, __LINE__)(cat, name)
