// DASSA common: 2D array shapes and hyperslab selections.
//
// DAS data is modelled throughout the framework as a dense row-major 2D
// array [channel, time] (see paper Section IV, "DASS Array Data Model").
// Shape2D describes extents; Slab2D describes a rectangular selection
// (the Logical Array View / HDF5-hyperslab analogue).
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

#include "dassa/common/bounds.hpp"
#include "dassa/common/error.hpp"

namespace dassa {

/// Extents of a dense row-major 2D array: rows × cols.
/// For DAS data rows = channels, cols = time samples.
struct Shape2D {
  std::size_t rows = 0;
  std::size_t cols = 0;

  [[nodiscard]] std::size_t size() const { return rows * cols; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Flat index of element (r, c); unchecked in release builds, for
  /// inner loops. Checked under -DDASSA_DEBUG_BOUNDS=ON.
  [[nodiscard]] std::size_t at(std::size_t r, std::size_t c) const {
    DASSA_BOUNDS_CHECK(r < rows && c < cols,
                       "index (" + std::to_string(r) + "," +
                           std::to_string(c) + ") outside " + str());
    return r * cols + c;
  }

  friend bool operator==(const Shape2D&, const Shape2D&) = default;

  [[nodiscard]] std::string str() const {
    return "[" + std::to_string(rows) + " x " + std::to_string(cols) + "]";
  }
};

inline std::ostream& operator<<(std::ostream& os, const Shape2D& s) {
  return os << s.str();
}

/// A rectangular selection within a 2D array: offset + count per
/// dimension. This is DASSA's Logical Array View primitive (paper
/// Fig. 3): LAV selects a subset of channels/time of a larger array.
struct Slab2D {
  std::size_t row_off = 0;
  std::size_t col_off = 0;
  std::size_t row_cnt = 0;
  std::size_t col_cnt = 0;

  [[nodiscard]] std::size_t size() const { return row_cnt * col_cnt; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] Shape2D shape() const { return {row_cnt, col_cnt}; }

  /// Whole-array slab covering `s`.
  static Slab2D whole(const Shape2D& s) { return {0, 0, s.rows, s.cols}; }

  /// True iff the slab fits inside an array of shape `s`.
  [[nodiscard]] bool fits(const Shape2D& s) const {
    return row_off + row_cnt <= s.rows && col_off + col_cnt <= s.cols;
  }

  /// Throws InvalidArgument unless the slab fits inside `s`.
  void validate_against(const Shape2D& s) const {
    DASSA_CHECK(fits(s), "hyperslab " + str() + " exceeds array " + s.str());
  }

  friend bool operator==(const Slab2D&, const Slab2D&) = default;

  [[nodiscard]] std::string str() const {
    return "{off=(" + std::to_string(row_off) + "," + std::to_string(col_off) +
           "), cnt=(" + std::to_string(row_cnt) + "," +
           std::to_string(col_cnt) + ")}";
  }
};

inline std::ostream& operator<<(std::ostream& os, const Slab2D& s) {
  return os << s.str();
}

/// Split `total` items into `parts` contiguous chunks as evenly as
/// possible; returns the [begin, end) range of chunk `index`.
/// The first (total % parts) chunks receive one extra item. Used by the
/// ArrayUDF partitioner and the parallel readers.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const Range&, const Range&) = default;
};

inline Range even_chunk(std::size_t total, std::size_t parts,
                        std::size_t index) {
  DASSA_CHECK(parts > 0, "cannot split into zero parts");
  DASSA_CHECK(index < parts, "chunk index out of range");
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  const std::size_t begin =
      index * base + (index < extra ? index : extra);
  const std::size_t len = base + (index < extra ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace dassa
