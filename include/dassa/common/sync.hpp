// DASSA common: annotated synchronization primitives.
//
// Every lock in the tree goes through this header. dassa::Mutex,
// dassa::SharedMutex and dassa::CondVar wrap the std types with Clang
// thread-safety capability attributes, so `-Wthread-safety
// -Wthread-safety-beta` (the `clang-strict` preset) proves at compile
// time that every DASSA_GUARDED_BY member is only touched with its
// lock held, that lock-holding functions declare DASSA_REQUIRES, and
// that scoped guards balance. On non-Clang compilers the attribute
// macros expand to nothing and the wrappers compile down to the std
// types exactly.
//
// das_lint's `sync-primitive` rule bans naked std::mutex /
// std::shared_mutex / std::condition_variable / std::lock_guard /
// std::unique_lock / std::shared_lock / std::scoped_lock (and the
// <mutex> / <shared_mutex> / <condition_variable> includes) everywhere
// in src/ and include/ except this file, so all future locking is born
// annotated.
//
// Condition waits: Clang's analysis cannot see through a predicate
// lambda (the lambda body is analyzed as a separate function that does
// not hold the capability), so waits are written as explicit loops in
// the caller, where the scoped MutexLock is in view:
//
//   dassa::MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- Clang thread-safety attribute macros ---------------------------------
//
// Spellings follow the Clang documentation's canonical mutex.h. The
// DASSA_ prefix keeps das_lint's include-hygiene scan trivially able to
// tell an annotation from an attribute smuggled in from elsewhere.
#if defined(__clang__) && defined(__has_attribute)
#define DASSA_TSA(x) __attribute__((x))
#else
#define DASSA_TSA(x)  // non-Clang: annotations compile away
#endif

#define DASSA_CAPABILITY(x) DASSA_TSA(capability(x))
#define DASSA_SCOPED_CAPABILITY DASSA_TSA(scoped_lockable)
#define DASSA_GUARDED_BY(x) DASSA_TSA(guarded_by(x))
#define DASSA_PT_GUARDED_BY(x) DASSA_TSA(pt_guarded_by(x))
#define DASSA_REQUIRES(...) DASSA_TSA(requires_capability(__VA_ARGS__))
#define DASSA_REQUIRES_SHARED(...) \
  DASSA_TSA(requires_shared_capability(__VA_ARGS__))
#define DASSA_ACQUIRE(...) DASSA_TSA(acquire_capability(__VA_ARGS__))
#define DASSA_ACQUIRE_SHARED(...) \
  DASSA_TSA(acquire_shared_capability(__VA_ARGS__))
#define DASSA_RELEASE(...) DASSA_TSA(release_capability(__VA_ARGS__))
#define DASSA_RELEASE_SHARED(...) \
  DASSA_TSA(release_shared_capability(__VA_ARGS__))
#define DASSA_TRY_ACQUIRE(...) DASSA_TSA(try_acquire_capability(__VA_ARGS__))
#define DASSA_EXCLUDES(...) DASSA_TSA(locks_excluded(__VA_ARGS__))
#define DASSA_ASSERT_CAPABILITY(x) DASSA_TSA(assert_capability(x))
#define DASSA_RETURN_CAPABILITY(x) DASSA_TSA(lock_returned(x))
#define DASSA_NO_THREAD_SAFETY_ANALYSIS DASSA_TSA(no_thread_safety_analysis)

namespace dassa {

class CondVar;

/// Annotated std::mutex. Prefer the scoped MutexLock; the raw
/// lock()/unlock() pair exists for the compile-fail fixtures and for
/// code that genuinely needs manual extent (none in-tree today).
class DASSA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DASSA_ACQUIRE() { mu_.lock(); }
  void unlock() DASSA_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() DASSA_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Annotated std::shared_mutex (the read-mostly design caches: FFT
/// plans, Butterworth designs, resample filters, MetricsRegistry).
class DASSA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DASSA_ACQUIRE() { mu_.lock(); }
  void unlock() DASSA_RELEASE() { mu_.unlock(); }
  void lock_shared() DASSA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() DASSA_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (the annotated std::lock_guard /
/// std::unique_lock). Also the handle CondVar::wait releases and
/// re-acquires.
class DASSA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DASSA_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() DASSA_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class DASSA_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) DASSA_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() DASSA_RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class DASSA_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) DASSA_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() DASSA_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Annotated std::condition_variable. wait() takes the scoped
/// MutexLock; the analysis treats the capability as held across the
/// wait (the accepted modeling fiction for condition variables --
/// the mutex is re-acquired before wait returns, so every guarded
/// access the caller makes after waking is in fact protected).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dassa
