// DASSA common: telemetry sampling and the pipeline health report.
//
// Spans (trace.hpp) answer "where did the time go" after a run;
// counters answer "how much work happened" in total. Neither answers
// the operator's question *during* a long HAEE campaign: is the
// pipeline still making progress, and at what rate? The TelemetrySampler
// closes that gap -- a background thread snapshots every global
// counter, registered gauge, histogram percentile, and the process's
// resource usage (RSS, peak RSS, user/sys CPU) into an in-memory
// timeline at a configurable period. The timeline exports as JSONL
// ("dassa.telemetry.v1", one typed record per line) and parses back
// through an in-tree reader with a validator strict enough to serve as
// the schema's executable spec.
//
// The same file model carries the post-run records: per-stage
// throughput, per-rank counter totals gathered over MiniMPI, cluster
// aggregates with imbalance ratios, and merged histograms.
// write_health_report() renders the whole file as the operator-facing
// summary das_health and `das_analyze --telemetry` print.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dassa/common/sync.hpp"

namespace dassa::telemetry {

/// JSONL schema identifier written into every telemetry file's meta
/// record and required back by validate_telemetry_file().
inline constexpr const char* kSchemaVersion = "dassa.telemetry.v1";

/// Process resource usage at one instant. Peak RSS and CPU come from
/// getrusage(RUSAGE_SELF); current RSS from /proc/self/statm (0 where
/// unavailable).
struct ResourceUsage {
  std::uint64_t rss_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t user_cpu_ns = 0;
  std::uint64_t sys_cpu_ns = 0;
};

[[nodiscard]] ResourceUsage sample_resources();

/// A gauge is a point-in-time reading (queue depth, cache occupancy)
/// as opposed to a monotonic counter. Subsystems register one function
/// per name; registering an existing name replaces the reader (so
/// re-created singletons stay current). Gauge functions must be
/// thread-safe: the sampler thread calls them.
using GaugeFn = std::function<double()>;
void register_gauge(const std::string& name, GaugeFn fn);

/// Read every registered gauge now. Built-in gauges
/// (trace.open_spans, trace.dropped_spans, log.records) are always
/// present.
[[nodiscard]] std::map<std::string, double> read_gauges();

/// One timeline entry: everything observable about the process at one
/// instant. Counter values are cumulative; gauges are instantaneous.
/// Histogram percentiles are folded into `gauges` as
/// "hist.<name>.p50_ns" / ".p95_ns" / ".p99_ns" / ".count".
struct Sample {
  std::uint64_t seq = 0;      ///< contiguous from 0 per timeline
  std::uint64_t wall_ns = 0;  ///< trace clock (ns since process epoch)
  ResourceUsage res;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
};

struct SamplerConfig {
  std::chrono::milliseconds period{250};
  std::size_t max_samples = 1 << 14;  ///< timeline cap; extra ticks drop
  bool include_histograms = true;     ///< fold percentiles into gauges
};

/// Periodic sampler. start() launches one background thread; stop()
/// (or destruction) joins it. tick() takes one sample synchronously
/// and is the deterministic injection point the tests drive -- the
/// background loop calls exactly the same code.
class TelemetrySampler {
 public:
  explicit TelemetrySampler(SamplerConfig cfg = {});
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const;

  /// Take one sample now (any thread; also the background loop body).
  void tick();

  /// Copy of the timeline so far, oldest first.
  [[nodiscard]] std::vector<Sample> timeline() const;

  /// Ticks discarded because the timeline hit max_samples.
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  void run_loop();

  SamplerConfig cfg_;
  // Serializes whole ticks (a manual tick() racing the background
  // loop's): the counter snapshot and the timeline append must be
  // atomic per sample or racing ticks can append in opposite order and
  // break the stream's monotone-counter invariant. Always acquired
  // before mu_; nothing else takes it, so no ordering hazard.
  Mutex tick_mu_;
  mutable Mutex mu_;
  CondVar cv_;
  std::vector<Sample> samples_ DASSA_GUARDED_BY(mu_);
  std::uint64_t next_seq_ DASSA_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ DASSA_GUARDED_BY(mu_) = 0;
  // Joined outside mu_ in stop() (joining under the lock would deadlock
  // against run_loop's own locking); start/stop are single-owner calls.
  std::thread thread_;
  bool running_ DASSA_GUARDED_BY(mu_) = false;
  bool stop_requested_ DASSA_GUARDED_BY(mu_) = false;
};

// ---- telemetry file model (JSONL, one typed record per line) ---------

/// Post-run per-stage summary ("read", "halo", "compute", "write").
struct StageRecord {
  std::string name;
  double seconds = 0.0;
  std::uint64_t bytes = 0;  ///< bytes moved by the stage (0 if n/a)
  std::uint64_t rows = 0;   ///< rows retired by the stage (0 if n/a)
};

/// One rank's counter totals, gathered over MiniMPI.
struct RankRecord {
  int rank = 0;
  std::map<std::string, std::uint64_t> counters;
};

/// Cluster-wide aggregate of one counter across ranks. `imbalance` is
/// max / mean -- 1.0 means perfectly balanced, 2.4 means the busiest
/// rank did 2.4x the average.
struct AggRecord {
  std::string counter;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  int min_rank = 0;
  int max_rank = 0;
  double imbalance = 1.0;
};

/// Cluster-merged latency histogram with precomputed percentiles.
struct HistRecord {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  std::array<std::uint64_t, 64> buckets{};
};

/// Everything a telemetry JSONL file carries.
struct TelemetryFile {
  std::map<std::string, std::string> meta;  ///< includes "schema"
  std::vector<Sample> samples;
  std::vector<StageRecord> stages;
  std::vector<RankRecord> ranks;
  std::vector<AggRecord> aggs;
  std::vector<HistRecord> hists;
};

/// Serialize as JSONL. Writes the meta record first (stamping the
/// schema version), then samples, stages, ranks, aggs, hists.
void write_telemetry_file(std::ostream& os, const TelemetryFile& file);

/// Parse text produced by write_telemetry_file. Throws
/// dassa::FormatError on malformed JSON, an unknown record type, or a
/// missing required field.
[[nodiscard]] TelemetryFile parse_telemetry_jsonl(const std::string& text);

/// Schema validation with teeth. Throws dassa::FormatError describing
/// the first violation of: schema version present and supported;
/// sample seq contiguous from 0 with non-decreasing wall clock;
/// counters monotonic across samples; histogram count equal to the
/// bucket sum; every aggregate's sum/min/max exactly consistent with
/// the per-rank records.
void validate_telemetry_file(const TelemetryFile& file);

/// Render the operator-facing health report: stage throughput and time
/// breakdown, resource ceiling, cache/codec efficiency, per-rank
/// imbalance table, merged percentiles, and stall warnings (sampler
/// intervals with zero counter progress while spans were open).
void write_health_report(std::ostream& os, const TelemetryFile& file);

}  // namespace dassa::telemetry
