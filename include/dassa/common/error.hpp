// DASSA common: error types and checking macros.
//
// DASSA uses exceptions for error reporting (construction failures,
// malformed files, out-of-range access). Hot inner loops (UDF execution,
// DSP kernels) validate at entry and run unchecked inside, so the
// exception machinery never sits on the per-cell path.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace dassa {

/// Base class for all DASSA errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An argument failed validation (bad shape, empty range, bad parameter).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

/// A file could not be opened, parsed, or written.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// A DASH5 container is structurally malformed (bad magic, CRC, bounds).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what)
      : Error("format error: " + what) {}
};

/// A MiniMPI operation was used incorrectly (rank out of range,
/// mismatched collective participation, send to self without buffering).
class MpiError : public Error {
 public:
  explicit MpiError(const std::string& what) : Error("mpi error: " + what) {}
};

/// An operation that is valid in general is not available in the
/// current state (e.g. reading a dataset from a closed file).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what)
      : Error("state error: " + what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace dassa

/// Validate a precondition; throws dassa::InvalidArgument on failure.
/// Usage: DASSA_CHECK(n > 0, "window length must be positive");
#define DASSA_CHECK(expr, msg)                                         \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::dassa::detail::throw_check_failure(#expr, __FILE__, __LINE__, \
                                           (msg));                     \
    }                                                                  \
  } while (false)
