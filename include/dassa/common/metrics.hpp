// DASSA common: latency histograms and the unified metrics registry.
//
// Counters (counters.hpp) answer "how many"; the paper's figures also
// need "how long, and how skewed". LatencyHistogram buckets durations
// by power of two nanoseconds -- recording is two relaxed atomic adds,
// cheap enough for span-exit paths -- and reports interpolated
// p50/p95/p99. MetricsRegistry unifies both worlds: every completed
// trace span feeds the histogram of its name, and write_report() emits
// counters and quantiles as one flat document (the das_analyze
// "metrics:" block).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "dassa/common/sync.hpp"

namespace dassa {

/// Non-atomic copy of a histogram for reporting.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, 64> buckets{};  ///< bucket i: [2^i, 2^(i+1)) ns

  /// Interpolated quantile in nanoseconds, q in [0, 1]. The estimate
  /// interpolates linearly *within* the landing bucket (never just its
  /// upper bound). Returns 0 for an empty histogram.
  [[nodiscard]] double quantile_ns(double q) const;

  /// Bucket-wise sum with `other`. Histograms share the same 64 pow2
  /// bins by construction, so snapshots from different ranks merge
  /// exactly -- this is what the cross-rank telemetry reduction uses.
  void merge(const HistogramSnapshot& other);

  /// Bucket-exact difference against an `older` snapshot of the same
  /// histogram: what was recorded between the two samples. Exact by
  /// construction -- `older.diff-result` merged back onto `older`
  /// reproduces *this bucket for bucket (das_top's interval view is
  /// built on this). Guarded against counter resets: if `older` is not
  /// bucket-wise contained in *this (the process restarted or the
  /// registry was reset between samples), the whole newer snapshot is
  /// returned -- everything in it was recorded since the reset -- so a
  /// delta can never go negative.
  [[nodiscard]] HistogramSnapshot diff(const HistogramSnapshot& older) const;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Thread-safe power-of-two latency histogram. All methods may be
/// called concurrently; record() is two relaxed atomic adds plus one
/// atomic increment.
class LatencyHistogram {
 public:
  void record_ns(std::uint64_t ns) {
    buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Add every bucket of `other` into this histogram (atomic; safe
  /// against concurrent record_ns).
  void merge(const HistogramSnapshot& other);

  void reset();

  /// Bucket index of a duration: floor(log2(ns)), clamped to [0, 63].
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t ns) {
    if (ns <= 1) return 0;
    return static_cast<std::size_t>(63 - __builtin_clzll(ns));
  }

 private:
  std::array<std::atomic<std::uint64_t>, 64> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// Named histograms, created on first use, living for the registry's
/// lifetime. Lookups of existing histograms take a shared lock and do
/// not allocate (transparent comparator), so the span-exit path stays
/// allocation-free in steady state.
class MetricsRegistry {
 public:
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name);

  [[nodiscard]] std::map<std::string, HistogramSnapshot> snapshot() const;

  /// Merge a snapshot map (e.g. another rank's histograms) into this
  /// registry, creating histograms as needed.
  void merge(const std::map<std::string, HistogramSnapshot>& other);

  /// Zero every histogram (names are retained). Pipelines call this
  /// between stages to attribute latencies per stage.
  void reset();

  /// Unified flat report: every global counter, then every histogram
  /// with count / total ms / p50 / p95 / p99.
  void write_report(std::ostream& os) const;

 private:
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      hists_ DASSA_GUARDED_BY(mu_);
};

/// Process-global registry; trace spans feed it by span name.
[[nodiscard]] MetricsRegistry& global_metrics();

}  // namespace dassa
