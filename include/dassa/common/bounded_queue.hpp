// DASSA common: the blocking bounded queue.
//
// Two subsystems pace mismatched producers and consumers with the same
// queue discipline: streaming ingest (spool poller vs window driver,
// docs/INGEST.md) and the query server (connection readers vs the
// batching dispatcher, docs/SERVING.md). The queue bounds the rate
// mismatch with *backpressure*, never drops: push() blocks while the
// queue is at capacity, so a slow consumer throttles the producer
// instead of silently losing work.
//
// Each instance charges its owner's counter namespace (pushed / popped
// / push_blocked / peak_depth) through the QueueCounterNames it is
// constructed with -- ingest.queue.* and serve.queue.* share this one
// implementation, so "pushed == popped after a clean drain" is the
// same no-drop invariant in both benches. Pass `{}` for an uncounted
// internal queue.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/sync.hpp"

namespace dassa {

/// Counter names one queue instance charges; any may be null to skip
/// that count (all-null = an uncounted queue).
struct QueueCounterNames {
  const char* pushed = nullptr;
  const char* popped = nullptr;
  const char* push_blocked = nullptr;
  const char* peak_depth = nullptr;
};

/// Blocking bounded multi-producer/multi-consumer queue. close() wakes
/// every waiter: blocked pushes give up (return false) and pops drain
/// the remaining items before reporting end-of-stream (nullopt) -- the
/// graceful-shutdown order.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, QueueCounterNames counters = {})
      : capacity_(capacity), counters_(counters) {
    DASSA_CHECK(capacity >= 1, "queue capacity must be at least 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (backpressure), then enqueue. Returns
  /// false without enqueuing if the queue was closed first.
  bool push(T item) {
    MutexLock lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      charge(counters_.push_blocked);
      while (items_.size() >= capacity_ && !closed_) not_full_.wait(lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    charge(counters_.pushed);
    if (counters_.peak_depth != nullptr) {
      global_counters().high_water(counters_.peak_depth, items_.size());
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and
  /// drained; nullopt means no more items will ever arrive.
  std::optional<T> pop() {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) not_empty_.wait(lock);
    return pop_locked();
  }

  /// pop() with a deadline: nullopt either when the deadline passes
  /// with the queue still empty or when the queue is closed and
  /// drained. The serve dispatcher's coalesce window is this call --
  /// "wait a little longer for an overlapping request, then go".
  std::optional<T> try_pop_until(
      std::chrono::steady_clock::time_point deadline) {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) {
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    return pop_locked();
  }

  /// End the stream: blocked producers return false, consumers drain
  /// what is queued and then see nullopt. Idempotent.
  void close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  void charge(const char* name) {
    if (name != nullptr) global_counters().add(name);
  }

  std::optional<T> pop_locked() DASSA_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;  // timed out, or closed+drained
    T item = std::move(items_.front());
    items_.pop_front();
    charge(counters_.popped);
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  const QueueCounterNames counters_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ DASSA_GUARDED_BY(mu_);
  bool closed_ DASSA_GUARDED_BY(mu_) = false;
};

}  // namespace dassa
