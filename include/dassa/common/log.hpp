// DASSA common: minimal leveled logger.
//
// Logging is intentionally tiny: severity filter + single-line
// timestamped output to stderr. Framework code logs sparingly (file
// opens, partition decisions, engine configuration); hot paths never
// log.
#pragma once

#include <sstream>
#include <string>

namespace dassa {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global severity threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (thread-safe). Prefer the DASSA_LOG macro.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dassa

/// Stream-style logging: DASSA_LOG(kInfo) << "read " << n << " files";
#define DASSA_LOG(severity)                                   \
  if (::dassa::LogLevel::severity < ::dassa::log_level()) {   \
  } else                                                      \
    ::dassa::detail::LogLine(::dassa::LogLevel::severity)
