// DASSA common: structured leveled logging.
//
// Framework code logs sparingly (file opens, partition decisions,
// engine configuration); hot paths never log. What it does log is
// structured: every record carries a severity, a wall-clock timestamp,
// the emitting MiniMPI rank and a process-unique thread id, a dotted
// event name, a free-form message, and typed key=value fields. Records
// flow to up to three sinks:
//
//   * console -- one human-readable line on stderr (the ONLY place in
//     the tree allowed to write stderr; das_lint's no-direct-stderr
//     rule bans it everywhere else),
//   * a JSONL file -- one JSON object per line, machine-readable, for
//     post-hoc correlation with telemetry timelines (set_log_file),
//   * an in-memory ring of the last N warning/error records,
//     retrievable programmatically via recent_errors() so tools and
//     health reports can say *why* a run degraded.
//
// The global severity threshold gates everything: a filtered DASSA_LOG
// / DASSA_SLOG never evaluates its stream arguments.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace dassa {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global severity threshold; records below it are discarded before
/// their arguments are evaluated. Default is kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

[[nodiscard]] const char* log_level_name(LogLevel level);

/// One typed key=value field of a structured record. `value` is the
/// rendered text; `quoted` distinguishes string fields (JSON-quoted)
/// from numeric/bool fields (emitted raw).
struct LogField {
  std::string key;
  std::string value;
  bool quoted = false;
};

/// One emitted record, as stored in the error ring and written to the
/// sinks.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  double wall_seconds = 0.0;  ///< seconds since the unix epoch
  int rank = -1;              ///< MiniMPI rank of the emitting thread
  std::uint32_t tid = 0;      ///< process-unique small thread id
  std::string event;          ///< dotted event name ("engine.run")
  std::string message;
  std::vector<LogField> fields;
};

/// Route records to a JSONL file sink (append). Replaces any previous
/// sink; an empty path closes it. Throws dassa::IoError if the file
/// cannot be opened.
void set_log_file(const std::string& path);

/// Ring capacity for the warn/error ring (default 128). Shrinking
/// drops the oldest retained records.
void set_error_ring_capacity(std::size_t records);

/// The most recent warning/error records, oldest first.
[[nodiscard]] std::vector<LogRecord> recent_errors();

/// Records emitted so far (all sinks, cumulative).
[[nodiscard]] std::uint64_t log_records_emitted();

/// Emit one unstructured log line (thread-safe). Prefer the DASSA_LOG
/// / DASSA_SLOG macros.
void log_message(LogLevel level, const std::string& msg);

namespace detail {

/// Routes a finished record to the sinks. The record's wall clock,
/// rank and tid are stamped here.
void emit_record(LogLevel level, std::string event, std::string message,
                 std::vector<LogField> fields);

/// Builder behind DASSA_LOG / DASSA_SLOG: accumulates fields and a
/// streamed message, emits at end of statement.
class LogBuilder {
 public:
  explicit LogBuilder(LogLevel level, std::string event = {})
      : level_(level), event_(std::move(event)) {}
  ~LogBuilder() {
    emit_record(level_, std::move(event_), std::move(message_),
                std::move(fields_));
  }
  LogBuilder(const LogBuilder&) = delete;
  LogBuilder& operator=(const LogBuilder&) = delete;

  /// Typed field: integral, floating-point, bool, or string-like.
  template <typename T>
  LogBuilder& field(std::string key, const T& value) {
    LogField f;
    f.key = std::move(key);
    if constexpr (std::is_same_v<T, bool>) {
      f.value = value ? "true" : "false";
    } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
      f.value = std::to_string(static_cast<long long>(value));
    } else if constexpr (std::is_floating_point_v<T>) {
      f.value = render_double(static_cast<double>(value));
    } else {
      f.value = std::string(value);
      f.quoted = true;
    }
    fields_.push_back(std::move(f));
    return *this;
  }

  /// Unsigned integers keep their full range.
  LogBuilder& field(std::string key, std::uint64_t value) {
    fields_.push_back(LogField{std::move(key), std::to_string(value), false});
    return *this;
  }

  /// Streamed free-form message text.
  template <typename T>
  LogBuilder& operator<<(const T& v) {
    append(v);
    return *this;
  }

 private:
  static std::string render_double(double v);

  void append(const std::string& s) { message_ += s; }
  void append(const char* s) { message_ += s; }
  void append(char c) { message_ += c; }
  void append(bool v) { message_ += v ? "true" : "false"; }
  template <typename T>
  void append(const T& v) {
    if constexpr (std::is_integral_v<T>) {
      message_ += std::to_string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      message_ += render_double(static_cast<double>(v));
    } else {
      append_stream(v);
    }
  }
  // Fallback for ostream-printable types (Shape2D, StageTimes, ...),
  // out of line to keep <sstream> out of this header.
  template <typename T>
  void append_stream(const T& v);

  LogLevel level_;
  std::string event_;
  std::string message_;
  std::vector<LogField> fields_;
};

}  // namespace detail
}  // namespace dassa

// Stream fallback for ostream-printable types (Shape2D, StageTimes,
// ...). Kept at the end of the header so the common case (strings and
// numbers) reads without it.
#include <sstream>

namespace dassa::detail {
template <typename T>
void LogBuilder::append_stream(const T& v) {
  std::ostringstream os;
  os << v;
  message_ += os.str();
}
}  // namespace dassa::detail

/// Stream-style logging: DASSA_LOG(kInfo) << "read " << n << " files";
/// Filtered levels never evaluate the stream expression.
#define DASSA_LOG(severity)                                   \
  if (::dassa::LogLevel::severity < ::dassa::log_level()) {   \
  } else                                                      \
    ::dassa::detail::LogBuilder(::dassa::LogLevel::severity)

/// Structured logging with an event name and typed fields:
///   DASSA_SLOG(kInfo, "vca.build").field("files", n) << "built VCA";
#define DASSA_SLOG(severity, event)                           \
  if (::dassa::LogLevel::severity < ::dassa::log_level()) {   \
  } else                                                      \
    ::dassa::detail::LogBuilder(::dassa::LogLevel::severity, event)
