// DASSA common: wall-clock timing and stage breakdowns.
//
// The paper's figures report per-stage times (read / compute / write),
// so timing is a first-class output of every pipeline. StageTimes is
// the exchange currency between pipelines and the benchmark harnesses.
#pragma once

#include <chrono>
#include <map>
#include <ostream>
#include <string>

namespace dassa {

/// Simple monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named stage durations (e.g. "read", "compute", "write").
/// Stages may be charged multiple times; durations add up.
class StageTimes {
 public:
  void add(const std::string& stage, double seconds) {
    stages_[stage] += seconds;
  }

  [[nodiscard]] double get(const std::string& stage) const {
    auto it = stages_.find(stage);
    return it == stages_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const auto& [_, v] : stages_) t += v;
    return t;
  }

  [[nodiscard]] const std::map<std::string, double>& stages() const {
    return stages_;
  }

  /// Merge another breakdown into this one (stage-wise sum).
  void merge(const StageTimes& other) {
    for (const auto& [k, v] : other.stages_) stages_[k] += v;
  }

  friend std::ostream& operator<<(std::ostream& os, const StageTimes& t) {
    bool first = true;
    for (const auto& [k, v] : t.stages_) {
      if (!first) os << ", ";
      os << k << "=" << v << "s";
      first = false;
    }
    return os;
  }

 private:
  std::map<std::string, double> stages_;
};

/// RAII helper: charges the elapsed time to `stage` of `times` at scope
/// exit. Usage: { StageScope s(times, "read"); ...do reads...; }
class StageScope {
 public:
  StageScope(StageTimes& times, std::string stage)
      : times_(times), stage_(std::move(stage)) {}
  ~StageScope() { times_.add(stage_, timer_.seconds()); }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StageTimes& times_;
  std::string stage_;
  WallTimer timer_;
};

}  // namespace dassa
