// DASSA common: opt-in bounds checking for hot-path accessors.
//
// Release builds keep Array2D / Shape2D indexing unchecked: these
// accessors sit on the per-cell UDF path, where the paper's engine
// validates at entry and runs unchecked inside (see error.hpp). The
// CMake option -DDASSA_DEBUG_BOUNDS=ON defines DASSA_DEBUG_BOUNDS
// globally and turns every indexed access into a checked accessor that
// throws dassa::InvalidArgument naming the offending coordinates.
//
// DASSA_BOUNDS_CHECK compiles away entirely when the mode is off (the
// condition and message expressions are never evaluated), so the
// checked and unchecked builds share one set of accessor definitions.
#pragma once

#include "dassa/common/error.hpp"

#if defined(DASSA_DEBUG_BOUNDS)
#define DASSA_BOUNDS_CHECK(expr, msg) DASSA_CHECK(expr, msg)
#else
#define DASSA_BOUNDS_CHECK(expr, msg) \
  do {                                \
  } while (false)
#endif
