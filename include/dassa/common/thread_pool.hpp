// DASSA common: fixed-size thread pool with parallel_for.
//
// HAEE's ApplyMT (paper Algorithm 1) uses OpenMP. In this reproduction
// MiniMPI ranks are themselves threads, and nested `omp parallel`
// regions launched from sibling rank-threads would contend for one
// process-wide OpenMP runtime. ApplyMT therefore runs on this explicit
// pool when executing inside a MiniMPI rank, and plain OpenMP remains
// available for single-rank (node-local) execution. The pool reproduces
// the same fork-join structure as `#pragma omp parallel for
// schedule(static)`.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "dassa/common/error.hpp"
#include "dassa/common/sync.hpp"

namespace dassa {

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1). Workers inherit the
  /// creating thread's trace rank label (HAEE builds its ApplyMT pool
  /// inside a MiniMPI rank thread, so worker spans land in that rank's
  /// chrome-trace lane); pass `inherit_trace_rank = false` for pools
  /// shared across ranks, e.g. io_pool().
  explicit ThreadPool(std::size_t num_threads,
                      bool inherit_trace_rank = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Tasks queued plus tasks currently executing. The telemetry
  /// sampler exports this as the io.pool queue-depth gauge.
  [[nodiscard]] std::size_t queue_depth() const {
    MutexLock lock(mu_);
    return tasks_.size() + in_flight_;
  }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Static-schedule parallel for over [0, n): the range is split into
  /// size() contiguous chunks and `body(thread_index, begin, end)` runs
  /// once per chunk, mirroring `omp for schedule(static)`. Blocks until
  /// all chunks complete. Exceptions thrown by `body` are rethrown on
  /// the calling thread (first one wins).
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t thread_index, std::size_t begin,
                               std::size_t end)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  std::queue<std::function<void()>> tasks_ DASSA_GUARDED_BY(mu_);
  CondVar cv_task_;
  CondVar cv_idle_;
  std::size_t in_flight_ DASSA_GUARDED_BY(mu_) = 0;
  bool stop_ DASSA_GUARDED_BY(mu_) = false;
};

}  // namespace dassa
