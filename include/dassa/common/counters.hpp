// DASSA common: instrumentation counters.
//
// The paper's central performance arguments are *counting* arguments:
// O(n) broadcasts vs O(n/p) exchanges (Section IV-B), 16x fewer I/O
// calls under HAEE (Section VI-C), k-fold master-channel duplication
// (Section V-B). On this reproduction's single-node substrate those
// counts are measured exactly through this registry, and reported by
// the benches next to wall time.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "dassa/common/sync.hpp"

namespace dassa {

/// Thread-safe named counter registry. Counters are created on first
/// use and live for the registry's lifetime.
class CounterRegistry {
 public:
  /// Add `delta` to counter `name`.
  void add(const std::string& name, std::uint64_t delta = 1) {
    MutexLock lock(mu_);
    counters_[name] += delta;
  }

  /// Track a high-water mark: sets counter `name` to max(current, value).
  void high_water(const std::string& name, std::uint64_t value) {
    MutexLock lock(mu_);
    auto& c = counters_[name];
    if (value > c) c = value;
  }

  [[nodiscard]] std::uint64_t get(const std::string& name) const {
    MutexLock lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void reset() {
    MutexLock lock(mu_);
    counters_.clear();
  }

  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const {
    MutexLock lock(mu_);
    return counters_;
  }

  friend std::ostream& operator<<(std::ostream& os,
                                  const CounterRegistry& reg) {
    for (const auto& [k, v] : reg.snapshot()) {
      os << "  " << k << " = " << v << "\n";
    }
    return os;
  }

 private:
  mutable Mutex mu_;
  std::map<std::string, std::uint64_t> counters_ DASSA_GUARDED_BY(mu_);
};

/// Process-global registry used by the I/O layer and MiniMPI.
/// Benches reset() it at the start of each experiment.
CounterRegistry& global_counters();

/// Canonical counter names used across DASSA, kept in one place so the
/// benches and the instrumented layers cannot drift apart.
namespace counters {
inline constexpr const char* kIoReadCalls = "io.read_calls";
inline constexpr const char* kIoReadBytes = "io.read_bytes";
inline constexpr const char* kIoWriteCalls = "io.write_calls";
inline constexpr const char* kIoWriteBytes = "io.write_bytes";
inline constexpr const char* kIoOpens = "io.opens";
inline constexpr const char* kIoSeeks = "io.seeks";
inline constexpr const char* kMpiP2pMsgs = "mpi.p2p_messages";
inline constexpr const char* kMpiP2pBytes = "mpi.p2p_bytes";
inline constexpr const char* kMpiBcasts = "mpi.broadcasts";
inline constexpr const char* kMpiBcastBytes = "mpi.broadcast_bytes";
inline constexpr const char* kMpiAlltoalls = "mpi.alltoalls";
inline constexpr const char* kMpiAlltoallBytes = "mpi.alltoall_bytes";
inline constexpr const char* kMpiBarriers = "mpi.barriers";
inline constexpr const char* kMemMasterChannelCopies =
    "mem.master_channel_copies";
inline constexpr const char* kMemPeakBytesModeled = "mem.peak_bytes_modeled";
// DSP cache statistics. The dsp layer accumulates these in lock-free
// atomics (a mutex per transform would serialise worker threads) and
// copies them here via dsp::publish_dsp_counters().
inline constexpr const char* kDspFftPlanHits = "dsp.fft.plan_hits";
inline constexpr const char* kDspFftPlanMisses = "dsp.fft.plan_misses";
inline constexpr const char* kDspFftBytesAllocated =
    "dsp.fft.bytes_allocated";
inline constexpr const char* kDspButterDesignHits = "dsp.butter.design_hits";
inline constexpr const char* kDspButterDesignMisses =
    "dsp.butter.design_misses";
inline constexpr const char* kDspResampleDesignHits =
    "dsp.resample.design_hits";
inline constexpr const char* kDspResampleDesignMisses =
    "dsp.resample.design_misses";
// Storage engine statistics (DASH5 v3). The codec pipeline and the
// chunk cache charge these directly: their per-event rate matches the
// file layer's per-I/O-call rate, so the same mutex-protected registry
// is the right cost class.
inline constexpr const char* kIoCodecEncodeCalls = "io.codec.encode_calls";
inline constexpr const char* kIoCodecDecodeCalls = "io.codec.decode_calls";
inline constexpr const char* kIoCodecBytesRaw = "io.codec.bytes_raw";
inline constexpr const char* kIoCodecBytesStored = "io.codec.bytes_stored";
inline constexpr const char* kIoCodecEncodeNs = "io.codec.encode_ns";
inline constexpr const char* kIoCodecDecodeNs = "io.codec.decode_ns";
inline constexpr const char* kIoCodecStoredRawChunks =
    "io.codec.stored_raw_chunks";
inline constexpr const char* kIoCacheHits = "io.cache.hits";
inline constexpr const char* kIoCacheMisses = "io.cache.misses";
inline constexpr const char* kIoCacheInserts = "io.cache.inserts";
inline constexpr const char* kIoCacheEvictions = "io.cache.evictions";
inline constexpr const char* kIoCachePeakBytes = "io.cache.peak_bytes";
inline constexpr const char* kIoCachePrefetchIssued =
    "io.cache.prefetch_issued";
// Parallel repack engine (src/io/repack.cpp): physical concatenation
// cost accounting. source_bytes is the raw element bytes a rank pulled
// out of member files and stored_bytes the compressed payload it
// contributed, so source_bytes / ranks ~ total source size is the
// O(n/p) scaling evidence the repack tests assert.
inline constexpr const char* kIoRepackRuns = "io.repack.runs";
inline constexpr const char* kIoRepackChunks = "io.repack.chunks_encoded";
inline constexpr const char* kIoRepackSourceBytes = "io.repack.source_bytes";
inline constexpr const char* kIoRepackStoredBytes = "io.repack.stored_bytes";
// HAEE engine statistics: distributed runs, rank-threads launched, and
// halo traffic, updated concurrently from MiniMPI rank threads (they
// double as TSan coverage of this registry).
inline constexpr const char* kHaeeRuns = "haee.runs";
inline constexpr const char* kHaeeRanksLaunched = "haee.ranks_launched";
inline constexpr const char* kHaeeHaloExchanges = "haee.halo_exchanges";
inline constexpr const char* kHaeeHaloOverlapReads =
    "haee.halo_overlap_reads";
// Tracer self-statistics, published idempotently (high_water) by
// trace::publish_trace_counters() from the tracer's own atomics.
inline constexpr const char* kTraceSpansEmitted = "trace.spans_emitted";
inline constexpr const char* kTraceSpansDropped = "trace.spans_dropped";
inline constexpr const char* kTraceThreads = "trace.threads";
// Telemetry layer: progress counters charged by the compute kernels
// (rows/cells retired) so the sampler can tell "busy" from "stalled",
// and the sampler's own samples-taken count.
inline constexpr const char* kTelemetrySamples = "telemetry.samples";
inline constexpr const char* kTelemetryRowsProcessed =
    "telemetry.rows_processed";
inline constexpr const char* kTelemetryCellsProcessed =
    "telemetry.cells_processed";
inline constexpr const char* kTelemetryPipelineRows =
    "telemetry.pipeline_rows";
// Streaming ingest subsystem (src/ingest/): spool admission, live-VCA
// growth, and sliding-window progress. Queue occupancy counters live
// under ingest.queue.* (pushed == popped after a clean drain is the
// no-drop invariant bench_ingest asserts); the instantaneous depth is
// the "ingest.queue.depth" gauge das_ingest registers.
inline constexpr const char* kIngestPolls = "ingest.polls";
inline constexpr const char* kIngestFilesAdmitted = "ingest.files_admitted";
inline constexpr const char* kIngestFilesQuarantined =
    "ingest.files_quarantined";
inline constexpr const char* kIngestVcaAppends = "ingest.vca_appends";
inline constexpr const char* kIngestWindows = "ingest.windows_processed";
inline constexpr const char* kIngestColsEmitted = "ingest.cols_emitted";
inline constexpr const char* kIngestEvents = "ingest.events_detected";
inline constexpr const char* kIngestQueuePushed = "ingest.queue.pushed";
inline constexpr const char* kIngestQueuePopped = "ingest.queue.popped";
inline constexpr const char* kIngestQueuePushBlocked =
    "ingest.queue.push_blocked";
inline constexpr const char* kIngestQueuePeakDepth =
    "ingest.queue.peak_depth";
// Time-interval index (src/io/interval_index.cpp): the sorted
// fence-pointer sidecar that makes VCA time-range lookups sub-linear.
// entry_touches counts comparator probes plus emitted entries, so the
// O(log n + k) shape of an indexed query is assertable against the
// linear fallback's n touches (tests/io/test_interval_index.cpp and
// the bench_serve index gate pin both).
inline constexpr const char* kIoIndexLoads = "io.index.loads";
inline constexpr const char* kIoIndexPublishes = "io.index.publishes";
inline constexpr const char* kIoIndexQueries = "io.index.queries";
inline constexpr const char* kIoIndexEntryTouches = "io.index.entry_touches";
inline constexpr const char* kIoIndexFallbacks = "io.index.fallbacks";
// Query-serving layer (src/serve/): connection admission, request /
// response accounting, and the shared-decode batcher. Queue occupancy
// lives under serve.queue.* (same no-drop invariant as ingest.queue.*,
// via the shared dassa::BoundedQueue); batch.coalesced counts requests
// that shared another request's union read -- the cache-share evidence
// bench_serve gates on.
inline constexpr const char* kServeConnections = "serve.connections";
inline constexpr const char* kServeRequests = "serve.requests";
inline constexpr const char* kServeResponses = "serve.responses";
inline constexpr const char* kServeErrors = "serve.errors";
inline constexpr const char* kServeBytesReceived = "serve.bytes_received";
inline constexpr const char* kServeBytesSent = "serve.bytes_sent";
inline constexpr const char* kServeQueuePushed = "serve.queue.pushed";
inline constexpr const char* kServeQueuePopped = "serve.queue.popped";
inline constexpr const char* kServeQueuePushBlocked =
    "serve.queue.push_blocked";
inline constexpr const char* kServeQueuePeakDepth =
    "serve.queue.peak_depth";
inline constexpr const char* kServeBatchGroups = "serve.batch.groups";
inline constexpr const char* kServeBatchCoalesced =
    "serve.batch.coalesced";
inline constexpr const char* kServeBatchUnionReads =
    "serve.batch.union_reads";
// Live introspection: requests whose end-to-end latency crossed the
// --slow-ms threshold (each also gets a structured serve.slow_request
// log record with its per-stage breakdown).
inline constexpr const char* kServeSlowRequests = "serve.slow_requests";
// kStats protocol (src/serve/stats.cpp): live snapshot requests
// answered over the audited socket layer, by both the das_serve main
// socket and the das_ingest stats listener. das_top excludes stats.*
// from its progress scan so its own polling never masks a stall.
inline constexpr const char* kStatsConnections = "stats.connections";
inline constexpr const char* kStatsRequests = "stats.requests";
inline constexpr const char* kStatsBadFrames = "stats.bad_frames";
}  // namespace counters

}  // namespace dassa
