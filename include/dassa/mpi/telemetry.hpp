// DASSA MiniMPI: cross-rank telemetry reduction.
//
// MiniMPI ranks are threads sharing one process-global counter
// registry, so "per-rank telemetry" cannot be read back from the
// globals -- each rank assembles its own RankTelemetry (from its comm
// statistics, read sizes, and stage clocks) and the runtime reduces
// them with a real gatherv, exactly as the MPI deployment would. The
// result is the cluster-wide view the health report prints: per-counter
// sum/min/max with the owning ranks and an imbalance ratio ("rank 3
// did 2.4x the read bytes of rank 0"), plus histograms merged
// bucket-wise -- exact, because every histogram shares the same 64
// power-of-two bins.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dassa/common/metrics.hpp"
#include "dassa/mpi/comm.hpp"

namespace dassa::mpi {

/// One rank's contribution: named counters plus histogram snapshots.
struct RankTelemetry {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> hists;
};

/// Cluster-wide aggregate of one counter.
struct CounterAggregate {
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  int min_rank = 0;
  int max_rank = 0;

  /// max / mean: 1.0 is perfectly balanced. Returns 1.0 when the sum
  /// is zero (nothing to be imbalanced about).
  [[nodiscard]] double imbalance(int world_size) const;
};

/// The reduced view, populated on the root rank only (other ranks get
/// world_size and their own contribution echoed back, nothing more).
struct ClusterTelemetry {
  int world_size = 0;
  std::vector<RankTelemetry> per_rank;  ///< indexed by rank; root only
  std::map<std::string, CounterAggregate> counters;
  std::map<std::string, HistogramSnapshot> hists;  ///< bucket-merged
};

/// Collective: every rank contributes `mine`; the root returns the
/// full cluster view. Counters absent on some ranks count as zero
/// there. Must be called by all ranks of the communicator.
[[nodiscard]] ClusterTelemetry reduce_telemetry(Comm& comm,
                                                const RankTelemetry& mine,
                                                int root = 0);

}  // namespace dassa::mpi
