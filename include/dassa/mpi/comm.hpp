// MiniMPI: communicator with typed point-to-point and collective
// operations.
//
// MiniMPI is this reproduction's stand-in for MPI on a cluster (see
// DESIGN.md, substitution table). Ranks are threads; each rank owns a
// mailbox of typed, tagged messages, and every transfer copies its
// payload through the mailbox, so ranks share nothing implicitly --
// exactly the discipline MPI imposes. Collectives are implemented on
// top of point-to-point with the textbook algorithms (binomial-tree
// broadcast/reduce, dissemination barrier, pairwise all-to-all), so the
// *message counts* the paper reasons about fall out of the
// implementation rather than being asserted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "dassa/common/error.hpp"
#include "dassa/mpi/cost_model.hpp"

namespace dassa::mpi {

namespace detail {
class World;
}  // namespace detail

/// A communicator bound to one rank of a MiniMPI world. Obtained from
/// Runtime::run(); never constructed directly. All methods are called
/// from the owning rank's thread only.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // ---- point to point ------------------------------------------------

  /// Blocking buffered send of a typed buffer to `dest` with `tag`
  /// (user tags must be >= 0). Completes locally once the payload is
  /// copied into the destination mailbox (MPI_Bsend semantics).
  template <typename T>
  void send(std::span<const T> data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    DASSA_CHECK(tag >= 0, "user message tags must be non-negative");
    send_bytes(reinterpret_cast<const std::byte*>(data.data()),
               data.size_bytes(), dest, tag);
  }

  /// Blocking receive of a typed buffer from `src` with `tag`. The
  /// message length determines the result size.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    DASSA_CHECK(tag >= 0, "user message tags must be non-negative");
    const std::vector<std::byte> raw = recv_bytes(src, tag);
    return bytes_to_vector<T>(raw);
  }

  // ---- collectives ----------------------------------------------------

  /// Dissemination barrier: ceil(log2 p) rounds of pairwise messages.
  void barrier();

  /// Binomial-tree broadcast of `data` from `root` to all ranks.
  /// On non-root ranks `data` is resized and overwritten.
  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw;
    if (rank_ == root) raw = vector_to_bytes(std::span<const T>(data));
    bcast_bytes(raw, root);
    if (rank_ != root) data = bytes_to_vector<T>(raw);
  }

  /// Gather variable-length contributions to `root`. Returns the
  /// per-rank contributions (indexed by rank) on root, empty elsewhere.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> gatherv(std::span<const T> mine,
                                                    int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::vector<std::byte>> raw =
        gatherv_bytes(vector_to_bytes(mine), root);
    std::vector<std::vector<T>> out;
    out.reserve(raw.size());
    for (auto& r : raw) out.push_back(bytes_to_vector<T>(r));
    return out;
  }

  /// Allgather: every rank receives every rank's contribution.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> allgatherv(
      std::span<const T> mine) {
    auto gathered = gatherv(mine, 0);
    // Broadcast the concatenation + lengths from root.
    std::vector<std::uint64_t> lens(static_cast<std::size_t>(size()), 0);
    std::vector<T> flat;
    if (rank_ == 0) {
      for (int r = 0; r < size(); ++r) {
        lens[static_cast<std::size_t>(r)] =
            gathered[static_cast<std::size_t>(r)].size();
        flat.insert(flat.end(), gathered[static_cast<std::size_t>(r)].begin(),
                    gathered[static_cast<std::size_t>(r)].end());
      }
    }
    bcast(lens, 0);
    bcast(flat, 0);
    std::vector<std::vector<T>> out(static_cast<std::size_t>(size()));
    std::size_t off = 0;
    for (int r = 0; r < size(); ++r) {
      auto& dst = out[static_cast<std::size_t>(r)];
      dst.assign(flat.begin() + static_cast<std::ptrdiff_t>(off),
                 flat.begin() + static_cast<std::ptrdiff_t>(
                                    off + lens[static_cast<std::size_t>(r)]));
      off += lens[static_cast<std::size_t>(r)];
    }
    return out;
  }

  /// Scatter equal-size chunks from root: rank r receives
  /// all[r*per : (r+1)*per]. `all` is only read on root.
  template <typename T>
  [[nodiscard]] std::vector<T> scatter(std::span<const T> all,
                                       std::size_t per, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw_all;
    if (rank_ == root) {
      DASSA_CHECK(all.size() >= per * static_cast<std::size_t>(size()),
                  "scatter source too small");
      raw_all = vector_to_bytes(all);
    }
    std::vector<std::byte> mine =
        scatter_bytes(raw_all, per * sizeof(T), root);
    return bytes_to_vector<T>(mine);
  }

  /// Pairwise-exchange all-to-all with per-destination variable-length
  /// payloads: `per_dest[r]` is sent to rank r; returns the payloads
  /// received, indexed by source rank. This is the data-exchange step of
  /// the communication-avoiding read (paper Fig. 5b).
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& per_dest) {
    static_assert(std::is_trivially_copyable_v<T>);
    DASSA_CHECK(per_dest.size() == static_cast<std::size_t>(size()),
                "alltoallv needs one payload per rank");
    std::vector<std::vector<std::byte>> raw(per_dest.size());
    for (std::size_t r = 0; r < per_dest.size(); ++r) {
      raw[r] = vector_to_bytes(std::span<const T>(per_dest[r]));
    }
    std::vector<std::vector<std::byte>> got = alltoallv_bytes(raw);
    std::vector<std::vector<T>> out(got.size());
    for (std::size_t r = 0; r < got.size(); ++r) {
      out[r] = bytes_to_vector<T>(got[r]);
    }
    return out;
  }

  /// Binomial-tree reduction of one value per rank to root, then (for
  /// allreduce) broadcast of the result. `op` must be associative.
  template <typename T>
  [[nodiscard]] T reduce(T value, const std::function<T(T, T)>& op,
                         int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Reduce to rank 0 via binomial tree on relative ranks, then move
    // to root if different.
    const int p = size();
    const int rel = (rank_ - root + p) % p;
    T acc = value;
    for (int mask = 1; mask < p; mask <<= 1) {
      if ((rel & mask) != 0) {
        const int dst = ((rel - mask) + root) % p;
        send_bytes(reinterpret_cast<const std::byte*>(&acc), sizeof(T), dst,
                   kReduceTag);
        break;
      }
      const int src_rel = rel + mask;
      if (src_rel < p) {
        const int src = (src_rel + root) % p;
        const std::vector<T> got = bytes_to_vector<T>(recv_bytes(src, kReduceTag));
        acc = op(acc, got.front());
      }
    }
    return acc;  // meaningful on root only
  }

  template <typename T>
  [[nodiscard]] T allreduce(T value, const std::function<T(T, T)>& op) {
    T result = reduce<T>(value, op, 0);
    std::vector<T> box(1, result);
    bcast(box, 0);
    return box.front();
  }

  /// Split the communicator MPI_Comm_split-style: ranks with equal
  /// `color` form a sub-communicator, ordered by `key` (ties broken by
  /// parent rank). Collective: all ranks must call with their values.
  /// The returned Comm addresses only the ranks of the same color; its
  /// operations run over the parent world, so it remains valid while
  /// the parent world lives.
  [[nodiscard]] Comm split(int color, int key);

  // ---- instrumentation ------------------------------------------------

  /// Communication statistics accumulated by this rank so far.
  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// Charge additional modeled seconds to this rank (used by the I/O
  /// layer to account for storage latency under the same model).
  void charge_modeled_seconds(double seconds) {
    stats_.modeled_seconds += seconds;
  }

  /// The world's cost-model parameters.
  [[nodiscard]] const CostParams& cost_params() const;

 private:
  friend class Runtime;
  friend class detail::World;
  Comm(detail::World* world, int rank)
      : world_(world), world_rank_(rank), rank_(rank) {}

  /// World rank of communicator-local rank `local`.
  [[nodiscard]] int to_world(int local) const {
    return group_.empty() ? local : group_[static_cast<std::size_t>(local)];
  }

  // Internal tags for collectives live in a reserved range so they can
  // never collide with user tags (which must be >= 0).
  static constexpr int kBarrierTag = -1;
  static constexpr int kBcastTag = -2;
  static constexpr int kGatherTag = -3;
  static constexpr int kScatterTag = -4;
  static constexpr int kAlltoallTag = -5;
  static constexpr int kReduceTag = -6;

  void send_bytes(const std::byte* data, std::size_t size, int dest,
                  int tag);
  [[nodiscard]] std::vector<std::byte> recv_bytes(int src, int tag);
  void bcast_bytes(std::vector<std::byte>& data, int root);
  [[nodiscard]] std::vector<std::vector<std::byte>> gatherv_bytes(
      std::vector<std::byte> mine, int root);
  [[nodiscard]] std::vector<std::byte> scatter_bytes(
      const std::vector<std::byte>& all, std::size_t per_bytes, int root);
  [[nodiscard]] std::vector<std::vector<std::byte>> alltoallv_bytes(
      const std::vector<std::vector<std::byte>>& per_dest);

  template <typename T>
  static std::vector<std::byte> vector_to_bytes(std::span<const T> v) {
    std::vector<std::byte> raw(v.size_bytes());
    if (!raw.empty()) std::memcpy(raw.data(), v.data(), raw.size());
    return raw;
  }

  template <typename T>
  static std::vector<T> bytes_to_vector(const std::vector<std::byte>& raw) {
    DASSA_CHECK(raw.size() % sizeof(T) == 0,
                "received payload size is not a multiple of element size");
    std::vector<T> v(raw.size() / sizeof(T));
    if (!v.empty()) std::memcpy(v.data(), raw.data(), raw.size());
    return v;
  }

  detail::World* world_;
  int world_rank_;          ///< this rank's id in the world
  int rank_;                ///< this rank's id in THIS communicator
  std::vector<int> group_;  ///< member world ranks (empty = world comm)
  std::int64_t context_ = 0;
  int split_epoch_ = 0;  ///< per-communicator split() call counter
  CommStats stats_;
};

}  // namespace dassa::mpi
