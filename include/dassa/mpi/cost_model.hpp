// MiniMPI: alpha-beta communication cost model.
//
// The paper's communication-avoiding argument (Section IV-B) is a
// counting argument about collectives on a large machine. On this
// reproduction's single-node substrate, real wall time cannot expose a
// cluster-scale broadcast bottleneck, so every MiniMPI message also
// charges a modeled cost under the standard alpha-beta model:
//
//     t(message) = alpha + bytes / beta
//
// where alpha is the per-message latency and beta the link bandwidth.
// Each rank accumulates the modeled cost of the messages it sends and
// receives; benches report the maximum over ranks (the communication
// critical path under a node-congestion model).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dassa::mpi {

/// Parameters of the alpha-beta model. Defaults approximate a
/// Cray-Aries-class interconnect (~1.3 us latency, ~10 GB/s per link),
/// matching the Cori system used in the paper's evaluation.
struct CostParams {
  double alpha_seconds = 1.3e-6;
  double beta_bytes_per_second = 10.0e9;

  [[nodiscard]] double message_cost(std::size_t bytes) const {
    return alpha_seconds +
           static_cast<double>(bytes) / beta_bytes_per_second;
  }
};

/// Per-rank communication statistics, accumulated by Comm.
struct CommStats {
  std::uint64_t p2p_sends = 0;
  std::uint64_t p2p_recvs = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  double modeled_seconds = 0.0;

  void merge(const CommStats& other) {
    p2p_sends += other.p2p_sends;
    p2p_recvs += other.p2p_recvs;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    if (other.modeled_seconds > modeled_seconds) {
      modeled_seconds = other.modeled_seconds;  // critical path: max
    }
  }
};

}  // namespace dassa::mpi
