// MiniMPI: runtime that launches a world of thread-backed ranks.
//
// Runtime::run(p, fn) is this reproduction's `mpirun -np p`: it spawns
// p rank threads, hands each a Comm bound to its rank, runs `fn` on
// every rank, joins, and returns the per-rank communication statistics.
// Exceptions thrown by any rank abort the world and are rethrown on the
// caller (first one wins), so test failures inside ranks surface
// normally.
#pragma once

#include <functional>
#include <vector>

#include "dassa/mpi/comm.hpp"
#include "dassa/mpi/cost_model.hpp"

namespace dassa::mpi {

/// Result of one world execution.
struct RunReport {
  /// Statistics per rank, indexed by rank.
  std::vector<CommStats> per_rank;

  /// Aggregate view: total messages/bytes, max modeled seconds.
  [[nodiscard]] CommStats aggregate() const {
    CommStats total;
    for (const auto& s : per_rank) total.merge(s);
    return total;
  }
};

class Runtime {
 public:
  /// Run `fn` on `world_size` ranks with default cost parameters.
  static RunReport run(int world_size,
                       const std::function<void(Comm&)>& fn);

  /// Run with explicit alpha-beta cost parameters.
  static RunReport run(int world_size, const CostParams& params,
                       const std::function<void(Comm&)>& fn);
};

}  // namespace dassa::mpi
