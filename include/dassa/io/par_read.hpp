// DASS: parallel read strategies for concatenated DAS data
// (paper Section IV-B and Fig. 5).
//
// The access pattern both strategies serve is the typical one for DAS
// analysis: p ranks each need their own channel block of the *entire*
// time range, which is scattered over the n member files of a VCA.
//
//  * collective-per-file (Fig. 5a): ranks process files one at a time;
//    for each file one aggregator rank reads it whole and broadcasts it
//    to everyone ("merge-read-broadcast"). O(n) reads, O(n) broadcasts
//    -- the broadcast per file is the scaling bottleneck the paper
//    identifies.
//
//  * communication-avoiding (Fig. 5b): files are assigned round-robin;
//    each rank reads its own files whole (one contiguous I/O call per
//    file), then a single all-to-all exchange routes every channel
//    block to its owner. O(n) reads, and each rank participates in only
//    O(p) pairwise exchanges carrying its O(n/p) file shares.
//
//  * RCA direct: the reference case of reading a physically merged
//    file, one contiguous read per rank.
//
// Each function runs inside a MiniMPI rank. Storage latency/bandwidth
// is additionally charged to the rank's modeled time under IoCostParams
// so cluster-scale behaviour is visible on the single-node substrate.
#pragma once

#include <string>
#include <vector>

#include "dassa/common/shape.hpp"
#include "dassa/io/vca.hpp"
#include "dassa/mpi/comm.hpp"

namespace dassa::io {

/// Storage cost model charged per I/O call: a fixed per-call latency
/// (file open + request round trip on a parallel file system) plus a
/// bandwidth term. Defaults approximate a disk-based Lustre target.
struct IoCostParams {
  double call_latency_seconds = 2.0e-3;
  double bandwidth_bytes_per_second = 1.0e9;

  /// Extra per-call latency charged for each *other* rank concurrently
  /// reading a disjoint offset of the same file. Models the seek/OST
  /// contention disk-based parallel file systems exhibit when many
  /// processes stride into one shared file (the contention the paper
  /// cites via its refs [12], [14]); whole-file reads of distinct
  /// files do not pay it.
  double shared_file_seek_seconds = 0.5e-3;

  /// Total bandwidth of the storage system across all concurrent
  /// readers -- the paper's "fixed number of disk-based storage
  /// targets in its Lustre file system": once enough ranks read at
  /// once, they split this pool, and I/O parallel efficiency decays
  /// (paper Section VI-E). Default approximates a mid-size Lustre
  /// scratch.
  double aggregate_bandwidth_bytes_per_second = 100.0e9;

  /// Per-rank effective bandwidth when `concurrent` ranks read at once.
  [[nodiscard]] double effective_bandwidth(int concurrent) const {
    const double share = aggregate_bandwidth_bytes_per_second /
                         static_cast<double>(std::max(1, concurrent));
    return share < bandwidth_bytes_per_second ? share
                                              : bandwidth_bytes_per_second;
  }

  [[nodiscard]] double call_cost(std::size_t bytes,
                                 int concurrent = 1) const {
    return call_latency_seconds +
           static_cast<double>(bytes) / effective_bandwidth(concurrent);
  }

  [[nodiscard]] double shared_call_cost(std::size_t bytes,
                                        int concurrent_readers) const {
    return call_cost(bytes, concurrent_readers) +
           shared_file_seek_seconds *
               static_cast<double>(concurrent_readers > 0
                                       ? concurrent_readers - 1
                                       : 0);
  }
};

/// One rank's share of a parallel read: its channel block over the full
/// concatenated time range.
struct ParallelReadResult {
  Range rows;        ///< [begin, end) channel rows owned by this rank
  Shape2D shape;     ///< rows.size() x total time samples
  std::vector<double> data;  ///< row-major block
};

/// Fig. 5a: all ranks share each file; one aggregator read + one
/// broadcast per file.
[[nodiscard]] ParallelReadResult read_vca_collective_per_file(
    mpi::Comm& comm, const Vca& vca, const IoCostParams& io = {});

/// Fig. 5b: round-robin independent whole-file reads + one all-to-all.
[[nodiscard]] ParallelReadResult read_vca_comm_avoiding(
    mpi::Comm& comm, const Vca& vca, const IoCostParams& io = {});

/// Reference: read a channel block straight out of a physically merged
/// (RCA) DASH5 file.
[[nodiscard]] ParallelReadResult read_rca_direct(mpi::Comm& comm,
                                                 const std::string& rca_path,
                                                 const IoCostParams& io = {});

/// The original-ArrayUDF access pattern (paper Sections IV-B and V-B):
/// every rank reads its own channel block from every member file
/// directly, with no communication -- O(p * n) I/O requests in total.
/// This is the IOPS pressure HAEE's one-rank-per-node layout reduces.
[[nodiscard]] ParallelReadResult read_vca_direct_per_rank(
    mpi::Comm& comm, const Vca& vca, const IoCostParams& io = {});

}  // namespace dassa::io
