// DASS: parallel physical concatenation (RCA build) into DASH5 v3.
//
// The serial RCA builders in vca.hpp stream the whole merged array
// through one writer, so building a day of acquisition files is bound
// by one core's encode bandwidth. parallel_repack() distributes the
// same job over MiniMPI ranks: the chunk grid of the output is
// partitioned into contiguous ranges, every rank reads and encodes
// only its own chunks (through the VCA, so any mix of v2 and v3
// members works), one allgather of compressed sizes turns local
// payloads into disjoint file extents, and each rank lands its whole
// range with a single positioned write. Rank 0 contributes the
// prelude/header and the merged chunk-index footer.
//
// The output is byte-identical to what dash5_write() produces for the
// merged array with the same header — the repack tests assert this
// file-for-file — so readers cannot tell how many ranks built a file.
// Per-rank work is O(n/p) source bytes plus O(chunks) index metadata;
// the only full-size serial step is rank 0's footer write, which is
// ~29 bytes per chunk, not per sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dassa/common/shape.hpp"
#include "dassa/io/codec.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/mpi/comm.hpp"

namespace dassa::io {

struct RepackOptions {
  /// Codec chain of the output (must be non-empty: the parallel engine
  /// targets v3 chunked files; use rca_create_streaming for plain v2).
  CodecSpec codec;
  /// Chunk shape of the output grid.
  ChunkShape chunk{32, 1024};
  /// Tiles encoded per io_pool batch within one rank. Bounds a rank's
  /// decoded-tile staging memory at batch x chunk size.
  std::size_t encode_batch = 16;
};

/// What one parallel_repack() run did, for logs and tests. Valid on
/// every rank (the per-rank vectors are allgathered).
struct RepackReport {
  Shape2D shape;                 ///< merged output shape
  std::size_t n_chunks = 0;      ///< output chunk count
  std::uint64_t out_bytes = 0;   ///< final output file size
  std::uint64_t index_bytes = 0; ///< footer size (index + tail)
  double seconds = 0.0;          ///< wall time of this rank's call
  /// Raw element bytes each rank pulled from member files (the O(n/p)
  /// evidence: max over ranks ~ total / p for a balanced grid).
  std::vector<std::uint64_t> rank_source_bytes;
  /// Chunks each rank encoded.
  std::vector<std::uint64_t> rank_chunks;
};

/// Collectively concatenate `inputs` (in time order) into one DASH5 v3
/// file at `out_path`. All ranks of `comm` must call this; every rank
/// sees the same `inputs` and options. Members may mix v2 and v3 and
/// irregular column counts; rows must agree (VCA invariant).
RepackReport parallel_repack(mpi::Comm& comm,
                             const std::vector<std::string>& inputs,
                             const std::string& out_path,
                             const RepackOptions& opts);

/// Convenience wrapper: spin up a MiniMPI world of `ranks` ranks and
/// run the collective repack inside it. Returns rank 0's report.
RepackReport parallel_repack(const std::vector<std::string>& inputs,
                             const std::string& out_path,
                             const RepackOptions& opts, int ranks);

}  // namespace dassa::io
