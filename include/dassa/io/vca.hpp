// DASS: Virtually Concatenated Array (VCA) and Real Concatenated Array
// (RCA), paper Section IV.
//
// A VCA merges DAS files recorded at contiguous times into one logical
// [channel, time] array *without copying data*: it stores only member
// metadata (path + shape), so construction touches headers only and is
// orders of magnitude cheaper than physically concatenating (paper
// Fig. 6 reports ~70,000x). The price is that reads must be resolved
// onto the member files -- which is what the communication-avoiding
// parallel reader (par_read.hpp) optimises.
//
// An RCA is the physical merge: every member's data is read and
// rewritten into one DASH5 file (paper Table I: 100% extra space, high
// construction overhead, but plain parallel I/O afterwards).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dassa/common/shape.hpp"
#include "dassa/io/array_source.hpp"
#include "dassa/io/dash5.hpp"

namespace dassa::io {

/// One member file of a VCA.
struct VcaMember {
  std::string path;
  Shape2D shape;
  friend bool operator==(const VcaMember&, const VcaMember&) = default;
};

/// A piece of a VCA selection mapped onto one member file.
struct VcaPiece {
  std::size_t member = 0;  ///< index into members()
  Slab2D slab;             ///< selection within the member file
  std::size_t col_dst = 0; ///< destination column in the VCA-local result
};

class Vca final : public ArraySource {
 public:
  /// An empty VCA placeholder; assign a built/loaded VCA before use.
  Vca() = default;

  /// Build from member files in concatenation (time) order. Reads only
  /// each file's header; all members must have the same channel count.
  /// The VCA's global metadata is taken from the first member.
  [[nodiscard]] static Vca build(const std::vector<std::string>& files);

  /// Persist to / load from a .vca logical file (metadata only).
  void save(const std::string& path) const;
  [[nodiscard]] static Vca load(const std::string& path);

  /// Atomic index rewrite: save to `path + ".tmp"` and rename over
  /// `path`, so a concurrent load(path) sees either the previous or the
  /// new index, never a torn write. This is how the streaming ingest
  /// daemon republishes its live VCA after every admitted file.
  void save_atomic(const std::string& path) const;

  /// Append one member file to the back of the concatenation (reads
  /// its header only). Already-open member handles are preserved, so a
  /// long-lived live VCA keeps its decoded-chunk cache identity across
  /// appends. On an empty VCA this behaves like build({path}).
  /// Throws InvalidArgument if the channel count differs from the
  /// existing members'.
  void append_member(const std::string& path);

  [[nodiscard]] Shape2D shape() const override { return shape_; }
  [[nodiscard]] const std::vector<VcaMember>& members() const {
    return members_;
  }
  [[nodiscard]] const KvList& global_meta() const { return global_; }

  /// First column of member i in the concatenated coordinate system.
  [[nodiscard]] std::size_t member_col_start(std::size_t i) const {
    return col_starts_[i];
  }

  /// Map a VCA-coordinate selection to per-member pieces (binary search
  /// over member extents).
  [[nodiscard]] std::vector<VcaPiece> resolve(const Slab2D& slab) const;

  /// Sequential read: resolve and read each piece from its member file.
  /// Member handles are opened lazily on first use and kept for the
  /// VCA's lifetime, so repeated reads skip per-call header parsing
  /// and keep their decoded-chunk cache identity (v3 members).
  [[nodiscard]] std::vector<double> read_slab(
      const Slab2D& slab) const override;

 private:
  void finalize();  // compute shape_ and col_starts_ from members_
  [[nodiscard]] Dash5File& member_file(std::size_t i) const;

  // Lazily opened member handles, shared across copies of this VCA
  // (handles are read-only; Dash5File serialises its own I/O).
  struct MemberFiles;

  std::vector<VcaMember> members_;
  std::vector<std::size_t> col_starts_;  // per member, plus total at end
  Shape2D shape_;
  KvList global_;
  mutable std::shared_ptr<MemberFiles> handles_;
};

/// Statistics from building an RCA.
struct RcaBuildStats {
  double seconds = 0.0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

/// Physically concatenate `files` (in time order) into a single DASH5
/// file at `out_path`. Global metadata and channel objects are copied
/// from the first member. Stages the whole merged array in memory.
RcaBuildStats rca_create(const std::vector<std::string>& files,
                         const std::string& out_path);

/// Memory-bounded RCA creation: processes `rows_per_block` channels at
/// a time (reading the matching slab of every member, appending the
/// assembled rows through a streaming writer), so peak memory is
/// O(rows_per_block x total_time) instead of the full merged array.
RcaBuildStats rca_create_streaming(const std::vector<std::string>& files,
                                   const std::string& out_path,
                                   std::size_t rows_per_block = 64);

}  // namespace dassa::io
