// DASS: ArraySource adapter over a single DASH5 file.
#pragma once

#include <string>

#include "dassa/io/array_source.hpp"
#include "dassa/io/dash5.hpp"

namespace dassa::io {

/// Exposes one DASH5 file as an ArraySource, so single files, VCAs and
/// LAVs are interchangeable analysis inputs.
class Dash5Source final : public ArraySource {
 public:
  explicit Dash5Source(const std::string& path) : file_(path) {}

  [[nodiscard]] Shape2D shape() const override { return file_.shape(); }

  [[nodiscard]] std::vector<double> read_slab(
      const Slab2D& slab) const override {
    return file_.read_slab(slab);
  }

  [[nodiscard]] Dash5File& file() { return file_; }

 private:
  Dash5File file_;
};

}  // namespace dassa::io
