// DASS: abstract random-access 2D array sources.
//
// DASSA's analysis engine consumes its input through this interface,
// so a plain DASH5 file, a virtually concatenated array (VCA), and a
// logical array view (LAV) are interchangeable inputs -- the
// composability shown in paper Fig. 3.
#pragma once

#include <memory>
#include <vector>

#include "dassa/common/shape.hpp"

namespace dassa::io {

/// A readable dense 2D double array.
///
/// Reading is `const`: a source's observable state (shape, metadata,
/// the data it serves) never changes across reads. Implementations that
/// keep a file cursor treat it as non-observable state (see Dash5File).
class ArraySource {
 public:
  virtual ~ArraySource() = default;

  [[nodiscard]] virtual Shape2D shape() const = 0;

  /// Read a rectangular selection (row-major, slab.size() elements).
  [[nodiscard]] virtual std::vector<double> read_slab(
      const Slab2D& slab) const = 0;

  /// Read everything.
  [[nodiscard]] std::vector<double> read_all() const {
    return read_slab(Slab2D::whole(shape()));
  }
};

/// Logical Array View: a rectangular window onto another source (the
/// paper's LAV / HDF5-hyperslab analogue). Views compose: an LAV of an
/// LAV re-offsets into the ultimate source.
class Lav final : public ArraySource {
 public:
  Lav(std::shared_ptr<ArraySource> source, const Slab2D& window)
      : source_(std::move(source)), window_(window) {
    DASSA_CHECK(source_ != nullptr, "LAV requires a source");
    window_.validate_against(source_->shape());
  }

  [[nodiscard]] Shape2D shape() const override { return window_.shape(); }

  [[nodiscard]] std::vector<double> read_slab(
      const Slab2D& slab) const override {
    slab.validate_against(shape());
    const Slab2D absolute{window_.row_off + slab.row_off,
                          window_.col_off + slab.col_off, slab.row_cnt,
                          slab.col_cnt};
    return source_->read_slab(absolute);
  }

  [[nodiscard]] const Slab2D& window() const { return window_; }

 private:
  std::shared_ptr<ArraySource> source_;
  Slab2D window_;
};

/// An in-memory array exposed as a source (used by tests and by
/// pipelines that stage intermediate results).
class MemorySource final : public ArraySource {
 public:
  MemorySource(Shape2D shape, std::vector<double> data)
      : shape_(shape), data_(std::move(data)) {
    DASSA_CHECK(data_.size() == shape_.size(),
                "memory source data does not match shape");
  }

  [[nodiscard]] Shape2D shape() const override { return shape_; }

  [[nodiscard]] std::vector<double> read_slab(
      const Slab2D& slab) const override {
    slab.validate_against(shape_);
    std::vector<double> out(slab.size());
    for (std::size_t r = 0; r < slab.row_cnt; ++r) {
      const double* src =
          data_.data() + shape_.at(slab.row_off + r, slab.col_off);
      std::copy(src, src + slab.col_cnt, out.data() + r * slab.col_cnt);
    }
    return out;
  }

 private:
  Shape2D shape_;
  std::vector<double> data_;
};

}  // namespace dassa::io
