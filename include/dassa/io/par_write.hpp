// DASS: distributed parallel write of one DASH5 output array.
//
// The paper's pipelines "write the output as a single and big array"
// (Section VI-C), with identical cost under both engines because every
// rank writes only its own channel block. Implementation: rank 0 lays
// down the header and pre-extends the file to its final size; after
// that is broadcast, every rank patches its row block into the data
// region with one contiguous positioned write.
#pragma once

#include <span>
#include <string>

#include "dassa/common/shape.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/par_read.hpp"
#include "dassa/mpi/comm.hpp"

namespace dassa::io {

/// Collectively write a distributed 2D array. `header.shape` is the
/// global shape; `rows` is this rank's owned global row range and
/// `block` its rows.size() x shape.cols row-major data. Ranks may own
/// empty ranges. All ranks must call this (it contains collective
/// operations).
void write_dash5_distributed(mpi::Comm& comm, const std::string& path,
                             const Dash5Header& header, const Range& rows,
                             std::span<const double> block,
                             const IoCostParams& io = {});

}  // namespace dassa::io
