// DASS low-level file layer with instrumentation.
//
// Every byte DASSA reads or writes flows through this layer, which
// charges the global counter registry (io.read_calls, io.read_bytes,
// io.opens, io.seeks, ...). The paper's IOPS-pressure arguments
// (Sections IV-B, V-B, VI-C) are reproduced from these counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace dassa::io {

/// Counted read-only binary file.
class InputFile {
 public:
  explicit InputFile(const std::string& path);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t size() const { return size_; }

  /// Read exactly `n` bytes at absolute offset `off` into `dst`.
  /// Counts one read call (plus a seek when `off` differs from the
  /// current position); throws IoError on short reads.
  void read_at(std::uint64_t off, void* dst, std::size_t n);

  /// Read `n` bytes at `off` into a fresh buffer.
  [[nodiscard]] std::vector<std::byte> read_vec(std::uint64_t off,
                                                std::size_t n);

 private:
  std::string path_;
  std::ifstream stream_;
  std::uint64_t size_ = 0;
  std::uint64_t pos_ = 0;
};

/// Counted write-only binary file (truncates on open).
class OutputFile {
 public:
  enum class Mode {
    kTruncate,  ///< create/replace (default)
    kUpdate,    ///< open existing file for in-place writes (parallel
                ///< writers each patching their own disjoint region)
  };

  explicit OutputFile(const std::string& path,
                      Mode mode = Mode::kTruncate);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t position() const { return pos_; }

  /// Append `n` bytes; counts one write call.
  void write(const void* src, std::size_t n);

  /// Overwrite `n` bytes at absolute offset `off` (used to back-patch
  /// headers); counts one write call and one seek.
  void write_at(std::uint64_t off, const void* src, std::size_t n);

  /// Flush and close; subsequent writes are invalid.
  void close();

 private:
  std::string path_;
  std::ofstream stream_;
  std::uint64_t pos_ = 0;
};

}  // namespace dassa::io
