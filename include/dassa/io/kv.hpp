// DASS metadata model: ordered key-value lists.
//
// The paper's metadata structure (Fig. 4) is a two-level KV hierarchy:
// a global KV list (sampling frequency, spatial resolution, timestamp,
// number of channels, ...) plus one KV list per channel object. KvList
// is that building block; DASH5 serialises one global list and one list
// per object.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dassa/common/error.hpp"

namespace dassa::io {

/// Ordered list of string key-value pairs with typed accessors.
/// Insertion order is preserved (metadata round-trips byte-identically);
/// lookup is linear, which is fine for the tens of keys DAS files carry.
class KvList {
 public:
  void set(std::string key, std::string value);
  void set_i64(const std::string& key, std::int64_t value);
  void set_f64(const std::string& key, double value);

  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;
  [[nodiscard]] std::string get_or_throw(std::string_view key) const;
  [[nodiscard]] std::int64_t get_i64(std::string_view key) const;
  [[nodiscard]] double get_f64(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  items() const {
    return items_;
  }

  friend bool operator==(const KvList&, const KvList&) = default;

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

/// Canonical global-metadata keys written by the DAS data generator and
/// consumed by das_search (paper Fig. 4 shows the same fields).
namespace meta {
inline constexpr const char* kSamplingFrequencyHz = "SamplingFrequency(HZ)";
inline constexpr const char* kSpatialResolutionM = "SpatialResolution(m)";
inline constexpr const char* kTimeStamp = "TimeStamp(yymmddhhmmss)";
inline constexpr const char* kNumObjects = "Number of objects";
}  // namespace meta

}  // namespace dassa::io
