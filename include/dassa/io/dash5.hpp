// DASS storage engine: the DASH5 container format.
//
// DASH5 is this reproduction's stand-in for HDF5 (see DESIGN.md): a
// self-describing single-file container holding
//   * a global key-value metadata list,
//   * a key-value metadata list per channel object,
//   * one dense row-major 2D dataset [channel, time],
// mirroring the hierarchical structure the paper stores in HDF5
// (Fig. 4). Headers are CRC-checked; datasets may be stored as float64
// or float32 and are always read back as double. All reads and writes
// flow through the counted file layer, so benches can report exact I/O
// call counts.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dassa/common/shape.hpp"
#include "dassa/common/sync.hpp"
#include "dassa/io/codec.hpp"
#include "dassa/io/file_io.hpp"
#include "dassa/io/kv.hpp"

namespace dassa::io {

/// On-disk element type of a DASH5 dataset.
enum class DType : std::uint8_t { kF64 = 0, kF32 = 1 };

[[nodiscard]] std::size_t dtype_size(DType t);

/// On-disk arrangement of the dataset (mirrors HDF5's contiguous vs
/// chunked layouts).
enum class Layout : std::uint8_t {
  kContiguous = 0,  ///< one dense row-major blob
  kChunked = 1,     ///< dense tiles of chunk_rows x chunk_cols, stored
                    ///< in chunk-grid row-major order; edge tiles are
                    ///< zero-padded to full size
};

/// Chunk tile extents (meaningful only under Layout::kChunked).
struct ChunkShape {
  std::size_t rows = 0;
  std::size_t cols = 0;
  friend bool operator==(const ChunkShape&, const ChunkShape&) = default;
};

/// Metadata of one channel object (paper Fig. 4: "/Measurement/<i>").
struct ObjectMeta {
  std::string path;
  KvList kv;
  friend bool operator==(const ObjectMeta&, const ObjectMeta&) = default;
};

/// Everything in a DASH5 file except the data blob.
struct Dash5Header {
  KvList global;
  std::vector<ObjectMeta> objects;
  DType dtype = DType::kF64;
  Shape2D shape;
  Layout layout = Layout::kContiguous;
  ChunkShape chunk;  ///< used when layout == kChunked
  /// Per-chunk compression chain. Empty = uncompressed: the writer
  /// emits a plain v2 file. Non-empty requires the chunked layout and
  /// produces a v3 file with a chunk index footer (docs/FORMAT.md).
  CodecSpec codec;
};

/// One entry of the DASH5 v3 chunk index (chunk-grid row-major).
struct ChunkIndexEntry {
  std::uint64_t offset = 0;    ///< absolute file offset of stored bytes
  std::uint64_t csize = 0;     ///< stored (possibly compressed) size
  std::uint64_t raw_size = 0;  ///< decoded size: chunk_elems * esize
  std::uint32_t crc = 0;       ///< CRC-32 of the stored bytes
  std::uint8_t codec = 0;      ///< 0 = stored raw, 1 = file codec chain
};

/// Write a complete DASH5 file in one shot.
/// `data` is row-major [shape.rows x shape.cols] and is converted to
/// `dtype` on disk.
void dash5_write(const std::string& path, const Dash5Header& header,
                 std::span<const double> data);

/// Incremental DASH5 writer: the header (with the final shape) is
/// written up front, then dataset elements are appended in row-major
/// order across any number of calls. Lets large merges (streaming RCA
/// creation) run in bounded memory instead of staging the whole merged
/// array.
///
/// With an empty header codec the output is a plain contiguous v2 file
/// (the chunked layout stays refused, as the tile order cannot be
/// produced from a row-major stream without buffering). With a codec
/// chain the layout must be chunked: rows are buffered into whole
/// chunk-row bands, each band is tiled and compressed in parallel when
/// full, and close() appends the v3 chunk index footer — memory stays
/// bounded by one band.
class Dash5StreamWriter {
 public:
  Dash5StreamWriter(const std::string& path, const Dash5Header& header);

  /// Append the next `data.size()` row-major elements; converted to the
  /// header's dtype on the fly.
  void append(std::span<const double> data);

  /// Number of elements appended so far.
  [[nodiscard]] std::size_t written() const { return written_; }

  /// Flush and close; throws StateError unless exactly shape.size()
  /// elements were appended.
  void close();

 private:
  void flush_band();

  OutputFile out_;
  Dash5Header header_;
  std::size_t expected_;
  std::size_t written_ = 0;
  bool closed_ = false;
  // v3 band state (used only when header_.codec is non-empty).
  std::vector<double> band_;  ///< chunk.rows x shape.cols staging rows
  std::size_t band_fill_ = 0;
  std::uint64_t cursor_ = 0;  ///< absolute offset of the next chunk
  std::vector<ChunkIndexEntry> index_;
};

/// Read-only handle on a DASH5 file. Opening parses and CRC-verifies
/// the header only; dataset bytes are read on demand.
class Dash5File {
 public:
  explicit Dash5File(const std::string& path);
  ~Dash5File();

  // Holds a mutex and registers with the global chunk cache under a
  // per-instance identity, so the handle is pinned in place.
  Dash5File(const Dash5File&) = delete;
  Dash5File& operator=(const Dash5File&) = delete;

  [[nodiscard]] const std::string& path() const { return file_.path(); }
  [[nodiscard]] const KvList& global_meta() const { return header_.global; }
  [[nodiscard]] const std::vector<ObjectMeta>& objects() const {
    return header_.objects;
  }
  [[nodiscard]] DType dtype() const { return header_.dtype; }
  [[nodiscard]] Shape2D shape() const { return header_.shape; }
  [[nodiscard]] Layout layout() const { return header_.layout; }
  [[nodiscard]] ChunkShape chunk() const { return header_.chunk; }
  /// Container format version: 2 (plain) or 3 (compressed chunks).
  [[nodiscard]] std::uint8_t version() const { return version_; }
  /// Per-chunk codec chain; empty for v2 files.
  [[nodiscard]] const CodecSpec& codec() const { return header_.codec; }
  /// v3 chunk index in chunk-grid row-major order; empty for v2 files.
  [[nodiscard]] const std::vector<ChunkIndexEntry>& chunk_index() const {
    return index_;
  }

  /// Read the whole dataset with a single I/O call.
  [[nodiscard]] std::vector<double> read_all() const;

  /// Read a rectangular selection. Full-width row blocks are served
  /// with one contiguous read; partial-width selections fall back to
  /// one read per row (each counted, which is exactly the small-I/O
  /// amplification the paper's VCA discussion is about).
  /// Reads are `const`: only the (non-observable) file cursor moves.
  [[nodiscard]] std::vector<double> read_slab(const Slab2D& slab) const;

  /// Parse only the header of `path` (used by VCA construction, which
  /// must never touch data bytes).
  [[nodiscard]] static Dash5Header read_header(const std::string& path);

  /// Process-global toggle for the stride-detecting readahead
  /// prefetcher (default on). Tests turn it off so io.cache.* counters
  /// become exact functions of the access pattern.
  static void set_readahead(bool on);
  [[nodiscard]] static bool readahead_enabled();

  /// Block until every in-flight prefetch task for this file has
  /// completed (no-op for v2 files). Between this call and the next
  /// read, the cache contents are deterministic.
  void drain_prefetch() const;

 private:
  // The stream cursor is physical state, not logical state: two
  // identical reads return identical bytes regardless of cursor
  // position, so const reads may move it.
  mutable InputFile file_;
  Dash5Header header_;
  std::uint64_t data_offset_ = 0;
  std::uint8_t version_ = 2;

  // v3 state: chunk index, cache identity, and the readahead
  // prefetcher. file_ is shared between caller reads and background
  // prefetch tasks, hence the I/O mutex. file_ itself carries no
  // DASSA_GUARDED_BY: the constructor populates it before any
  // concurrency exists, and path() reads an immutable field -- only
  // cursor-moving reads (read_at/read_vec) need io_mu_, which the
  // annotated call sites enforce. Prefetch internals live in the .cpp
  // (Prefetch is opaque here).
  std::vector<ChunkIndexEntry> index_;
  std::uint64_t file_id_ = 0;
  mutable Mutex io_mu_;
  struct Prefetch;
  std::unique_ptr<Prefetch> prefetch_;

  void decode_elems(const std::vector<std::byte>& raw, std::size_t count,
                    double* out) const;
  void parse_chunk_index();
  [[nodiscard]] std::vector<double> decode_chunk(
      std::size_t chunk_idx, std::span<const std::byte> stored) const;
  [[nodiscard]] std::shared_ptr<const std::vector<double>> load_tile(
      std::size_t gi, std::size_t gj) const;
  [[nodiscard]] std::vector<double> read_slab_v3(const Slab2D& slab) const;
  void maybe_prefetch(std::size_t gi_lo, std::size_t gi_hi, std::size_t gj_lo,
                      std::size_t gj_hi) const;
};

}  // namespace dassa::io
