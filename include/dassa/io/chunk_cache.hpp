// Sharded LRU cache of decoded DASH5 chunk tiles, plus the shared I/O
// thread pool that runs chunk compression, decompression, and
// readahead prefetch.
//
// Decoding a compressed chunk costs real CPU; repeated slab reads over
// the same region (VCA resolution, strided analysis windows, repack
// verification) hit the same tiles again and again. The cache keeps
// decoded tiles as immutable shared buffers keyed by
// (file_id, chunk_row, chunk_col), sharded to keep lock hold times
// short under concurrent readers, with byte-budget LRU eviction.
//
// file_id is a process-unique token minted per Dash5File instance
// (next_file_id()), not a path: a reopened or rewritten file gets a
// fresh id, so stale tiles can never be served. Closing a file erases
// its tiles eagerly via erase_file().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dassa/common/sync.hpp"

namespace dassa {
class ThreadPool;
}  // namespace dassa

namespace dassa::io {

/// Identity of one decoded chunk tile.
struct ChunkKey {
  std::uint64_t file_id = 0;
  std::size_t row = 0;  ///< chunk-grid row (not element row)
  std::size_t col = 0;  ///< chunk-grid column

  friend bool operator==(const ChunkKey&, const ChunkKey&) = default;
};

/// Decoded tile payload: chunk.rows * chunk.cols doubles (zero-padded
/// at grid edges, exactly as stored). Immutable once published —
/// readers share the buffer without copying.
using ChunkData = std::shared_ptr<const std::vector<double>>;

/// Sharded LRU cache with a global byte budget. All methods are
/// thread-safe; each operation takes exactly one shard lock.
class ChunkCache {
 public:
  /// `budget_bytes` caps the summed payload size; 0 disables caching
  /// entirely (get always misses, put is a no-op).
  explicit ChunkCache(std::size_t budget_bytes);

  /// Look up a tile; returns nullptr on miss. Charges io.cache.hits /
  /// io.cache.misses and refreshes LRU order on hit.
  [[nodiscard]] ChunkData get(const ChunkKey& key);

  /// Insert (or refresh) a tile, evicting least-recently-used entries
  /// until the shard fits its budget slice. Oversized tiles that can
  /// never fit are simply not cached.
  void put(const ChunkKey& key, ChunkData data);

  /// Drop every tile belonging to `file_id` (file closed or rewritten).
  void erase_file(std::uint64_t file_id);

  /// Drop everything and reset the byte count (budget unchanged).
  void clear();

  /// Change the budget; evicts immediately if shrinking.
  void set_budget(std::size_t budget_bytes);

  [[nodiscard]] std::size_t bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// The process-wide cache used by Dash5File. Default budget is
  /// kDefaultBudget; tests and tools resize it via set_budget().
  static ChunkCache& global();

  /// Mint a fresh file identity for a Dash5File instance.
  static std::uint64_t next_file_id();

  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kDefaultBudget = 256ull << 20;  // 256 MiB

 private:
  struct Entry {
    ChunkKey key;
    ChunkData data;
    std::size_t bytes = 0;
  };
  struct KeyHash {
    std::size_t operator()(const ChunkKey& k) const {
      std::uint64_t h = k.file_id * 0x9E3779B97F4A7C15ull;
      h ^= (static_cast<std::uint64_t>(k.row) + 0x9E3779B97F4A7C15ull +
            (h << 6) + (h >> 2));
      h ^= (static_cast<std::uint64_t>(k.col) + 0x9E3779B97F4A7C15ull +
            (h << 6) + (h >> 2));
      return static_cast<std::size_t>(h);
    }
  };
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru DASSA_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<ChunkKey, std::list<Entry>::iterator, KeyHash> index
        DASSA_GUARDED_BY(mu);
    std::size_t bytes DASSA_GUARDED_BY(mu) = 0;
  };

  Shard& shard_for(const ChunkKey& key);
  void evict_to_fit(Shard& shard, std::size_t slice)
      DASSA_REQUIRES(shard.mu);

  std::atomic<std::size_t> budget_;
  std::atomic<std::size_t> total_bytes_{0};
  Shard shards_[kShards];
};

/// Lazily created thread pool shared by chunk encode/decode and the
/// readahead prefetcher. Sized for I/O-adjacent CPU work (about half
/// the hardware threads, clamped to [2, 8]). Tasks submitted here must
/// be leaf work: never call io_pool().parallel_for() from inside an
/// io_pool() task.
ThreadPool& io_pool();

}  // namespace dassa::io
