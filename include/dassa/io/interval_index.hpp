// DASS storage: the persistent time-interval index (.tix sidecar).
//
// A .vca names its members in concatenation order but stores no time
// metadata, so a time-range query historically touched every member
// (open + header parse: O(n) in the member count). The sidecar index
// stores one *fence pointer* per member -- its [begin, end) time
// extent in epoch seconds plus its column extent in the concatenated
// coordinate system -- sorted by begin time. A range query is then a
// binary search for the first overlapping member followed by a scan of
// the k hits: O(log n + k) entry touches, counter-pinned
// (io.index.entry_touches) by tests/io/test_interval_index.cpp and the
// bench_serve index gate.
//
// The file rides next to its array as "<path>.tix" and is republished
// atomically by the same writers that publish the .vca: `das_search
// --save-vca`, the das_ingest live-VCA republish, and `das_repack
// --save-vca`. Times are raw int64 epoch seconds (seconds since
// 2000-01-01, das::Timestamp::epoch_seconds()): the io layer does not
// depend on the das timestamp type; das-side helpers convert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dassa/common/shape.hpp"

namespace dassa::io {

/// One member's fence pointer: its time extent and where its columns
/// land in the concatenated array.
struct IntervalEntry {
  std::int64_t begin_s = 0;  ///< inclusive, epoch seconds
  std::int64_t end_s = 0;    ///< exclusive, epoch seconds
  std::size_t member = 0;    ///< index into the VCA's members()
  std::size_t col_start = 0; ///< first column in VCA coordinates
  std::size_t cols = 0;      ///< member width
  friend bool operator==(const IntervalEntry&, const IntervalEntry&) = default;
};

/// Sorted fence-pointer index over the members of one concatenated
/// array. Immutable once built; writers publish a whole new sidecar
/// (save_atomic) the same way the live VCA republishes its .vca.
class IntervalIndex {
 public:
  IntervalIndex() = default;

  /// Build from entries (sorted internally by begin_s). Entries must
  /// have end_s > begin_s and, once sorted, non-decreasing end_s (true
  /// for contiguous acquisitions; nested intervals would break the
  /// fence-pointer binary search). Throws InvalidArgument otherwise.
  [[nodiscard]] static IntervalIndex build(std::vector<IntervalEntry> entries);

  /// Persist to / load from a .tix sidecar. load() treats the bytes as
  /// untrusted: bad magic, truncation, CRC mismatch, implausible entry
  /// counts, and unsorted or empty intervals all surface as
  /// dassa::FormatError naming the path.
  void save(const std::string& path) const;
  void save_atomic(const std::string& path) const;
  [[nodiscard]] static IntervalIndex load(const std::string& path);

  /// Entries whose time extent overlaps [begin_s, end_s). Charges
  /// io.index.entry_touches once per binary-search probe and once per
  /// scanned entry -- the counters the O(log n + k) pin reads.
  [[nodiscard]] std::vector<IntervalEntry> query(std::int64_t begin_s,
                                                 std::int64_t end_s) const;

  [[nodiscard]] const std::vector<IntervalEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Canonical sidecar location for an array index at `array_path`
  /// ("live.vca" -> "live.vca.tix").
  [[nodiscard]] static std::string sidecar_path(const std::string& array_path);

 private:
  std::vector<IntervalEntry> entries_;  // sorted by (begin_s, col_start)
};

}  // namespace dassa::io
