// DASS storage engine: the composable chunk codec pipeline.
//
// DASH5 v3 compresses each chunk tile independently through a chain of
// codec stages (docs/STORAGE.md). The stage set mirrors what works on
// real DAS traces (DASPack, arXiv:2507.16390): byte shuffle to group
// the low-entropy exponent/high-mantissa bytes of IEEE floats, a
// delta + zigzag + varint integer stage for fixed-point-like data, and
// a general LZ stage to squeeze the runs both produce. Stages compose:
// the file header names the chain, encode applies it left to right,
// decode inverts it right to left.
//
// Every decoder treats its input as attacker-controlled (chunk bytes
// come straight from disk): malformed streams must surface as
// dassa::FormatError, never out-of-bounds access, unbounded
// allocation, or a non-DASSA exception.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dassa/common/error.hpp"

namespace dassa::io {

/// Identifier of one codec stage, as stored in the DASH5 v3 header.
enum class CodecId : std::uint8_t {
  kNone = 0,     ///< identity (useful for testing the v3 machinery)
  kShuffle = 1,  ///< byte transpose across element lanes
  kDelta = 2,    ///< lane-wise delta + zigzag + varint
  kLz = 3,       ///< LZ77-style general stage (greedy, 64 KiB window)
};

/// One stage of the pipeline. Implementations are stateless and
/// thread-safe: the same instance encodes/decodes chunks concurrently
/// from thread-pool workers.
class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual CodecId id() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Encode `raw`; `elem_size` is the dataset element width (4 or 8),
  /// which lane-aware stages use as their stride.
  [[nodiscard]] virtual std::vector<std::byte> encode(
      std::span<const std::byte> raw, std::size_t elem_size) const = 0;

  /// Invert encode(). `max_decoded_size` is an upper bound on the
  /// output (derived from the chunk's raw size); size-changing stages
  /// carry their exact decoded size in-stream and must validate it
  /// against the bound. Exceeding it is a FormatError.
  [[nodiscard]] virtual std::vector<std::byte> decode(
      std::span<const std::byte> stored, std::size_t elem_size,
      std::size_t max_decoded_size) const = 0;
};

/// Process-wide stage registry. The built-in stages are registered on
/// first use; find() is lock-free after that and safe to call from
/// decode workers.
class CodecRegistry {
 public:
  /// The shared instance holding the built-in stages.
  static const CodecRegistry& instance();

  /// Stage for `id`, or nullptr if the id is unknown (callers parsing
  /// file bytes must map nullptr to FormatError).
  [[nodiscard]] const Codec* find(CodecId id) const;

  /// Stage by CLI/config name ("none", "shuffle", "delta", "lz"), or
  /// nullptr.
  [[nodiscard]] const Codec* find(const std::string& name) const;

 private:
  CodecRegistry();
  std::vector<const Codec*> stages_;
};

/// An ordered chain of codec stages — the per-file compression
/// configuration carried by Dash5Header. An empty chain means "no
/// codec": the writer emits a plain v2 file.
struct CodecSpec {
  std::vector<CodecId> chain;

  [[nodiscard]] bool empty() const { return chain.empty(); }

  /// "shuffle+lz" etc.; "none" for an empty chain.
  [[nodiscard]] std::string str() const;

  /// Parse "shuffle+lz" / "delta+lz" / "none". "none" yields an empty
  /// chain. Throws InvalidArgument on unknown stage names or chains
  /// longer than kMaxChain.
  [[nodiscard]] static CodecSpec parse(const std::string& text);

  /// Stages per chain the format (and sanity) allows.
  static constexpr std::size_t kMaxChain = 8;

  friend bool operator==(const CodecSpec&, const CodecSpec&) = default;
};

/// Apply `spec`'s stages in order to `raw`. Returns the encoded bytes
/// and charges the io.codec.* counters. `elem_size` must be 4 or 8.
[[nodiscard]] std::vector<std::byte> encode_chain(
    const CodecSpec& spec, std::span<const std::byte> raw,
    std::size_t elem_size);

/// Invert encode_chain(): decode `stored` back to exactly `raw_size`
/// bytes. Throws FormatError on any malformed stream (wrong size,
/// truncated varint, out-of-window LZ match, ...).
[[nodiscard]] std::vector<std::byte> decode_chain(
    const CodecSpec& spec, std::span<const std::byte> stored,
    std::size_t elem_size, std::size_t raw_size);

}  // namespace dassa::io
