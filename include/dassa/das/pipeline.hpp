// ChannelPipeline: a fluent builder for per-channel processing chains.
//
// The paper's future work asks for "an API in Python or even in MATLAB
// to enable interactive DAS data analysis". This builder is the C++
// composition layer such a binding would wrap: DasLib stages are
// chained by name, parameters are validated when a stage is added, and
// the built pipeline is an ordinary RowUdf, so it runs through HAEE
// like the hand-written case studies. The paper's Algorithm 3 becomes:
//
//   auto udf = ChannelPipeline(500.0)
//                  .detrend()
//                  .bandpass(3, 1.0, 45.0)
//                  .resample(1, 2)
//                  .correlate_with_master(master_spectrum);
//
// Pipelines are immutable once built and thread-safe (all stage state
// is computed at build time and only read afterwards).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dassa/core/apply.hpp"
#include "dassa/dsp/fft.hpp"

namespace dassa::das {

class ChannelPipeline {
 public:
  /// A stage maps one channel's samples to processed samples.
  using Stage = std::function<std::vector<double>(std::vector<double>)>;

  /// `sampling_hz` anchors all frequency parameters (band edges are
  /// given in Hz, not Nyquist fractions).
  explicit ChannelPipeline(double sampling_hz);

  // ---- stages (each returns *this for chaining) -----------------------
  ChannelPipeline& detrend();                       ///< Das_detrend
  ChannelPipeline& demean();
  ChannelPipeline& despike(std::size_t half, double k_mad);
  ChannelPipeline& taper(double alpha);             ///< Tukey window
  ChannelPipeline& bandpass(int order, double lo_hz, double hi_hz);
  ChannelPipeline& lowpass(int order, double cut_hz);
  ChannelPipeline& highpass(int order, double cut_hz);
  ChannelPipeline& resample(std::size_t up, std::size_t down);
  ChannelPipeline& whiten(std::size_t smooth_bins);
  ChannelPipeline& one_bit();
  ChannelPipeline& envelope();
  ChannelPipeline& custom(std::string name, Stage stage);

  // ---- execution -------------------------------------------------------
  /// Apply the chain to one channel.
  [[nodiscard]] std::vector<double> run(std::vector<double> x) const;

  /// The chain as a RowUdf producing the processed time series.
  [[nodiscard]] core::RowUdf build() const;

  /// The chain followed by Das_abscorr against a master spectrum
  /// (Algorithm 3's terminal step). The master must have been produced
  /// by the SAME chain + FFT for the lengths to match.
  [[nodiscard]] core::RowUdf correlate_with_master(
      std::vector<dsp::cplx> master_spectrum) const;

  /// The chain's output after FFT, for preparing master spectra.
  [[nodiscard]] std::vector<dsp::cplx> spectrum(
      std::vector<double> x) const;

  /// The effective sampling rate after all resample stages so far.
  [[nodiscard]] double current_sampling_hz() const { return sampling_hz_; }

  /// Stage names in order, for logging/introspection.
  [[nodiscard]] std::vector<std::string> stage_names() const;

 private:
  void add(std::string name, Stage stage);
  void check_band_edge(double hz) const;

  double sampling_hz_;
  // Shared so built RowUdfs stay valid after the builder goes away.
  std::shared_ptr<std::vector<std::pair<std::string, Stage>>> stages_;
};

}  // namespace dassa::das
