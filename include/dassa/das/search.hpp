// DAS domain: file search (the das_search tool, paper Section IV-A).
//
// DAS acquisitions scatter data over thousands of per-minute files;
// analyses start by finding the files covering the interval of
// interest. The catalog supports the paper's two query types:
//   Type 1: time-stamp range -- a start timestamp (-s) plus a count of
//           consecutive files (-c);
//   Type 2: regular expression over the timestamp string (-e), for
//           arbitrary criteria.
// Searches run on metadata only (headers, or the timestamp embedded in
// the filename), never on data bytes -- that is what makes search +
// VCA creation ~70,000x cheaper than physical merging (paper Fig. 6).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dassa/common/shape.hpp"
#include "dassa/das/time.hpp"
#include "dassa/io/interval_index.hpp"
#include "dassa/io/vca.hpp"

namespace dassa::das {

/// One catalogued acquisition file.
struct DasFileInfo {
  std::string path;
  Timestamp timestamp;
  Shape2D shape;
  friend bool operator==(const DasFileInfo&, const DasFileInfo&) = default;
};

/// An in-memory catalog of DAS files, sorted by timestamp.
class Catalog {
 public:
  /// Scan a directory for *.dh5 files. When `read_headers` is true the
  /// timestamp and shape come from each file's DASH5 metadata; when
  /// false, the timestamp is parsed from the trailing
  /// "_yymmddhhmmss.dh5" of the filename and shapes are left empty
  /// (pure filename scan: no file opens, no reads, not even a stat
  /// per entry -- pinned by the counter regression test in
  /// tests/das/test_time_search.cpp).
  [[nodiscard]] static Catalog scan(const std::string& dir,
                                    bool read_headers = true);

  /// Build from already-known entries (sorted internally).
  [[nodiscard]] static Catalog from_entries(std::vector<DasFileInfo> entries);

  [[nodiscard]] const std::vector<DasFileInfo>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Type 1 query: the file at `start` (exact timestamp match or the
  /// first file at/after it) and the following `count - 1` files.
  [[nodiscard]] std::vector<DasFileInfo> query_range(const Timestamp& start,
                                                     std::size_t count) const;

  /// Files whose timestamps fall in [begin, end). Binary search over
  /// the sorted catalog: O(log n + k), never a full scan.
  [[nodiscard]] std::vector<DasFileInfo> query_interval(
      const Timestamp& begin, const Timestamp& end) const;

  /// Time-range query against a *persisted* VCA: the members of
  /// `vca_path` whose time extent overlaps [begin, end). When the .tix
  /// sidecar (io::IntervalIndex) is present the lookup is O(log n + k)
  /// entry touches; when it is absent the query still answers -- it
  /// logs a warning, charges io.index.fallbacks, and derives each
  /// member's extent linearly (one io.index.entry_touches per member).
  /// A sidecar that exists but fails to parse is corruption, not
  /// absence: the FormatError propagates.
  [[nodiscard]] static std::vector<DasFileInfo> query_vca_interval(
      const std::string& vca_path, const Timestamp& begin,
      const Timestamp& end);

  /// Type 2 query: files whose 12-digit timestamp string matches the
  /// regular expression `pattern` (full match).
  [[nodiscard]] std::vector<DasFileInfo> query_regex(
      const std::string& pattern) const;

  /// Convenience: just the paths of a query result.
  [[nodiscard]] static std::vector<std::string> paths(
      const std::vector<DasFileInfo>& infos);

 private:
  std::vector<DasFileInfo> entries_;
};

/// Timestamp embedded in an acquisition filename (the trailing
/// "_yymmddhhmmss.dh5"); nullopt when the name does not carry one.
[[nodiscard]] std::optional<Timestamp> timestamp_from_filename(
    const std::string& path);

/// Fence-pointer entries for every member of `vca`: begin from the
/// filename timestamp (falling back to a header read), duration from
/// the member width and the VCA's sampling rate. The result is what
/// the .tix writers persist next to the .vca.
[[nodiscard]] io::IntervalIndex build_interval_index(const io::Vca& vca);

/// Publish `vca` and its .tix sidecar, both atomically -- the
/// "republish" step shared by das_search --save-vca, the das_ingest
/// live VCA, and das_repack --save-vca.
void save_vca_with_index(const io::Vca& vca, const std::string& path);

}  // namespace dassa::das
