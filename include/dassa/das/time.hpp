// DAS domain: acquisition timestamps.
//
// DAS acquisition files are named/tagged with a yymmddhhmmss timestamp
// (paper Fig. 4: "TimeStamp(yymmddhhmmss): 170620100545", and the
// das_search examples query values like 170728224510). Timestamp
// parses, formats, orders and offsets these.
#pragma once

#include <cstdint>
#include <string>

namespace dassa::das {

/// A second-resolution acquisition timestamp in the two-digit-year
/// format DAS interrogators emit. Years map to 2000-2099.
struct Timestamp {
  int year = 2000;  ///< full year, 2000..2099
  int month = 1;    ///< 1..12
  int day = 1;      ///< 1..31
  int hour = 0;     ///< 0..23
  int minute = 0;   ///< 0..59
  int second = 0;   ///< 0..59

  /// Parse "yymmddhhmmss" (exactly 12 digits); throws InvalidArgument.
  [[nodiscard]] static Timestamp parse(const std::string& s);

  /// Format back to "yymmddhhmmss".
  [[nodiscard]] std::string str() const;

  /// Seconds since 2000-01-01 00:00:00 (proleptic Gregorian).
  [[nodiscard]] std::int64_t epoch_seconds() const;

  /// Timestamp `seconds` after this one.
  [[nodiscard]] Timestamp plus_seconds(std::int64_t seconds) const;

  friend bool operator==(const Timestamp&, const Timestamp&) = default;
  friend auto operator<=>(const Timestamp& a, const Timestamp& b) {
    return a.epoch_seconds() <=> b.epoch_seconds();
  }
};

}  // namespace dassa::das
