// DAS domain: synthetic DAS data generation.
//
// Substitute for the paper's SacramentoDAS recordings (DESIGN.md,
// substitution table). The generator reproduces the signal structure of
// paper Fig. 1b -- ambient noise everywhere, moving vehicles (linear
// moveout across channels), one earthquake (hyperbolic moveout,
// coherent broadband wavelet), and a persistent vibration source -- so
// the local-similarity detector (Fig. 10) has the same three event
// classes to find.
//
// Rendering is deterministic and random-access: sample (channel, t) has
// the same value regardless of which file/block it is rendered into,
// because noise comes from a counter-based hash of (seed, channel,
// sample index). That lets tests check VCA/RCA equivalence across
// arbitrary file splits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dassa/core/array.hpp"
#include "dassa/das/time.hpp"
#include "dassa/io/dash5.hpp"

namespace dassa::das {

/// A vehicle driving along the cable: a Gaussian-enveloped carrier
/// centred on the moving position, producing a slanted line in the
/// time-channel plane.
struct VehicleEvent {
  double start_s = 0.0;            ///< time the vehicle enters
  double start_channel = 0.0;      ///< channel position at start_s
  double speed_ch_per_s = 20.0;    ///< channels travelled per second
  double width_channels = 8.0;     ///< Gaussian footprint on the array
  double freq_hz = 12.0;           ///< dominant vibration frequency
  double amplitude = 4.0;
  double duration_s = 1e9;         ///< how long the vehicle keeps driving
};

/// An earthquake: a damped broadband wavelet arriving with hyperbolic
/// moveout from an epicentre channel.
struct EarthquakeEvent {
  double origin_s = 0.0;           ///< origin time
  double epicenter_channel = 0.0;  ///< closest channel
  double depth_m = 12000.0;        ///< hypocentral depth
  double velocity_m_s = 3500.0;    ///< apparent propagation speed
  double freq_hz = 6.0;            ///< dominant frequency
  double decay_s = 3.0;            ///< envelope decay constant
  double amplitude = 10.0;
};

/// A stationary persistent source (e.g. pumping station) vibrating a
/// fixed channel range for the whole record.
struct PersistentSource {
  double channel_lo = 0.0;
  double channel_hi = 0.0;
  double freq_hz = 30.0;
  double amplitude = 2.0;
};

struct SynthConfig {
  std::size_t channels = 256;
  double sampling_hz = 500.0;
  double spatial_resolution_m = 2.0;
  double noise_rms = 1.0;
  std::uint64_t seed = 42;
};

/// Deterministic synthetic DAS wavefield.
class SynthDas {
 public:
  explicit SynthDas(SynthConfig config) : config_(std::move(config)) {}

  void add(const VehicleEvent& v) { vehicles_.push_back(v); }
  void add(const EarthquakeEvent& e) { quakes_.push_back(e); }
  void add(const PersistentSource& s) { persistent_.push_back(s); }

  [[nodiscard]] const SynthConfig& config() const { return config_; }

  /// Amplitude of channel `ch` at absolute sample index `idx`.
  [[nodiscard]] double sample(std::size_t ch, std::uint64_t idx) const;

  /// Render channels x samples starting at absolute sample `first`.
  [[nodiscard]] core::Array2D render(std::uint64_t first_sample,
                                     std::size_t samples) const;

  /// A ready-made scene mirroring paper Fig. 1b: ambient noise, two
  /// vehicles, one M4.4-like earthquake, one persistent vibration.
  [[nodiscard]] static SynthDas fig1b_scene(std::size_t channels,
                                            double sampling_hz,
                                            std::uint64_t seed = 42);

 private:
  SynthConfig config_;
  std::vector<VehicleEvent> vehicles_;
  std::vector<EarthquakeEvent> quakes_;
  std::vector<PersistentSource> persistent_;
};

/// Emission of the paper's acquisition layout: one DASH5 file per
/// fixed-length segment ("1-minute files"), named
/// <dir>/<prefix>_<yymmddhhmmss>.dh5, each carrying the Fig. 4 metadata
/// (global KV + one KV list per channel object).
struct AcquisitionSpec {
  std::string dir;
  std::string prefix = "das";
  Timestamp start{};
  std::size_t file_count = 4;
  double seconds_per_file = 60.0;
  io::DType dtype = io::DType::kF32;
  /// Chunked tiles per file (0 x 0 = contiguous layout).
  io::ChunkShape chunk{0, 0};
  /// Per-chunk compression chain (requires a chunked layout; empty =
  /// uncompressed v2 files).
  io::CodecSpec codec;
  /// Simulated ADC step: samples are rounded to multiples of this
  /// amplitude before writing (0 = keep full float precision). Real
  /// interrogators emit fixed-point data; a power-of-two step zeroes
  /// the low mantissa bits so files compress the way field recordings
  /// do.
  double quantize_lsb = 0.0;
  bool per_channel_metadata = true;
};

/// Render and write the files; returns their paths in time order.
std::vector<std::string> write_acquisition(const SynthDas& synth,
                                           const AcquisitionSpec& spec);

/// Render and write just file `index` of the acquisition (0-based,
/// may exceed spec.file_count); returns its path. write_acquisition is
/// a loop over this -- das_generate --stream uses it to drop files
/// into a spool one at a time, interrogator-style.
std::string write_acquisition_file(const SynthDas& synth,
                                   const AcquisitionSpec& spec,
                                   std::size_t index);

}  // namespace dassa::das
