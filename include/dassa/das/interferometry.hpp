// Case study 2: traffic-noise interferometry (paper Algorithm 3, after
// Ajo-Franklin et al. 2017 / Dou et al. 2017).
//
// Per channel: detrend -> zero-phase Butterworth bandpass -> resample
// -> FFT -> correlate against the FFT of a designated master channel.
// The master-channel spectrum is the shared state whose duplication
// distinguishes HAEE from MPI-per-core ArrayUDF (paper Section V-B and
// Fig. 8): the factory computes it once per rank and charges the
// mem.master_channel_copies counter, so benches can measure the k-fold
// replication directly.
#pragma once

#include <complex>

#include "dassa/core/apply.hpp"
#include "dassa/core/haee.hpp"
#include "dassa/dsp/fft.hpp"
#include "dassa/dsp/filter.hpp"

namespace dassa::das {

struct InterferometryParams {
  double sampling_hz = 500.0;
  int butter_order = 3;
  double band_lo_hz = 1.0;
  double band_hi_hz = 45.0;
  std::size_t resample_up = 1;
  std::size_t resample_down = 2;
  std::size_t master_channel = 0;

  /// Whether the UDF returns the full time-domain noise-correlation
  /// function (length = resampled window) instead of the paper's
  /// scalar Das_abscorr value.
  bool full_correlation = false;
};

/// Shared per-run state of the pre-processing chain: the designed
/// bandpass coefficients. Designing a Butterworth filter involves
/// root-finding and polynomial expansion, so doing it once per rank
/// instead of once per channel (~10^4 redundant designs) matters; the
/// UDF builders below hoist it out of the row loop.
struct InterferometryPrep {
  dsp::FilterCoeffs bandpass;
};

/// Design the shared pre-processing state for `p` (validates the band
/// edges against Nyquist).
[[nodiscard]] InterferometryPrep interferometry_prep(
    const InterferometryParams& p);

/// The sequential per-channel pre-processing chain (thread-safe):
/// detrend -> filtfilt(bandpass) -> resample. Exposed for tests and
/// the baseline pipeline. The two-argument form designs the filter
/// itself; pass a precomputed `prep` when calling per channel.
[[nodiscard]] std::vector<double> interferometry_preprocess(
    std::span<const double> x, const InterferometryParams& p);
[[nodiscard]] std::vector<double> interferometry_preprocess(
    std::span<const double> x, const InterferometryParams& p,
    const InterferometryPrep& prep);

/// Full per-channel chain ending in the FFT (what the UDF correlates).
[[nodiscard]] std::vector<dsp::cplx> interferometry_spectrum(
    std::span<const double> x, const InterferometryParams& p);
[[nodiscard]] std::vector<dsp::cplx> interferometry_spectrum(
    std::span<const double> x, const InterferometryParams& p,
    const InterferometryPrep& prep);

/// Build the Algorithm 3 row-UDF around a precomputed master spectrum.
[[nodiscard]] core::RowUdf make_interferometry_udf(
    const InterferometryParams& p, std::vector<dsp::cplx> master_spectrum);

/// Factory for distributed runs: extracts the master channel from the
/// rank's block (every rank holds it -- the master channel is
/// broadcast with the read or found locally), computes its spectrum
/// once per rank, and counts one master-channel copy per rank.
[[nodiscard]] core::RowUdfFactory make_interferometry_factory(
    const InterferometryParams& p);

/// Single-node execution with OpenMP threads.
[[nodiscard]] core::Array2D interferometry_single_node(
    const core::Array2D& data, const InterferometryParams& p,
    int threads = 0);

/// Distributed execution over a VCA through the HAEE engine.
[[nodiscard]] core::EngineReport interferometry_distributed(
    const core::EngineConfig& config, const io::Vca& vca,
    const InterferometryParams& p);

}  // namespace dassa::das
