// DAS domain: subsurface event extraction from similarity maps.
//
// The paper's title deliverable is *event detection*: Fig. 10 shows a
// local-similarity map in which a geophysicist visually distinguishes
// two vehicles, an earthquake and a persistent vibration. This module
// automates that last step: threshold the map against its own noise
// floor, group the exceedances into connected components, and classify
// each component by its (channel, time) footprint geometry:
//
//   * earthquake  -- spans most of the array within a short time window
//                    (near-vertical stripe; seismic velocities make the
//                    moveout tiny at DAS scale);
//   * vehicle     -- a slanted track: channel extent and time extent
//                    both large, with a consistent channel/time slope
//                    (the apparent speed along the cable);
//   * persistent  -- few channels, nearly the whole record in time
//                    (horizontal band from a fixed vibration source).
#pragma once

#include <string>
#include <vector>

#include "dassa/core/array.hpp"

namespace dassa::das {

enum class EventClass { kEarthquake, kVehicle, kPersistent, kUnknown };

[[nodiscard]] const char* event_class_name(EventClass c);

/// One detected event: the bounding box of a connected component of
/// above-threshold similarity, plus derived attributes.
struct DetectedEvent {
  EventClass type = EventClass::kUnknown;
  std::size_t channel_lo = 0;  ///< inclusive
  std::size_t channel_hi = 0;  ///< inclusive
  std::size_t time_lo = 0;     ///< inclusive, samples
  std::size_t time_hi = 0;     ///< inclusive, samples
  std::size_t cells = 0;       ///< component size
  double peak_similarity = 0.0;
  double mean_similarity = 0.0;
  /// Channels per sample along the track (vehicles); 0 when undefined.
  double slope_channels_per_sample = 0.0;

  [[nodiscard]] std::size_t channel_extent() const {
    return channel_hi - channel_lo + 1;
  }
  [[nodiscard]] std::size_t time_extent() const {
    return time_hi - time_lo + 1;
  }
};

struct DetectorParams {
  /// Threshold = noise_floor_multiplier x the map's median similarity.
  double noise_floor_multiplier = 1.6;
  /// Components smaller than this many cells are discarded as clutter.
  std::size_t min_cells = 32;
  /// Classification: a component covering at least this fraction of all
  /// channels within a short time window is an earthquake.
  double quake_channel_fraction = 0.6;
  /// ...and does so within at most this fraction of the record in time
  /// (seismic moveout is near-instant at DAS scale).
  double quake_time_fraction = 0.25;
  /// A component spanning at least this fraction of the record in time
  /// while staying narrow in channels is a persistent source.
  double persistent_time_fraction = 0.7;
  double persistent_channel_fraction = 0.15;
  /// Minimum |channel/time| slope for a track to read as a moving
  /// vehicle (channels per sample).
  double vehicle_min_slope = 0.003;
};

/// Extract events from a similarity map (channels x time samples),
/// ordered by descending component size.
[[nodiscard]] std::vector<DetectedEvent> detect_events(
    const core::Array2D& similarity, const DetectorParams& params = {});

/// Render a one-line summary per event ("earthquake ch[8,88] t[5320,
/// 5560] peak=0.95"), for logs and the examples.
[[nodiscard]] std::string describe(const DetectedEvent& event,
                                   double sampling_hz);

}  // namespace dassa::das
