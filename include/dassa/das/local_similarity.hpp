// Case study 1: earthquake detection via local similarity
// (paper Algorithm 2, after Li et al. 2018).
//
// For every cell (channel, time) the UDF extracts the window
// W = S(-M:M, 0), slides (2L+1) windows over each of the two
// neighbouring channels at offsets +K and -K, takes the maximum
// absolute correlation against each side, and returns their mean.
// Coherent arrivals (earthquakes, vehicles) correlate across
// neighbouring channels; incoherent noise does not -- so the output map
// lights up exactly where paper Fig. 10 shows events.
#pragma once

#include "dassa/core/apply.hpp"
#include "dassa/core/haee.hpp"

namespace dassa::das {

struct LocalSimilarityParams {
  std::size_t window_half = 25;    ///< M: window is 2M+1 samples
  std::size_t lag_half = 10;       ///< L: 2L+1 window positions per side
  std::size_t channel_offset = 1;  ///< K: neighbour distance in channels

  /// Ghost-zone width a distributed run needs for this UDF.
  [[nodiscard]] std::size_t halo() const { return channel_offset; }
};

/// The Algorithm 2 UDF. Cells whose full neighbourhood (time span
/// M+L on both sides, channels +-K) falls outside the array yield 0.
[[nodiscard]] core::ScalarUdf make_local_similarity_udf(
    const LocalSimilarityParams& params);

/// Single-node execution over an in-memory array with OpenMP threads
/// (threads <= 0 uses the OpenMP default).
[[nodiscard]] core::Array2D local_similarity(const core::Array2D& data,
                                             const LocalSimilarityParams& p,
                                             int threads = 0);

/// Distributed execution over a VCA through the HAEE engine. The
/// engine's halo is overridden with the UDF's requirement.
[[nodiscard]] core::EngineReport local_similarity_distributed(
    core::EngineConfig config, const io::Vca& vca,
    const LocalSimilarityParams& p);

}  // namespace dassa::das
