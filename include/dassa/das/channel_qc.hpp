// DAS domain: channel quality control.
//
// Real DAS arrays (the paper's 11,648-channel Sacramento cable
// included) contain channels that record nothing (bad splices, cable
// sections out of the ground) or mostly instrument noise; production
// pipelines flag them before analysis so dead traces do not poison
// correlations. This module computes per-channel statistics with a row
// UDF through the HAEE engine and classifies channels against the
// array-wide distribution.
#pragma once

#include "dassa/core/haee.hpp"
#include "dassa/io/vca.hpp"

namespace dassa::das {

enum class ChannelStatus { kGood, kDead, kNoisy };

[[nodiscard]] const char* channel_status_name(ChannelStatus s);

/// Per-channel statistics (one row of the QC report).
struct ChannelStats {
  double rms = 0.0;
  double peak = 0.0;
  double kurtosis = 0.0;  ///< excess kurtosis (0 for Gaussian noise)
  ChannelStatus status = ChannelStatus::kGood;
};

struct ChannelQcParams {
  /// A channel whose RMS falls below this fraction of the array median
  /// RMS is dead.
  double dead_rms_fraction = 0.1;
  /// A channel whose RMS exceeds this multiple of the median is noisy.
  double noisy_rms_multiple = 5.0;
};

struct ChannelQcReport {
  std::vector<ChannelStats> channels;
  double median_rms = 0.0;

  [[nodiscard]] std::size_t count(ChannelStatus s) const {
    std::size_t n = 0;
    for (const auto& c : channels) n += c.status == s ? 1 : 0;
    return n;
  }
  /// Indices of channels safe to analyse.
  [[nodiscard]] std::vector<std::size_t> good_channels() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < channels.size(); ++i) {
      if (channels[i].status == ChannelStatus::kGood) out.push_back(i);
    }
    return out;
  }
};

/// Compute per-channel stats (RMS, peak, excess kurtosis) for one
/// channel's samples; exposed for tests.
[[nodiscard]] ChannelStats channel_stats(std::span<const double> x);

/// Run QC over a VCA through the engine and classify every channel.
[[nodiscard]] ChannelQcReport channel_qc(const core::EngineConfig& config,
                                         const io::Vca& vca,
                                         const ChannelQcParams& params = {});

/// Classify in-memory data (single node path).
[[nodiscard]] ChannelQcReport channel_qc(const core::Array2D& data,
                                         const ChannelQcParams& params = {});

}  // namespace dassa::das
