// Baseline: the MATLAB-style single-node pipeline (paper Fig. 9's
// comparison target).
//
// The paper compares DASSA against the geophysicists' MATLAB pipeline
// and attributes DASSA's advantage (up to 16x in compute) to one
// structural difference: MATLAB parallelises only *inside* individual
// vectorised kernels, while DASSA parallelises the whole per-channel
// pipeline. With no MATLAB licence on this substrate (or the paper's),
// the baseline reproduces MATLAB's execution *structure* in C++:
//
//  * stage-at-a-time execution: every stage (detrend, filter, resample,
//    fft, correlate) runs over the full array before the next starts,
//    materialising a full-array temporary between stages -- MATLAB's
//    natural vectorised style;
//  * pass-by-value argument copies at every function call boundary,
//    modelling MATLAB's copy semantics;
//  * a serial interpreted loop over channels inside each stage (MATLAB
//    for-loops do not multithread), with kernel-internal threading left
//    to the BLAS-like kernels, which at per-channel sizes contributes
//    nothing.
//
// DASSA's engine instead fuses the chain per channel and parallelises
// across channels (apply_rows_omp), touching each channel once.
#pragma once

#include "dassa/common/timer.hpp"
#include "dassa/core/array.hpp"
#include "dassa/das/interferometry.hpp"

namespace dassa::das {

/// Result of a baseline run: output plus per-stage timing and the
/// number of full-array temporaries materialised.
struct BaselineReport {
  core::Array2D output;
  StageTimes stages;
  std::size_t full_array_temporaries = 0;
  std::uint64_t bytes_copied = 0;  ///< argument + temporary copies
};

/// Run the interferometry pipeline MATLAB-style (see file comment).
[[nodiscard]] BaselineReport baseline_interferometry(
    const core::Array2D& data, const InterferometryParams& params);

/// Run the same pipeline DASSA-style (fused per channel, parallel
/// across channels) with identical numerics, for Fig. 9's comparison.
[[nodiscard]] BaselineReport dassa_interferometry(
    const core::Array2D& data, const InterferometryParams& params,
    int threads = 0);

}  // namespace dassa::das
