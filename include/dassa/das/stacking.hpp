// DAS domain: windowed noise-correlation stacking.
//
// Paper Section IV notes that "during the stacking operation of the DAS
// data analysis pipeline [Dou et al. 2017], a 3D data array with a
// striping size as the third dimension may be produced": ambient-noise
// interferometry splits the record into short windows, computes one
// noise-correlation function (NCF) per (channel, window) -- the 3D
// intermediate -- and averages over windows so incoherent noise cancels
// while the coherent Green's function accumulates (SNR grows ~sqrt(W)).
//
// StackedInterferometry implements that operation as a row UDF: per
// channel, the time series is cut into `window_samples` segments, each
// is pre-processed and correlated against the master channel's matching
// segment, and the per-window NCFs are linearly stacked.
#pragma once

#include "dassa/core/haee.hpp"
#include "dassa/das/interferometry.hpp"

namespace dassa::das {

struct StackingParams {
  InterferometryParams base;      ///< per-window processing chain
  std::size_t window_samples = 0; ///< segment length (input samples)
  std::size_t window_hop = 0;     ///< advance; 0 = non-overlapping
};

/// Per-channel windowed stack against the master channel's windows.
/// `master` is the master channel's full raw time series. The result
/// is the stacked time-domain NCF (length = resampled window).
[[nodiscard]] std::vector<double> stacked_ncf(
    std::span<const double> channel, std::span<const double> master,
    const StackingParams& params);

/// Number of windows the stack will average.
[[nodiscard]] std::size_t stack_window_count(std::size_t samples,
                                             const StackingParams& params);

/// Row-UDF factory for distributed execution: every rank obtains the
/// raw master row (one copy per rank, counted like the plain
/// interferometry factory) and stacks each of its channels.
[[nodiscard]] core::RowUdfFactory make_stacking_factory(
    const StackingParams& params);

/// Distributed windowed stacking over a VCA.
[[nodiscard]] core::EngineReport stacking_distributed(
    const core::EngineConfig& config, const io::Vca& vca,
    const StackingParams& params);

}  // namespace dassa::das
