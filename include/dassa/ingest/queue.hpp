// Streaming ingest: the bounded admission queue (docs/INGEST.md).
//
// The spool watcher (producer) and the window driver (consumer) run at
// different, bursty rates: a backlog of stable files can appear in one
// poll, while a window takes a full engine run to retire. The queue
// bounds that mismatch with *backpressure*, never drops: push() blocks
// while the queue is at capacity, so a slow consumer throttles the
// producer instead of silently losing acquisitions. A real deployment
// leaves the files in the spool while blocked -- which is exactly what
// blocking the admitting thread achieves here.
//
// Occupancy is observable three ways: the ingest.queue.* counters
// (pushed / popped / push_blocked / peak_depth), the depth() accessor
// das_ingest registers as the "ingest.queue.depth" telemetry gauge, and
// the daemon's final drain log line.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/sync.hpp"

namespace dassa::ingest {

/// Blocking bounded MPSC/SPSC queue used between the spool poller and
/// the window driver. close() wakes every waiter: blocked pushes give
/// up (return false) and pops drain the remaining items before
/// reporting end-of-stream (nullopt) -- the graceful-shutdown order.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    DASSA_CHECK(capacity >= 1, "queue capacity must be at least 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (backpressure), then enqueue. Returns
  /// false without enqueuing if the queue was closed first.
  bool push(T item) {
    MutexLock lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      global_counters().add(counters::kIngestQueuePushBlocked);
      while (items_.size() >= capacity_ && !closed_) not_full_.wait(lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    global_counters().add(counters::kIngestQueuePushed);
    global_counters().high_water(counters::kIngestQueuePeakDepth,
                                 items_.size());
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and
  /// drained; nullopt means no more items will ever arrive.
  std::optional<T> pop() {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) not_empty_.wait(lock);
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    global_counters().add(counters::kIngestQueuePopped);
    not_full_.notify_one();
    return item;
  }

  /// End the stream: blocked producers return false, consumers drain
  /// what is queued and then see nullopt. Idempotent.
  void close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ DASSA_GUARDED_BY(mu_);
  bool closed_ DASSA_GUARDED_BY(mu_) = false;
};

}  // namespace dassa::ingest
