// Streaming ingest: the bounded admission queue (docs/INGEST.md).
//
// The spool watcher (producer) and the window driver (consumer) run at
// different, bursty rates: a backlog of stable files can appear in one
// poll, while a window takes a full engine run to retire. The shared
// dassa::BoundedQueue bounds that mismatch with backpressure (push()
// blocks at capacity, never drops); this alias binds it to the
// ingest.queue.* counter namespace. A real deployment leaves the files
// in the spool while blocked -- which is exactly what blocking the
// admitting thread achieves here.
//
// Occupancy is observable three ways: the ingest.queue.* counters
// (pushed / popped / push_blocked / peak_depth), the depth() accessor
// das_ingest registers as the "ingest.queue.depth" telemetry gauge, and
// the daemon's final drain log line.
#pragma once

#include <cstddef>

#include "dassa/common/bounded_queue.hpp"
#include "dassa/common/counters.hpp"

namespace dassa::ingest {

/// The ingest admission queue: dassa::BoundedQueue charging
/// ingest.queue.* (pushed == popped after a clean drain is the no-drop
/// invariant bench_ingest asserts).
template <typename T>
class BoundedQueue : public dassa::BoundedQueue<T> {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : dassa::BoundedQueue<T>(
            capacity, QueueCounterNames{counters::kIngestQueuePushed,
                                        counters::kIngestQueuePopped,
                                        counters::kIngestQueuePushBlocked,
                                        counters::kIngestQueuePeakDepth}) {}
};

}  // namespace dassa::ingest
