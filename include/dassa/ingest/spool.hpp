// Streaming ingest: spool directory watching and admission control
// (docs/INGEST.md).
//
// An interrogator (or das_generate --stream) drops 1-minute DASH5
// files into a spool directory. The watcher polls it and admits a file
// only once it is both *stable* -- same size and mtime across two
// consecutive polls, so a file still being written is never picked up
// half-way -- and *valid* -- its DASH5 header parses and CRC-checks.
// Malformed files are moved into a quarantine subdirectory (and
// counted) rather than crashing the daemon or being retried forever;
// an operator can inspect or delete them later.
//
// The watcher is pull-based and stateful but not thread-safe: the
// daemon's producer thread owns it and calls poll() at its cadence.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dassa::ingest {

struct SpoolConfig {
  std::string dir;
  /// Subdirectory (under dir) malformed files are moved into.
  std::string quarantine_subdir = "quarantine";
};

/// One admitted acquisition file, stamped with its admission time on
/// the trace clock (the start of its ingest-to-detection latency).
struct SpoolFile {
  std::string path;
  std::uint64_t admit_ns = 0;
};

class SpoolWatcher {
 public:
  explicit SpoolWatcher(SpoolConfig cfg);

  /// One poll pass: scan the spool for *.dh5 files; start the
  /// stability clock for new ones; validate files whose (size, mtime)
  /// held since the previous poll, returning the admitted ones sorted
  /// by filename (timestamped acquisition names sort chronologically)
  /// and quarantining the malformed ones. Files already admitted or
  /// quarantined are skipped forever.
  [[nodiscard]] std::vector<SpoolFile> poll();

  /// Files seen but not yet admitted (still proving stability).
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::size_t admitted() const { return admitted_count_; }
  [[nodiscard]] std::size_t quarantined() const {
    return quarantined_count_;
  }

 private:
  struct Observation {
    std::uintmax_t size = 0;
    std::filesystem::file_time_type mtime;
  };

  void quarantine(const std::filesystem::path& path,
                  const std::string& why);

  SpoolConfig cfg_;
  std::map<std::string, Observation> pending_;
  std::set<std::string> done_;  // admitted or quarantined, by path
  std::size_t admitted_count_ = 0;
  std::size_t quarantined_count_ = 0;
};

}  // namespace dassa::ingest
