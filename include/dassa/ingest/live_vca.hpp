// Streaming ingest: the live, growing VCA (docs/INGEST.md).
//
// The daemon's view of "everything ingested so far" is a VCA that
// gains one member per admitted file. Readers (the window driver, or
// any thread sampling progress) must never observe a half-appended
// index, so LiveVca publishes immutable snapshots: append() copies the
// current VCA, extends the copy, and swaps it in under a writer lock;
// snapshot() hands out a shared_ptr<const Vca> that stays valid --
// including its lazily opened member handles, which the copy shares --
// for as long as the caller holds it.
//
// If an index path is configured, every append also republishes the
// on-disk .vca via Vca::save_atomic(), so an offline das_analyze can
// load a consistent index of the live acquisition at any moment.
#pragma once

#include <memory>
#include <string>

#include "dassa/common/sync.hpp"
#include "dassa/io/vca.hpp"

namespace dassa::ingest {

class LiveVca {
 public:
  /// `index_path` (optional) is the .vca file to republish atomically
  /// after every append; empty disables persistence.
  explicit LiveVca(std::string index_path = {});

  /// Append one member file (header read only) and publish the new
  /// snapshot. Throws on shape mismatch or unreadable header; the
  /// previous snapshot stays published in that case.
  void append(const std::string& path);

  /// The current immutable view; never null (initially an empty VCA).
  [[nodiscard]] std::shared_ptr<const io::Vca> snapshot() const;

  [[nodiscard]] std::size_t member_count() const;

 private:
  std::string index_path_;
  mutable SharedMutex mu_;
  std::shared_ptr<const io::Vca> current_ DASSA_GUARDED_BY(mu_);
};

}  // namespace dassa::ingest
