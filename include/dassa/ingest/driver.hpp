// Streaming ingest: the window driver (docs/INGEST.md).
//
// The driver is the daemon's consumer side. For every admitted spool
// file it (1) appends the file to the live VCA, (2) registers the
// file's width with the window planner, and (3) runs the offline
// analysis engine over each window that became complete, keeping only
// the window's emit region. At shutdown, finish() processes the
// remainder-covering final window and assembles the emitted blocks
// into one similarity map that is byte-identical to an offline
// das_analyze run over the same files (pinned by
// tests/ingest/test_ingest_equivalence.cpp).
//
// Per-file latency: every admitted file carries its admission
// timestamp; when the emit frontier passes the file's last column its
// ingest-to-detection latency is recorded into the
// "ingest.file_to_detection" histogram -- the distribution bench_ingest
// gates on (p50/p99).
//
// Single-threaded: the daemon's consumer thread owns the driver.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dassa/core/array.hpp"
#include "dassa/core/haee.hpp"
#include "dassa/das/events.hpp"
#include "dassa/das/local_similarity.hpp"
#include "dassa/ingest/live_vca.hpp"
#include "dassa/ingest/spool.hpp"
#include "dassa/ingest/window.hpp"

namespace dassa::ingest {

struct IngestConfig {
  /// Window geometry, in member files.
  std::size_t window_files = 4;
  std::size_t overlap_files = 1;
  das::LocalSimilarityParams similarity{};
  das::DetectorParams detector{};
  /// Run the event detector over each emitted block as it appears
  /// (live detection log + ingest.events_detected counter).
  bool detect = true;
  core::EngineConfig engine{};
  /// Optional .vca index republished atomically after every append.
  std::string vca_index_path;
};

/// What a completed ingest run produced.
struct IngestResult {
  core::Array2D similarity;  ///< channels x every-emitted-column
  std::vector<das::DetectedEvent> events;  ///< over the full map
  io::KvList global_meta;    ///< from the first member file
  std::size_t files = 0;
  std::size_t windows = 0;
};

class IngestDriver {
 public:
  explicit IngestDriver(IngestConfig cfg);

  /// Ingest one admitted file: append to the live VCA, then process
  /// every window that became ready. Throws on shape mismatch or
  /// invalid window geometry (see WindowPlanner).
  void add_file(const SpoolFile& file);

  /// Drain: process the final window and assemble the result. The
  /// driver cannot be fed afterwards.
  [[nodiscard]] IngestResult finish();

  /// Live view of everything ingested so far (thread-safe snapshot).
  [[nodiscard]] const LiveVca& live_vca() const { return vca_; }

  [[nodiscard]] std::size_t files_ingested() const {
    return planner_.files_added();
  }
  [[nodiscard]] std::size_t windows_processed() const {
    return windows_processed_;
  }
  [[nodiscard]] std::size_t cols_emitted() const {
    return planner_.emitted_cols();
  }

  /// Called with each emitted block's events when cfg.detect is on
  /// (event coordinates are global stream columns). For the daemon's
  /// live event log; optional.
  std::function<void(const std::vector<das::DetectedEvent>&)> on_events;

 private:
  struct PendingLatency {
    std::uint64_t admit_ns = 0;
    std::size_t end_col = 0;  ///< retire when emit frontier passes this
  };
  struct EmittedBlock {
    std::size_t col0 = 0;
    core::Array2D data;
  };

  void process_window(const WindowSpec& w);
  void retire_latencies();

  IngestConfig cfg_;
  LiveVca vca_;
  WindowPlanner planner_;
  std::vector<std::string> member_paths_;
  std::vector<PendingLatency> pending_latency_;
  std::vector<EmittedBlock> blocks_;
  std::size_t windows_processed_ = 0;
  bool finished_ = false;
};

/// The margin (one-sided column dependency span) of the similarity
/// UDF: window_half + lag_half. Emit regions stay this far from
/// interior window edges so streamed output matches offline output.
[[nodiscard]] std::size_t udf_margin_cols(
    const das::LocalSimilarityParams& p);

}  // namespace dassa::ingest
