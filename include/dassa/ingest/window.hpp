// Streaming ingest: sliding-window planning with overlap carry
// (docs/INGEST.md).
//
// The daemon analyses the growing acquisition in file-aligned windows:
// a window spans `window_files` consecutive member files and advances
// by `window_files - overlap_files` files. Each window is handed to the
// offline engine as a sub-VCA, but only a sub-range of its columns --
// the *emit region* -- is kept, chosen so the emitted cells are
// byte-identical to an offline run over the whole stream:
//
//   * a cell's UDF value depends on data within +-margin_cols of it
//     (local similarity: window_half + lag_half), and the UDF returns
//     exactly 0 for cells whose span crosses the array edge;
//   * a window therefore reproduces the offline value for every cell at
//     least margin_cols from both window edges -- and for cells nearer
//     a window edge that coincides with the *stream* edge, where the
//     offline run clips identically;
//   * consecutive emit regions tile the stream exactly: window k emits
//     [carry, end_k - margin) where carry is window k-1's emit end, and
//     the final window (at drain) emits [carry, total).
//
// Validity requires the overlap to cover two margins (the previous
// window's unemittable tail plus this window's unemittable head):
// overlap_cols >= 2 * margin_cols. The planner throws InvalidArgument
// the moment a window violates that, naming the fix (more overlap or
// longer files), instead of silently emitting wrong edges.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace dassa::ingest {

/// One planned analysis window over the member-file sequence.
/// Columns are global (whole-stream) coordinates; [emit_lo, emit_hi)
/// is the half-open region of output columns this window contributes.
struct WindowSpec {
  std::size_t index = 0;       ///< running window number, from 0
  std::size_t first_file = 0;  ///< first member file in the window
  std::size_t file_count = 0;
  std::size_t start_col = 0;   ///< global column of first_file
  std::size_t end_col = 0;     ///< exclusive
  std::size_t emit_lo = 0;
  std::size_t emit_hi = 0;
  bool final = false;          ///< emitted by finish(): runs to stream end

  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

/// Incremental window planner. Feed it each admitted file's column
/// count with add_file(), drain ready windows with next_ready(), and
/// close the stream with finish(), which plans the remainder-covering
/// final window. Single-threaded by design: the ingest driver calls it
/// from the one consumer thread.
class WindowPlanner {
 public:
  /// `margin_cols` is the UDF's one-sided time dependency span; emit
  /// regions stay this far from interior window edges.
  WindowPlanner(std::size_t window_files, std::size_t overlap_files,
                std::size_t margin_cols);

  /// Register the next member file (cols > 0).
  void add_file(std::size_t cols);

  /// The next complete window, if the files for it have all arrived.
  /// Call repeatedly until nullopt after each add_file. Throws
  /// InvalidArgument if the window/overlap geometry cannot honour the
  /// margin (overlap_cols < 2 * margin_cols).
  [[nodiscard]] std::optional<WindowSpec> next_ready();

  /// Close the stream: plan one final window covering every not-yet-
  /// emitted column (with margin_cols of left context), or nullopt if
  /// nothing remains. Further add_file/next_ready calls are invalid.
  [[nodiscard]] std::optional<WindowSpec> finish();

  [[nodiscard]] std::size_t files_added() const {
    return col_starts_.size() - 1;
  }
  /// Total columns registered so far.
  [[nodiscard]] std::size_t total_cols() const { return col_starts_.back(); }
  /// Columns emitted by the windows returned so far (the carry).
  [[nodiscard]] std::size_t emitted_cols() const { return emit_lo_; }
  [[nodiscard]] std::size_t margin_cols() const { return margin_; }

 private:
  std::size_t window_files_;
  std::size_t overlap_files_;
  std::size_t step_;
  std::size_t margin_;
  std::vector<std::size_t> col_starts_;  // cumulative; [0] == 0
  std::size_t next_window_ = 0;          // next *regular* window number
  std::size_t windows_planned_ = 0;
  std::size_t emit_lo_ = 0;
  bool finished_ = false;
};

}  // namespace dassa::ingest
