// ArrayUDF core: the Stencil abstraction (paper Section II-B).
//
// A Stencil is a cursor on one cell of a 2D DAS array plus relative
// access to its neighbourhood. Following the paper's notation, offsets
// are written S(dt, dch): the FIRST index moves along time (columns)
// and the SECOND across channels (rows) -- Algorithm 2 writes the
// current window as S(-M:M, 0) and the neighbouring channel's windows
// as S(l-M : l+M, +K).
//
// The stencil addresses a local block that may carry ghost rows
// (halo channels) above and below the owned region, so neighbourhood
// access near partition boundaries needs no communication at UDF time
// (the ArrayUDF ghost-zone design).
#pragma once

#include <span>
#include <vector>

#include "dassa/common/bounds.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/shape.hpp"

namespace dassa::core {

class Stencil {
 public:
  /// `block` is a local array of `block_shape` whose row 0 corresponds
  /// to global channel `global_row0`. The cursor sits at local row
  /// `local_row`, column `col`.
  /// Out-of-ghost-zone *relative* access always throws (API contract,
  /// exercised by UDFs via in_bounds()). The *cursor placement*
  /// invariants below are unchecked in release builds -- the apply
  /// engine constructs one stencil per cell -- and validated under
  /// -DDASSA_DEBUG_BOUNDS=ON.
  Stencil(const double* block, Shape2D block_shape, std::size_t global_row0,
          std::size_t local_row, std::size_t col, Shape2D global_shape)
      : block_(block),
        block_shape_(block_shape),
        global_row0_(global_row0),
        local_row_(local_row),
        col_(col),
        global_shape_(global_shape) {
    DASSA_BOUNDS_CHECK(block_ != nullptr || block_shape_.empty(),
                       "stencil over null block");
    DASSA_BOUNDS_CHECK(local_row_ < block_shape_.rows &&
                           col_ < block_shape_.cols,
                       "stencil cursor (" + std::to_string(local_row_) + "," +
                           std::to_string(col_) + ") outside local block " +
                           block_shape_.str());
    DASSA_BOUNDS_CHECK(global_row0_ + local_row_ < global_shape_.rows,
                       "stencil cursor maps past the global array " +
                           global_shape_.str());
  }

  /// Value at time offset `dt` and channel offset `dch` from the
  /// cursor: S(dt, dch). Throws InvalidArgument if the access leaves
  /// the local block (i.e. exceeds the configured ghost zone).
  [[nodiscard]] double operator()(std::ptrdiff_t dt,
                                  std::ptrdiff_t dch = 0) const {
    const auto [r, c] = locate(dt, dch);
    return block_[r * block_shape_.cols + c];
  }

  /// True iff S(dt, dch) is inside the local block AND inside the
  /// global array (UDFs use this to handle array edges explicitly).
  [[nodiscard]] bool in_bounds(std::ptrdiff_t dt,
                               std::ptrdiff_t dch = 0) const {
    const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(local_row_) + dch;
    const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(col_) + dt;
    if (r < 0 || c < 0 || r >= static_cast<std::ptrdiff_t>(block_shape_.rows) ||
        c >= static_cast<std::ptrdiff_t>(block_shape_.cols)) {
      return false;
    }
    const std::ptrdiff_t gr = static_cast<std::ptrdiff_t>(global_row0_) + r;
    return gr < static_cast<std::ptrdiff_t>(global_shape_.rows);
  }

  /// Extract the window S(t_lo : t_hi, dch) as a vector (inclusive
  /// bounds, matching the paper's S(-M:M, K) notation).
  [[nodiscard]] std::vector<double> window(std::ptrdiff_t t_lo,
                                           std::ptrdiff_t t_hi,
                                           std::ptrdiff_t dch = 0) const {
    DASSA_CHECK(t_lo <= t_hi, "stencil window bounds inverted");
    const auto [r, c_begin] = locate(t_lo, dch);
    (void)locate(t_hi, dch);  // bounds-check the far end too
    const double* base = block_ + r * block_shape_.cols + c_begin;
    return {base, base + (t_hi - t_lo + 1)};
  }

  /// Contiguous view of the full time series of the channel at offset
  /// `dch` (Algorithm 3 takes S(0 : W-1, 0) = the whole channel).
  [[nodiscard]] std::span<const double> row_span(
      std::ptrdiff_t dch = 0) const {
    const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(local_row_) + dch;
    DASSA_CHECK(r >= 0 && r < static_cast<std::ptrdiff_t>(block_shape_.rows),
                "stencil row access outside ghost zone");
    return {block_ + static_cast<std::size_t>(r) * block_shape_.cols,
            block_shape_.cols};
  }

  /// Global coordinates of the cursor.
  [[nodiscard]] std::size_t channel() const { return global_row0_ + local_row_; }
  [[nodiscard]] std::size_t time() const { return col_; }

  /// Shape of the full (global) array the UDF logically runs over.
  [[nodiscard]] Shape2D global_shape() const { return global_shape_; }

 private:
  [[nodiscard]] std::pair<std::size_t, std::size_t> locate(
      std::ptrdiff_t dt, std::ptrdiff_t dch) const {
    const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(local_row_) + dch;
    const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(col_) + dt;
    DASSA_CHECK(
        r >= 0 && r < static_cast<std::ptrdiff_t>(block_shape_.rows),
        "stencil channel access outside ghost zone");
    DASSA_CHECK(c >= 0 && c < static_cast<std::ptrdiff_t>(block_shape_.cols),
                "stencil time access outside block");
    return {static_cast<std::size_t>(r), static_cast<std::size_t>(c)};
  }

  const double* block_;
  Shape2D block_shape_;
  std::size_t global_row0_;
  std::size_t local_row_;
  std::size_t col_;
  Shape2D global_shape_;
};

}  // namespace dassa::core
