// Auto-tuner: automatic selection of the number of computing nodes.
//
// The paper's conclusion names this as future work ("how to
// automatically select system settings, such as the number of nodes, to
// run the analysis code"), and its Fig. 11 observation motivates it:
// compute scales ~perfectly while I/O efficiency decays, so there is a
// sweet spot (364 of 1456 nodes on Cori). This module closes that loop:
// it combines a calibrated per-unit compute cost with the same
// alpha-beta network and storage models the benches use, sweeps the
// node count, and returns the predicted optimum.
#pragma once

#include <cstddef>
#include <vector>

#include "dassa/core/haee.hpp"
#include "dassa/io/par_read.hpp"
#include "dassa/io/vca.hpp"
#include "dassa/mpi/cost_model.hpp"

namespace dassa::core {

/// The machine being tuned for.
struct ClusterSpec {
  int max_nodes = 1456;      ///< the paper's Cori allocation
  int cores_per_node = 8;
  io::IoCostParams io{};
  mpi::CostParams net{};
};

/// The job being tuned: a VCA-shaped input plus a calibrated per-unit
/// compute cost (one unit = one channel for row UDFs, one cell for
/// cell UDFs).
struct WorkloadSpec {
  Shape2D data_shape;           ///< channels x samples
  std::size_t file_count = 1;
  std::size_t file_bytes = 0;   ///< in-memory bytes of one file
  std::size_t work_units = 0;   ///< channels (row UDF) or cells (cell UDF)
  double seconds_per_unit = 0;  ///< single-core compute cost per unit
  EngineMode mode = EngineMode::kHybrid;
  ReadMethod read = ReadMethod::kCommunicationAvoiding;
};

/// Predicted cost at one node count.
struct TunePoint {
  int nodes = 0;
  double compute_seconds = 0.0;
  double io_seconds = 0.0;
  [[nodiscard]] double total() const { return compute_seconds + io_seconds; }
};

struct TuneResult {
  std::vector<TunePoint> sweep;  ///< ordered by node count
  int best_nodes = 1;            ///< argmin of total() (fastest)
  double best_seconds = 0.0;
  /// The knee point: the smallest node count beyond which doubling the
  /// nodes no longer buys at least `kKneeSpeedup` speedup. This is the
  /// "best efficiency" notion under which the paper calls 364 of 1456
  /// nodes its sweet spot -- past the knee you pay nodes for little
  /// time.
  int recommended_nodes = 1;
  double recommended_seconds = 0.0;

  static constexpr double kKneeSpeedup = 1.4;
};

/// Predicted per-job cost at `nodes` nodes under the workload's engine
/// mode and read method (the closed-form companion of the benches'
/// measured counters).
[[nodiscard]] TunePoint predict(const ClusterSpec& cluster,
                                const WorkloadSpec& workload, int nodes);

/// Sweep node counts 1..cluster.max_nodes (geometrically, then refine
/// around the minimum) and return the predicted optimum.
[[nodiscard]] TuneResult autotune_nodes(const ClusterSpec& cluster,
                                        const WorkloadSpec& workload);

/// Calibrate `seconds_per_unit` for a row UDF by timing it on
/// `sample_rows` representative channels of the input.
[[nodiscard]] double calibrate_row_udf(const io::ArraySource& source,
                                       const RowUdf& udf,
                                       std::size_t sample_rows = 4);

/// Build a WorkloadSpec for a row-UDF job over a VCA.
[[nodiscard]] WorkloadSpec workload_for_rows(const io::Vca& vca,
                                             double seconds_per_unit);

}  // namespace dassa::core
