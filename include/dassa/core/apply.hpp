// ArrayUDF core: the Apply operator, B = Apply(A, f).
//
// Three execution backends of the same operator:
//  * apply_cells_serial  -- reference sequential execution;
//  * apply_cells_mt      -- ApplyMT, paper Algorithm 1, on DASSA's
//                           explicit thread pool (per-thread result
//                           vectors + prefix merge);
//  * apply_cells_omp     -- ApplyMT verbatim with OpenMP pragmas, for
//                           single-rank (node-local) execution where no
//                           MiniMPI rank threads compete for the OpenMP
//                           runtime.
// Row-granularity variants run a UDF once per channel instead of once
// per cell (Algorithm 3 operates per channel).
#pragma once

#include <functional>
#include <vector>

#include "dassa/common/shape.hpp"
#include "dassa/common/thread_pool.hpp"
#include "dassa/core/array.hpp"
#include "dassa/core/stencil.hpp"

namespace dassa::core {

/// UDF evaluated on each cell; must be thread-safe (it is invoked
/// concurrently from ApplyMT threads).
using ScalarUdf = std::function<double(const Stencil&)>;

/// UDF evaluated once per channel; returns that channel's output time
/// series. All rows must return the same length.
using RowUdf = std::function<std::vector<double>(const Stencil&)>;

/// One rank's local view of the distributed array: the owned channel
/// rows plus ghost rows (halo channels) above and below.
struct LocalBlock {
  std::vector<double> data;  ///< (halo_lo + owned + halo_hi) x cols
  Shape2D block_shape;       ///< shape of `data`
  std::size_t global_row0 = 0;  ///< global channel index of local row 0
  Range owned_local;         ///< local row range holding owned channels
  Shape2D global_shape;      ///< shape of the full distributed array

  /// Build a block with no halo from a full in-memory array (single
  /// rank / single node case).
  static LocalBlock whole(const Array2D& a) {
    return LocalBlock{a.data, a.shape, 0, Range{0, a.shape.rows}, a.shape};
  }

  [[nodiscard]] std::size_t owned_rows() const { return owned_local.size(); }
};

/// Sequential Apply: one output value per owned cell.
[[nodiscard]] Array2D apply_cells_serial(const LocalBlock& block,
                                         const ScalarUdf& udf);

/// ApplyMT (Algorithm 1) on an explicit thread pool: the linearised
/// owned cells are split statically across pool threads; each thread
/// appends into its private result vector; results are merged into the
/// output at prefix offsets.
[[nodiscard]] Array2D apply_cells_mt(const LocalBlock& block,
                                     const ScalarUdf& udf, ThreadPool& pool);

/// ApplyMT via OpenMP, for single-rank execution. `threads` <= 0 uses
/// the OpenMP default.
[[nodiscard]] Array2D apply_cells_omp(const LocalBlock& block,
                                      const ScalarUdf& udf, int threads);

/// Ablation variant of apply_cells_mt: threads write straight into the
/// pre-sized output instead of staging per-thread vectors (benched in
/// bench_fig8 as a design-choice ablation).
[[nodiscard]] Array2D apply_cells_mt_direct(const LocalBlock& block,
                                            const ScalarUdf& udf,
                                            ThreadPool& pool);

/// Sequential per-channel Apply. Output: owned_rows x L where L is the
/// UDF's output length.
[[nodiscard]] Array2D apply_rows_serial(const LocalBlock& block,
                                        const RowUdf& udf);

/// ApplyMT per channel on an explicit thread pool.
[[nodiscard]] Array2D apply_rows_mt(const LocalBlock& block, const RowUdf& udf,
                                    ThreadPool& pool);

/// ApplyMT per channel via OpenMP (single-rank execution).
[[nodiscard]] Array2D apply_rows_omp(const LocalBlock& block,
                                     const RowUdf& udf, int threads);

}  // namespace dassa::core
