// ArrayUDF core: dense in-memory 2D array value type.
#pragma once

#include <span>
#include <vector>

#include "dassa/common/bounds.hpp"
#include "dassa/common/shape.hpp"

namespace dassa::core {

/// A dense row-major 2D array of doubles. Rows are channels and
/// columns are time samples everywhere in DASSA.
struct Array2D {
  Shape2D shape;
  std::vector<double> data;

  Array2D() = default;
  Array2D(Shape2D s, double fill = 0.0) : shape(s), data(s.size(), fill) {}
  Array2D(Shape2D s, std::vector<double> d) : shape(s), data(std::move(d)) {
    DASSA_CHECK(data.size() == shape.size(),
                "array data does not match shape");
  }

  /// Element access; unchecked in release builds, checked (throws
  /// InvalidArgument) under -DDASSA_DEBUG_BOUNDS=ON.
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data[shape.at(r, c)];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data[shape.at(r, c)];
  }

  /// Contiguous view of one row (one channel's time series).
  /// (Indexes r * cols directly: valid even when cols == 0, where
  /// shape.at(r, 0) would flag column 0 as out of range.)
  [[nodiscard]] std::span<double> row(std::size_t r) {
    DASSA_BOUNDS_CHECK(r < shape.rows, "row " + std::to_string(r) +
                                           " outside " + shape.str());
    return {data.data() + r * shape.cols, shape.cols};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    DASSA_BOUNDS_CHECK(r < shape.rows, "row " + std::to_string(r) +
                                           " outside " + shape.str());
    return {data.data() + r * shape.cols, shape.cols};
  }

  friend bool operator==(const Array2D&, const Array2D&) = default;
};

}  // namespace dassa::core
