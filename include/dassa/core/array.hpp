// ArrayUDF core: dense in-memory 2D array value type.
#pragma once

#include <span>
#include <vector>

#include "dassa/common/shape.hpp"

namespace dassa::core {

/// A dense row-major 2D array of doubles. Rows are channels and
/// columns are time samples everywhere in DASSA.
struct Array2D {
  Shape2D shape;
  std::vector<double> data;

  Array2D() = default;
  Array2D(Shape2D s, double fill = 0.0) : shape(s), data(s.size(), fill) {}
  Array2D(Shape2D s, std::vector<double> d) : shape(s), data(std::move(d)) {
    DASSA_CHECK(data.size() == shape.size(),
                "array data does not match shape");
  }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data[shape.at(r, c)];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data[shape.at(r, c)];
  }

  /// Contiguous view of one row (one channel's time series).
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data.data() + shape.at(r, 0), shape.cols};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data.data() + shape.at(r, 0), shape.cols};
  }

  friend bool operator==(const Array2D&, const Array2D&) = default;
};

}  // namespace dassa::core
