// HAEE: the Hybrid ArrayUDF Execution Engine (paper Section V-B).
//
// The engine runs a UDF over a VCA-backed DAS array on a simulated
// cluster of `nodes` computing nodes with `cores_per_node` cores each,
// in either of the paper's two configurations:
//
//  * kMpiPerCore -- the original ArrayUDF model: one MPI rank per CPU
//    core (nodes x cores ranks), no threading. Every rank issues its
//    own I/O and holds its own copy of any shared state (the
//    master-channel duplication of Section V-B).
//
//  * kHybrid -- HAEE: one MPI rank per node, `cores_per_node` threads
//    inside each rank via ApplyMT. One I/O stream per node (16x fewer
//    I/O calls in the paper's Cori runs) and shared per-node state.
//
// Per-rank flow: communication-avoiding parallel read of the rank's
// channel block -> point-to-point halo (ghost-zone) exchange with the
// neighbouring ranks -> Apply/ApplyMT -> optional gather of the output
// to rank 0. Stage wall times are taken as the max over ranks.
#pragma once

#include <optional>

#include "dassa/common/timer.hpp"
#include "dassa/core/apply.hpp"
#include "dassa/io/par_read.hpp"
#include "dassa/io/par_write.hpp"
#include "dassa/io/vca.hpp"
#include "dassa/mpi/runtime.hpp"
#include "dassa/mpi/telemetry.hpp"

namespace dassa::core {

enum class EngineMode {
  kMpiPerCore,  ///< original ArrayUDF: 1 rank per core, no threads
  kHybrid,      ///< HAEE: 1 rank per node, cores_per_node threads
};

enum class ReadMethod {
  kCollectivePerFile,      ///< paper Fig. 5a
  kCommunicationAvoiding,  ///< paper Fig. 5b (DASSA's default)
  kDirectPerRank,          ///< original ArrayUDF: every rank reads its
                           ///< block from every file (O(p*n) requests)
};

/// How a rank obtains its ghost channels (DESIGN.md ablation #4).
enum class HaloMode {
  kExchange,     ///< point-to-point exchange with neighbour ranks
                 ///< (2 messages per rank; ArrayUDF's design)
  kOverlapRead,  ///< each rank re-reads its halo rows from the VCA
                 ///< (no communication, O(files) extra small reads)
};

struct EngineConfig {
  int nodes = 1;
  int cores_per_node = 1;
  EngineMode mode = EngineMode::kHybrid;
  ReadMethod read_method = ReadMethod::kCommunicationAvoiding;
  std::size_t halo_channels = 0;  ///< ghost-zone width for cell UDFs
  HaloMode halo_mode = HaloMode::kExchange;
  bool gather_output = true;      ///< gather result rows onto rank 0
  /// When non-empty, the engine also writes the output as one DASH5
  /// file via the distributed parallel writer (every rank patches its
  /// own channel block -- the paper's "single and big array" write).
  std::string output_path;
  io::IoCostParams io_cost{};
  mpi::CostParams net_cost{};

  [[nodiscard]] int world_size() const {
    return mode == EngineMode::kHybrid ? nodes : nodes * cores_per_node;
  }
  [[nodiscard]] int threads_per_rank() const {
    return mode == EngineMode::kHybrid ? cores_per_node : 1;
  }
};

/// A per-rank context handed to UDF factories, so pipelines can stage
/// rank-wide state (e.g. the FFT of the master channel) exactly once
/// per rank -- which is once per *node* under kHybrid and once per
/// *core* under kMpiPerCore, reproducing the duplication the paper
/// measures.
struct RankContext {
  mpi::Comm& comm;
  const LocalBlock& block;
  int threads = 1;
};

/// Factory invoked once per rank after the read+halo phase; returns the
/// UDF that ApplyMT then runs (must be thread-safe).
using ScalarUdfFactory = std::function<ScalarUdf(const RankContext&)>;
using RowUdfFactory = std::function<RowUdf(const RankContext&)>;

/// What a distributed run produced.
struct EngineReport {
  Array2D output;          ///< gathered on rank 0 (empty if !gather_output)
  StageTimes stages;       ///< per stage: max wall seconds over ranks
  mpi::CommStats comm;     ///< aggregate message counts, max modeled time
  int world_size = 0;
  int threads_per_rank = 0;
  /// Modeled per-node peak bytes: local block + output + per-rank
  /// duplicated state reported by the UDF factory via `extra_bytes`.
  std::uint64_t modeled_peak_bytes_per_node = 0;
  /// Cross-rank telemetry reduced onto rank 0 at the end of the run:
  /// per-rank read bytes / rows / comm traffic with cluster-wide
  /// aggregates and imbalance ratios (das_analyze --telemetry).
  mpi::ClusterTelemetry telemetry;
};

/// Run a cell-granularity UDF (e.g. local similarity) distributed.
[[nodiscard]] EngineReport run_cells(const EngineConfig& config,
                                     const io::Vca& vca,
                                     const ScalarUdfFactory& factory);

/// Run a channel-granularity UDF (e.g. interferometry) distributed.
/// `extra_bytes_per_rank`, if provided, is the size of rank-duplicated
/// state (master channel etc.) used for the memory model.
[[nodiscard]] EngineReport run_rows(const EngineConfig& config,
                                    const io::Vca& vca,
                                    const RowUdfFactory& factory,
                                    std::size_t extra_bytes_per_rank = 0);

/// Exchange `halo` ghost channels with the neighbouring ranks and
/// return the rank's local block (exposed for tests).
[[nodiscard]] LocalBlock build_local_block(
    mpi::Comm& comm, const io::ParallelReadResult& read, Shape2D global,
    std::size_t halo);

/// Ghost channels obtained by re-reading the halo rows from the VCA
/// instead of communicating (HaloMode::kOverlapRead). The extra reads
/// are charged to the rank's modeled time under `io`.
[[nodiscard]] LocalBlock build_local_block_overlap(
    mpi::Comm& comm, const io::Vca& vca, const io::ParallelReadResult& read,
    Shape2D global, std::size_t halo, const io::IoCostParams& io = {});

}  // namespace dassa::core
