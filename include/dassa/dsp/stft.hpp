// DasLib: short-time Fourier transform / spectrogram.
//
// The frequency-domain inspection tool geophysicists use to pick the
// interferometry band (e.g. the paper's traffic-noise band selection
// follows the spectral content of vehicle signals).
#pragma once

#include <span>
#include <vector>

#include "dassa/common/shape.hpp"
#include "dassa/dsp/fft.hpp"

namespace dassa::dsp {

struct StftParams {
  std::size_t window = 256;  ///< samples per frame (any length >= 2)
  std::size_t hop = 128;     ///< frame advance (>= 1)
  bool hann = true;          ///< apply a Hann window per frame
};

/// Complex STFT: result[frame][bin], frames x (window/2 + 1) one-sided
/// bins (the input is real, so the upper half of each frame's spectrum
/// is the conjugate mirror and is not materialised). The last partial
/// frame is dropped (MATLAB spectrogram convention).
[[nodiscard]] std::vector<std::vector<cplx>> stft(std::span<const double> x,
                                                  const StftParams& params);

/// Power spectrogram: frames x (window/2 + 1) one-sided magnitudes
/// squared, row-major in a flat vector with the shape alongside.
struct Spectrogram {
  Shape2D shape;  ///< frames x bins
  std::vector<double> power;

  [[nodiscard]] double at(std::size_t frame, std::size_t bin) const {
    return power[shape.at(frame, bin)];
  }
};

[[nodiscard]] Spectrogram spectrogram(std::span<const double> x,
                                      const StftParams& params);

/// Frequency (Hz) of one-sided bin `bin` given the sampling rate.
[[nodiscard]] double bin_frequency_hz(std::size_t bin, std::size_t window,
                                      double sampling_hz);

}  // namespace dassa::dsp
