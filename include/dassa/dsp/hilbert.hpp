// DasLib: analytic signal, envelope and instantaneous phase via the
// Hilbert transform (FFT method). Envelopes are standard DAS
// post-processing for arrival picking on detection maps.
#pragma once

#include <span>
#include <vector>

#include "dassa/dsp/fft.hpp"

namespace dassa::dsp {

/// Analytic signal z = x + i*H(x) computed with the FFT method
/// (double the positive frequencies, zero the negative ones).
[[nodiscard]] std::vector<cplx> analytic_signal(std::span<const double> x);

/// |analytic_signal(x)| -- the instantaneous amplitude envelope.
[[nodiscard]] std::vector<double> envelope(std::span<const double> x);

/// Instantaneous phase arg(z) in radians, unwrapped along time.
[[nodiscard]] std::vector<double> instantaneous_phase(
    std::span<const double> x);

}  // namespace dassa::dsp
