// DasLib: Das_resample (paper Table II) -- rational-rate polyphase
// resampling following MATLAB resample(x, p, q) semantics.
//
// The interferometry pipeline (paper Algorithm 3) downsamples raw
// 500 Hz DAS channels before the FFT. Resampling is implemented as
// upfirdn: zero-stuff by `up`, filter with a Kaiser-windowed sinc
// anti-alias lowpass, downsample by `down`, with group-delay
// compensation so output sample m corresponds to input time
// m * down / up.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dassa::dsp {

/// Resample x by the rational factor up/down. Output length is
/// ceil(n * up / down). up and down must be positive.
[[nodiscard]] std::vector<double> resample(std::span<const double> x,
                                           std::size_t up, std::size_t down);

/// The anti-alias FIR used by resample(), exposed for testing: a
/// Kaiser-windowed sinc lowpass with cutoff min(1/up, 1/down) relative
/// to the upsampled Nyquist, of odd length 2*10*max(up,down)+1.
[[nodiscard]] std::vector<double> resample_filter(std::size_t up,
                                                  std::size_t down);

/// Decimate by an integer factor (resample(x, 1, factor)).
[[nodiscard]] std::vector<double> decimate(std::span<const double> x,
                                           std::size_t factor);

}  // namespace dassa::dsp
