// DasLib: Das_interp1 (paper Table II) -- 1D linear interpolation
// following MATLAB interp1(x0, y0, x) semantics.
#pragma once

#include <span>
#include <vector>

namespace dassa::dsp {

/// Linearly interpolate samples (x0, y0) at query points x.
/// x0 must be strictly increasing; queries outside [x0.front(),
/// x0.back()] are clamped to the edge values (MATLAB 'extrap' with
/// nearest edge, the convention the DAS pipeline uses for resampled
/// boundaries).
[[nodiscard]] std::vector<double> interp1(std::span<const double> x0,
                                          std::span<const double> y0,
                                          std::span<const double> x);

/// Fast path for uniformly spaced source samples: y0 sampled at
/// t = 0, dt, 2 dt, ...; evaluated at arbitrary query times.
[[nodiscard]] std::vector<double> interp1_uniform(std::span<const double> y0,
                                                  double dt,
                                                  std::span<const double> x);

}  // namespace dassa::dsp
