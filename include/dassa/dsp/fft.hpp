// DasLib: fast Fourier transform (Das_fft / Das_ifft in paper Table II).
//
// From-scratch FFT since no FFTW is available on the target system:
// iterative radix-2 Cooley-Tukey for power-of-two lengths, with
// Bluestein's chirp-z algorithm for arbitrary lengths (resampling and
// correlation of 1-minute DAS records produce non-power-of-two sizes).
//
// The engine is organised FFTW-style around two objects:
//
//  * FftPlan -- an immutable, size-keyed plan holding everything that
//    depends only on the transform length: twiddle factors, the
//    bit-reversal permutation, and (for non-power-of-two sizes) the
//    Bluestein chirp together with the precomputed spectrum of its
//    padded filter. Plans are built once per size and shared through a
//    read-mostly cache (dassa::SharedMutex); DAS pipelines transform
//    ~10^4 identical-length channels, so after the first row every
//    lookup is a shared-lock hit.
//
//  * FftWorkspace -- a per-thread scratch arena. Buffers grow to the
//    high-water mark of the sizes seen on that thread and are then
//    reused, so steady-state transforms of a repeated length perform
//    zero heap allocations (asserted by tests via dsp_stats()).
//    Complex slots 0-1 and no real slots are reserved by the engine
//    itself; kernel code (xcorr, filtfilt, ...) uses slots >= 2.
//
// All entry points are thread-safe: plans are immutable after
// construction and each thread owns its workspace, as DasLib functions
// run concurrently inside ApplyMT/HAEE threads.
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace dassa::dsp {

using cplx = std::complex<double>;

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// True iff n is a power of two (n >= 1).
[[nodiscard]] bool is_pow2(std::size_t n);

/// Per-thread scratch arena. Buffers only ever grow (to the largest
/// size requested on this thread), so repeated transforms allocate
/// nothing after warm-up. Obtain the calling thread's arena with
/// fft_workspace().
class FftWorkspace {
 public:
  static constexpr std::size_t kComplexSlots = 6;
  static constexpr std::size_t kRealSlots = 6;

  /// Complex scratch buffer `slot`, resized to n elements (contents
  /// unspecified). Slots 0-1 are reserved for the FFT engine itself.
  std::vector<cplx>& cbuf(std::size_t slot, std::size_t n);

  /// Real scratch buffer `slot`, resized to n elements (contents
  /// unspecified).
  std::vector<double>& rbuf(std::size_t slot, std::size_t n);

 private:
  std::array<std::vector<cplx>, kComplexSlots> cplx_{};
  std::array<std::vector<double>, kRealSlots> real_{};
};

/// The calling thread's workspace (thread_local).
[[nodiscard]] FftWorkspace& fft_workspace();

/// Cached transform plan for one length. Immutable after construction;
/// safe to share across threads. Obtain via FftPlan::get().
class FftPlan {
 public:
  /// Fetch (or build and cache) the plan for length n >= 1. Lookups
  /// take a shared lock; only the first call per size builds tables.
  [[nodiscard]] static std::shared_ptr<const FftPlan> get(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Number of non-redundant bins of a real transform: n/2 + 1.
  [[nodiscard]] std::size_t half_bins() const noexcept { return n_ / 2 + 1; }

  /// In-place forward DFT of x[0..n), unnormalised.
  void forward(cplx* x, FftWorkspace& ws) const;

  /// In-place inverse DFT of x[0..n), normalised by 1/n.
  void inverse(cplx* x, FftWorkspace& ws) const;

  /// Real-input forward DFT: writes half_bins() bins (k = 0 .. n/2) to
  /// `out`. Even lengths use the packed half-size complex transform;
  /// the remaining n/2-1 bins of the full spectrum are the conjugate
  /// mirror. `out` must not alias `x`.
  void forward_real(const double* x, cplx* out, FftWorkspace& ws) const;

  /// Inverse of forward_real: consumes half_bins() bins (the implied
  /// full spectrum is the Hermitian extension) and writes n real
  /// samples, normalised by 1/n. `out` must not alias `spec`.
  void inverse_real(const cplx* spec, double* out, FftWorkspace& ws) const;

  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

 private:
  explicit FftPlan(std::size_t n);

  void radix2(cplx* x, bool invert) const;
  void bluestein_forward(cplx* x, FftWorkspace& ws) const;

  std::size_t n_;
  bool pow2_;

  // Radix-2 tables (power-of-two lengths only).
  std::vector<cplx> twiddles_;          // e^{-2 pi i k / n}, k < n/2
  std::vector<std::uint32_t> bitrev_;   // permutation, bitrev_[i] < n

  // Bluestein tables (non-power-of-two lengths only).
  std::size_t m_ = 0;                   // padded size: next_pow2(2n-1)
  std::shared_ptr<const FftPlan> sub_;  // radix-2 plan of size m
  std::vector<cplx> chirp_;             // e^{-pi i k^2 / n}, k < n
  std::vector<cplx> chirp_spec_;        // FFT_m of the padded conj chirp

  // Real-input recombination tables (even lengths only).
  std::shared_ptr<const FftPlan> half_;  // plan of size n/2
  std::vector<cplx> rtw_;                // e^{-2 pi i k / n}, k <= n/2
};

/// In-place forward DFT of arbitrary length (unnormalised):
/// X[k] = sum_j x[j] e^{-2 pi i jk / n}.
void fft_inplace(std::vector<cplx>& x);

/// In-place inverse DFT of arbitrary length, normalised by 1/n.
void ifft_inplace(std::vector<cplx>& x);

/// Forward DFT of a real signal; returns all n complex bins. The upper
/// half is the conjugate mirror of the lower half (computed via the
/// half-spectrum transform, so this costs one complex FFT of length
/// n/2, not n). Kept for consumers that index negative frequencies;
/// new code should prefer rfft_half.
[[nodiscard]] std::vector<cplx> rfft(std::span<const double> x);

/// Real-input forward DFT returning only the n/2 + 1 non-redundant
/// bins (k = 0 .. n/2).
[[nodiscard]] std::vector<cplx> rfft_half(std::span<const double> x);

/// Inverse of rfft_half: reconstructs the length-n real signal from
/// its n/2 + 1 half-spectrum bins. `n` disambiguates even/odd lengths
/// (both n and n+1 produce n/2 + 1 bins when n is even).
[[nodiscard]] std::vector<double> irfft_half(std::span<const cplx> spectrum,
                                             std::size_t n);

/// Batched row transform: `rows` independent real transforms of length
/// `cols` over a contiguous row-major buffer (data.size() == rows *
/// cols), sharing one plan and the calling thread's workspace. Returns
/// one half spectrum (cols/2 + 1 bins) per row.
[[nodiscard]] std::vector<std::vector<cplx>> rfft_half_batch(
    std::span<const double> data, std::size_t rows, std::size_t cols);

/// Inverse DFT returning the real part only (for spectra known to be
/// conjugate-symmetric up to rounding).
[[nodiscard]] std::vector<double> irfft_real(std::span<const cplx> spectrum);

/// Convenience copies of the in-place transforms.
[[nodiscard]] std::vector<cplx> fft(std::vector<cplx> x);
[[nodiscard]] std::vector<cplx> ifft(std::vector<cplx> x);

}  // namespace dassa::dsp
