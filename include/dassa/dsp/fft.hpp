// DasLib: fast Fourier transform (Das_fft / Das_ifft in paper Table II).
//
// From-scratch FFT since no FFTW is available on the target system:
// iterative radix-2 Cooley-Tukey for power-of-two lengths, with
// Bluestein's chirp-z algorithm for arbitrary lengths (resampling and
// correlation of 1-minute DAS records produce non-power-of-two sizes).
// All entry points are thread-safe: twiddle tables are shared through
// an internal mutex-protected cache, as DasLib functions run
// concurrently inside ApplyMT threads.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace dassa::dsp {

using cplx = std::complex<double>;

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// True iff n is a power of two (n >= 1).
[[nodiscard]] bool is_pow2(std::size_t n);

/// In-place forward DFT of arbitrary length (unnormalised):
/// X[k] = sum_j x[j] e^{-2 pi i jk / n}.
void fft_inplace(std::vector<cplx>& x);

/// In-place inverse DFT of arbitrary length, normalised by 1/n.
void ifft_inplace(std::vector<cplx>& x);

/// Forward DFT of a real signal; returns all n complex bins.
[[nodiscard]] std::vector<cplx> rfft(std::span<const double> x);

/// Inverse DFT returning the real part only (for spectra known to be
/// conjugate-symmetric up to rounding).
[[nodiscard]] std::vector<double> irfft_real(std::span<const cplx> spectrum);

/// Convenience copies of the in-place transforms.
[[nodiscard]] std::vector<cplx> fft(std::vector<cplx> x);
[[nodiscard]] std::vector<cplx> ifft(std::vector<cplx> x);

}  // namespace dassa::dsp
