// DasLib: median filtering -- robust despiking for DAS channels
// (optical interrogators produce occasional spike artefacts that mean-
// based pre-processing smears across the window).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dassa::dsp {

/// Centered moving median with window 2*half+1, edges clamped.
[[nodiscard]] std::vector<double> median_filter(std::span<const double> x,
                                                std::size_t half);

/// Replace samples deviating from the local median by more than
/// `k_mad` times the local MAD (median absolute deviation) with the
/// local median. Returns the despiked copy.
[[nodiscard]] std::vector<double> despike_mad(std::span<const double> x,
                                              std::size_t half, double k_mad);

/// Median of a buffer (by copy; n log n).
[[nodiscard]] double median(std::vector<double> values);

}  // namespace dassa::dsp
