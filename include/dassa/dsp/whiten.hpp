// DasLib: spectral whitening and one-bit normalisation.
//
// Ambient-noise interferometry pre-processing flattens the amplitude
// spectrum inside the analysis band so that persistent narrowband
// sources (traffic harmonics) do not dominate the noise correlation.
#pragma once

#include <span>
#include <vector>

#include "dassa/dsp/fft.hpp"

namespace dassa::dsp {

/// Whiten a real signal: divide each FFT bin by its amplitude spectrum
/// smoothed with a moving average of `smooth_bins` (>= 1) bins, then
/// inverse transform. Bins with near-zero smoothed amplitude are left
/// untouched to avoid noise blow-up.
[[nodiscard]] std::vector<double> spectral_whiten(std::span<const double> x,
                                                  std::size_t smooth_bins);

/// One-bit normalisation: sign(x) per sample. A classical amplitude
/// normalisation in ambient-noise processing.
[[nodiscard]] std::vector<double> one_bit(std::span<const double> x);

/// Running-absolute-mean normalisation with window half-width `half`:
/// x[i] / mean(|x[i-half .. i+half]|), edges clamped.
[[nodiscard]] std::vector<double> ram_normalize(std::span<const double> x,
                                                std::size_t half);

}  // namespace dassa::dsp
