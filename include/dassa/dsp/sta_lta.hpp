// DasLib: STA/LTA (short-term average over long-term average) event
// detection -- the classical single-channel seismic trigger, included
// as the conventional baseline against which local similarity (paper
// Algorithm 2) is an array-aware improvement.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dassa::dsp {

struct StaLtaParams {
  std::size_t sta = 50;   ///< short window, samples
  std::size_t lta = 500;  ///< long window, samples (> sta)
};

/// Classic recursive STA/LTA characteristic function on |x|^2:
/// ratio[i] = STA(i) / LTA(i), with LTA frozen below `lta` warm-up
/// samples (set to 0 there).
[[nodiscard]] std::vector<double> sta_lta(std::span<const double> x,
                                          const StaLtaParams& params);

/// A contiguous [on, off) region where the ratio exceeds on/off levels
/// (standard trigger hysteresis).
struct Trigger {
  std::size_t on = 0;
  std::size_t off = 0;
  double peak_ratio = 0.0;
  friend bool operator==(const Trigger&, const Trigger&) = default;
};

/// Extract triggers: start where ratio > on_level, end where it drops
/// below off_level.
[[nodiscard]] std::vector<Trigger> pick_triggers(
    std::span<const double> ratio, double on_level, double off_level);

}  // namespace dassa::dsp
