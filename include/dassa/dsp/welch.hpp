// DasLib: Welch power spectral density and magnitude-squared coherence.
//
// The QC companions of ambient-noise interferometry: the PSD identifies
// the traffic-noise band worth correlating (which the paper's pipeline
// takes as a given), and the coherence between a channel pair measures
// how much of that band is actually shared -- the quantity stacking is
// supposed to accumulate.
#pragma once

#include <span>
#include <vector>

#include "dassa/dsp/fft.hpp"

namespace dassa::dsp {

struct WelchParams {
  std::size_t segment = 256;  ///< samples per segment
  std::size_t overlap = 128;  ///< overlapping samples (< segment)
  bool hann = true;           ///< Hann-window each segment
};

/// One-sided Welch PSD estimate: segment/2 + 1 bins, averaged
/// periodograms of detrended, windowed segments. Normalised so that
/// sum(psd) * (fs / segment) ~ signal variance (density convention).
[[nodiscard]] std::vector<double> welch_psd(std::span<const double> x,
                                            double sampling_hz,
                                            const WelchParams& params);

/// Magnitude-squared coherence C_xy(f) = |S_xy|^2 / (S_xx * S_yy),
/// one-sided, in [0, 1] per bin. Requires >= 2 segments (with a single
/// segment the estimate is identically 1).
[[nodiscard]] std::vector<double> coherence(std::span<const double> x,
                                            std::span<const double> y,
                                            const WelchParams& params);

/// Frequency (Hz) of Welch bin `bin`.
[[nodiscard]] double welch_bin_hz(std::size_t bin, double sampling_hz,
                                  const WelchParams& params);

}  // namespace dassa::dsp
