// DasLib: DSP-layer performance statistics.
//
// The FFT plan cache, Butterworth design cache, and resample filter
// cache sit on the hottest per-channel paths, where a mutex-protected
// counter per transform would serialise ApplyMT/HAEE worker threads.
// They therefore record hits/misses/bytes in lock-free relaxed atomics,
// and `publish_dsp_counters()` copies the totals into the process-wide
// `global_counters()` registry on demand (benches and tools call it
// once before printing a summary).
#pragma once

#include <atomic>
#include <cstdint>

namespace dassa::dsp {

/// Monotonic snapshot of the DSP caches' behaviour since process start
/// (or the last `reset_dsp_stats()`).
struct DspStats {
  std::uint64_t fft_plan_hits = 0;    ///< plan-cache lookups that hit
  std::uint64_t fft_plan_misses = 0;  ///< lookups that built a new plan
  /// Heap bytes allocated by the FFT layer: plan tables plus per-thread
  /// workspace growth. Steady-state transforms of an already-seen size
  /// do not move this counter -- tests assert exactly that.
  std::uint64_t fft_bytes_allocated = 0;
  std::uint64_t butter_design_hits = 0;
  std::uint64_t butter_design_misses = 0;
  std::uint64_t resample_design_hits = 0;
  std::uint64_t resample_design_misses = 0;
};

/// Consistent-enough snapshot of the atomics (each cell read relaxed).
[[nodiscard]] DspStats dsp_stats();

/// Zeroes every cell. Tests and benches call this between experiments.
void reset_dsp_stats();

/// Copies the current totals into `global_counters()` under the
/// `dsp.*` names from common/counters.hpp. Uses high_water semantics so
/// repeated publishes refresh rather than double-count.
void publish_dsp_counters();

namespace detail {

/// The raw cells. Incremented with relaxed ordering from kernel code;
/// exposed so the dsp translation units can share them without a
/// function call per event.
struct DspStatCells {
  std::atomic<std::uint64_t> fft_plan_hits{0};
  std::atomic<std::uint64_t> fft_plan_misses{0};
  std::atomic<std::uint64_t> fft_bytes_allocated{0};
  std::atomic<std::uint64_t> butter_design_hits{0};
  std::atomic<std::uint64_t> butter_design_misses{0};
  std::atomic<std::uint64_t> resample_design_hits{0};
  std::atomic<std::uint64_t> resample_design_misses{0};
};

DspStatCells& dsp_stat_cells();

}  // namespace detail

}  // namespace dassa::dsp
