// DasLib: Butterworth IIR filter design (Das_butter in paper Table II).
//
// Digital Butterworth filters via the classical analog-prototype path:
// s-plane prototype poles -> frequency transformation (lp2lp / lp2hp /
// lp2bp) -> bilinear transform -> transfer-function coefficients.
// Cutoffs follow the MATLAB convention: normalised to the Nyquist
// frequency, i.e. in (0, 1).
#pragma once

#include "dassa/dsp/filter.hpp"

namespace dassa::dsp {

/// Lowpass Butterworth of given order; wn in (0, 1) (Nyquist-relative).
[[nodiscard]] FilterCoeffs butter_lowpass(int order, double wn);

/// Highpass Butterworth of given order; wn in (0, 1).
[[nodiscard]] FilterCoeffs butter_highpass(int order, double wn);

/// Bandpass Butterworth; 0 < w_lo < w_hi < 1. The resulting filter has
/// order 2*`order` (order poles from each band edge), as in MATLAB
/// butter(n, [lo hi]).
[[nodiscard]] FilterCoeffs butter_bandpass(int order, double w_lo,
                                           double w_hi);

}  // namespace dassa::dsp
