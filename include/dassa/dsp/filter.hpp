// DasLib: IIR filtering (Das_filtfilt in paper Table II).
//
// lfilter is a direct-form II transposed IIR filter; filtfilt applies
// it forward and backward for zero-phase response, with odd-reflection
// edge padding and steady-state initial conditions, matching the
// MATLAB/scipy filtfilt convention the paper's pipeline relies on.
#pragma once

#include <span>
#include <vector>

namespace dassa::dsp {

/// Transfer-function coefficients: H(z) = B(z) / A(z), a[0] != 0.
struct FilterCoeffs {
  std::vector<double> b;
  std::vector<double> a;
};

/// Single-pass IIR filter (direct form II transposed), zero initial
/// state. Matches MATLAB filter(b, a, x).
[[nodiscard]] std::vector<double> lfilter(const FilterCoeffs& f,
                                          std::span<const double> x);

/// Single-pass IIR filter with explicit initial state `zi` (length
/// max(|a|,|b|) - 1). The state is updated in place so callers can
/// stream blocks.
[[nodiscard]] std::vector<double> lfilter(const FilterCoeffs& f,
                                          std::span<const double> x,
                                          std::vector<double>& zi);

/// Steady-state initial conditions for a unit-amplitude input: scaled
/// by the first sample, they suppress the filter's startup transient
/// (MATLAB/scipy lfilter_zi).
[[nodiscard]] std::vector<double> lfilter_zi(const FilterCoeffs& f);

/// Zero-phase forward-backward filtering with odd-reflection padding of
/// length 3*(max(|a|,|b|)-1). Requires x.size() > padding length.
[[nodiscard]] std::vector<double> filtfilt(const FilterCoeffs& f,
                                           std::span<const double> x);

}  // namespace dassa::dsp
