// DasLib: Das_detrend (paper Table II) -- remove the best straight-line
// fit from a signal, following MATLAB detrend semantics.
#pragma once

#include <span>
#include <vector>

namespace dassa::dsp {

/// Subtract the least-squares straight line from x (MATLAB
/// detrend(x, 'linear')). Returns the detrended copy.
[[nodiscard]] std::vector<double> detrend_linear(std::span<const double> x);

/// Subtract the mean (MATLAB detrend(x, 'constant')).
[[nodiscard]] std::vector<double> detrend_constant(std::span<const double> x);

/// In-place variants for hot paths.
void detrend_linear_inplace(std::span<double> x);
void detrend_constant_inplace(std::span<double> x);

}  // namespace dassa::dsp
