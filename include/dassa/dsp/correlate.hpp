// DasLib: correlation kernels.
//
// Das_abscorr (paper Table II) is the inner kernel of both case
// studies: local-similarity earthquake detection (Algorithm 2) compares
// windows of neighbouring channels, and traffic-noise interferometry
// (Algorithm 3) correlates each channel spectrum against the master
// channel.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "dassa/dsp/fft.hpp"

namespace dassa::dsp {

/// Absolute correlation |cos(theta(a, b))| = |<a,b>| / (|a||b|).
/// Returns 0 when either vector has zero norm. Sizes must match.
[[nodiscard]] double abscorr(std::span<const double> a,
                             std::span<const double> b);

/// Complex-spectrum variant used by the interferometry UDF: magnitude
/// of the normalised inner product of two spectra.
[[nodiscard]] double abscorr(std::span<const cplx> a, std::span<const cplx> b);

/// Full linear cross-correlation r[k] = sum_j a[j] b[j + k - (nb-1)],
/// k = 0 .. na+nb-2 (lags -(nb-1) .. na-1), computed via FFT. This is
/// the noise-correlation step of ambient-noise interferometry.
[[nodiscard]] std::vector<double> xcorr_full(std::span<const double> a,
                                             std::span<const double> b);

/// Frequency-domain cross-correlation of two already-transformed
/// spectra of equal length: ifft(A * conj(B)), real part.
[[nodiscard]] std::vector<double> xcorr_spectra(std::span<const cplx> a,
                                                std::span<const cplx> b);

/// Pearson correlation coefficient (mean-removed, normalised).
[[nodiscard]] double pearson(std::span<const double> a,
                             std::span<const double> b);

}  // namespace dassa::dsp
