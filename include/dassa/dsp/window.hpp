// DasLib: window/taper functions used by interferometry pre-processing
// and spectral whitening (Hann, Hamming, Blackman, Tukey, Kaiser).
#pragma once

#include <cstddef>
#include <vector>

namespace dassa::dsp {

[[nodiscard]] std::vector<double> hann_window(std::size_t n);
[[nodiscard]] std::vector<double> hamming_window(std::size_t n);
[[nodiscard]] std::vector<double> blackman_window(std::size_t n);

/// Tukey (tapered cosine) window; `alpha` in [0, 1] is the fraction of
/// the window inside the cosine taper (0 = rectangular, 1 = Hann).
[[nodiscard]] std::vector<double> tukey_window(std::size_t n, double alpha);

/// Kaiser window with shape parameter beta (used by the resampler's
/// anti-alias FIR design).
[[nodiscard]] std::vector<double> kaiser_window(std::size_t n, double beta);

/// Zeroth-order modified Bessel function of the first kind (series
/// expansion), needed by the Kaiser window.
[[nodiscard]] double bessel_i0(double x);

/// Multiply a signal by a window in place (sizes must match).
void apply_window(std::vector<double>& x, const std::vector<double>& w);

}  // namespace dassa::dsp
