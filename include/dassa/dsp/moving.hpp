// DasLib: moving-window statistics (moving mean / RMS / max).
// The quickstart example's three-point moving average (paper Section
// II-B Stencil example) and the detection post-processing use these.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dassa::dsp {

/// Centered moving average with window 2*half+1, clamped at the edges.
[[nodiscard]] std::vector<double> moving_mean(std::span<const double> x,
                                              std::size_t half);

/// Centered moving RMS with window 2*half+1, clamped at the edges.
[[nodiscard]] std::vector<double> moving_rms(std::span<const double> x,
                                             std::size_t half);

/// Centered moving maximum of |x| with window 2*half+1 (O(n) via the
/// monotonic-deque algorithm), clamped at the edges.
[[nodiscard]] std::vector<double> moving_absmax(std::span<const double> x,
                                                std::size_t half);

}  // namespace dassa::dsp
