// DasLib umbrella header with the paper's MATLAB-style names.
//
// Paper Table II lists DasLib's public operations using MATLAB signal
// toolbox naming (Das_abscorr, Das_detrend, Das_butter, Das_filtfilt,
// Das_resample, Das_interp1, Das_fft, Das_ifft). This header provides
// those exact entry points as thin aliases over the snake_case kernels,
// so UDF code can be written to read like the paper's algorithms.
// All functions are thread-safe and sequential, by DasLib's contract:
// parallelism comes from the HAEE engine, never from inside a kernel.
#pragma once

#include "dassa/dsp/butterworth.hpp"
#include "dassa/dsp/correlate.hpp"
#include "dassa/dsp/detrend.hpp"
#include "dassa/dsp/fft.hpp"
#include "dassa/dsp/filter.hpp"
#include "dassa/dsp/hilbert.hpp"
#include "dassa/dsp/interp.hpp"
#include "dassa/dsp/median.hpp"
#include "dassa/dsp/moving.hpp"
#include "dassa/dsp/resample.hpp"
#include "dassa/dsp/sta_lta.hpp"
#include "dassa/dsp/welch.hpp"
#include "dassa/dsp/stft.hpp"
#include "dassa/dsp/whiten.hpp"
#include "dassa/dsp/window.hpp"

namespace dassa::daslib {

using dsp::cplx;
using dsp::FilterCoeffs;

/// |cos(theta(c1, c2))| — absolute correlation of two equal-length
/// windows (paper Table II, Das_abscorr).
inline double Das_abscorr(std::span<const double> c1,
                          std::span<const double> c2) {
  return dsp::abscorr(c1, c2);
}
inline double Das_abscorr(std::span<const cplx> c1, std::span<const cplx> c2) {
  return dsp::abscorr(c1, c2);
}

/// Removes the best straight-line fit (paper Table II, Das_detrend).
inline std::vector<double> Das_detrend(std::span<const double> x) {
  return dsp::detrend_linear(x);
}

/// Butterworth design with Nyquist-relative cutoff fc (Das_butter).
inline FilterCoeffs Das_butter(int n, double fc) {
  return dsp::butter_lowpass(n, fc);
}
inline FilterCoeffs Das_butter_bandpass(int n, double f_lo, double f_hi) {
  return dsp::butter_bandpass(n, f_lo, f_hi);
}

/// Zero-phase application of coefficients to X (Das_filtfilt).
inline std::vector<double> Das_filtfilt(const FilterCoeffs& c,
                                        std::span<const double> x) {
  return dsp::filtfilt(c, x);
}

/// Resample X by 1/R (Das_resample(X, 1, R) in the paper).
inline std::vector<double> Das_resample(std::span<const double> x,
                                        std::size_t p, std::size_t q) {
  return dsp::resample(x, p, q);
}

/// Linear interpolation of (X0, Y0) at X (Das_interp1).
inline std::vector<double> Das_interp1(std::span<const double> x0,
                                       std::span<const double> y0,
                                       std::span<const double> x) {
  return dsp::interp1(x0, y0, x);
}

/// Forward FFT of a real signal (Das_fft).
inline std::vector<cplx> Das_fft(std::span<const double> x) {
  return dsp::rfft(x);
}

/// Inverse FFT returning the real part (Das_ifft).
inline std::vector<double> Das_ifft(std::span<const cplx> x) {
  return dsp::irfft_real(x);
}

/// Amplitude envelope via the Hilbert transform.
inline std::vector<double> Das_envelope(std::span<const double> x) {
  return dsp::envelope(x);
}

/// Power spectrogram (MATLAB spectrogram-style framing).
inline dsp::Spectrogram Das_spectrogram(std::span<const double> x,
                                        const dsp::StftParams& params) {
  return dsp::spectrogram(x, params);
}

/// STA/LTA characteristic function (classical seismic trigger).
inline std::vector<double> Das_stalta(std::span<const double> x,
                                      const dsp::StaLtaParams& params) {
  return dsp::sta_lta(x, params);
}

/// Moving-median despike (MAD-thresholded).
inline std::vector<double> Das_despike(std::span<const double> x,
                                       std::size_t half, double k_mad) {
  return dsp::despike_mad(x, half, k_mad);
}

/// Welch power spectral density estimate.
inline std::vector<double> Das_psd(std::span<const double> x, double fs,
                                   const dsp::WelchParams& params) {
  return dsp::welch_psd(x, fs, params);
}

/// Magnitude-squared coherence of two channels.
inline std::vector<double> Das_coherence(std::span<const double> x,
                                         std::span<const double> y,
                                         const dsp::WelchParams& params) {
  return dsp::coherence(x, y, params);
}

}  // namespace dassa::daslib
