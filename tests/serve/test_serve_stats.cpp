// Live introspection (serve/stats.hpp): kStats wire-format round-trip
// and malformed-frame rejection, the pinned regression that every
// serve.lat.* stage histogram records exactly once per answered
// request, the das_ingest-style StatsListener, and a concurrency
// stress of kStats polls against a server under load (runs under the
// TSan leg of check.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/das/search.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/io/vca.hpp"
#include "dassa/serve/client.hpp"
#include "dassa/serve/server.hpp"
#include "dassa/serve/stats.hpp"
#include "testing/tmpdir.hpp"

using namespace dassa;
using dassa::testing::TmpDir;

namespace {

/// Small chunked+compressed acquisition published as arch.vca + .tix.
struct ServedArchive {
  explicit ServedArchive(const TmpDir& dir) {
    const das::SynthDas synth =
        das::SynthDas::fig1b_scene(16, 50.0, /*seed=*/20260809);
    das::AcquisitionSpec spec;
    spec.dir = dir.file("data");
    spec.start = das::Timestamp::parse("170728224510");
    spec.file_count = 4;
    spec.seconds_per_file = 4.0;
    spec.chunk = io::ChunkShape{8, 64};
    spec.codec = io::CodecSpec::parse("shuffle+lz");
    spec.per_channel_metadata = false;
    const std::vector<std::string> paths =
        das::write_acquisition(synth, spec);
    vca_path = dir.file("arch.vca");
    das::save_vca_with_index(io::Vca::build(paths), vca_path);
    reference = io::Vca::load(vca_path);
  }

  std::string vca_path;
  io::Vca reference;
};

serve::ServeConfig base_config(const TmpDir& dir,
                               const ServedArchive& archive) {
  serve::ServeConfig cfg;
  cfg.socket_path = dir.file("s.sock");
  cfg.archive = archive.vca_path;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  cfg.max_batch = 8;
  cfg.coalesce_window_us = 2000;
  return cfg;
}

/// A synthetic snapshot exercising every wire-format section.
serve::StatsSnapshot sample_snapshot() {
  serve::StatsSnapshot s;
  s.wall_ns = 123456789;
  s.counters["io.read_calls"] = 42;
  s.counters["serve.requests"] = 7;
  s.counters["zero.counter"] = 0;
  s.gauges["ingest.queue.depth"] = 3.0;
  s.gauges["negative.gauge"] = -1.5;
  HistogramSnapshot h;
  h.buckets[0] = 2;
  h.buckets[17] = 5;
  h.buckets[63] = 1;
  h.count = 8;
  h.total_ns = 90000;
  s.hists["serve.request"] = h;
  s.hists["empty.hist"] = HistogramSnapshot{};
  return s;
}

std::uint64_t hist_count(const char* name) {
  const auto snap = global_metrics().snapshot();
  const auto it = snap.find(name);
  return it == snap.end() ? 0 : it->second.count;
}

/// Counter lookup defaulting to 0: registry entries appear on first
/// charge, so a pre-traffic snapshot legitimately lacks serve.*.
std::uint64_t counter_of(const serve::StatsSnapshot& s, const char* name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

}  // namespace

TEST(ServeStats, RoundTripPreservesEverySection) {
  const serve::StatsSnapshot s = sample_snapshot();
  const serve::StatsSnapshot back = serve::decode_stats(serve::encode_stats(s));
  EXPECT_EQ(back, s);
}

TEST(ServeStats, EmptySnapshotRoundTrips) {
  serve::StatsSnapshot s;
  s.wall_ns = 1;
  EXPECT_EQ(serve::decode_stats(serve::encode_stats(s)), s);
}

TEST(ServeStats, RequestFrameRoundTrips) {
  const auto frame = serve::encode_stats_request();
  EXPECT_NO_THROW(serve::decode_stats_request(frame));
  // Trailing byte after the type: rejected, not ignored.
  auto padded = frame;
  padded.push_back(std::byte{0});
  EXPECT_THROW(serve::decode_stats_request(padded), FormatError);
  EXPECT_THROW(serve::decode_stats_request({}), FormatError);
}

TEST(ServeStats, EveryTruncationIsRejected) {
  const auto frame = serve::encode_stats(sample_snapshot());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::vector<std::byte> cut(frame.begin(),
                                     frame.begin() + static_cast<long>(len));
    EXPECT_THROW(serve::decode_stats(cut), FormatError) << "len=" << len;
  }
  auto padded = frame;
  padded.push_back(std::byte{0});
  EXPECT_THROW(serve::decode_stats(padded), FormatError) << "trailing byte";
}

TEST(ServeStats, ForgedFramesAreRejected) {
  // Wrong type byte.
  auto frame = serve::encode_stats(sample_snapshot());
  frame[0] = std::byte{99};
  EXPECT_THROW(serve::decode_stats(frame), FormatError);

  // Unsupported version (bytes 1..4, little-endian u32).
  frame = serve::encode_stats(sample_snapshot());
  frame[1] = std::byte{0xff};
  EXPECT_THROW(serve::decode_stats(frame), FormatError);

  // Out-of-order section names: swap the two counter names' first
  // bytes so they decode out of ascending order.
  serve::StatsSnapshot s;
  s.counters["aaa"] = 1;
  s.counters["bbb"] = 2;
  frame = serve::encode_stats(s);
  std::vector<std::byte> swapped = frame;
  for (std::size_t i = 0; i + 3 <= swapped.size(); ++i) {
    if (std::memcmp(swapped.data() + i, "aaa", 3) == 0) {
      std::memcpy(swapped.data() + i, "ccc", 3);
      break;
    }
  }
  EXPECT_THROW(serve::decode_stats(swapped), FormatError);

  // Duplicate names (equal is not strictly increasing).
  swapped = frame;
  for (std::size_t i = 0; i + 3 <= swapped.size(); ++i) {
    if (std::memcmp(swapped.data() + i, "bbb", 3) == 0) {
      std::memcpy(swapped.data() + i, "aaa", 3);
      break;
    }
  }
  EXPECT_THROW(serve::decode_stats(swapped), FormatError);

  // Histogram whose bucket sum disagrees with its declared count.
  serve::StatsSnapshot sh;
  HistogramSnapshot h;
  h.buckets[3] = 4;
  h.count = 4;
  h.total_ns = 100;
  sh.hists["h"] = h;
  frame = serve::encode_stats(sh);
  // The count field sits right after the 1-byte name "h" preceded by
  // its u32 length; corrupt the count by locating its encoded value.
  bool corrupted = false;
  for (std::size_t i = 0; i + 8 <= frame.size(); ++i) {
    std::uint64_t v;
    std::memcpy(&v, frame.data() + i, 8);
    if (v == 4) {
      v = 5;
      std::memcpy(frame.data() + i, &v, 8);
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(serve::decode_stats(frame), FormatError);

  // Entry-count ceiling enforced before allocation: forge a counters
  // section claiming 2^31 entries.
  serve::StatsSnapshot empty;
  frame = serve::encode_stats(empty);
  // Layout: type(1) version(4) wall(8) counters_n(4) ...
  const std::uint32_t huge = 1u << 31;
  std::memcpy(frame.data() + 13, &huge, 4);
  EXPECT_THROW(serve::decode_stats(frame), FormatError);
}

TEST(ServeStats, TornSnapshotIsReconciledBeforeEncoding) {
  // A live LatencyHistogram updates count_ and buckets_ as separate
  // relaxed atomics, so a registry snapshot taken against concurrent
  // record_ns() can legitimately disagree with itself in either
  // direction. The encoding side must reconcile (count := bucket sum)
  // so a daemon under load never emits a frame its own strict decoder
  // would refuse.
  serve::StatsSnapshot torn;
  HistogramSnapshot ahead;  // count incremented, bucket not yet seen
  ahead.buckets[5] = 3;
  ahead.count = 4;
  ahead.total_ns = 100;
  torn.hists["count.ahead"] = ahead;
  HistogramSnapshot behind;  // bucket incremented, count not yet seen
  behind.buckets[2] = 7;
  behind.count = 6;
  behind.total_ns = 200;
  torn.hists["count.behind"] = behind;

  EXPECT_THROW(serve::decode_stats(serve::encode_stats(torn)), FormatError);
  serve::reconcile_torn_histograms(torn);
  const serve::StatsSnapshot back =
      serve::decode_stats(serve::encode_stats(torn));
  EXPECT_EQ(back.hists.at("count.ahead").count, 3u);
  EXPECT_EQ(back.hists.at("count.behind").count, 7u);
  // collect_process_stats applies the same reconciliation, so the live
  // path always produces a decodable frame.
  EXPECT_NO_THROW(
      (void)serve::decode_stats(serve::encode_stats(
          serve::collect_process_stats())));
}

TEST(ServeStats, ListenerStartFailureLeavesDestructorSafe) {
  // start() marks started_ before binding the socket, so a bad path
  // throws with no listener and no accept thread; the destructor's
  // stop() must survive that half-started state (das_ingest unwinds
  // through exactly this on a bad --stats-socket).
  serve::StatsListener listener("/nonexistent-dassa-dir/stats.sock");
  EXPECT_THROW(listener.start(), Error);
}

TEST(ServeStats, ListenerReapsFinishedConnections) {
  TmpDir dir("serve_stats_reap");
  serve::StatsListener listener(dir.file("stats.sock"));
  listener.start();

  // Short-lived pollers (das_top --once, scrapes): each connects,
  // polls once, and hangs up before the next arrives. Reaping on
  // accept must keep the tracked-slot count bounded instead of
  // accumulating one joinable thread per poller until stop().
  constexpr std::size_t kPollers = 32;
  for (std::size_t i = 0; i < kPollers; ++i) {
    serve::Connection conn = serve::connect_local(listener.path());
    EXPECT_EQ(serve::fetch_stats(conn).version, serve::kStatsVersion);
  }
  EXPECT_LT(listener.tracked_connections(), kPollers / 2);
  listener.stop();
  EXPECT_EQ(listener.tracked_connections(), 0u);
}

TEST(ServeStats, LiveServerAnswersStatsInline) {
  TmpDir dir("serve_stats_live");
  ServedArchive archive(dir);
  serve::Server server(base_config(dir, archive));
  server.start();

  serve::Connection poll = serve::connect_local(server.config().socket_path);
  const serve::StatsSnapshot before = serve::fetch_stats(poll);
  EXPECT_EQ(before.version, serve::kStatsVersion);
  EXPECT_TRUE(before.counters.contains(counters::kStatsRequests));
  // The admission-queue depth gauge is registered by the server, not
  // the tool, so every kStats client sees it.
  EXPECT_TRUE(before.gauges.contains("serve.queue.depth"));

  const Shape2D shape = archive.reference.shape();
  serve::Client client(server.config().socket_path);
  const Slab2D slab{0, 0, shape.rows, shape.cols / 2};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(client.read_slab(slab), archive.reference.read_slab(slab));
  }

  // The worker charges serve.responses and the end-to-end histogram
  // just AFTER the reply frame hits the socket, so a fast poller can
  // legitimately sample before the 5th record lands. Poll until the
  // accounting catches up (bounded), then pin the exact totals.
  const auto request_delta = [&](const serve::StatsSnapshot& s) {
    const auto& h_after = s.hists.at(serve::lat::kRequest);
    const auto it = before.hists.find(serve::lat::kRequest);
    return it == before.hists.end() ? h_after : h_after.diff(it->second);
  };
  serve::StatsSnapshot after = serve::fetch_stats(poll);
  for (int i = 0; i < 200 &&
                  (counter_of(after, counters::kServeResponses) -
                           counter_of(before, counters::kServeResponses) <
                       5u ||
                   request_delta(after).count < 5u);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    after = serve::fetch_stats(poll);
  }
  EXPECT_GE(after.wall_ns, before.wall_ns);
  EXPECT_EQ(counter_of(after, counters::kServeResponses) -
                counter_of(before, counters::kServeResponses),
            5u);
  // Stats polls are counted but are NOT admitted requests: the
  // admission pipeline's accounting must not move on their behalf.
  EXPECT_GE(counter_of(after, counters::kStatsRequests),
            counter_of(before, counters::kStatsRequests) + 1);

  // Interval view: the end-to-end histogram diff covers exactly the 5
  // requests between the polls.
  EXPECT_EQ(request_delta(after).count, 5u);
  server.stop();
}

TEST(ServeStats, StageHistogramCountsEqualEndToEndCount) {
  TmpDir dir("serve_stats_stages");
  ServedArchive archive(dir);
  const std::uint64_t base_request = hist_count(serve::lat::kRequest);
  const std::uint64_t base_queue = hist_count(serve::lat::kQueueWait);
  const std::uint64_t base_coalesce = hist_count(serve::lat::kCoalesce);
  const std::uint64_t base_decode = hist_count(serve::lat::kDecode);
  const std::uint64_t base_write = hist_count(serve::lat::kWrite);

  serve::Server server(base_config(dir, archive));
  server.start();
  const Shape2D shape = archive.reference.shape();
  constexpr std::uint64_t kRequests = 12;
  serve::Client client(server.config().socket_path);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const Slab2D slab{0, (i * 7) % (shape.cols / 2), shape.rows, 16};
    EXPECT_EQ(client.read_slab(slab), archive.reference.read_slab(slab));
  }
  server.stop();

  // The pinned invariant: request tracing records every stage exactly
  // once per answered request -- no stage is skipped, none double
  // counts, so per-stage quantiles are quantiles over the same
  // population the end-to-end histogram describes.
  EXPECT_EQ(hist_count(serve::lat::kRequest) - base_request, kRequests);
  EXPECT_EQ(hist_count(serve::lat::kQueueWait) - base_queue, kRequests);
  EXPECT_EQ(hist_count(serve::lat::kCoalesce) - base_coalesce, kRequests);
  EXPECT_EQ(hist_count(serve::lat::kDecode) - base_decode, kRequests);
  EXPECT_EQ(hist_count(serve::lat::kWrite) - base_write, kRequests);
}

TEST(ServeStats, TracingOffKeepsStageHistogramsQuiet) {
  TmpDir dir("serve_stats_off");
  ServedArchive archive(dir);
  const std::uint64_t base_request = hist_count(serve::lat::kRequest);
  const std::uint64_t base_queue = hist_count(serve::lat::kQueueWait);

  serve::ServeConfig cfg = base_config(dir, archive);
  cfg.request_tracing = false;
  serve::Server server(cfg);
  server.start();
  const Shape2D shape = archive.reference.shape();
  serve::Client client(cfg.socket_path);
  const Slab2D slab{0, 0, shape.rows, 16};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(client.read_slab(slab), archive.reference.read_slab(slab));
  }
  server.stop();

  // End-to-end accounting survives with tracing off; the stage
  // histograms stay untouched.
  EXPECT_EQ(hist_count(serve::lat::kRequest) - base_request, 4u);
  EXPECT_EQ(hist_count(serve::lat::kQueueWait) - base_queue, 0u);
}

TEST(ServeStats, SlowRequestThresholdChargesCounter) {
  TmpDir dir("serve_stats_slow");
  ServedArchive archive(dir);
  const std::uint64_t base_slow =
      global_counters().get(counters::kServeSlowRequests);

  serve::ServeConfig cfg = base_config(dir, archive);
  cfg.slow_ns = 1;  // every request is over this threshold
  serve::Server server(cfg);
  server.start();
  const Shape2D shape = archive.reference.shape();
  serve::Client client(cfg.socket_path);
  const Slab2D slab{0, 0, shape.rows, 16};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.read_slab(slab), archive.reference.read_slab(slab));
  }
  server.stop();
  EXPECT_EQ(global_counters().get(counters::kServeSlowRequests) - base_slow,
            3u);
}

TEST(ServeStats, StatsListenerServesAndRefuses) {
  TmpDir dir("serve_stats_listener");
  serve::StatsListener listener(dir.file("stats.sock"));
  listener.start();

  serve::Connection conn = serve::connect_local(listener.path());
  const std::uint64_t base_bad =
      global_counters().get(counters::kStatsBadFrames);
  const serve::StatsSnapshot s = serve::fetch_stats(conn);
  EXPECT_EQ(s.version, serve::kStatsVersion);
  EXPECT_TRUE(s.counters.contains(counters::kStatsRequests));

  // Garbage gets a typed kBadRequest refusal, and the connection stays
  // serviceable for the valid poll that follows.
  conn.send_frame(std::vector<std::byte>(5, std::byte{0xee}));
  const auto reply = conn.recv_frame();
  ASSERT_TRUE(reply.has_value());
  const serve::ReadResponse refusal = serve::decode_response(*reply);
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.code, serve::ErrorCode::kBadRequest);
  EXPECT_GE(global_counters().get(counters::kStatsBadFrames), base_bad + 1);
  EXPECT_NO_THROW((void)serve::fetch_stats(conn));

  listener.stop();
  listener.stop();  // idempotent
}

TEST(ServeStats, ConcurrentStatsPollsDuringLoad) {
  TmpDir dir("serve_stats_stress");
  ServedArchive archive(dir);
  serve::Server server(base_config(dir, archive));
  server.start();
  const Shape2D shape = archive.reference.shape();

  std::atomic<std::size_t> failures{0};
  std::atomic<bool> done{false};

  // Load: 4 clients reading overlapping windows.
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      serve::Client client(server.config().socket_path);
      for (int r = 0; r < 8; ++r) {
        const std::size_t off = ((t * 11 + static_cast<std::size_t>(r) * 5) %
                                 (shape.cols / 2));
        const Slab2D slab{0, off, shape.rows, 32};
        if (client.read_slab(slab) != archive.reference.read_slab(slab)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Monitors: 2 pollers hammering kStats on their own connections
  // while the workers mutate every registry the snapshot reads.
  for (int m = 0; m < 2; ++m) {
    threads.emplace_back([&] {
      serve::Connection conn =
          serve::connect_local(server.config().socket_path);
      std::uint64_t last_responses = 0;
      while (!done.load()) {
        serve::StatsSnapshot s;
        try {
          s = serve::fetch_stats(conn);
        } catch (const Error&) {
          failures.fetch_add(1);
          return;
        }
        // Monotonicity across one poller's consecutive snapshots.
        const auto it = s.counters.find(counters::kServeResponses);
        const std::uint64_t responses =
            it == s.counters.end() ? 0 : it->second;
        if (responses < last_responses) failures.fetch_add(1);
        last_responses = responses;
      }
    });
  }
  for (std::size_t t = 0; t < 4; ++t) threads[t].join();
  done.store(true);
  for (std::size_t t = 4; t < threads.size(); ++t) threads[t].join();
  server.stop();
  EXPECT_EQ(failures.load(), 0u);
}
