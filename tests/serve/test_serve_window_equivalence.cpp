// Served reads as a drop-in for offline analysis: every window the
// ingest WindowPlanner would process reads byte-identically through
// das_serve, time-addressed windows resolve to the same bytes as
// direct column reads, and the full similarity pipeline run over
// served bytes equals the offline das_analyze path over the same VCA.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dassa/das/local_similarity.hpp"
#include "dassa/das/search.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/ingest/window.hpp"
#include "dassa/io/kv.hpp"
#include "dassa/io/vca.hpp"
#include "dassa/serve/client.hpp"
#include "dassa/serve/server.hpp"
#include "testing/tmpdir.hpp"

using namespace dassa;
using dassa::testing::TmpDir;

namespace {

struct Fixture {
  explicit Fixture(const TmpDir& dir) {
    const das::SynthDas synth =
        das::SynthDas::fig1b_scene(/*channels=*/12, /*sampling_hz=*/50.0,
                                   /*seed=*/20260809);
    das::AcquisitionSpec spec;
    spec.dir = dir.file("data");
    spec.start = das::Timestamp::parse("170728224510");
    spec.file_count = 5;
    spec.seconds_per_file = 2.0;  // 5 x 100 cols, the PR-8 geometry
    spec.chunk = io::ChunkShape{8, 32};
    spec.codec = io::CodecSpec::parse("shuffle+lz");
    spec.per_channel_metadata = false;
    files = das::write_acquisition(synth, spec);
    vca_path = dir.file("arch.vca");
    das::save_vca_with_index(io::Vca::build(files), vca_path);
    vca = io::Vca::load(vca_path);
  }

  std::vector<std::string> files;
  std::string vca_path;
  io::Vca vca;
};

serve::ServeConfig config(const TmpDir& dir, const Fixture& fx) {
  serve::ServeConfig cfg;
  cfg.socket_path = dir.file("s.sock");
  cfg.archive = fx.vca_path;
  cfg.workers = 2;
  return cfg;
}

}  // namespace

TEST(ServeWindowEquivalence, PlannedWindowsReadByteIdentical) {
  TmpDir dir("serve_windows");
  Fixture fx(dir);
  serve::Server server(config(dir, fx));
  server.start();
  serve::Client client(server.config().socket_path);

  // The same plan the streaming ingest driver would execute: 3-file
  // windows, 1-file overlap, a 10-column margin.
  ingest::WindowPlanner planner(/*window_files=*/3, /*overlap_files=*/1,
                                /*margin_cols=*/10);
  std::vector<ingest::WindowSpec> windows;
  for (const io::VcaMember& m : fx.vca.members()) {
    planner.add_file(m.shape.cols);
    while (auto w = planner.next_ready()) windows.push_back(*w);
  }
  if (auto w = planner.finish()) windows.push_back(*w);
  ASSERT_GE(windows.size(), 2u);

  const Shape2D shape = fx.vca.shape();
  for (const ingest::WindowSpec& w : windows) {
    const Slab2D slab{0, w.start_col, shape.rows, w.end_col - w.start_col};
    EXPECT_EQ(client.read_slab(slab), fx.vca.read_slab(slab))
        << "window " << w.index;
  }
  server.stop();
}

TEST(ServeWindowEquivalence, TimeWindowsMatchColumnReads) {
  TmpDir dir("serve_timewin");
  Fixture fx(dir);
  serve::Server server(config(dir, fx));
  server.start();
  serve::Client client(server.config().socket_path);

  const Shape2D shape = fx.vca.shape();
  const double rate =
      fx.vca.global_meta().get_f64(io::meta::kSamplingFrequencyHz);
  const std::int64_t t0 =
      das::Timestamp::parse("170728224510").epoch_seconds();

  // Windows that cross member boundaries: [t0+1, t0+3), [t0+3, t0+7).
  for (const auto& [begin, end] : std::vector<std::pair<int, int>>{
           {1, 3}, {3, 7}, {0, 2}}) {
    Slab2D served_slab;
    const std::vector<double> served = client.read_window(
        t0 + begin, t0 + end, 0, 0, &served_slab);
    const Slab2D direct{
        0, static_cast<std::size_t>(begin * rate), shape.rows,
        static_cast<std::size_t>((end - begin) * rate)};
    EXPECT_EQ(served_slab, direct) << "[" << begin << ", " << end << ")";
    EXPECT_EQ(served, fx.vca.read_slab(direct));
  }
  server.stop();
}

TEST(ServeWindowEquivalence, SimilarityOverServedBytesMatchesOffline) {
  TmpDir dir("serve_offline");
  Fixture fx(dir);
  serve::Server server(config(dir, fx));
  server.start();

  das::LocalSimilarityParams params;
  params.window_half = 10;
  params.lag_half = 5;
  core::EngineConfig engine;
  engine.nodes = 2;
  engine.cores_per_node = 2;

  // The offline das_analyze path over the local VCA...
  const core::Array2D offline =
      das::local_similarity_distributed(engine, fx.vca, params).output;

  // ...and the identical pipeline fed entirely through the query
  // server. Serial == distributed is already pinned bitwise by
  // PipelinesTest, so any divergence here is a serving defect.
  serve::Client client(server.config().socket_path);
  const Shape2D shape = fx.vca.shape();
  const core::Array2D fetched(
      shape, client.read_slab(Slab2D{0, 0, shape.rows, shape.cols}));
  const core::Array2D served = das::local_similarity(fetched, params, 1);
  EXPECT_EQ(served, offline);  // bitwise: Array2D compares data exactly
  server.stop();
}
