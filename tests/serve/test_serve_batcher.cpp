// Serve batching policy (pure coalesce()/slice_from_union()) and the
// wire protocol codecs, no sockets or threads involved.
#include <gtest/gtest.h>

#include "dassa/common/error.hpp"
#include "dassa/serve/batcher.hpp"
#include "dassa/serve/protocol.hpp"

using namespace dassa;
using namespace dassa::serve;

namespace {

Slab2D slab(std::size_t row_off, std::size_t col_off, std::size_t row_cnt,
            std::size_t col_cnt) {
  return Slab2D{row_off, col_off, row_cnt, col_cnt};
}

}  // namespace

TEST(ServeBatcher, DisjointSlabsStaySeparate) {
  const std::vector<BatchGroup> groups =
      coalesce({slab(0, 0, 4, 10), slab(0, 100, 4, 10)}, 0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].span, slab(0, 0, 4, 10));
  EXPECT_EQ(groups[0].jobs, std::vector<std::size_t>{0});
  EXPECT_EQ(groups[1].span, slab(0, 100, 4, 10));
  EXPECT_EQ(groups[1].jobs, std::vector<std::size_t>{1});
}

TEST(ServeBatcher, OverlappingSlabsShareOneUnion) {
  const std::vector<BatchGroup> groups =
      coalesce({slab(0, 0, 4, 20), slab(0, 10, 4, 20), slab(0, 25, 4, 10)},
               0);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].span, slab(0, 0, 4, 35));
  EXPECT_EQ(groups[0].jobs, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ServeBatcher, AdjacentSlabsMergeOnlyWithGapAllowance) {
  // [0, 10) and [12, 20): a 2-column hole.
  const std::vector<Slab2D> slabs = {slab(0, 0, 4, 10), slab(0, 12, 4, 8)};
  EXPECT_EQ(coalesce(slabs, 0).size(), 2u);
  EXPECT_EQ(coalesce(slabs, 1).size(), 2u);
  const std::vector<BatchGroup> merged = coalesce(slabs, 2);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].span, slab(0, 0, 4, 20));
}

TEST(ServeBatcher, RowExtentsUnionAcrossMembers) {
  const std::vector<BatchGroup> groups =
      coalesce({slab(0, 0, 4, 20), slab(10, 5, 6, 20)}, 0);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].span, slab(0, 0, 16, 25));
}

TEST(ServeBatcher, SweepIsDeterministicAndOrderIndependent) {
  // The same slabs in any input order produce the same column spans.
  const std::vector<Slab2D> a = {slab(0, 50, 2, 10), slab(0, 0, 2, 10),
                                 slab(0, 55, 2, 10), slab(0, 5, 2, 10)};
  const std::vector<Slab2D> b = {a[1], a[3], a[0], a[2]};
  const std::vector<BatchGroup> ga = coalesce(a, 0);
  const std::vector<BatchGroup> gb = coalesce(b, 0);
  ASSERT_EQ(ga.size(), 2u);
  ASSERT_EQ(gb.size(), 2u);
  EXPECT_EQ(ga[0].span, gb[0].span);
  EXPECT_EQ(ga[1].span, gb[1].span);
}

TEST(ServeBatcher, IdenticalSlabsAllCoalesce) {
  const std::vector<Slab2D> slabs(8, slab(0, 32, 16, 64));
  const std::vector<BatchGroup> groups = coalesce(slabs, 0);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].span, slab(0, 32, 16, 64));
  EXPECT_EQ(groups[0].jobs.size(), 8u);
}

TEST(ServeBatcher, EmptySlabsGetTheirOwnGroups) {
  const std::vector<BatchGroup> groups =
      coalesce({slab(0, 0, 4, 10), slab(0, 0, 0, 0)}, 1000);
  ASSERT_EQ(groups.size(), 2u);
}

TEST(ServeBatcher, EmptyInputYieldsNoGroups) {
  EXPECT_TRUE(coalesce({}, 0).empty());
}

TEST(ServeBatcher, SliceFromUnionExtractsExactRows) {
  // Union 3x5 at (1, 10); ask for the 2x2 at (2, 12).
  const Slab2D span = slab(1, 10, 3, 5);
  std::vector<double> data(span.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i);
  }
  const std::vector<double> piece =
      slice_from_union(data, span, slab(2, 12, 2, 2));
  EXPECT_EQ(piece, (std::vector<double>{7, 8, 12, 13}));
}

TEST(ServeBatcher, SliceWholeSpanIsIdentity) {
  const Slab2D span = slab(0, 0, 2, 3);
  const std::vector<double> data = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(slice_from_union(data, span, span), data);
}

TEST(ServeBatcher, SliceRejectsEscapingSlab) {
  const Slab2D span = slab(0, 0, 2, 3);
  const std::vector<double> data(span.size(), 0.0);
  EXPECT_THROW((void)slice_from_union(data, span, slab(0, 2, 2, 2)),
               InvalidArgument);
  EXPECT_THROW((void)slice_from_union(data, span, slab(1, 0, 2, 1)),
               InvalidArgument);
}

// ---- Wire protocol ------------------------------------------------

TEST(ServeProtocol, RequestRoundTripColumns) {
  ReadRequest req;
  req.id = 77;
  req.addressing = Addressing::kColumns;
  req.row_off = 3;
  req.row_cnt = 9;
  req.col_off = 1000;
  req.col_cnt = 512;
  EXPECT_EQ(decode_request(encode_request(req)), req);
}

TEST(ServeProtocol, RequestRoundTripTime) {
  ReadRequest req;
  req.id = 1;
  req.addressing = Addressing::kTime;
  req.row_cnt = 4;
  req.begin_s = 555000111;
  req.end_s = 555000141;
  EXPECT_EQ(decode_request(encode_request(req)), req);
}

TEST(ServeProtocol, ResponseRoundTripOk) {
  ReadResponse resp;
  resp.id = 42;
  resp.ok = true;
  resp.row_off = 2;
  resp.col_off = 100;
  resp.shape = Shape2D{2, 3};
  resp.data = {1.5, -2.5, 3.25, 0.0, 1e-300, 7e40};
  const ReadResponse back = decode_response(encode_response(resp));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.id, resp.id);
  EXPECT_EQ(back.row_off, resp.row_off);
  EXPECT_EQ(back.col_off, resp.col_off);
  EXPECT_EQ(back.shape, resp.shape);
  EXPECT_EQ(back.data, resp.data);
}

TEST(ServeProtocol, ResponseRoundTripError) {
  ReadResponse resp;
  resp.id = 9;
  resp.ok = false;
  resp.code = ErrorCode::kShuttingDown;
  resp.error = "server is draining";
  const ReadResponse back = decode_response(encode_response(resp));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.code, ErrorCode::kShuttingDown);
  EXPECT_EQ(back.error, resp.error);
}

TEST(ServeProtocol, DecodeRejectsMalformedFrames) {
  // Empty frame.
  EXPECT_THROW((void)decode_request({}), FormatError);
  EXPECT_THROW((void)decode_response({}), FormatError);

  ReadRequest req;
  req.addressing = Addressing::kColumns;
  std::vector<std::byte> frame = encode_request(req);

  // Trailing garbage after a valid request.
  std::vector<std::byte> padded = frame;
  padded.push_back(std::byte{0});
  EXPECT_THROW((void)decode_request(padded), FormatError);

  // Truncated request.
  std::vector<std::byte> cut(frame.begin(), frame.end() - 4);
  EXPECT_THROW((void)decode_request(cut), FormatError);

  // Wrong message type byte.
  std::vector<std::byte> wrong = frame;
  wrong[0] = std::byte{0x7f};
  EXPECT_THROW((void)decode_request(wrong), FormatError);

  // Unknown addressing mode.
  std::vector<std::byte> mode = frame;
  mode[9] = std::byte{0x09};
  EXPECT_THROW((void)decode_request(mode), FormatError);
}

TEST(ServeProtocol, DecodeResponseRejectsShapePayloadDisagreement) {
  ReadResponse resp;
  resp.id = 1;
  resp.ok = true;
  resp.shape = Shape2D{2, 2};
  resp.data = {1, 2, 3, 4};
  std::vector<std::byte> frame = encode_response(resp);

  // Drop one double: payload no longer matches rows x cols.
  std::vector<std::byte> short_frame(frame.begin(),
                                     frame.end() - sizeof(double));
  EXPECT_THROW((void)decode_response(short_frame), FormatError);

  // Drop half a double: not even whole elements.
  std::vector<std::byte> ragged(frame.begin(), frame.end() - 3);
  EXPECT_THROW((void)decode_response(ragged), FormatError);

  // Unknown error code.
  ReadResponse err;
  err.id = 1;
  err.ok = false;
  err.code = ErrorCode::kInternal;
  std::vector<std::byte> err_frame = encode_response(err);
  err_frame[9] = std::byte{0x77};  // low byte of the u32 code
  EXPECT_THROW((void)decode_response(err_frame), FormatError);
}
