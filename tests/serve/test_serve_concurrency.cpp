// Serve concurrency harness (runs under the TSan leg of check.sh):
// concurrent clients with overlapping, disjoint and adversarial
// windows, a slow-reading client exercising write-side backpressure,
// and a mid-request shutdown drain where every admitted request is
// still answered.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/das/search.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/io/vca.hpp"
#include "dassa/serve/client.hpp"
#include "dassa/serve/server.hpp"
#include "testing/tmpdir.hpp"

using namespace dassa;
using dassa::testing::TmpDir;

namespace {

/// Small chunked+compressed acquisition published as arch.vca + .tix.
struct ServedArchive {
  explicit ServedArchive(const TmpDir& dir, std::size_t channels = 16,
                         std::size_t files = 4,
                         double seconds_per_file = 4.0) {
    const das::SynthDas synth =
        das::SynthDas::fig1b_scene(channels, 50.0, /*seed=*/20260809);
    das::AcquisitionSpec spec;
    spec.dir = dir.file("data");
    spec.start = das::Timestamp::parse("170728224510");
    spec.file_count = files;
    spec.seconds_per_file = seconds_per_file;
    spec.chunk = io::ChunkShape{8, 64};
    spec.codec = io::CodecSpec::parse("shuffle+lz");
    spec.per_channel_metadata = false;
    const std::vector<std::string> paths =
        das::write_acquisition(synth, spec);
    vca_path = dir.file("arch.vca");
    das::save_vca_with_index(io::Vca::build(paths), vca_path);
    reference = io::Vca::load(vca_path);
  }

  std::string vca_path;
  io::Vca reference;
};

serve::ServeConfig base_config(const TmpDir& dir,
                               const ServedArchive& archive) {
  serve::ServeConfig cfg;
  cfg.socket_path = dir.file("s.sock");
  cfg.archive = archive.vca_path;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  cfg.max_batch = 8;
  cfg.coalesce_window_us = 2000;
  return cfg;
}

}  // namespace

TEST(ServeConcurrency, OverlappingWindowsAllByteIdentical) {
  TmpDir dir("serve_overlap");
  ServedArchive archive(dir);
  const Shape2D shape = archive.reference.shape();
  serve::Server server(base_config(dir, archive));
  server.start();

  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 5;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::Client client(server.config().socket_path);
      for (std::size_t r = 0; r < kPerThread; ++r) {
        // 75%-overlapping schedule: each window starts a quarter width
        // past its neighbour's.
        const std::size_t width = shape.cols / 2;
        const std::size_t off =
            ((t + r * kThreads) * (width / 4)) % (shape.cols - width);
        const Slab2D slab{0, off, shape.rows, width};
        if (client.read_slab(slab) != archive.reference.read_slab(slab)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(global_counters().get(counters::kServeQueuePushed),
            global_counters().get(counters::kServeQueuePopped))
      << "admitted requests were dropped";
}

TEST(ServeConcurrency, DisjointWindowsAllByteIdentical) {
  TmpDir dir("serve_disjoint");
  ServedArchive archive(dir);
  const Shape2D shape = archive.reference.shape();
  serve::Server server(base_config(dir, archive));
  server.start();

  constexpr std::size_t kThreads = 4;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  const std::size_t width = shape.cols / kThreads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::Client client(server.config().socket_path);
      const Slab2D slab{0, t * width, shape.rows, width};
      for (int r = 0; r < 4; ++r) {
        if (client.read_slab(slab) != archive.reference.read_slab(slab)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(ServeConcurrency, AdversarialRequestsGetTypedRefusals) {
  TmpDir dir("serve_adversarial");
  ServedArchive archive(dir);
  const Shape2D shape = archive.reference.shape();
  serve::Server server(base_config(dir, archive));
  server.start();

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;

  // Thread 1: out-of-range and empty-window requests.
  threads.emplace_back([&] {
    serve::Client client(server.config().socket_path);
    for (int i = 0; i < 8; ++i) {
      serve::ReadRequest req;
      req.addressing = serve::Addressing::kColumns;
      req.col_off = shape.cols + 100;
      req.col_cnt = 10;
      serve::ReadResponse resp = client.call(req);
      if (resp.ok || resp.code != serve::ErrorCode::kOutOfRange) {
        failures.fetch_add(1);
      }
      serve::ReadRequest tiny;
      tiny.addressing = serve::Addressing::kTime;
      tiny.begin_s = 10;
      tiny.end_s = 5;  // inverted window
      resp = client.call(tiny);
      if (resp.ok || resp.code != serve::ErrorCode::kBadRequest) {
        failures.fetch_add(1);
      }
    }
  });

  // Thread 2: raw garbage frames; the server must refuse each and keep
  // the connection serviceable for the valid request that follows.
  threads.emplace_back([&] {
    serve::Connection raw =
        serve::connect_local(server.config().socket_path);
    for (int i = 0; i < 8; ++i) {
      const std::vector<std::byte> garbage(7, std::byte{0xee});
      raw.send_frame(garbage);
      const auto reply = raw.recv_frame();
      if (!reply) {
        failures.fetch_add(1);
        return;
      }
      const serve::ReadResponse resp = serve::decode_response(*reply);
      if (resp.ok || resp.code != serve::ErrorCode::kBadRequest) {
        failures.fetch_add(1);
      }
    }
  });

  // Thread 3: honest overlapping reads while the abuse is in flight.
  threads.emplace_back([&] {
    serve::Client client(server.config().socket_path);
    const Slab2D slab{0, 0, shape.rows, shape.cols / 2};
    const std::vector<double> expected = archive.reference.read_slab(slab);
    for (int i = 0; i < 8; ++i) {
      if (client.read_slab(slab) != expected) failures.fetch_add(1);
    }
  });

  for (auto& t : threads) t.join();
  server.stop();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ServeConcurrency, SlowClientDoesNotStarveOthers) {
  TmpDir dir("serve_slow");
  ServedArchive archive(dir);
  const Shape2D shape = archive.reference.shape();
  serve::ServeConfig cfg = base_config(dir, archive);
  cfg.queue_capacity = 2;  // tiny: slow consumers back up into readers
  cfg.workers = 1;
  serve::Server server(cfg);
  server.start();

  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> fast_done{0};

  // The slow client pipelines a burst of full-array requests on a raw
  // connection and dawdles before reading any reply, so its responses
  // pile into the socket buffer and the worker blocks on the write --
  // the admission queue backs up into the other readers.
  std::thread slow([&] {
    serve::Connection raw = serve::connect_local(cfg.socket_path);
    const Slab2D slab{0, 0, shape.rows, shape.cols};
    const std::vector<double> expected = archive.reference.read_slab(slab);
    constexpr int kBurst = 6;
    for (int i = 0; i < kBurst; ++i) {
      serve::ReadRequest req;
      req.id = static_cast<std::uint64_t>(i) + 1;
      req.addressing = serve::Addressing::kColumns;
      raw.send_frame(serve::encode_request(req));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (int i = 0; i < kBurst; ++i) {
      const auto frame = raw.recv_frame();
      if (!frame) {
        failures.fetch_add(1);
        return;
      }
      const serve::ReadResponse resp = serve::decode_response(*frame);
      if (!resp.ok || resp.data != expected) failures.fetch_add(1);
    }
  });

  std::vector<std::thread> fast;
  for (int t = 0; t < 3; ++t) {
    fast.emplace_back([&] {
      serve::Client client(cfg.socket_path);
      const Slab2D slab{0, 0, shape.rows, shape.cols / 4};
      const std::vector<double> expected =
          archive.reference.read_slab(slab);
      for (int i = 0; i < 6; ++i) {
        if (client.read_slab(slab) != expected) failures.fetch_add(1);
        fast_done.fetch_add(1);
      }
    });
  }
  slow.join();
  for (auto& t : fast) t.join();
  server.stop();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(fast_done.load(), 18u);
}

TEST(ServeConcurrency, ShutdownDrainAnswersEveryAdmittedRequest) {
  TmpDir dir("serve_drain");
  ServedArchive archive(dir);
  const Shape2D shape = archive.reference.shape();
  serve::ServeConfig cfg = base_config(dir, archive);
  cfg.coalesce_window_us = 5000;  // keep requests in flight at stop()
  serve::Server server(cfg);
  server.start();

  std::atomic<bool> go_stop{false};
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> eof{0};
  std::atomic<std::size_t> failures{0};

  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::Client client(cfg.socket_path);
      const Slab2D slab{0, (t * 13) % (shape.cols / 2), shape.rows,
                        shape.cols / 2};
      const std::vector<double> expected =
          archive.reference.read_slab(slab);
      for (int i = 0; i < 50; ++i) {
        if (i == 3 && t == 0) go_stop.store(true);
        serve::ReadRequest req;
        req.addressing = serve::Addressing::kColumns;
        req.row_cnt = slab.row_cnt;
        req.col_off = slab.col_off;
        req.col_cnt = slab.col_cnt;
        try {
          const serve::ReadResponse resp = client.call(req);
          if (resp.ok) {
            if (resp.data != expected) failures.fetch_add(1);
            ok.fetch_add(1);
          } else if (resp.code == serve::ErrorCode::kShuttingDown) {
            rejected.fetch_add(1);
          } else {
            failures.fetch_add(1);
          }
        } catch (const IoError&) {
          eof.fetch_add(1);  // server closed the stream while draining
          return;
        }
      }
    });
  }
  while (!go_stop.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  server.stop();
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(ok.load(), 3u) << "stop() fired before any request was served";
  // Drain accounting: everything admitted was answered, nothing was
  // silently dropped between the queue and the workers.
  EXPECT_EQ(global_counters().get(counters::kServeQueuePushed),
            global_counters().get(counters::kServeQueuePopped));
  EXPECT_LE(eof.load(), kThreads);
}

TEST(ServeConcurrency, StopIsIdempotentAndRestartableOnNewSocket) {
  TmpDir dir("serve_stop2");
  ServedArchive archive(dir);
  {
    serve::Server server(base_config(dir, archive));
    server.start();
    server.stop();
    server.stop();  // second stop is a no-op
  }
  // A new server on the same path binds cleanly (stale file removed).
  serve::Server again(base_config(dir, archive));
  again.start();
  serve::Client client(again.config().socket_path);
  const Shape2D shape = archive.reference.shape();
  const Slab2D slab{0, 0, shape.rows, 8};
  EXPECT_EQ(client.read_slab(slab), archive.reference.read_slab(slab));
  again.stop();
}
