// SpoolWatcher: two-poll stability admission, quarantine of malformed
// files, and indifference to non-acquisition clutter.
#include "dassa/ingest/spool.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dassa/common/error.hpp"
#include "dassa/core/array.hpp"
#include "dassa/io/dash5.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::ingest {
namespace {

namespace fs = std::filesystem;

/// Write a small valid DASH5 file into the spool.
std::string write_valid(const testing::TmpDir& dir,
                        const std::string& name) {
  const std::string path = dir.file(name);
  io::Dash5Header header;
  header.shape = {4, 32};
  std::vector<double> data(4 * 32, 1.5);
  io::dash5_write(path, header, data);
  return path;
}

TEST(IngestSpoolTest, RequiresTwoStablePolls) {
  testing::TmpDir dir("spool_stable");
  SpoolWatcher watcher(SpoolConfig{dir.str()});
  write_valid(dir, "a_170728224510.dh5");

  EXPECT_TRUE(watcher.poll().empty()) << "admitted on first sighting";
  EXPECT_EQ(watcher.pending(), 1u);
  const auto admitted = watcher.poll();
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_GT(admitted[0].admit_ns, 0u);
  EXPECT_EQ(watcher.pending(), 0u);
  EXPECT_TRUE(watcher.poll().empty()) << "admitted the same file twice";
}

TEST(IngestSpoolTest, GrowingFileWaitsUntilStable) {
  testing::TmpDir dir("spool_grow");
  SpoolWatcher watcher(SpoolConfig{dir.str()});
  const std::string path = write_valid(dir, "b_170728224510.dh5");
  EXPECT_TRUE(watcher.poll().empty());

  // The file grows between polls: the stability clock must restart,
  // so the changed file is not admitted on the poll that sees the new
  // size, only on the next quiet one.
  {
    std::ofstream app(path, std::ios::app | std::ios::binary);
    app << "tail-in-flight";
  }
  EXPECT_TRUE(watcher.poll().empty()) << "admitted a still-growing file";
  const auto admitted = watcher.poll();
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].path, path);
  EXPECT_EQ(watcher.quarantined(), 0u);
}

TEST(IngestSpoolTest, QuarantinesTruncatedAndCorruptFiles) {
  testing::TmpDir dir("spool_quar");
  SpoolWatcher watcher(SpoolConfig{dir.str()});
  write_valid(dir, "good_170728224510.dh5");

  // Truncated: a valid file cut mid-payload.
  {
    const std::string full = write_valid(dir, "trunc_170728224511.dh5");
    fs::resize_file(full, 16);
  }
  // Corrupt: not a DASH5 file at all.
  {
    std::ofstream bad(dir.file("corrupt_170728224512.dh5"),
                      std::ios::binary);
    bad << "this is not a DASH5 container";
  }

  EXPECT_TRUE(watcher.poll().empty());
  const auto admitted = watcher.poll();
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_NE(admitted[0].path.find("good_"), std::string::npos);
  EXPECT_EQ(watcher.quarantined(), 2u);
  EXPECT_EQ(watcher.admitted(), 1u);

  // The malformed files moved into the quarantine subdirectory and no
  // longer sit in the spool proper.
  const fs::path qdir = fs::path(dir.str()) / "quarantine";
  ASSERT_TRUE(fs::is_directory(qdir));
  std::size_t quarantined_files = 0;
  for (const auto& e : fs::directory_iterator(qdir)) {
    (void)e;
    ++quarantined_files;
  }
  EXPECT_EQ(quarantined_files, 2u);
  EXPECT_FALSE(fs::exists(dir.file("trunc_170728224511.dh5")));
  EXPECT_FALSE(fs::exists(dir.file("corrupt_170728224512.dh5")));

  // ...and nothing gets re-admitted or re-quarantined on later polls.
  EXPECT_TRUE(watcher.poll().empty());
  EXPECT_EQ(watcher.quarantined(), 2u);
}

TEST(IngestSpoolTest, IgnoresNonAcquisitionFiles) {
  testing::TmpDir dir("spool_clutter");
  SpoolWatcher watcher(SpoolConfig{dir.str()});
  { std::ofstream f(dir.file("notes.txt")); f << "hi"; }
  { std::ofstream f(dir.file("data.dh5.part")); f << "partial"; }
  fs::create_directories(dir.file("subdir.dh5"));  // directory decoy

  EXPECT_TRUE(watcher.poll().empty());
  EXPECT_TRUE(watcher.poll().empty());
  EXPECT_EQ(watcher.pending(), 0u);
  EXPECT_EQ(watcher.quarantined(), 0u);
}

TEST(IngestSpoolTest, AdmitsInFilenameOrder) {
  testing::TmpDir dir("spool_order");
  SpoolWatcher watcher(SpoolConfig{dir.str()});
  // Created out of order; admission must sort by name (timestamps in
  // acquisition names make that chronological order).
  write_valid(dir, "das_170728224530.dh5");
  write_valid(dir, "das_170728224510.dh5");
  write_valid(dir, "das_170728224520.dh5");

  EXPECT_TRUE(watcher.poll().empty());
  const auto admitted = watcher.poll();
  ASSERT_EQ(admitted.size(), 3u);
  EXPECT_LT(admitted[0].path, admitted[1].path);
  EXPECT_LT(admitted[1].path, admitted[2].path);
}

TEST(IngestSpoolTest, RejectsMissingDirectory) {
  EXPECT_THROW(SpoolWatcher(SpoolConfig{"/nonexistent/spool/dir"}),
               IoError);
}

}  // namespace
}  // namespace dassa::ingest
