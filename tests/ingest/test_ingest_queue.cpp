// BoundedQueue: backpressure (block, never drop), close/drain
// semantics, and the ingest.queue.* counters bench_ingest gates on.
#include "dassa/ingest/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"

namespace dassa::ingest {
namespace {

TEST(IngestQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(IngestQueueTest, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), InvalidArgument);
}

TEST(IngestQueueTest, PushBlocksUntilPopMakesRoom) {
  global_counters().reset();
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(3));  // must block: queue is full
    third_pushed.store(true);
  });
  // The producer must not complete while the queue stays full. A bounded
  // wait keeps the test honest without making it timing-flaky.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.depth(), 2u);

  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);

  // The no-drop invariant, as counters: everything pushed was popped,
  // the push that found the queue full was counted, and the depth never
  // exceeded capacity.
  EXPECT_EQ(global_counters().get(counters::kIngestQueuePushed), 3u);
  EXPECT_EQ(global_counters().get(counters::kIngestQueuePopped), 3u);
  EXPECT_GE(global_counters().get(counters::kIngestQueuePushBlocked), 1u);
  EXPECT_LE(global_counters().get(counters::kIngestQueuePeakDepth), 2u);
}

TEST(IngestQueueTest, CloseDrainsThenEndsTheStream) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  ASSERT_TRUE(q.push(8));
  q.close();
  EXPECT_FALSE(q.push(9));  // closed: rejected, not enqueued
  EXPECT_EQ(q.pop(), 7);    // ...but the backlog still drains
  EXPECT_EQ(q.pop(), 8);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // idempotent end-of-stream
}

TEST(IngestQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] {
    EXPECT_FALSE(q.push(2));  // blocked on full, then woken by close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), std::nullopt);
}

// TSan leg: several producers racing one consumer through a tiny
// queue; every pushed item must come out exactly once.
TEST(IngestQueueStressTest, ManyProducersOneConsumerNoLossNoDup) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(3);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }

  std::vector<int> seen_count(kProducers * kPerProducer, 0);
  std::thread consumer([&] {
    while (auto v = q.pop()) ++seen_count[static_cast<std::size_t>(*v)];
  });

  for (std::thread& t : producers) t.join();
  q.close();
  consumer.join();

  for (std::size_t i = 0; i < seen_count.size(); ++i) {
    ASSERT_EQ(seen_count[i], 1) << "item " << i << " lost or duplicated";
  }
}

}  // namespace
}  // namespace dassa::ingest
