// WindowPlanner: the sliding-window tiling invariants behind streamed
// vs offline byte-identity (docs/INGEST.md).
#include "dassa/ingest/window.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "dassa/common/error.hpp"

namespace dassa::ingest {
namespace {

/// Drive a planner over `file_cols` and collect every planned window
/// (regular ones as files arrive, plus the final one).
std::vector<WindowSpec> plan_all(WindowPlanner& planner,
                                 const std::vector<std::size_t>& file_cols) {
  std::vector<WindowSpec> windows;
  for (std::size_t cols : file_cols) {
    planner.add_file(cols);
    while (auto w = planner.next_ready()) windows.push_back(*w);
  }
  if (auto w = planner.finish()) windows.push_back(*w);
  return windows;
}

TEST(IngestWindowTest, EmitRegionsTileTheStreamExactly) {
  WindowPlanner planner(/*window_files=*/3, /*overlap_files=*/1,
                        /*margin_cols=*/15);
  const std::vector<std::size_t> cols{100, 100, 100, 100, 100};
  const std::vector<WindowSpec> windows = plan_all(planner, cols);

  ASSERT_FALSE(windows.empty());
  std::size_t expect = 0;
  for (const WindowSpec& w : windows) {
    EXPECT_EQ(w.emit_lo, expect) << "gap or overlap at window " << w.index;
    EXPECT_GT(w.emit_hi, w.emit_lo);
    expect = w.emit_hi;
  }
  EXPECT_EQ(expect, 500u) << "stream not fully covered";
  EXPECT_TRUE(windows.back().final);
  EXPECT_EQ(windows.back().emit_hi, 500u);
}

TEST(IngestWindowTest, InteriorEmitEdgesKeepTheMargin) {
  WindowPlanner planner(3, 1, 15);
  const std::vector<WindowSpec> windows =
      plan_all(planner, {100, 100, 100, 100, 100});
  for (const WindowSpec& w : windows) {
    // Right edge: a non-final window never emits the last margin
    // columns of its span.
    if (!w.final) {
      EXPECT_EQ(w.emit_hi + 15, w.end_col);
    }
    // Left edge: unless the window starts at the stream head, the emit
    // region begins at least margin columns inside the window.
    if (w.start_col > 0) {
      EXPECT_GE(w.emit_lo, w.start_col + 15);
    }
    EXPECT_GE(w.emit_lo, w.start_col);
    EXPECT_LE(w.emit_hi, w.end_col);
  }
}

TEST(IngestWindowTest, PropertyAnyGeometryTilesWithoutGaps) {
  std::mt19937 rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t window_files = 1 + rng() % 5;
    const std::size_t overlap_files = rng() % window_files;
    const std::size_t margin = rng() % 25;
    const std::size_t n_files = 1 + rng() % 12;
    std::vector<std::size_t> cols;
    // Long enough files that every geometry with overlap >= 1 file is
    // valid; overlap 0 needs margin 0 to be exact.
    const std::size_t min_cols = 2 * margin + 1;
    cols.reserve(n_files);
    for (std::size_t f = 0; f < n_files; ++f) {
      cols.push_back(min_cols + rng() % 50);
    }
    if (overlap_files == 0 && margin > 0 &&
        n_files > window_files) {
      continue;  // invalid geometry by design; covered below
    }

    WindowPlanner planner(window_files, overlap_files, margin);
    std::vector<WindowSpec> windows;
    try {
      windows = plan_all(planner, cols);
    } catch (const InvalidArgument&) {
      // Acceptable only when the overlap genuinely cannot cover two
      // margins; re-check the precondition the docs state.
      std::size_t overlap_cols = 0;
      for (std::size_t f = 0; f < overlap_files; ++f) {
        overlap_cols += cols[f];  // minimum overlap width in this trial
      }
      EXPECT_LT(overlap_cols, 2 * margin)
          << "planner rejected a geometry the contract allows";
      continue;
    }

    std::size_t total = 0;
    for (std::size_t c : cols) total += c;
    std::size_t expect = 0;
    for (const WindowSpec& w : windows) {
      ASSERT_EQ(w.emit_lo, expect)
          << "trial " << trial << ": gap/double-processing at window "
          << w.index;
      ASSERT_LE(w.emit_hi, total);
      expect = w.emit_hi;
    }
    ASSERT_EQ(expect, total) << "trial " << trial << ": stream not covered";
  }
}

TEST(IngestWindowTest, RejectsOverlapTooSmallForMargin) {
  // 3-file windows of 20 cols, 1-file overlap (20 cols) but margin 15:
  // 2 * 15 > 20, so the second window cannot reach back far enough.
  WindowPlanner planner(3, 1, 15);
  for (int f = 0; f < 5; ++f) planner.add_file(20);
  EXPECT_NO_THROW({ auto w = planner.next_ready(); (void)w; });
  EXPECT_THROW({ auto w = planner.next_ready(); (void)w; },
               InvalidArgument);
}

TEST(IngestWindowTest, FinishCoversRemainderWithContext) {
  WindowPlanner planner(4, 2, 10);
  planner.add_file(60);
  planner.add_file(60);  // no complete window yet
  EXPECT_EQ(planner.next_ready(), std::nullopt);
  const auto w = planner.finish();
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->final);
  EXPECT_EQ(w->first_file, 0u);
  EXPECT_EQ(w->emit_lo, 0u);
  EXPECT_EQ(w->emit_hi, 120u);
}

TEST(IngestWindowTest, FinishOnEmptyStreamIsEmpty) {
  WindowPlanner planner(2, 1, 5);
  EXPECT_EQ(planner.finish(), std::nullopt);
}

TEST(IngestWindowTest, ValidatesConstruction) {
  EXPECT_THROW(WindowPlanner(0, 0, 1), InvalidArgument);
  EXPECT_THROW(WindowPlanner(2, 2, 1), InvalidArgument);
  WindowPlanner ok(2, 1, 0);
  EXPECT_THROW(ok.add_file(0), InvalidArgument);
}

}  // namespace
}  // namespace dassa::ingest
