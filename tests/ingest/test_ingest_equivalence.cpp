// The streaming contract (docs/INGEST.md): the sliding-window driver's
// assembled similarity map is byte-identical to one offline pass over
// the same files -- at world size 1 and at world size 4, across window
// geometries, including windows that end mid-stream at drain time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dassa/common/metrics.hpp"
#include "dassa/core/haee.hpp"
#include "dassa/das/local_similarity.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/ingest/driver.hpp"
#include "dassa/io/vca.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::ingest {
namespace {

std::vector<std::string> make_acquisition(const testing::TmpDir& dir,
                                          std::size_t files,
                                          double seconds_per_file) {
  das::SynthDas synth = das::SynthDas::fig1b_scene(/*channels=*/12,
                                                   /*sampling_hz=*/50.0,
                                                   /*seed=*/20260809);
  das::AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.file_count = files;
  spec.seconds_per_file = seconds_per_file;
  return das::write_acquisition(synth, spec);
}

core::Array2D offline_similarity(const std::vector<std::string>& files,
                                 const das::LocalSimilarityParams& p,
                                 const core::EngineConfig& engine) {
  const io::Vca vca = io::Vca::build(files);
  return das::local_similarity_distributed(engine, vca, p).output;
}

core::Array2D streamed_similarity(const std::vector<std::string>& files,
                                  IngestConfig cfg,
                                  std::size_t* windows_out = nullptr) {
  IngestDriver driver(cfg);
  for (const std::string& f : files) driver.add_file(SpoolFile{f, 1});
  IngestResult r = driver.finish();
  if (windows_out != nullptr) *windows_out = r.windows;
  return std::move(r.similarity);
}

das::LocalSimilarityParams small_params() {
  das::LocalSimilarityParams p;
  p.window_half = 10;
  p.lag_half = 5;
  return p;
}

TEST(IngestEquivalenceTest, StreamedMatchesBatchWorldSize1) {
  testing::TmpDir dir("equiv_w1");
  const auto files = make_acquisition(dir, 5, 2.0);  // 5 x 100 cols

  IngestConfig cfg;
  cfg.window_files = 3;
  cfg.overlap_files = 1;
  cfg.similarity = small_params();
  cfg.detect = false;
  cfg.engine.nodes = 1;
  cfg.engine.cores_per_node = 1;

  std::size_t windows = 0;
  const core::Array2D streamed = streamed_similarity(files, cfg, &windows);
  EXPECT_GE(windows, 2u) << "geometry did not exercise multiple windows";
  const core::Array2D offline =
      offline_similarity(files, cfg.similarity, cfg.engine);
  EXPECT_EQ(streamed, offline);  // bitwise: Array2D compares data exactly
}

TEST(IngestEquivalenceTest, StreamedMatchesBatchWorldSize4) {
  testing::TmpDir dir("equiv_w4");
  const auto files = make_acquisition(dir, 6, 2.0);

  IngestConfig cfg;
  cfg.window_files = 4;
  cfg.overlap_files = 2;
  cfg.similarity = small_params();
  cfg.detect = false;
  cfg.engine.nodes = 4;
  cfg.engine.cores_per_node = 2;

  std::size_t windows = 0;
  const core::Array2D streamed = streamed_similarity(files, cfg, &windows);
  EXPECT_GE(windows, 2u);
  const core::Array2D offline =
      offline_similarity(files, cfg.similarity, cfg.engine);
  EXPECT_EQ(streamed, offline);
}

TEST(IngestEquivalenceTest, DrainMidWindowStillMatchesBatch) {
  testing::TmpDir dir("equiv_drain");
  // 4 files with a 3-file window: the last file only ever appears in
  // the drain-time final window.
  const auto files = make_acquisition(dir, 4, 2.0);

  IngestConfig cfg;
  cfg.window_files = 3;
  cfg.overlap_files = 1;
  cfg.similarity = small_params();
  cfg.detect = false;
  cfg.engine.nodes = 2;
  cfg.engine.cores_per_node = 1;

  const core::Array2D streamed = streamed_similarity(files, cfg);
  const core::Array2D offline =
      offline_similarity(files, cfg.similarity, cfg.engine);
  EXPECT_EQ(streamed, offline);
}

TEST(IngestEquivalenceTest, EventsMatchBatchDetection) {
  testing::TmpDir dir("equiv_events");
  const auto files = make_acquisition(dir, 5, 2.0);

  IngestConfig cfg;
  cfg.window_files = 3;
  cfg.overlap_files = 1;
  cfg.similarity = small_params();
  cfg.detect = true;
  cfg.engine.nodes = 1;
  cfg.engine.cores_per_node = 2;

  IngestDriver driver(cfg);
  for (const std::string& f : files) driver.add_file(SpoolFile{f, 1});
  const IngestResult r = driver.finish();

  const core::Array2D offline =
      offline_similarity(files, cfg.similarity, cfg.engine);
  const auto batch_events = das::detect_events(offline, cfg.detector);
  ASSERT_EQ(r.events.size(), batch_events.size());
  for (std::size_t i = 0; i < r.events.size(); ++i) {
    EXPECT_EQ(r.events[i].type, batch_events[i].type);
    EXPECT_EQ(r.events[i].channel_lo, batch_events[i].channel_lo);
    EXPECT_EQ(r.events[i].channel_hi, batch_events[i].channel_hi);
    EXPECT_EQ(r.events[i].time_lo, batch_events[i].time_lo);
    EXPECT_EQ(r.events[i].time_hi, batch_events[i].time_hi);
    EXPECT_EQ(r.events[i].peak_similarity, batch_events[i].peak_similarity);
  }
}

TEST(IngestEquivalenceTest, RecordsPerFileLatency) {
  testing::TmpDir dir("equiv_latency");
  const auto files = make_acquisition(dir, 4, 2.0);

  IngestConfig cfg;
  cfg.window_files = 2;
  cfg.overlap_files = 1;
  cfg.similarity = small_params();
  cfg.detect = false;
  cfg.engine.nodes = 1;
  cfg.engine.cores_per_node = 1;

  const std::uint64_t before =
      global_metrics().histogram("ingest.file_to_detection").snapshot().count;
  const core::Array2D streamed = streamed_similarity(files, cfg);
  EXPECT_GT(streamed.shape.size(), 0u);
  const auto after =
      global_metrics().histogram("ingest.file_to_detection").snapshot();
  // Every file's ingest-to-detection latency was recorded exactly once.
  EXPECT_EQ(after.count - before, files.size());
}

TEST(IngestEquivalenceTest, LiveVcaIndexRepublishesAtomically) {
  testing::TmpDir dir("equiv_index");
  const auto files = make_acquisition(dir, 3, 2.0);
  const std::string index = dir.file("live.vca");

  IngestConfig cfg;
  cfg.window_files = 2;
  cfg.overlap_files = 1;
  cfg.similarity = small_params();
  cfg.detect = false;
  cfg.engine.nodes = 1;
  cfg.engine.cores_per_node = 1;
  cfg.vca_index_path = index;

  IngestDriver driver(cfg);
  std::size_t n = 0;
  for (const std::string& f : files) {
    driver.add_file(SpoolFile{f, 1});
    ++n;
    // After every append the on-disk index is a loadable, complete
    // snapshot of everything ingested so far.
    const io::Vca loaded = io::Vca::load(index);
    EXPECT_EQ(loaded.members().size(), n);
    EXPECT_EQ(loaded.shape(), driver.live_vca().snapshot()->shape());
  }
  (void)driver.finish();
}

}  // namespace
}  // namespace dassa::ingest
