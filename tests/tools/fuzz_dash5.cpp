// Deterministic mutational fuzzing of the DASSA container parsers.
//
// Contract under test (docs/ANALYSIS.md): for ANY byte stream, opening
// a DasH5 / VCA container and reading through it either succeeds or
// throws a dassa::Error (FormatError for structural corruption,
// IoError for I/O bounds, InvalidArgument for bad selections). It must
// never crash, corrupt memory, raise std::bad_alloc from a
// attacker-sized allocation, or throw a non-DASSA exception.
//
// The harness is corpus-driven and self-contained -- no libFuzzer
// dependency, a seeded std::mt19937_64, so every run (and every
// failure) is reproducible from the command line:
//
//   fuzz_dash5 [--iters N] [--seed S] [--scratch DIR] [--keep-failures]
//
// Each iteration picks a valid seed container (contiguous f64 DasH5,
// chunked f32 DasH5, compressed v3 DasH5 under both codec chains, VCA,
// KV-heavy DasH5), applies 1-3 random mutations (bit flips, byte
// stomps, truncation, growth, zeroed and garbage spans, plus
// v3-targeted chunk-index mutations that re-sign the index CRC so the
// corruption reaches the structural validators), writes the result to
// a scratch file and runs the full parse+read surface over it. A
// failing input is saved next to the scratch file so it can be
// replayed and minimised by hand.
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "../../src/io/serialize.hpp"
#include "dassa/common/error.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/vca.hpp"

namespace fs = std::filesystem;
using dassa::Shape2D;
using dassa::Slab2D;

namespace {

struct Options {
  std::uint64_t iters = 10000;
  std::uint64_t seed = 20260806;
  std::string scratch;
  bool keep_failures = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iters") {
      opt.iters = std::stoull(value());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--scratch") {
      opt.scratch = value();
    } else if (arg == "--keep-failures") {
      opt.keep_failures = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// One seed container: the valid bytes plus which parser to aim at.
struct SeedInput {
  enum class Kind { kDash5, kVca };
  Kind kind;
  std::string name;
  std::vector<std::uint8_t> bytes;
};

/// Build the seed corpus inside `dir`: every container format and
/// layout/dtype combination the io layer supports.
std::vector<SeedInput> build_corpus(const fs::path& dir) {
  using namespace dassa::io;

  auto make_data = [](Shape2D shape, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> dist;
    std::vector<double> data(shape.size());
    for (auto& v : data) v = dist(rng);
    return data;
  };

  auto base_header = [](Shape2D shape) {
    Dash5Header h;
    h.shape = shape;
    h.global.set_f64("SamplingFrequency[Hz]", 500.0);
    h.global.set("TimeStamp", "170620100545");
    for (std::size_t ch = 0; ch < shape.rows; ++ch) {
      ObjectMeta obj;
      obj.path = "/Measurement/" + std::to_string(ch + 1);
      obj.kv.set_i64("Array dimension", 1);
      h.objects.push_back(std::move(obj));
    }
    return h;
  };

  // Contiguous f64.
  {
    const Shape2D shape{6, 40};
    dash5_write((dir / "plain.dh5").string(), base_header(shape),
                make_data(shape, 1));
  }
  // Chunked f32 (exercises the tile grid arithmetic).
  {
    const Shape2D shape{7, 33};
    Dash5Header h = base_header(shape);
    h.dtype = DType::kF32;
    h.layout = Layout::kChunked;
    h.chunk = ChunkShape{3, 8};
    dash5_write((dir / "chunked.dh5").string(), h, make_data(shape, 2));
  }
  // KV-heavy: long keys/values, many objects (exercises the KV codec).
  {
    const Shape2D shape{4, 10};
    Dash5Header h = base_header(shape);
    for (int i = 0; i < 24; ++i) {
      h.global.set("key_" + std::to_string(i) + std::string(20, 'k'),
                   std::string(static_cast<std::size_t>(i) * 7, 'v'));
    }
    dash5_write((dir / "kv.dh5").string(), h, make_data(shape, 3));
  }
  // Compressed v3 f64 (chunk index footer, shuffle+lz chain).
  {
    const Shape2D shape{9, 50};
    Dash5Header h = base_header(shape);
    h.layout = Layout::kChunked;
    h.chunk = ChunkShape{4, 16};
    h.codec = CodecSpec::parse("shuffle+lz");
    dash5_write((dir / "v3_shuffle.dh5").string(), h, make_data(shape, 6));
  }
  // Compressed v3 f32 (delta+lz chain, odd tile grid).
  {
    const Shape2D shape{5, 41};
    Dash5Header h = base_header(shape);
    h.dtype = DType::kF32;
    h.layout = Layout::kChunked;
    h.chunk = ChunkShape{2, 8};
    h.codec = CodecSpec::parse("delta+lz");
    dash5_write((dir / "v3_delta.dh5").string(), h, make_data(shape, 7));
  }
  // VCA over two members (exercises the .vca parser; its member paths
  // point at real files, so post-parse reads exercise resolution too).
  {
    const Shape2D shape{5, 16};
    dash5_write((dir / "m0.dh5").string(), base_header(shape),
                make_data(shape, 4));
    dash5_write((dir / "m1.dh5").string(), base_header(shape),
                make_data(shape, 5));
    const Vca vca = Vca::build(
        {(dir / "m0.dh5").string(), (dir / "m1.dh5").string()});
    vca.save((dir / "pair.vca").string());
  }

  std::vector<SeedInput> corpus;
  for (const char* name : {"plain.dh5", "chunked.dh5", "kv.dh5",
                           "v3_shuffle.dh5", "v3_delta.dh5"}) {
    corpus.push_back({SeedInput::Kind::kDash5, name,
                      read_file((dir / name).string())});
  }
  corpus.push_back({SeedInput::Kind::kVca, "pair.vca",
                    read_file((dir / "pair.vca").string())});
  return corpus;
}

/// True iff `bytes` still ends with the v3 chunk index magic.
bool has_v3_footer(const std::vector<std::uint8_t>& bytes) {
  static const std::uint8_t magic[8] = {'D', 'A', 'S', 'I', 'D', 'X', 0, 3};
  return bytes.size() >= 28 &&
         std::memcmp(bytes.data() + bytes.size() - 8, magic, 8) == 0;
}

/// Mutate a byte inside the chunk index block and re-sign its CRC, so
/// the corruption survives the integrity gate and reaches the
/// structural validators (dense offsets, size bounds, codec flags).
/// Returns false when the input has no (intact) footer.
bool mutate_v3_index(std::vector<std::uint8_t>& bytes, std::mt19937_64& rng,
                     std::string& what) {
  if (!has_v3_footer(bytes)) return false;
  std::uint64_t index_size = 0;
  std::memcpy(&index_size, bytes.data() + bytes.size() - 16,
              sizeof index_size);
  if (index_size == 0 || index_size > bytes.size() - 20) return false;
  const std::size_t index_start =
      bytes.size() - 20 - static_cast<std::size_t>(index_size);
  const std::size_t p =
      index_start + std::uniform_int_distribution<std::size_t>(
                        0, static_cast<std::size_t>(index_size) - 1)(rng);
  if (rng() % 2 == 0) {
    bytes[p] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
  } else {
    bytes[p] = static_cast<std::uint8_t>(rng());
  }
  const std::uint32_t crc = dassa::io::detail::crc32(
      reinterpret_cast<const std::byte*>(bytes.data()) + index_start,
      static_cast<std::size_t>(index_size));
  std::memcpy(bytes.data() + bytes.size() - 20, &crc, sizeof crc);
  what = "v3index@" + std::to_string(p) + "+crcfix";
  return true;
}

/// Stomp one of the three footer control fields (index CRC, index
/// size, trailing magic) without fixing anything up.
bool mutate_v3_footer(std::vector<std::uint8_t>& bytes, std::mt19937_64& rng,
                      std::string& what) {
  if (!has_v3_footer(bytes)) return false;
  const std::size_t tail = 20;  // crc u32 + size u64 + magic u64
  const std::size_t p =
      bytes.size() - tail +
      std::uniform_int_distribution<std::size_t>(0, tail - 1)(rng);
  bytes[p] = rng() % 2 == 0 ? 0xFF : static_cast<std::uint8_t>(rng());
  what = "v3footer@" + std::to_string(p);
  return true;
}

/// Apply one random mutation in place; returns a description for
/// failure reports.
std::string mutate_once(std::vector<std::uint8_t>& bytes,
                        std::mt19937_64& rng) {
  auto pos = [&](std::size_t extent) {
    return std::uniform_int_distribution<std::size_t>(0, extent - 1)(rng);
  };
  if (bytes.empty()) bytes.push_back(0);
  switch (rng() % 9) {
    case 7: {  // v3: index mutation behind a fixed-up CRC
      std::string what;
      if (mutate_v3_index(bytes, rng, what)) return what;
      break;  // not a v3 file (any more): fall through to a bit flip
    }
    case 8: {  // v3: footer control-field stomp
      std::string what;
      if (mutate_v3_footer(bytes, rng, what)) return what;
      break;
    }
    default:
      break;
  }
  switch (rng() % 7) {
    case 0: {  // flip 1-8 bits
      const auto flips = 1 + rng() % 8;
      std::string where;
      for (std::uint64_t i = 0; i < flips; ++i) {
        const std::size_t p = pos(bytes.size());
        bytes[p] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
        where += (where.empty() ? "" : ",") + std::to_string(p);
      }
      return "bitflip@" + where;
    }
    case 1: {  // stomp one byte
      const std::size_t p = pos(bytes.size());
      bytes[p] = static_cast<std::uint8_t>(rng());
      return "stomp@" + std::to_string(p);
    }
    case 2: {  // overwrite 4 bytes (magic numbers, lengths, counts)
      const std::size_t p = pos(bytes.size());
      for (std::size_t i = p; i < std::min(p + 4, bytes.size()); ++i) {
        bytes[i] = static_cast<std::uint8_t>(rng());
      }
      return "stomp4@" + std::to_string(p);
    }
    case 3: {  // truncate
      const std::size_t keep = pos(bytes.size() + 1);
      bytes.resize(keep);
      return "truncate->" + std::to_string(keep);
    }
    case 4: {  // grow with garbage
      const std::size_t extra = 1 + rng() % 64;
      for (std::size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(rng()));
      }
      return "grow+" + std::to_string(extra);
    }
    case 5: {  // zero a span (simulates a hole from a failed write)
      const std::size_t p = pos(bytes.size());
      const std::size_t len = std::min<std::size_t>(1 + rng() % 32,
                                                    bytes.size() - p);
      std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(p),
                bytes.begin() + static_cast<std::ptrdiff_t>(p + len), 0);
      return "zero@" + std::to_string(p) + "+" + std::to_string(len);
    }
    default: {  // saturate 8 bytes to 0xFF (length-field overflow bait)
      const std::size_t p = pos(bytes.size());
      for (std::size_t i = p; i < std::min(p + 8, bytes.size()); ++i) {
        bytes[i] = 0xFF;
      }
      return "saturate8@" + std::to_string(p);
    }
  }
}

/// Exercise the full read surface of a (possibly corrupted) DasH5 file.
void drive_dash5(const std::string& path) {
  using namespace dassa::io;
  const Dash5File f(path);
  (void)f.global_meta();
  (void)f.objects();
  (void)f.version();
  (void)f.codec().str();
  (void)f.chunk_index();
  const Shape2D shape = f.shape();
  (void)f.read_all();
  if (shape.rows > 0 && shape.cols > 0) {
    (void)f.read_slab(Slab2D{0, 0, 1, shape.cols});
    (void)f.read_slab(Slab2D{shape.rows - 1, shape.cols - 1, 1, 1});
    (void)f.read_slab(
        Slab2D{0, shape.cols / 2, shape.rows, shape.cols - shape.cols / 2});
  }
  (void)Dash5File::read_header(path);
}

/// Exercise the full read surface of a (possibly corrupted) VCA file.
void drive_vca(const std::string& path) {
  using namespace dassa::io;
  const Vca vca = Vca::load(path);
  (void)vca.global_meta();
  const Shape2D shape = vca.shape();
  for (std::size_t m = 0; m < vca.members().size(); ++m) {
    (void)vca.member_col_start(m);
  }
  if (!shape.empty()) {
    (void)vca.resolve(Slab2D::whole(shape));
    // Member paths may have been mutated into nonsense; IoError is the
    // documented outcome for that.
    (void)vca.read_slab(Slab2D{0, 0, 1, std::min<std::size_t>(shape.cols, 8)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  const fs::path scratch =
      opt.scratch.empty()
          ? fs::temp_directory_path() /
                ("dassa_fuzz_" + std::to_string(::getpid()))
          : fs::path(opt.scratch);
  fs::create_directories(scratch);

  const std::vector<SeedInput> corpus = build_corpus(scratch);

  std::mt19937_64 rng(opt.seed);
  std::uint64_t parsed_ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failures = 0;

  for (std::uint64_t iter = 0; iter < opt.iters; ++iter) {
    const SeedInput& seed_input = corpus[rng() % corpus.size()];
    std::vector<std::uint8_t> bytes = seed_input.bytes;

    const std::uint64_t n_mut = 1 + rng() % 3;
    std::string description = seed_input.name;
    for (std::uint64_t m = 0; m < n_mut; ++m) {
      description += " " + mutate_once(bytes, rng);
    }

    const std::string victim =
        (scratch / ("victim" + std::string(seed_input.kind ==
                                                   SeedInput::Kind::kVca
                                               ? ".vca"
                                               : ".dh5")))
            .string();
    write_file(victim, bytes);

    try {
      if (seed_input.kind == SeedInput::Kind::kVca) {
        drive_vca(victim);
      } else {
        drive_dash5(victim);
      }
      ++parsed_ok;
    } catch (const dassa::Error&) {
      ++rejected;  // the documented failure mode: a typed DASSA error
    } catch (const std::exception& e) {
      ++failures;
      const std::string saved = victim + ".bad" + std::to_string(failures);
      write_file(saved, bytes);
      std::cerr << "FUZZ FAILURE at iter " << iter << " [" << description
                << "]\n  escaped exception: " << e.what()
                << "\n  input saved to " << saved << "\n  reproduce: "
                << argv[0] << " --seed " << opt.seed << " --iters "
                << (iter + 1) << "\n";
    }
  }

  std::cout << "fuzz_dash5: " << opt.iters << " inputs, " << parsed_ok
            << " parsed, " << rejected << " rejected cleanly, " << failures
            << " contract violations (seed " << opt.seed << ")\n";

  if (failures == 0 && !opt.keep_failures) {
    std::error_code ec;
    fs::remove_all(scratch, ec);
  }
  return failures == 0 ? 0 : 1;
}
