// Smoke tests for the CLI tools: run each binary end-to-end against a
// generated acquisition and check exit codes and observable outputs.
// The tool binaries are located relative to this test executable
// (build/tests/... -> build/tools/...).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "dassa/common/telemetry.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/vca.hpp"
#include "testing/tmpdir.hpp"

namespace dassa {
namespace {

using testing::TmpDir;

std::string tools_dir() {
  // CMake binary layout: <build>/tests/<test>, <build>/tools/<tool>.
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe");
  return (self.parent_path().parent_path() / "tools").string();
}

int run(const std::string& cmd) {
  const int status = std::system((cmd + " > /dev/null 2>&1").c_str());
  return WEXITSTATUS(status);
}

class ToolsSmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TmpDir("tools");
    ASSERT_EQ(run(tools_dir() + "/das_generate --dir " + dir_->str() +
                  " --channels 16 --rate 20 --files 4 "
                  "--seconds-per-file 2 --start 170728224510"),
              0);
  }
  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }
  static TmpDir* dir_;
};

TmpDir* ToolsSmokeTest::dir_ = nullptr;

TEST_F(ToolsSmokeTest, GenerateProducedReadableFiles) {
  std::size_t count = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_->str())) {
    if (e.path().extension() != ".dh5") continue;
    ++count;
    io::Dash5File f(e.path().string());
    EXPECT_EQ(f.shape(), (Shape2D{16, 40}));
  }
  EXPECT_EQ(count, 4u);
}

TEST_F(ToolsSmokeTest, SearchRangeAndRegexExitCodes) {
  const std::string bin = tools_dir() + "/das_search --dir " + dir_->str();
  EXPECT_EQ(run(bin + " -s 170728224510 -c 2"), 0);
  EXPECT_EQ(run(bin + " -e '1707282245[01][02]'"), 0);
  EXPECT_EQ(run(tools_dir() + "/das_search --dir " + dir_->str()), 2);  // no query
}

TEST_F(ToolsSmokeTest, SearchSavesLoadableVcaAndRca) {
  const std::string vca_path = dir_->file("merged.vca");
  const std::string rca_path = dir_->file("merged.dh5");
  ASSERT_EQ(run(tools_dir() + "/das_search --dir " + dir_->str() +
                " -s 170728224510 -c 4 --save-vca " + vca_path +
                " --save-rca " + rca_path),
            0);
  io::Vca vca = io::Vca::load(vca_path);
  EXPECT_EQ(vca.shape(), (Shape2D{16, 160}));
  io::Dash5File rca(rca_path);
  EXPECT_EQ(rca.shape(), (Shape2D{16, 160}));
  EXPECT_EQ(vca.read_all(), rca.read_all());
}

TEST_F(ToolsSmokeTest, InfoRunsOnBothFormats) {
  ASSERT_EQ(run(tools_dir() + "/das_search --dir " + dir_->str() +
                " -s 170728224510 -c 4 --save-vca " + dir_->file("i.vca")),
            0);
  std::string first;
  for (const auto& e : std::filesystem::directory_iterator(dir_->str())) {
    if (e.path().extension() == ".dh5") {
      first = e.path().string();
      break;
    }
  }
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(run(tools_dir() + "/das_info " + first), 0);
  EXPECT_EQ(run(tools_dir() + "/das_info " + dir_->file("i.vca")), 0);
  EXPECT_EQ(run(tools_dir() + "/das_info /nonexistent.dh5"), 1);
}

TEST_F(ToolsSmokeTest, AnalyzeSimilarityWritesOutput) {
  const std::string out = dir_->file("sim_out.dh5");
  ASSERT_EQ(run(tools_dir() + "/das_analyze --dir " + dir_->str() +
                " --pipeline similarity --window-half 4 --lag-half 2 "
                "--nodes 2 --cores 2 --out " + out),
            0);
  io::Dash5File f(out);
  EXPECT_EQ(f.shape(), (Shape2D{16, 160}));
}

TEST_F(ToolsSmokeTest, AnalyzeInterferometryWritesOutput) {
  const std::string out = dir_->file("intf_out.dh5");
  ASSERT_EQ(run(tools_dir() + "/das_analyze --dir " + dir_->str() +
                " --pipeline interferometry --band-lo 1 --band-hi 8 "
                "--resample-down 2 --out " + out),
            0);
  io::Dash5File f(out);
  EXPECT_EQ(f.shape(), (Shape2D{16, 1}));
}

TEST_F(ToolsSmokeTest, RepackCompressesAndVerifiesRoundtrip) {
  std::string first;
  for (const auto& e : std::filesystem::directory_iterator(dir_->str())) {
    if (e.path().extension() == ".dh5") {
      first = e.path().string();
      break;
    }
  }
  ASSERT_FALSE(first.empty());
  const std::string v3 = dir_->file("repacked_v3.dh5");
  ASSERT_EQ(run(tools_dir() + "/das_repack " + first + " " + v3 +
                " --codec shuffle+lz --chunk 4x16 --verify"),
            0);
  io::Dash5File f(v3);
  EXPECT_EQ(f.version(), 3);
  EXPECT_EQ(f.codec().str(), "shuffle+lz");
  EXPECT_EQ(f.chunk(), (io::ChunkShape{4, 16}));
  EXPECT_EQ(f.read_all(), io::Dash5File(first).read_all());

  // And back to a plain contiguous v2 file, still bit-exact.
  const std::string back = dir_->file("repacked_back.dh5");
  ASSERT_EQ(run(tools_dir() + "/das_repack " + v3 + " " + back +
                " --contiguous --verify"),
            0);
  io::Dash5File b(back);
  EXPECT_EQ(b.version(), 2);
  EXPECT_EQ(b.layout(), io::Layout::kContiguous);
  EXPECT_EQ(b.read_all(), f.read_all());
  EXPECT_EQ(run(tools_dir() + "/das_info " + v3), 0);
}

TEST_F(ToolsSmokeTest, RepackRejectsBadInvocations) {
  EXPECT_EQ(run(tools_dir() + "/das_repack only_one_arg.dh5"), 2);
  const std::string out = dir_->file("never.dh5");
  std::string first;
  for (const auto& e : std::filesystem::directory_iterator(dir_->str())) {
    if (e.path().extension() == ".dh5") {
      first = e.path().string();
      break;
    }
  }
  // --contiguous cannot carry a codec chain.
  EXPECT_EQ(run(tools_dir() + "/das_repack " + first + " " + out +
                " --contiguous --codec lz"),
            1);
  EXPECT_EQ(run(tools_dir() + "/das_repack " + first + " " + out +
                " --codec nonsense"),
            1);
  EXPECT_EQ(run(tools_dir() + "/das_repack " + first + " " + out +
                " --chunk 4by16"),
            1);
}

TEST_F(ToolsSmokeTest, GenerateWithCodecEmitsReadableV3Files) {
  TmpDir v3dir("tools_v3gen");
  ASSERT_EQ(run(tools_dir() + "/das_generate --dir " + v3dir.str() +
                " --channels 8 --rate 50 --files 1 --seconds-per-file 2 "
                "--start 170728224510 --codec shuffle+lz --chunk 4x32 "
                "--quantize 0.0078125"),
            0);
  std::size_t count = 0;
  for (const auto& e : std::filesystem::directory_iterator(v3dir.str())) {
    if (e.path().extension() != ".dh5") continue;
    ++count;
    io::Dash5File f(e.path().string());
    EXPECT_EQ(f.version(), 3);
    EXPECT_EQ(f.shape(), (Shape2D{8, 100}));
    EXPECT_EQ(f.codec().str(), "shuffle+lz");
    EXPECT_EQ(f.read_all().size(), 800u);
  }
  EXPECT_EQ(count, 1u);
}

TEST_F(ToolsSmokeTest, AnalyzeTelemetryProducesValidHealthFile) {
  // The acceptance run: >= 4 ranks, telemetry JSONL out, then the file
  // must round-trip through the in-process schema validator and its
  // aggregate rows must exactly equal the per-rank totals.
  const std::string tele = dir_->file("run.telemetry.jsonl");
  ASSERT_EQ(run(tools_dir() + "/das_analyze --dir " + dir_->str() +
                " --pipeline similarity --window-half 4 --lag-half 2 "
                "--nodes 4 --cores 2 --telemetry " + tele +
                " --telemetry-period-ms 5 --out " +
                dir_->file("tele_out.dh5")),
            0);

  std::ifstream in(tele);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const telemetry::TelemetryFile file =
      telemetry::parse_telemetry_jsonl(text.str());
  telemetry::validate_telemetry_file(file);

  EXPECT_EQ(file.meta.at("schema"), telemetry::kSchemaVersion);
  EXPECT_EQ(file.meta.at("tool"), "das_analyze");
  EXPECT_EQ(file.meta.at("world_size"), "4");
  ASSERT_EQ(file.ranks.size(), 4u);
  ASSERT_FALSE(file.samples.empty());
  ASSERT_FALSE(file.stages.empty());
  ASSERT_FALSE(file.aggs.empty());

  // Cross-check every aggregate against the per-rank records (the
  // validator did too -- this spells the acceptance criterion out).
  for (const telemetry::AggRecord& agg : file.aggs) {
    std::uint64_t sum = 0;
    for (const telemetry::RankRecord& r : file.ranks) {
      const auto it = r.counters.find(agg.counter);
      if (it != r.counters.end()) sum += it->second;
    }
    EXPECT_EQ(agg.sum, sum) << agg.counter;
    EXPECT_GE(agg.imbalance, 1.0) << agg.counter;
  }
  bool saw_rows = false;
  for (const telemetry::AggRecord& agg : file.aggs) {
    if (agg.counter == "haee.rows_owned") {
      saw_rows = true;
      EXPECT_EQ(agg.sum, 16u);  // every channel owned exactly once
    }
  }
  EXPECT_TRUE(saw_rows);

  // Merged stage histogram: per-rank clocks, bucket sum == count.
  ASSERT_FALSE(file.hists.empty());
  for (const telemetry::HistRecord& h : file.hists) {
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t b : h.buckets) bucket_sum += b;
    EXPECT_EQ(bucket_sum, h.count) << h.name;
  }

  // das_health accepts the same file, both modes.
  EXPECT_EQ(run(tools_dir() + "/das_health " + tele + " --validate-only"),
            0);
  EXPECT_EQ(run(tools_dir() + "/das_health " + tele), 0);
  EXPECT_EQ(run(tools_dir() + "/das_health " + dir_->file("absent.jsonl")),
            1);
  EXPECT_EQ(run(tools_dir() + "/das_health"), 2);

  // Corrupt one aggregate: das_health must now reject the file.
  std::string doctored = text.str();
  const std::string needle = "\"type\":\"agg\",\"counter\":\"haee.rows_owned\",\"sum\":16";
  const std::size_t at = doctored.find(needle);
  ASSERT_NE(at, std::string::npos);
  doctored.replace(at, needle.size(),
                   "\"type\":\"agg\",\"counter\":\"haee.rows_owned\",\"sum\":17");
  const std::string bad = dir_->file("bad.telemetry.jsonl");
  {
    std::ofstream out(bad);
    out << doctored;
  }
  EXPECT_EQ(run(tools_dir() + "/das_health " + bad + " --validate-only"),
            1);
}

TEST_F(ToolsSmokeTest, AnalyzeRejectsUnknownPipeline) {
  EXPECT_EQ(run(tools_dir() + "/das_analyze --dir " + dir_->str() +
                " --pipeline nonsense"),
            2);
}

TEST_F(ToolsSmokeTest, AnalyzeRequiresExplicitOut) {
  // No silent CWD artifact: an analysis pipeline without --out/-o is a
  // usage error, and nothing is written anywhere.
  EXPECT_EQ(run(tools_dir() + "/das_analyze --dir " + dir_->str() +
                " --pipeline similarity --window-half 4 --lag-half 2"),
            2);
  EXPECT_FALSE(std::filesystem::exists("das_analyze_out.dh5"));
  // qc prints to stdout and legitimately needs no output path.
  EXPECT_EQ(run(tools_dir() + "/das_analyze --dir " + dir_->str() +
                " --pipeline qc"),
            0);
}

TEST_F(ToolsSmokeTest, GenerateStreamDeliversWholeFiles) {
  // --stream stages each file and renames it into the spool, so a
  // watcher never sees a half-written acquisition; the staging area
  // must be gone afterwards.
  TmpDir spool("tools_stream");
  ASSERT_EQ(run(tools_dir() + "/das_generate --dir " + spool.str() +
                " --channels 8 --rate 20 --files 3 --seconds-per-file 2 "
                "--start 170728224510 --stream"),
            0);
  EXPECT_FALSE(std::filesystem::exists(spool.str() + "/.staging"));
  std::size_t count = 0;
  for (const auto& e : std::filesystem::directory_iterator(spool.str())) {
    if (e.path().extension() != ".dh5") continue;
    ++count;
    io::Dash5File f(e.path().string());
    EXPECT_EQ(f.shape(), (Shape2D{8, 40}));
  }
  EXPECT_EQ(count, 3u);
}

TEST_F(ToolsSmokeTest, IngestOnceMatchesAnalyzeByteForByte) {
  // The streaming acceptance criterion, end to end through the CLIs:
  // das_ingest --once over a spool must write the same container, byte
  // for byte, as the offline das_analyze run over the same directory.
  TmpDir spool("tools_ingest");
  ASSERT_EQ(run(tools_dir() + "/das_generate --dir " + spool.str() +
                " --channels 12 --rate 20 --files 5 --seconds-per-file 2 "
                "--start 170728224510"),
            0);
  // Outputs go to a separate directory so the offline catalog scan
  // sees only the original acquisition files.
  TmpDir outdir("tools_ingest_out");
  const std::string streamed = outdir.file("streamed.dh5");
  const std::string offline = outdir.file("offline.dh5");
  ASSERT_EQ(run(tools_dir() + "/das_ingest --spool " + spool.str() +
                " --out " + streamed +
                " --once --window 3 --overlap 1 --window-half 4 "
                "--lag-half 2 --nodes 2 --cores 2"),
            0);
  ASSERT_EQ(run(tools_dir() + "/das_analyze --dir " + spool.str() +
                " --pipeline similarity --window-half 4 --lag-half 2 "
                "--nodes 2 --cores 2 --out " + offline),
            0);
  std::ifstream a(streamed, std::ios::binary);
  std::ifstream b(offline, std::ios::binary);
  ASSERT_TRUE(a.good());
  ASSERT_TRUE(b.good());
  std::ostringstream abuf, bbuf;
  abuf << a.rdbuf();
  bbuf << b.rdbuf();
  EXPECT_EQ(abuf.str(), bbuf.str());
  EXPECT_GT(abuf.str().size(), 0u);
}

TEST_F(ToolsSmokeTest, IngestRequiresSpoolAndOut) {
  EXPECT_EQ(run(tools_dir() + "/das_ingest --out x.dh5 --once"), 2);
  EXPECT_EQ(run(tools_dir() + "/das_ingest --spool /tmp --once"), 2);
}

}  // namespace
}  // namespace dassa
