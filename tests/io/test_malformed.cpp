// Malformed-container tests: every corrupted DASH5 / VCA input must be
// rejected with a typed FormatError (or IoError for filesystem-level
// failures) carrying the offending path -- never an abort, an
// uncaught std:: exception, or an allocation bomb. The deterministic
// fuzz harness (tests/tools/fuzz_dash5.cpp) explores the same contract
// randomly; these tests pin the named corruption classes so a
// regression points at the exact broken check.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "../../src/io/serialize.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/vca.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Dash5Header small_header(Shape2D shape) {
  Dash5Header h;
  h.shape = shape;
  h.global.set("SamplingFrequency[Hz]", "500");
  return h;
}

/// Write a healthy 4x8 f64 file and return its bytes.
std::vector<char> healthy_dash5(const std::string& path) {
  const Shape2D shape{4, 8};
  std::vector<double> data(shape.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i);
  }
  dash5_write(path, small_header(shape), data);
  return slurp(path);
}

// ---------------------------------------------------------------------
// DASH5

TEST(MalformedDash5Test, FileSmallerThanPreludeIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("tiny.dh5");
  spit(path, {'D', 'A', 'S', 'H', '5'});
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("too small"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(MalformedDash5Test, BadMagicIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("magic.dh5");
  std::vector<char> bytes = healthy_dash5(path);
  bytes[0] = 'X';
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(MalformedDash5Test, FlippedHeaderByteFailsCrc) {
  TmpDir dir("malformed");
  const std::string path = dir.file("crc.dh5");
  std::vector<char> bytes = healthy_dash5(path);
  // Byte 16 is the first byte of the CRC-protected header body.
  bytes[16] = static_cast<char>(bytes[16] ^ 0x40);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos);
  }
}

TEST(MalformedDash5Test, HeaderSizeBeyondFileIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("headsize.dh5");
  std::vector<char> bytes = healthy_dash5(path);
  const std::uint64_t huge = bytes.size() + 1;
  std::memcpy(bytes.data() + 8, &huge, sizeof huge);
  spit(path, bytes);
  EXPECT_THROW(Dash5File f(path), FormatError);
}

TEST(MalformedDash5Test, HeaderSizeNearUint64MaxDoesNotWrap) {
  // 16 + head_size must not wrap around and pass the bounds check; a
  // wrapped check would feed a ~2^64 allocation (bad_alloc, not a
  // typed parse error).
  TmpDir dir("malformed");
  const std::string path = dir.file("wrap.dh5");
  std::vector<char> bytes = healthy_dash5(path);
  const std::uint64_t wrap = std::numeric_limits<std::uint64_t>::max() - 4;
  std::memcpy(bytes.data() + 8, &wrap, sizeof wrap);
  spit(path, bytes);
  EXPECT_THROW(Dash5File f(path), FormatError);
}

TEST(MalformedDash5Test, TruncatedDatasetIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("trunc.dh5");
  std::vector<char> bytes = healthy_dash5(path);
  bytes.resize(bytes.size() - 9);  // drop part of the last row
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(MalformedDash5Test, CorruptedObjectCountDoesNotAllocate) {
  // Re-encode the header with an absurd object count and a fixed-up
  // CRC so the corruption reaches the structural checks: the parser
  // must reject the count as implausible instead of reserving 2^60
  // entries.
  TmpDir dir("malformed");
  const std::string path = dir.file("bomb.dh5");
  healthy_dash5(path);

  detail::Encoder enc;
  enc.u32(0);                          // empty global kv
  enc.u64(std::uint64_t{1} << 60);     // object count bomb
  std::vector<std::byte> body = enc.bytes();
  const std::uint32_t crc = detail::crc32(body.data(), body.size());
  detail::Encoder tail;
  tail.u32(crc);
  body.insert(body.end(), tail.bytes().begin(), tail.bytes().end());

  std::vector<char> bytes(16 + body.size());
  std::memcpy(bytes.data(), "DASH5\0\0\2", 8);
  const std::uint64_t head_size = body.size();
  std::memcpy(bytes.data() + 8, &head_size, sizeof head_size);
  std::memcpy(bytes.data() + 16, body.data(), body.size());
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("implausible object count"),
              std::string::npos);
  }
}

TEST(MalformedDash5Test, OutOfBoundsSlabIsInvalidArgument) {
  // A well-formed file with an out-of-range selection is caller error,
  // not file corruption: InvalidArgument, not FormatError.
  TmpDir dir("malformed");
  const std::string path = dir.file("oob.dh5");
  healthy_dash5(path);
  Dash5File f(path);
  EXPECT_THROW(f.read_slab(Slab2D{0, 0, 5, 8}), InvalidArgument);
  EXPECT_THROW(f.read_slab(Slab2D{0, 6, 4, 8}), InvalidArgument);
}

TEST(MalformedDash5Test, MissingFileIsIoError) {
  TmpDir dir("malformed");
  EXPECT_THROW(Dash5File f(dir.file("nope.dh5")), IoError);
}

// ---------------------------------------------------------------------
// DASH5 v3: chunk index footer and codec header corruptions. The
// footer is CRC-protected, so structural mutations recompute the CRC
// to reach the validation they target; CRC tests flip bytes without.

/// Write a healthy v3 file (8x16 f64, 4x8 tiles => 2x2 grid, all four
/// chunks compressed under shuffle+lz) and return its bytes.
std::vector<char> healthy_v3(const std::string& path) {
  const Shape2D shape{8, 16};
  std::vector<double> data(shape.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i);
  }
  Dash5Header h = small_header(shape);
  h.layout = Layout::kChunked;
  h.chunk = {4, 8};
  h.codec = CodecSpec::parse("shuffle+lz");
  dash5_write(path, h, data);
  return slurp(path);
}

/// Byte positions of the v3 footer: [index block][crc u32][size u64]
/// [magic u8 x8] at the file end.
struct FooterView {
  std::size_t index_start = 0;
  std::size_t index_size = 0;
  std::size_t crc_pos = 0;
};

FooterView footer_of(const std::vector<char>& bytes) {
  FooterView v;
  v.crc_pos = bytes.size() - 20;
  std::uint64_t size = 0;
  std::memcpy(&size, bytes.data() + bytes.size() - 16, sizeof size);
  v.index_size = static_cast<std::size_t>(size);
  v.index_start = v.crc_pos - v.index_size;
  return v;
}

/// Recompute the footer CRC after a deliberate index mutation.
void fix_index_crc(std::vector<char>& bytes) {
  const FooterView v = footer_of(bytes);
  const std::uint32_t crc = detail::crc32(
      reinterpret_cast<const std::byte*>(bytes.data()) + v.index_start,
      v.index_size);
  std::memcpy(bytes.data() + v.crc_pos, &crc, sizeof crc);
}

/// Offset of field `field_off` of index entry `i` (29-byte entries:
/// offset u64, csize u64, raw_size u64, crc u32, codec u8).
std::size_t entry_pos(const std::vector<char>& bytes, std::size_t i,
                      std::size_t field_off) {
  return footer_of(bytes).index_start + i * 29 + field_off;
}

TEST(MalformedDash5V3Test, FooterMagicStompIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("footmagic.dh5");
  std::vector<char> bytes = healthy_v3(path);
  bytes[bytes.size() - 1] = 'X';
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("chunk index magic"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, TruncatedFooterIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("foottrunc.dh5");
  std::vector<char> bytes = healthy_v3(path);
  bytes.resize(bytes.size() - 10);
  spit(path, bytes);
  EXPECT_THROW(Dash5File f(path), FormatError);
}

TEST(MalformedDash5V3Test, IndexSizeMismatchIsRejected) {
  // The grid is 2x2 = 4 chunks, so the index must be exactly 4 * 29
  // bytes; any other size field is a lie.
  TmpDir dir("malformed");
  const std::string path = dir.file("idxsize.dh5");
  std::vector<char> bytes = healthy_v3(path);
  std::uint64_t size = 0;
  std::memcpy(&size, bytes.data() + bytes.size() - 16, sizeof size);
  EXPECT_EQ(size, 4u * 29u);
  size += 1;
  std::memcpy(bytes.data() + bytes.size() - 16, &size, sizeof size);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("chunk index size mismatch"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, FlippedIndexByteFailsIndexCrc) {
  TmpDir dir("malformed");
  const std::string path = dir.file("idxcrc.dh5");
  std::vector<char> bytes = healthy_v3(path);
  const std::size_t pos = entry_pos(bytes, 2, 16);
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("chunk index CRC mismatch"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, NonDenseChunkOffsetsAreRejected) {
  // Offsets must tile the data region exactly; a one-byte gap (which
  // also makes overlaps representable) is structural corruption.
  TmpDir dir("malformed");
  const std::string path = dir.file("dense.dh5");
  std::vector<char> bytes = healthy_v3(path);
  std::uint64_t offset = 0;
  std::memcpy(&offset, bytes.data() + entry_pos(bytes, 1, 0), sizeof offset);
  offset += 1;
  std::memcpy(bytes.data() + entry_pos(bytes, 1, 0), &offset, sizeof offset);
  fix_index_crc(bytes);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("not densely packed"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, ChunkSizeOverflowIsRejected) {
  // A huge csize must fail the (subtraction-form) bounds check rather
  // than wrap into a giant read.
  TmpDir dir("malformed");
  const std::string path = dir.file("csize.dh5");
  std::vector<char> bytes = healthy_v3(path);
  const std::uint64_t huge = std::uint64_t{1} << 62;
  std::memcpy(bytes.data() + entry_pos(bytes, 0, 8), &huge, sizeof huge);
  fix_index_crc(bytes);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("overruns the index block"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, RawSizeDisagreeingWithHeaderIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("rawsize.dh5");
  std::vector<char> bytes = healthy_v3(path);
  std::uint64_t raw_size = 0;
  std::memcpy(&raw_size, bytes.data() + entry_pos(bytes, 0, 16),
              sizeof raw_size);
  raw_size -= 8;
  std::memcpy(bytes.data() + entry_pos(bytes, 0, 16), &raw_size,
              sizeof raw_size);
  fix_index_crc(bytes);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("raw size disagrees"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, CodecFlagOutOfRangeIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("flag.dh5");
  std::vector<char> bytes = healthy_v3(path);
  bytes[entry_pos(bytes, 0, 28)] = 7;
  fix_index_crc(bytes);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("codec flag out of range"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, RawFlagWithCompressedSizeIsRejected) {
  // Every chunk of the healthy file is compressed (csize < raw_size);
  // relabelling one as raw-stored must be caught by the csize ==
  // raw_size consistency rule.
  TmpDir dir("malformed");
  const std::string path = dir.file("rawflag.dh5");
  std::vector<char> bytes = healthy_v3(path);
  std::uint64_t csize = 0;
  std::uint64_t raw_size = 0;
  std::memcpy(&csize, bytes.data() + entry_pos(bytes, 0, 8), sizeof csize);
  std::memcpy(&raw_size, bytes.data() + entry_pos(bytes, 0, 16),
              sizeof raw_size);
  ASSERT_LT(csize, raw_size) << "test premise: chunk 0 must be compressed";
  bytes[entry_pos(bytes, 0, 28)] = 0;
  fix_index_crc(bytes);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("raw-stored chunk"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, FlippedChunkPayloadFailsChunkCrcOnRead) {
  // Payload corruption is caught lazily: open succeeds (header and
  // index are intact), the read of the damaged chunk throws.
  TmpDir dir("malformed");
  const std::string path = dir.file("payload.dh5");
  std::vector<char> bytes = healthy_v3(path);
  std::uint64_t head_size = 0;
  std::memcpy(&head_size, bytes.data() + 8, sizeof head_size);
  const std::size_t pos = 16 + static_cast<std::size_t>(head_size) + 3;
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x20);
  spit(path, bytes);
  Dash5File f(path);
  try {
    (void)f.read_all();
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(MalformedDash5V3Test, UnknownHeaderCodecIdIsRejected) {
  // The codec id bytes are the last header fields before the header
  // CRC; stomp the final id and re-sign the header.
  TmpDir dir("malformed");
  const std::string path = dir.file("codecid.dh5");
  std::vector<char> bytes = healthy_v3(path);
  std::uint64_t head_size = 0;
  std::memcpy(&head_size, bytes.data() + 8, sizeof head_size);
  const std::size_t head_start = 16;
  const std::size_t body = static_cast<std::size_t>(head_size) - 4;
  bytes[head_start + body - 1] = 99;  // last codec id
  const std::uint32_t crc = detail::crc32(
      reinterpret_cast<const std::byte*>(bytes.data()) + head_start, body);
  std::memcpy(bytes.data() + head_start + body, &crc, sizeof crc);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown codec id 99"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, EmptyCodecChainInHeaderIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("chain0.dh5");
  std::vector<char> bytes = healthy_v3(path);
  std::uint64_t head_size = 0;
  std::memcpy(&head_size, bytes.data() + 8, sizeof head_size);
  const std::size_t head_start = 16;
  const std::size_t body = static_cast<std::size_t>(head_size) - 4;
  bytes[head_start + body - 3] = 0;  // chain length (2 ids follow)
  const std::uint32_t crc = detail::crc32(
      reinterpret_cast<const std::byte*>(bytes.data()) + head_start, body);
  std::memcpy(bytes.data() + head_start + body, &crc, sizeof crc);
  spit(path, bytes);
  try {
    Dash5File f(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("codec chain length"),
              std::string::npos);
  }
}

TEST(MalformedDash5V3Test, V2BytesRelabeledAsV3AreRejected) {
  // Flipping only the magic version byte leaves the (CRC-valid) v2
  // header without codec fields and the file without a footer; the
  // reader must fail parsing, never serve data under the wrong format.
  TmpDir dir("malformed");
  const std::string path = dir.file("relabel.dh5");
  Dash5Header h = small_header({8, 16});
  h.layout = Layout::kChunked;
  h.chunk = {4, 8};
  std::vector<double> data(h.shape.size(), 3.0);
  dash5_write(path, h, data);
  std::vector<char> bytes = slurp(path);
  EXPECT_EQ(bytes[7], 2);
  bytes[7] = 3;
  spit(path, bytes);
  EXPECT_THROW(Dash5File f(path), FormatError);
}

// ---------------------------------------------------------------------
// VCA

/// Build a healthy two-member VCA and return the .vca path.
std::string healthy_vca(const TmpDir& dir) {
  const Shape2D shape{3, 5};
  std::vector<double> data(shape.size(), 1.0);
  dash5_write(dir.file("m0.dh5"), small_header(shape), data);
  dash5_write(dir.file("m1.dh5"), small_header(shape), data);
  const Vca vca = Vca::build({dir.file("m0.dh5"), dir.file("m1.dh5")});
  const std::string path = dir.file("pair.vca");
  vca.save(path);
  return path;
}

TEST(MalformedVcaTest, BadMagicIsRejected) {
  TmpDir dir("malformed");
  const std::string path = healthy_vca(dir);
  std::vector<char> bytes = slurp(path);
  bytes[3] = 'X';
  spit(path, bytes);
  try {
    (void)Vca::load(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("bad VCA magic"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(MalformedVcaTest, TruncatedFileIsRejected) {
  TmpDir dir("malformed");
  const std::string path = healthy_vca(dir);
  std::vector<char> bytes = slurp(path);
  bytes.resize(18);  // magic survives; size field is cut
  spit(path, bytes);
  EXPECT_THROW(Vca::load(path), Error);
}

TEST(MalformedVcaTest, SizeFieldNearUint64MaxDoesNotWrap) {
  TmpDir dir("malformed");
  const std::string path = healthy_vca(dir);
  std::vector<char> bytes = slurp(path);
  const std::uint64_t wrap = std::numeric_limits<std::uint64_t>::max() - 8;
  std::memcpy(bytes.data() + 8, &wrap, sizeof wrap);
  spit(path, bytes);
  try {
    (void)Vca::load(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated VCA"), std::string::npos);
  }
}

TEST(MalformedVcaTest, FlippedBodyByteFailsCrc) {
  TmpDir dir("malformed");
  const std::string path = healthy_vca(dir);
  std::vector<char> bytes = slurp(path);
  bytes[16] = static_cast<char>(bytes[16] ^ 0x01);
  spit(path, bytes);
  try {
    (void)Vca::load(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos);
  }
}

/// Write a VCA container around an arbitrary body, with a valid CRC,
/// so corruptions survive the integrity check and reach the
/// structural validation.
void write_vca_container(const std::string& path,
                         const std::vector<std::byte>& body) {
  std::vector<char> bytes(8 + 8 + body.size() + 4);
  std::memcpy(bytes.data(), "DASVCA\0\1", 8);
  const std::uint64_t size = body.size();
  std::memcpy(bytes.data() + 8, &size, sizeof size);
  std::memcpy(bytes.data() + 16, body.data(), body.size());
  const std::uint32_t crc = detail::crc32(body.data(), body.size());
  std::memcpy(bytes.data() + 16 + body.size(), &crc, sizeof crc);
  spit(path, bytes);
}

TEST(MalformedVcaTest, MemberCountBombDoesNotAllocate) {
  TmpDir dir("malformed");
  const std::string path = dir.file("bomb.vca");
  detail::Encoder enc;
  enc.u32(0);                       // no global kv
  enc.u64(std::uint64_t{1} << 59);  // member count bomb
  write_vca_container(path, enc.bytes());
  try {
    (void)Vca::load(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("implausible member count"),
              std::string::npos);
  }
}

TEST(MalformedVcaTest, ZeroMembersIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("empty.vca");
  detail::Encoder enc;
  enc.u32(0);
  enc.u64(0);
  write_vca_container(path, enc.bytes());
  try {
    (void)Vca::load(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("without members"),
              std::string::npos);
  }
}

TEST(MalformedVcaTest, InconsistentMemberRowsIsRejected) {
  TmpDir dir("malformed");
  const std::string path = dir.file("rows.vca");
  detail::Encoder enc;
  enc.u32(0);
  enc.u64(2);
  enc.str("a.dh5");
  enc.u64(3);  // rows
  enc.u64(5);  // cols
  enc.str("b.dh5");
  enc.u64(4);  // differs
  enc.u64(5);
  write_vca_container(path, enc.bytes());
  try {
    (void)Vca::load(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("channel counts differ"),
              std::string::npos);
  }
}

TEST(MalformedVcaTest, TotalWidthOverflowIsRejected) {
  // Two members whose summed widths wrap uint64 would break the
  // monotonic col_starts_ table resolve() binary-searches.
  TmpDir dir("malformed");
  const std::string path = dir.file("width.vca");
  const std::uint64_t half = std::numeric_limits<std::uint64_t>::max() / 2 + 1;
  detail::Encoder enc;
  enc.u32(0);
  enc.u64(2);
  enc.str("a.dh5");
  enc.u64(3);
  enc.u64(half);
  enc.str("b.dh5");
  enc.u64(3);
  enc.u64(half);
  write_vca_container(path, enc.bytes());
  EXPECT_THROW(Vca::load(path), Error);
}

TEST(MalformedVcaTest, MissingMemberFileSurfacesAsIoErrorOnRead) {
  // The container itself is fine; the member path points nowhere.
  // Loading succeeds (headers are lazy) but reading must throw IoError,
  // not crash.
  TmpDir dir("malformed");
  const std::string path = dir.file("ghost.vca");
  detail::Encoder enc;
  enc.u32(0);
  enc.u64(1);
  enc.str(dir.file("missing.dh5"));
  enc.u64(3);
  enc.u64(5);
  write_vca_container(path, enc.bytes());
  const Vca vca = Vca::load(path);
  EXPECT_EQ(vca.shape(), (Shape2D{3, 5}));
  EXPECT_THROW(vca.read_slab(Slab2D{0, 0, 3, 5}), IoError);
}

}  // namespace
}  // namespace dassa::io
