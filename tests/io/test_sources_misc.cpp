// Remaining public-API coverage: Dash5Source adapter, Array2D helpers,
// cost-model arithmetic, workload extraction.
#include <gtest/gtest.h>

#include <numeric>

#include "dassa/core/autotune.hpp"
#include "dassa/io/dash5_source.hpp"
#include "dassa/io/par_read.hpp"
#include "dassa/io/vca.hpp"
#include "dassa/mpi/runtime.hpp"
#include "testing/tmpdir.hpp"

namespace dassa {
namespace {

using testing::TmpDir;

TEST(Dash5SourceTest, AdapterMatchesDirectFile) {
  TmpDir dir("src");
  io::Dash5Header h;
  h.shape = {4, 6};
  std::vector<double> data(24);
  std::iota(data.begin(), data.end(), 0.0);
  io::dash5_write(dir.file("a.dh5"), h, data);

  io::Dash5Source source(dir.file("a.dh5"));
  EXPECT_EQ(source.shape(), (Shape2D{4, 6}));
  EXPECT_EQ(source.read_all(), data);
  EXPECT_EQ(source.read_slab(Slab2D{1, 2, 2, 3}),
            (std::vector<double>{8, 9, 10, 14, 15, 16}));
  EXPECT_EQ(source.file().global_meta().size(), 0u);
}

TEST(Array2dTest, RowViewsAndAccessors) {
  core::Array2D a(Shape2D{3, 4}, 1.5);
  EXPECT_EQ(a.data.size(), 12u);
  a.at(1, 2) = 9.0;
  EXPECT_EQ(a.at(1, 2), 9.0);
  const std::span<double> row = a.row(1);
  EXPECT_EQ(row.size(), 4u);
  EXPECT_EQ(row[2], 9.0);
  row[0] = -1.0;
  EXPECT_EQ(a.at(1, 0), -1.0);
  EXPECT_THROW(core::Array2D(Shape2D{2, 2}, std::vector<double>(3)),
               InvalidArgument);
}

TEST(CostModelTest, MessageCostArithmetic) {
  mpi::CostParams net;
  net.alpha_seconds = 1e-6;
  net.beta_bytes_per_second = 1e9;
  EXPECT_DOUBLE_EQ(net.message_cost(0), 1e-6);
  EXPECT_DOUBLE_EQ(net.message_cost(1000000), 1e-6 + 1e-3);

  io::IoCostParams io;
  io.call_latency_seconds = 2e-3;
  io.bandwidth_bytes_per_second = 1e9;
  io.aggregate_bandwidth_bytes_per_second = 4e9;
  // Below the contention point, per-stream bandwidth rules.
  EXPECT_DOUBLE_EQ(io.effective_bandwidth(2), 1e9);
  // Above it, readers split the aggregate pool.
  EXPECT_DOUBLE_EQ(io.effective_bandwidth(8), 0.5e9);
  EXPECT_GT(io.call_cost(1 << 20, 8), io.call_cost(1 << 20, 2));
  // Shared-file seek contention adds per concurrent reader.
  EXPECT_GT(io.shared_call_cost(1024, 10), io.shared_call_cost(1024, 2));
  EXPECT_DOUBLE_EQ(io.shared_call_cost(1024, 1), io.call_cost(1024, 1));
}

TEST(WorkloadForRowsTest, ExtractsVcaGeometry) {
  TmpDir dir("wl");
  io::Dash5Header h;
  h.shape = {6, 10};
  for (int f = 0; f < 3; ++f) {
    io::dash5_write(dir.file("f" + std::to_string(f) + ".dh5"), h,
                    std::vector<double>(60, 0.0));
  }
  const io::Vca vca = io::Vca::build(
      {dir.file("f0.dh5"), dir.file("f1.dh5"), dir.file("f2.dh5")});
  const core::WorkloadSpec w = core::workload_for_rows(vca, 0.25);
  EXPECT_EQ(w.data_shape, (Shape2D{6, 30}));
  EXPECT_EQ(w.file_count, 3u);
  EXPECT_EQ(w.file_bytes, 60u * sizeof(double));
  EXPECT_EQ(w.work_units, 6u);
  EXPECT_DOUBLE_EQ(w.seconds_per_unit, 0.25);
}

TEST(CommStatsTest, ChargeModeledSecondsAccumulates) {
  mpi::Runtime::run(1, [](mpi::Comm& comm) {
    comm.charge_modeled_seconds(0.5);
    comm.charge_modeled_seconds(0.25);
    EXPECT_DOUBLE_EQ(comm.stats().modeled_seconds, 0.75);
    EXPECT_GT(comm.cost_params().beta_bytes_per_second, 0.0);
  });
}

}  // namespace
}  // namespace dassa
