// ChunkCache tests: deterministic LRU eviction within a shard, byte
// budgets, per-file eviction, and a multi-threaded stress mix that
// doubles as the TSan workout for the sharded locking.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "dassa/io/chunk_cache.hpp"

namespace dassa::io {
namespace {

ChunkData make_tile(std::size_t elems, double value) {
  return std::make_shared<const std::vector<double>>(elems, value);
}

constexpr std::size_t kTileElems = 64;
constexpr std::size_t kTileBytes = kTileElems * sizeof(double);

/// Mirror of ChunkCache's internal key hash, used to pick keys that
/// deliberately collide in one shard so LRU order is observable.
std::size_t shard_of(const ChunkKey& k) {
  std::uint64_t h = k.file_id * 0x9E3779B97F4A7C15ull;
  h ^= (static_cast<std::uint64_t>(k.row) + 0x9E3779B97F4A7C15ull + (h << 6) +
        (h >> 2));
  h ^= (static_cast<std::uint64_t>(k.col) + 0x9E3779B97F4A7C15ull + (h << 6) +
        (h >> 2));
  return static_cast<std::size_t>(h) % ChunkCache::kShards;
}

/// First `count` keys of `file_id` that all land in shard 0.
std::vector<ChunkKey> same_shard_keys(std::uint64_t file_id,
                                      std::size_t count) {
  std::vector<ChunkKey> keys;
  for (std::size_t col = 0; keys.size() < count; ++col) {
    const ChunkKey key{file_id, 0, col};
    if (shard_of(key) == 0) keys.push_back(key);
  }
  return keys;
}

TEST(ChunkCacheTest, MissThenPutThenHit) {
  ChunkCache cache(1 << 20);
  const ChunkKey key{1, 2, 3};
  EXPECT_EQ(cache.get(key), nullptr);
  const ChunkData tile = make_tile(kTileElems, 7.0);
  cache.put(key, tile);
  const ChunkData back = cache.get(key);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back, tile);  // shared buffer, not a copy
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), kTileBytes);
}

TEST(ChunkCacheTest, LruEvictionIsDeterministicWithinAShard) {
  // Budget slice = 2 tiles per shard; three same-shard inserts with a
  // refresh in between must evict exactly the least-recently-used key.
  ChunkCache cache(ChunkCache::kShards * 2 * kTileBytes);
  const std::vector<ChunkKey> keys = same_shard_keys(1, 3);
  cache.put(keys[0], make_tile(kTileElems, 0.0));
  cache.put(keys[1], make_tile(kTileElems, 1.0));
  ASSERT_NE(cache.get(keys[0]), nullptr);  // refresh: keys[1] is now LRU
  cache.put(keys[2], make_tile(kTileElems, 2.0));
  EXPECT_NE(cache.get(keys[0]), nullptr);
  EXPECT_EQ(cache.get(keys[1]), nullptr);  // evicted
  EXPECT_NE(cache.get(keys[2]), nullptr);
  EXPECT_EQ(cache.bytes(), 2 * kTileBytes);
}

TEST(ChunkCacheTest, RepeatedRunsProduceIdenticalHitPatterns) {
  // The same access sequence against a fresh cache must produce the
  // same hit/miss pattern every time: no randomized or time-dependent
  // eviction.
  const std::vector<ChunkKey> keys = same_shard_keys(1, 8);
  std::vector<bool> first;
  for (int run = 0; run < 3; ++run) {
    ChunkCache cache(ChunkCache::kShards * 3 * kTileBytes);
    std::vector<bool> pattern;
    std::mt19937 rng(7);  // fixed seed: same sequence each run
    for (int op = 0; op < 200; ++op) {
      const ChunkKey& key = keys[rng() % keys.size()];
      const bool hit = cache.get(key) != nullptr;
      pattern.push_back(hit);
      if (!hit) cache.put(key, make_tile(kTileElems, 1.0));
    }
    if (run == 0) {
      first = pattern;
    } else {
      EXPECT_EQ(pattern, first) << "run " << run;
    }
  }
}

TEST(ChunkCacheTest, ZeroBudgetDisablesCaching) {
  ChunkCache cache(0);
  const ChunkKey key{1, 0, 0};
  cache.put(key, make_tile(kTileElems, 1.0));
  EXPECT_EQ(cache.get(key), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ChunkCacheTest, OversizedTileIsNotCached) {
  ChunkCache cache(ChunkCache::kShards * kTileBytes);  // slice = 1 tile
  const ChunkKey key{1, 0, 0};
  cache.put(key, make_tile(kTileElems * 2, 1.0));  // 2x the slice
  EXPECT_EQ(cache.get(key), nullptr);
  cache.put(key, make_tile(kTileElems, 1.0));  // exactly the slice fits
  EXPECT_NE(cache.get(key), nullptr);
}

TEST(ChunkCacheTest, EraseFileDropsOnlyThatFile) {
  ChunkCache cache(1 << 20);
  for (std::size_t col = 0; col < 5; ++col) {
    cache.put({1, 0, col}, make_tile(kTileElems, 1.0));
    cache.put({2, 0, col}, make_tile(kTileElems, 2.0));
  }
  EXPECT_EQ(cache.entries(), 10u);
  cache.erase_file(1);
  EXPECT_EQ(cache.entries(), 5u);
  EXPECT_EQ(cache.bytes(), 5 * kTileBytes);
  for (std::size_t col = 0; col < 5; ++col) {
    EXPECT_EQ(cache.get({1, 0, col}), nullptr);
    EXPECT_NE(cache.get({2, 0, col}), nullptr);
  }
}

TEST(ChunkCacheTest, ClearEmptiesEverything) {
  ChunkCache cache(1 << 20);
  for (std::size_t col = 0; col < 16; ++col) {
    cache.put({1, 0, col}, make_tile(kTileElems, 1.0));
  }
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.budget(), std::size_t{1} << 20);  // budget survives
}

TEST(ChunkCacheTest, ShrinkingBudgetEvictsImmediately) {
  ChunkCache cache(1 << 20);
  for (std::size_t col = 0; col < 64; ++col) {
    cache.put({1, 0, col}, make_tile(kTileElems, 1.0));
  }
  ASSERT_EQ(cache.entries(), 64u);
  cache.set_budget(ChunkCache::kShards * kTileBytes);
  EXPECT_LE(cache.bytes(), ChunkCache::kShards * kTileBytes);
  EXPECT_LE(cache.entries(), ChunkCache::kShards);
}

TEST(ChunkCacheTest, RefreshingAKeyKeepsAccountingExact) {
  ChunkCache cache(1 << 20);
  const ChunkKey key{1, 0, 0};
  cache.put(key, make_tile(kTileElems, 1.0));
  cache.put(key, make_tile(kTileElems, 2.0));  // racing-reader refresh
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), kTileBytes);
  const ChunkData back = cache.get(key);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ((*back)[0], 2.0);
}

TEST(ChunkCacheTest, NextFileIdIsUniqueAndNonZero) {
  const std::uint64_t a = ChunkCache::next_file_id();
  const std::uint64_t b = ChunkCache::next_file_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(ChunkCacheStressTest, ConcurrentMixedOperationsStaySane) {
  // Many threads hammering put/get/erase/set_budget: under TSan this
  // is the locking workout; in plain builds it checks the accounting
  // invariants survive contention.
  ChunkCache cache(ChunkCache::kShards * 16 * kTileBytes);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      std::mt19937 rng(static_cast<unsigned>(t));
      for (int op = 0; op < kOpsPerThread; ++op) {
        const ChunkKey key{1 + rng() % 4, rng() % 4, rng() % 16};
        switch (rng() % 8) {
          case 0:
            cache.erase_file(key.file_id);
            break;
          case 1:
            cache.set_budget(ChunkCache::kShards * (8 + rng() % 16) *
                             kTileBytes);
            break;
          case 2:
          case 3:
            cache.put(key, make_tile(kTileElems, static_cast<double>(op)));
            break;
          default: {
            const ChunkData tile = cache.get(key);
            if (tile) {
              // Reading through the shared pointer must stay valid even
              // if the entry is concurrently evicted.
              volatile double sink = (*tile)[0];
              (void)sink;
            }
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Quiescent invariant: bytes() equals the sum of live entries. (The
  // budget itself may be transiently overshot by a put that read the
  // old budget while another thread shrank it, so only the accounting
  // identity is checked here.)
  EXPECT_EQ(cache.bytes(), cache.entries() * kTileBytes);
}

}  // namespace
}  // namespace dassa::io
