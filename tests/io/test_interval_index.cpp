// Persistent time-interval index (.tix sidecar): property test against
// a linear-scan oracle, save/load round trips, the O(log n + k)
// entry-touch pin, and rejection of every malformed-sidecar class.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <random>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/io/interval_index.hpp"
#include "testing/tmpdir.hpp"

using namespace dassa;
using dassa::testing::TmpDir;

namespace {

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A contiguous-acquisition-shaped member set: touching intervals of
/// random widths, the layout every real .vca publisher produces.
std::vector<io::IntervalEntry> random_members(std::mt19937& rng,
                                              std::size_t n) {
  std::uniform_int_distribution<std::int64_t> width(1, 90);
  std::vector<io::IntervalEntry> entries(n);
  std::int64_t t = 1000;
  std::size_t col = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t w = width(rng);
    entries[i] = io::IntervalEntry{t, t + w, i, col,
                                   static_cast<std::size_t>(w) * 10};
    t += w;
    col += static_cast<std::size_t>(w) * 10;
  }
  return entries;
}

/// The oracle: scan every entry.
std::vector<io::IntervalEntry> linear_query(
    const std::vector<io::IntervalEntry>& entries, std::int64_t begin_s,
    std::int64_t end_s) {
  std::vector<io::IntervalEntry> hits;
  for (const io::IntervalEntry& e : entries) {
    if (e.begin_s < end_s && e.end_s > begin_s) hits.push_back(e);
  }
  return hits;
}

std::uint64_t touches() {
  return global_counters().get(counters::kIoIndexEntryTouches);
}

}  // namespace

TEST(IntervalIndex, QueryMatchesLinearScanOracle) {
  std::mt19937 rng(20260809);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng() % 200;
    const std::vector<io::IntervalEntry> entries = random_members(rng, n);
    const io::IntervalIndex idx = io::IntervalIndex::build(entries);
    const std::int64_t lo = entries.front().begin_s;
    const std::int64_t hi = entries.back().end_s;
    std::uniform_int_distribution<std::int64_t> point(lo - 50, hi + 50);
    for (int q = 0; q < 50; ++q) {
      std::int64_t a = point(rng);
      std::int64_t b = point(rng);
      if (a > b) std::swap(a, b);
      if (a == b) ++b;
      EXPECT_EQ(idx.query(a, b), linear_query(entries, a, b))
          << "round " << round << " window [" << a << ", " << b << ")";
    }
  }
}

TEST(IntervalIndex, BuildSortsArbitraryInputOrder) {
  std::mt19937 rng(7);
  std::vector<io::IntervalEntry> entries = random_members(rng, 64);
  const std::vector<io::IntervalEntry> sorted = entries;
  std::shuffle(entries.begin(), entries.end(), rng);
  const io::IntervalIndex idx = io::IntervalIndex::build(entries);
  EXPECT_EQ(idx.entries(), sorted);
}

TEST(IntervalIndex, SaveLoadRoundTrip) {
  TmpDir dir("tix_roundtrip");
  std::mt19937 rng(42);
  const std::vector<io::IntervalEntry> entries = random_members(rng, 37);
  const io::IntervalIndex idx = io::IntervalIndex::build(entries);
  const std::string path = dir.file("arch.vca.tix");
  idx.save(path);
  EXPECT_EQ(io::IntervalIndex::load(path).entries(), idx.entries());

  idx.save_atomic(path);  // rewrite over the existing file
  EXPECT_EQ(io::IntervalIndex::load(path).entries(), idx.entries());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(IntervalIndex, EmptyIndexRoundTripsAndAnswersEmpty) {
  TmpDir dir("tix_empty");
  const io::IntervalIndex idx = io::IntervalIndex::build({});
  const std::string path = dir.file("empty.tix");
  idx.save(path);
  const io::IntervalIndex back = io::IntervalIndex::load(path);
  EXPECT_TRUE(back.empty());
  EXPECT_TRUE(back.query(0, 1000).empty());
}

TEST(IntervalIndex, QueryTouchesLogNPlusKEntries) {
  std::mt19937 rng(99);
  const std::size_t n = 1024;
  const io::IntervalIndex idx =
      io::IntervalIndex::build(random_members(rng, n));
  // A window overlapping exactly 3 members, somewhere mid-index.
  const io::IntervalEntry& mid = idx.entries()[n / 2];
  const std::int64_t begin = mid.begin_s;
  const std::int64_t end = idx.entries()[n / 2 + 2].end_s;
  const std::uint64_t before = touches();
  const std::vector<io::IntervalEntry> hits = idx.query(begin, end);
  const std::uint64_t spent = touches() - before;
  EXPECT_EQ(hits.size(), 3u);
  // log2(1024) = 10 probes, k = 3 scanned hits, one overscan to detect
  // the end of the run. Anything near n means the binary search died.
  EXPECT_LE(spent, 2 * 10 + hits.size() + 2);
  EXPECT_LT(spent, n / 4);
}

TEST(IntervalIndex, BuildRejectsInvalidIntervals) {
  // Empty interval.
  EXPECT_THROW(io::IntervalIndex::build({{10, 10, 0, 0, 5}}),
               InvalidArgument);
  // Inverted interval.
  EXPECT_THROW(io::IntervalIndex::build({{10, 5, 0, 0, 5}}),
               InvalidArgument);
  // Nested interval: sorted by begin, end goes backwards, so a query
  // for late times could miss the container. Must be refused.
  EXPECT_THROW(
      io::IntervalIndex::build({{0, 100, 0, 0, 5}, {10, 20, 1, 5, 5}}),
      InvalidArgument);
}

TEST(IntervalIndex, LoadRejectsMalformedSidecars) {
  TmpDir dir("tix_malformed");
  std::mt19937 rng(5);
  const io::IntervalIndex idx =
      io::IntervalIndex::build(random_members(rng, 16));
  const std::string good_path = dir.file("good.tix");
  idx.save(good_path);
  const std::vector<char> good = slurp(good_path);

  const std::string bad_path = dir.file("bad.tix");

  // Bad magic.
  {
    std::vector<char> bytes = good;
    bytes[0] = 'X';
    spit(bad_path, bytes);
    EXPECT_THROW((void)io::IntervalIndex::load(bad_path), FormatError);
  }
  // Truncated: drop the tail (CRC and part of the body).
  {
    std::vector<char> bytes = good;
    bytes.resize(bytes.size() - 17);
    spit(bad_path, bytes);
    EXPECT_THROW((void)io::IntervalIndex::load(bad_path), FormatError);
  }
  // Truncated to less than a header.
  {
    spit(bad_path, {'D', 'A', 'S', 'T'});
    EXPECT_THROW((void)io::IntervalIndex::load(bad_path), FormatError);
  }
  // One flipped payload byte: CRC must catch it.
  {
    std::vector<char> bytes = good;
    bytes[bytes.size() / 2] ^= 0x40;
    spit(bad_path, bytes);
    EXPECT_THROW((void)io::IntervalIndex::load(bad_path), FormatError);
  }
  // Implausible entry count (a reserve bomb): claim 2^56 entries.
  {
    std::vector<char> bytes = good;
    for (std::size_t i = 0; i < 8; ++i) {
      bytes[16 + i] = static_cast<char>(0xff);
    }
    spit(bad_path, bytes);
    EXPECT_THROW((void)io::IntervalIndex::load(bad_path), FormatError);
  }
  // Missing file.
  EXPECT_THROW((void)io::IntervalIndex::load(dir.file("absent.tix")),
               IoError);
  // The pristine file still loads after all that.
  EXPECT_EQ(io::IntervalIndex::load(good_path).entries(), idx.entries());
}

TEST(IntervalIndex, SidecarPathAppendsTix) {
  EXPECT_EQ(io::IntervalIndex::sidecar_path("live.vca"), "live.vca.tix");
  EXPECT_EQ(io::IntervalIndex::sidecar_path("/a/b/arch.vca"),
            "/a/b/arch.vca.tix");
}

TEST(IntervalIndex, CountersChargeLoadsAndQueries) {
  TmpDir dir("tix_counters");
  std::mt19937 rng(3);
  const io::IntervalIndex idx =
      io::IntervalIndex::build(random_members(rng, 8));
  const std::string path = dir.file("c.tix");
  idx.save(path);
  const std::uint64_t loads_before =
      global_counters().get(counters::kIoIndexLoads);
  const std::uint64_t queries_before =
      global_counters().get(counters::kIoIndexQueries);
  const io::IntervalIndex back = io::IntervalIndex::load(path);
  (void)back.query(0, 10);
  EXPECT_EQ(global_counters().get(counters::kIoIndexLoads),
            loads_before + 1);
  EXPECT_EQ(global_counters().get(counters::kIoIndexQueries),
            queries_before + 1);
}
