// Chunked DASH5 layout tests: content equivalence with the contiguous
// layout under every slab shape, edge-chunk padding, I/O-call
// accounting, format validation.
#include <gtest/gtest.h>

#include <random>

#include "dassa/common/counters.hpp"
#include "dassa/io/dash5.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

std::vector<double> make_data(Shape2D shape, std::uint64_t seed = 4) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  std::vector<double> data(shape.size());
  for (auto& v : data) v = dist(rng);
  return data;
}

Dash5Header chunked_header(Shape2D shape, ChunkShape chunk,
                           DType dtype = DType::kF64) {
  Dash5Header h;
  h.shape = shape;
  h.dtype = dtype;
  h.layout = Layout::kChunked;
  h.chunk = chunk;
  return h;
}

class ChunkedRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ChunkedRoundTrip, ReadAllMatchesContiguous) {
  const auto [cr, cc] = GetParam();
  TmpDir dir("chunk");
  const Shape2D shape{13, 29};  // deliberately not chunk-aligned
  const std::vector<double> data = make_data(shape);

  Dash5Header plain;
  plain.shape = shape;
  dash5_write(dir.file("plain.dh5"), plain, data);
  dash5_write(dir.file("tiled.dh5"), chunked_header(shape, {cr, cc}), data);

  Dash5File a(dir.file("plain.dh5"));
  Dash5File b(dir.file("tiled.dh5"));
  EXPECT_EQ(b.layout(), Layout::kChunked);
  EXPECT_EQ(b.chunk(), (ChunkShape{cr, cc}));
  EXPECT_EQ(a.read_all(), b.read_all());
}

TEST_P(ChunkedRoundTrip, RandomSlabsMatchContiguous) {
  const auto [cr, cc] = GetParam();
  TmpDir dir("chunk");
  const Shape2D shape{16, 40};
  const std::vector<double> data = make_data(shape, 8);
  Dash5Header plain;
  plain.shape = shape;
  dash5_write(dir.file("plain.dh5"), plain, data);
  dash5_write(dir.file("tiled.dh5"), chunked_header(shape, {cr, cc}), data);

  Dash5File a(dir.file("plain.dh5"));
  Dash5File b(dir.file("tiled.dh5"));
  std::mt19937_64 rng(99);
  for (int i = 0; i < 40; ++i) {
    const std::size_t r0 = rng() % shape.rows;
    const std::size_t c0 = rng() % shape.cols;
    const Slab2D slab{r0, c0, 1 + rng() % (shape.rows - r0),
                      1 + rng() % (shape.cols - c0)};
    EXPECT_EQ(a.read_slab(slab), b.read_slab(slab)) << slab.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChunkShapes, ChunkedRoundTrip,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 8),
                      std::make_tuple(5, 7), std::make_tuple(16, 40),
                      std::make_tuple(32, 64)));  // bigger than the array

TEST(ChunkedTest, F32ChunkedRoundTrip) {
  TmpDir dir("chunk");
  const Shape2D shape{6, 10};
  const std::vector<double> data = make_data(shape, 3);
  dash5_write(dir.file("f.dh5"),
              chunked_header(shape, {4, 4}, DType::kF32), data);
  Dash5File f(dir.file("f.dh5"));
  const std::vector<double> back = f.read_all();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(back[i], data[i], 1e-6 * (1.0 + std::abs(data[i])));
  }
}

TEST(ChunkedTest, TimeWindowReadTouchesFewChunks) {
  // The point of chunking: a narrow time window over all channels is
  // O(selection / chunk) read calls instead of one per row.
  TmpDir dir("chunk");
  const Shape2D shape{64, 1024};
  const std::vector<double> data = make_data(shape, 5);

  Dash5Header plain;
  plain.shape = shape;
  dash5_write(dir.file("plain.dh5"), plain, data);
  dash5_write(dir.file("tiled.dh5"), chunked_header(shape, {16, 128}), data);

  const Slab2D window{0, 256, 64, 128};  // all channels, 128 samples

  Dash5File a(dir.file("plain.dh5"));
  global_counters().reset();
  const std::vector<double> from_plain = a.read_slab(window);
  const std::uint64_t plain_calls =
      global_counters().get(counters::kIoReadCalls);

  Dash5File b(dir.file("tiled.dh5"));
  global_counters().reset();
  const std::vector<double> from_tiled = b.read_slab(window);
  const std::uint64_t tiled_calls =
      global_counters().get(counters::kIoReadCalls);

  EXPECT_EQ(from_plain, from_tiled);
  EXPECT_EQ(plain_calls, 64u);  // one per row
  EXPECT_EQ(tiled_calls, 4u);   // 4 row-tiles x 1 column-tile
}

TEST(ChunkedTest, PaddingInvisibleAtEdges) {
  TmpDir dir("chunk");
  const Shape2D shape{5, 9};  // 2x3 grid of 3x4 chunks, ragged edges
  const std::vector<double> data = make_data(shape, 6);
  dash5_write(dir.file("e.dh5"), chunked_header(shape, {3, 4}), data);
  Dash5File f(dir.file("e.dh5"));
  // The last row/column (pure edge-chunk territory) reads back exactly.
  const std::vector<double> last_row = f.read_slab(Slab2D{4, 0, 1, 9});
  for (std::size_t c = 0; c < 9; ++c) {
    EXPECT_EQ(last_row[c], data[shape.at(4, c)]);
  }
  const std::vector<double> last_col = f.read_slab(Slab2D{0, 8, 5, 1});
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(last_col[r], data[shape.at(r, 8)]);
  }
}

TEST(ChunkedTest, RejectsZeroChunkExtents) {
  TmpDir dir("chunk");
  const Shape2D shape{4, 4};
  EXPECT_THROW(dash5_write(dir.file("z.dh5"),
                           chunked_header(shape, {0, 4}),
                           make_data(shape)),
               InvalidArgument);
}

TEST(ChunkedTest, StreamWriterRefusesChunkedLayout) {
  TmpDir dir("chunk");
  EXPECT_THROW(Dash5StreamWriter w(dir.file("s.dh5"),
                                   chunked_header({4, 4}, {2, 2})),
               InvalidArgument);
}

TEST(ChunkedTest, TruncatedChunkedFileDetected) {
  TmpDir dir("chunk");
  const Shape2D shape{8, 8};
  dash5_write(dir.file("t.dh5"), chunked_header(shape, {4, 4}),
              make_data(shape));
  std::filesystem::resize_file(
      dir.file("t.dh5"),
      std::filesystem::file_size(dir.file("t.dh5")) - 16);
  EXPECT_THROW(Dash5File f(dir.file("t.dh5")), FormatError);
}

}  // namespace
}  // namespace dassa::io
