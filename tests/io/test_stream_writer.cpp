// Streaming DASH5 writer + memory-bounded RCA creation tests.
#include <gtest/gtest.h>

#include <random>

#include "dassa/common/counters.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/vca.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

std::vector<double> make_data(Shape2D shape, std::uint64_t seed = 7) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  std::vector<double> data(shape.size());
  for (auto& v : data) v = dist(rng);
  return data;
}

TEST(StreamWriterTest, ChunkedWritesEqualOneShot) {
  TmpDir dir("stream");
  const Shape2D shape{6, 40};
  const std::vector<double> data = make_data(shape);

  Dash5Header h;
  h.shape = shape;
  h.global.set("k", "v");
  dash5_write(dir.file("oneshot.dh5"), h, data);

  Dash5StreamWriter writer(dir.file("stream.dh5"), h);
  // Append in uneven chunks.
  std::size_t off = 0;
  for (const std::size_t chunk : {7u, 40u, 1u, 100u, 92u}) {
    writer.append(std::span<const double>(data.data() + off, chunk));
    off += chunk;
  }
  ASSERT_EQ(off, shape.size());
  writer.close();

  Dash5File a(dir.file("oneshot.dh5"));
  Dash5File b(dir.file("stream.dh5"));
  EXPECT_EQ(a.read_all(), b.read_all());
  EXPECT_EQ(b.global_meta().get_or_throw("k"), "v");
}

TEST(StreamWriterTest, F32Conversion) {
  TmpDir dir("stream");
  const Shape2D shape{2, 8};
  const std::vector<double> data = make_data(shape, 9);
  Dash5Header h;
  h.shape = shape;
  h.dtype = DType::kF32;
  Dash5StreamWriter writer(dir.file("f32.dh5"), h);
  writer.append(data);
  writer.close();
  Dash5File f(dir.file("f32.dh5"));
  const std::vector<double> back = f.read_all();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(back[i], data[i], 1e-6 * (1.0 + std::abs(data[i])));
  }
}

TEST(StreamWriterTest, OverflowAndShortCloseRejected) {
  TmpDir dir("stream");
  Dash5Header h;
  h.shape = {2, 4};
  {
    Dash5StreamWriter writer(dir.file("x.dh5"), h);
    const std::vector<double> too_much(9, 0.0);
    EXPECT_THROW(writer.append(too_much), InvalidArgument);
  }
  {
    Dash5StreamWriter writer(dir.file("y.dh5"), h);
    writer.append(std::vector<double>(4, 0.0));
    EXPECT_THROW(writer.close(), StateError);  // only half written
  }
}

TEST(StreamWriterTest, AppendAfterCloseRejected) {
  TmpDir dir("stream");
  Dash5Header h;
  h.shape = {1, 2};
  Dash5StreamWriter writer(dir.file("z.dh5"), h);
  writer.append(std::vector<double>{1.0, 2.0});
  writer.close();
  writer.close();  // idempotent
  EXPECT_THROW(writer.append(std::vector<double>{3.0}), InvalidArgument);
}

class StreamingRcaTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamingRcaTest, MatchesInMemoryRca) {
  const std::size_t rows_per_block = GetParam();
  TmpDir dir("srgood");
  // 10 channels x 3 files of distinct widths.
  const std::size_t rows = 10;
  std::vector<std::string> files;
  std::vector<double> expected;
  Shape2D global{rows, 0};
  for (const std::size_t cols : {5u, 9u, 14u}) {
    Dash5Header h;
    h.shape = {rows, cols};
    const std::vector<double> data =
        make_data(h.shape, 100 + cols);
    const std::string path = dir.file("m" + std::to_string(cols) + ".dh5");
    dash5_write(path, h, data);
    files.push_back(path);
    global.cols += cols;
  }
  (void)expected;

  (void)rca_create(files, dir.file("inmem.dh5"));
  (void)rca_create_streaming(files, dir.file("stream.dh5"), rows_per_block);

  Dash5File a(dir.file("inmem.dh5"));
  Dash5File b(dir.file("stream.dh5"));
  EXPECT_EQ(a.shape(), global);
  EXPECT_EQ(b.shape(), global);
  EXPECT_EQ(a.read_all(), b.read_all());
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, StreamingRcaTest,
                         ::testing::Values(1, 3, 10, 64));

TEST(StreamingRcaTest, OpensEachMemberOnce) {
  TmpDir dir("sropen");
  const std::size_t rows = 32;
  std::vector<std::string> files;
  for (int i = 0; i < 4; ++i) {
    Dash5Header h;
    h.shape = {rows, 16};
    dash5_write(dir.file("m" + std::to_string(i) + ".dh5"), h,
                make_data(h.shape, static_cast<std::uint64_t>(i)));
    files.push_back(dir.file("m" + std::to_string(i) + ".dh5"));
  }
  global_counters().reset();
  (void)rca_create_streaming(files, dir.file("out.dh5"), 8);
  // Opens: 4 for the VCA header pass + 1 header re-read + 4 member
  // handles + 1 output = 10. The point: NOT 4 opens per block.
  EXPECT_LE(global_counters().get(counters::kIoOpens), 10u);
}

}  // namespace
}  // namespace dassa::io
