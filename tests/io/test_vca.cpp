// VCA / RCA / LAV tests: content equivalence between virtual and
// physical concatenation across arbitrary file splits, resolve logic,
// persistence, construction-cost asymmetry (Table I).
#include "dassa/io/vca.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>

#include "dassa/common/counters.hpp"
#include "dassa/io/dash5_source.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

/// Write `splits` files whose column counts are `cols_per_file`, filled
/// from one coherent global array so concatenation is checkable.
struct Fixture {
  Shape2D global;
  std::vector<double> data;
  std::vector<std::string> files;

  Fixture(TmpDir& dir, std::size_t rows,
          const std::vector<std::size_t>& cols_per_file,
          DType dtype = DType::kF64) {
    std::size_t total_cols = 0;
    for (std::size_t c : cols_per_file) total_cols += c;
    global = {rows, total_cols};
    data.resize(global.size());
    std::mt19937_64 rng(11);
    std::normal_distribution<double> dist;
    for (auto& v : data) v = dist(rng);

    std::size_t col0 = 0;
    for (std::size_t i = 0; i < cols_per_file.size(); ++i) {
      const Shape2D fshape{rows, cols_per_file[i]};
      std::vector<double> fdata(fshape.size());
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < fshape.cols; ++c) {
          fdata[fshape.at(r, c)] = data[global.at(r, col0 + c)];
        }
      }
      Dash5Header h;
      h.shape = fshape;
      h.dtype = dtype;
      h.global.set(meta::kTimeStamp, "17072822451" + std::to_string(i));
      const std::string path = dir.file("part" + std::to_string(i) + ".dh5");
      dash5_write(path, h, fdata);
      files.push_back(path);
      col0 += fshape.cols;
    }
  }
};

TEST(VcaTest, ShapeIsConcatenationOfMembers) {
  TmpDir dir("vca");
  Fixture fx(dir, 5, {10, 20, 7});
  const Vca vca = Vca::build(fx.files);
  EXPECT_EQ(vca.shape(), (Shape2D{5, 37}));
  EXPECT_EQ(vca.members().size(), 3u);
  EXPECT_EQ(vca.member_col_start(0), 0u);
  EXPECT_EQ(vca.member_col_start(1), 10u);
  EXPECT_EQ(vca.member_col_start(2), 30u);
}

TEST(VcaTest, ReadAllMatchesGlobalArray) {
  TmpDir dir("vca");
  Fixture fx(dir, 4, {8, 8, 8, 8});
  Vca vca = Vca::build(fx.files);
  EXPECT_EQ(vca.read_all(), fx.data);
}

TEST(VcaTest, SlabAcrossFileBoundariesMatches) {
  TmpDir dir("vca");
  Fixture fx(dir, 6, {5, 9, 3, 12});
  Vca vca = Vca::build(fx.files);
  for (const Slab2D slab :
       {Slab2D{1, 3, 2, 10},   // spans files 0-1-2
        Slab2D{0, 4, 6, 2},    // spans 0-1 boundary
        Slab2D{2, 14, 1, 15},  // spans 2-3 boundary
        Slab2D{0, 6, 3, 2},    // inside file 1
        Slab2D{0, 0, 6, 29}}) {  // everything
    const std::vector<double> got = vca.read_slab(slab);
    for (std::size_t r = 0; r < slab.row_cnt; ++r) {
      for (std::size_t c = 0; c < slab.col_cnt; ++c) {
        EXPECT_EQ(got[r * slab.col_cnt + c],
                  fx.data[fx.global.at(slab.row_off + r, slab.col_off + c)])
            << slab.str();
      }
    }
  }
}

TEST(VcaTest, ResolveMapsPiecesCorrectly) {
  TmpDir dir("vca");
  Fixture fx(dir, 3, {4, 4, 4});
  const Vca vca = Vca::build(fx.files);
  const auto pieces = vca.resolve(Slab2D{1, 2, 2, 8});
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].member, 0u);
  EXPECT_EQ(pieces[0].slab, (Slab2D{1, 2, 2, 2}));
  EXPECT_EQ(pieces[0].col_dst, 0u);
  EXPECT_EQ(pieces[1].member, 1u);
  EXPECT_EQ(pieces[1].slab, (Slab2D{1, 0, 2, 4}));
  EXPECT_EQ(pieces[1].col_dst, 2u);
  EXPECT_EQ(pieces[2].member, 2u);
  EXPECT_EQ(pieces[2].slab, (Slab2D{1, 0, 2, 2}));
  EXPECT_EQ(pieces[2].col_dst, 6u);
}

TEST(VcaTest, ResolveSingleFileInterior) {
  TmpDir dir("vca");
  Fixture fx(dir, 3, {10, 10});
  const Vca vca = Vca::build(fx.files);
  const auto pieces = vca.resolve(Slab2D{0, 12, 3, 5});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].member, 1u);
  EXPECT_EQ(pieces[0].slab, (Slab2D{0, 2, 3, 5}));
}

TEST(VcaTest, RejectsMismatchedChannelCounts) {
  TmpDir dir("vca");
  Fixture a(dir, 3, {4});
  Dash5Header h;
  h.shape = {5, 4};  // different row count
  dash5_write(dir.file("odd.dh5"), h, std::vector<double>(20, 0.0));
  std::vector<std::string> files = a.files;
  files.push_back(dir.file("odd.dh5"));
  EXPECT_THROW((void)Vca::build(files), InvalidArgument);
}

TEST(VcaTest, RejectsEmptyFileList) {
  EXPECT_THROW((void)Vca::build({}), InvalidArgument);
}

TEST(VcaTest, SaveLoadRoundTrip) {
  TmpDir dir("vca");
  Fixture fx(dir, 4, {6, 6, 6});
  const Vca vca = Vca::build(fx.files);
  vca.save(dir.file("merged.vca"));
  Vca loaded = Vca::load(dir.file("merged.vca"));
  EXPECT_EQ(loaded.shape(), vca.shape());
  EXPECT_EQ(loaded.members().size(), 3u);
  EXPECT_EQ(loaded.members()[1].path, vca.members()[1].path);
  EXPECT_EQ(loaded.read_all(), fx.data);
  EXPECT_EQ(loaded.global_meta().get_or_throw(meta::kTimeStamp),
            "170728224510");
}

TEST(VcaTest, LoadDetectsCorruption) {
  TmpDir dir("vca");
  Fixture fx(dir, 2, {3});
  Vca::build(fx.files).save(dir.file("v.vca"));
  {
    std::fstream f(dir.file("v.vca"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    f.put('\x7F');
  }
  EXPECT_THROW((void)Vca::load(dir.file("v.vca")), FormatError);
}

TEST(VcaTest, BuildReadsOnlyHeaders) {
  // Table I: VCA construction must not touch data bytes. With 4 files
  // of 64 KiB data each, header-only construction reads a tiny
  // fraction of the file sizes.
  TmpDir dir("vca");
  Fixture fx(dir, 64, {128, 128, 128, 128});
  global_counters().reset();
  const Vca vca = Vca::build(fx.files);
  (void)vca;
  const std::uint64_t bytes = global_counters().get(counters::kIoReadBytes);
  EXPECT_LT(bytes, 16u * 1024u);  // headers only
}

TEST(RcaTest, PhysicalMergeMatchesVca) {
  TmpDir dir("rca");
  Fixture fx(dir, 5, {7, 11, 2}, DType::kF64);
  Vca vca = Vca::build(fx.files);
  const RcaBuildStats stats = rca_create(fx.files, dir.file("merged.dh5"));
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, fx.data.size() * sizeof(double));

  Dash5File rca(dir.file("merged.dh5"));
  EXPECT_EQ(rca.shape(), fx.global);
  EXPECT_EQ(rca.read_all(), fx.data);
  EXPECT_EQ(rca.read_all(), vca.read_all());
}

TEST(RcaTest, ReadsAllDataDuringConstruction) {
  // Table I: RCA construction cost ~ total data size (vs VCA's
  // header-only cost).
  TmpDir dir("rca");
  Fixture fx(dir, 32, {256, 256});
  global_counters().reset();
  (void)rca_create(fx.files, dir.file("m.dh5"));
  const std::uint64_t bytes = global_counters().get(counters::kIoReadBytes);
  EXPECT_GE(bytes, fx.data.size() * sizeof(double));
}

TEST(LavTest, WindowedViewReads) {
  TmpDir dir("lav");
  Fixture fx(dir, 8, {10, 10});
  auto vca = std::make_shared<Vca>(Vca::build(fx.files));
  Lav lav(vca, Slab2D{2, 5, 4, 10});
  EXPECT_EQ(lav.shape(), (Shape2D{4, 10}));
  const std::vector<double> got = lav.read_slab(Slab2D{1, 2, 2, 3});
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(got[r * 3 + c], fx.data[fx.global.at(3 + r, 7 + c)]);
    }
  }
}

TEST(LavTest, ComposedViewsReoffset) {
  TmpDir dir("lav");
  Fixture fx(dir, 8, {20});
  auto src = std::make_shared<Dash5Source>(fx.files[0]);
  auto outer = std::make_shared<Lav>(src, Slab2D{2, 4, 6, 12});
  Lav inner(outer, Slab2D{1, 2, 3, 4});
  EXPECT_EQ(inner.shape(), (Shape2D{3, 4}));
  const std::vector<double> got = inner.read_all();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(got[r * 4 + c], fx.data[fx.global.at(3 + r, 6 + c)]);
    }
  }
}

TEST(LavTest, RejectsOversizedWindow) {
  TmpDir dir("lav");
  Fixture fx(dir, 4, {6});
  auto src = std::make_shared<Dash5Source>(fx.files[0]);
  EXPECT_THROW(Lav(src, Slab2D{0, 0, 5, 6}), InvalidArgument);
  EXPECT_THROW(Lav(nullptr, Slab2D{0, 0, 1, 1}), InvalidArgument);
}

TEST(MemorySourceTest, SlabReads) {
  const Shape2D shape{3, 4};
  std::vector<double> data(12);
  std::iota(data.begin(), data.end(), 0.0);
  MemorySource src(shape, data);
  EXPECT_EQ(src.shape(), shape);
  const std::vector<double> got = src.read_slab(Slab2D{1, 1, 2, 2});
  EXPECT_EQ(got, (std::vector<double>{5, 6, 9, 10}));
  EXPECT_THROW(MemorySource(shape, std::vector<double>(5)), InvalidArgument);
}

}  // namespace
}  // namespace dassa::io
