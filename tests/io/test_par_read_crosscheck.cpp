// Cross-check of the two VCA parallel-read strategies (paper Fig. 5):
// collective-per-file and communication-avoiding must hand every rank
// BYTE-identical channel blocks on the irregular inputs where their
// internal routing differs most -- file counts not divisible by the
// rank count (uneven round-robin shares), a single-file VCA (one
// aggregator vs one local reader), and VCAs mixing plain v2 members
// with compressed v3 members (different read paths per member).
#include "dassa/io/par_read.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "dassa/io/dash5.hpp"
#include "dassa/mpi/runtime.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

/// Member storage format for the fixture below.
enum class MemberKind { kV2, kV3, kAlternate };

struct Fixture {
  Shape2D global;
  std::vector<double> data;
  std::vector<std::string> files;

  Fixture(TmpDir& dir, std::size_t rows, std::size_t files_n,
          std::size_t cols_each, MemberKind kind) {
    global = {rows, files_n * cols_each};
    data.resize(global.size());
    std::mt19937_64 rng(11);
    std::normal_distribution<double> dist;
    for (auto& v : data) v = dist(rng);
    for (std::size_t i = 0; i < files_n; ++i) {
      const Shape2D fshape{rows, cols_each};
      std::vector<double> fdata(fshape.size());
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols_each; ++c) {
          fdata[fshape.at(r, c)] = data[global.at(r, i * cols_each + c)];
        }
      }
      Dash5Header h;
      h.shape = fshape;
      const bool v3 = kind == MemberKind::kV3 ||
                      (kind == MemberKind::kAlternate && i % 2 == 1);
      if (v3) {
        h.layout = Layout::kChunked;
        h.chunk = {2, cols_each};
        h.codec = CodecSpec::parse("shuffle+lz");
      }
      const std::string path = dir.file("f" + std::to_string(i) + ".dh5");
      dash5_write(path, h, fdata);
      files.push_back(path);
    }
  }

  std::vector<double> expected_block(int p, int r) const {
    const Range rows = even_chunk(global.rows, static_cast<std::size_t>(p),
                                  static_cast<std::size_t>(r));
    std::vector<double> out(rows.size() * global.cols);
    for (std::size_t row = rows.begin; row < rows.end; ++row) {
      std::copy(
          data.begin() + static_cast<std::ptrdiff_t>(global.at(row, 0)),
          data.begin() +
              static_cast<std::ptrdiff_t>(global.at(row, 0) + global.cols),
          out.begin() +
              static_cast<std::ptrdiff_t>((row - rows.begin) * global.cols));
    }
    return out;
  }
};

/// Run both strategies over the same VCA and require bit-identical
/// per-rank blocks (memcmp, not tolerance: the strategies move the
/// same file bytes, so even NaN payloads must survive either route).
void crosscheck(const Fixture& fx, int world) {
  Vca vca = Vca::build(fx.files);
  std::vector<ParallelReadResult> collective(static_cast<std::size_t>(world));
  std::vector<ParallelReadResult> avoiding(static_cast<std::size_t>(world));
  mpi::Runtime::run(world, [&](mpi::Comm& comm) {
    collective[static_cast<std::size_t>(comm.rank())] =
        read_vca_collective_per_file(comm, vca);
  });
  mpi::Runtime::run(world, [&](mpi::Comm& comm) {
    avoiding[static_cast<std::size_t>(comm.rank())] =
        read_vca_comm_avoiding(comm, vca);
  });
  for (int r = 0; r < world; ++r) {
    const auto& a = collective[static_cast<std::size_t>(r)];
    const auto& b = avoiding[static_cast<std::size_t>(r)];
    ASSERT_EQ(a.shape, b.shape) << "rank " << r;
    ASSERT_EQ(a.rows.begin, b.rows.begin) << "rank " << r;
    ASSERT_EQ(a.rows.end, b.rows.end) << "rank " << r;
    ASSERT_EQ(a.data.size(), b.data.size()) << "rank " << r;
    EXPECT_EQ(0, std::memcmp(a.data.data(), b.data.data(),
                             a.data.size() * sizeof(double)))
        << "strategies disagree on rank " << r;
    EXPECT_EQ(a.data, fx.expected_block(world, r)) << "rank " << r;
  }
}

TEST(ParReadCrosscheckTest, FileCountNotDivisibleByRankCount) {
  // 5 files over 3 ranks and 7 over 4: the round-robin shares are
  // uneven, so the comm-avoiding exchange payloads differ per rank.
  {
    TmpDir dir("xchk");
    Fixture fx(dir, 12, 5, 6, MemberKind::kV2);
    crosscheck(fx, 3);
  }
  {
    TmpDir dir("xchk");
    Fixture fx(dir, 9, 7, 4, MemberKind::kV2);
    crosscheck(fx, 4);
  }
}

TEST(ParReadCrosscheckTest, SingleFileVca) {
  // One member file: collective does a single broadcast, comm-avoiding
  // leaves every rank but 0 with an empty read share.
  TmpDir dir("xchk");
  Fixture fx(dir, 10, 1, 8, MemberKind::kV2);
  crosscheck(fx, 4);
}

TEST(ParReadCrosscheckTest, MixedV2V3Members) {
  // Alternating plain and compressed members: the byte routes differ
  // (contiguous reads vs chunk decode through the cache), the results
  // must not.
  TmpDir dir("xchk");
  Fixture fx(dir, 12, 5, 6, MemberKind::kAlternate);
  crosscheck(fx, 3);
}

TEST(ParReadCrosscheckTest, AllV3SingleFile) {
  // Single-file VCA in v3 form: the v3 slab reader and the chunk cache
  // sit under one aggregator vs one local reader.
  TmpDir dir("xchk");
  Fixture fx(dir, 8, 1, 6, MemberKind::kV3);
  crosscheck(fx, 3);
}

TEST(ParReadCrosscheckTest, MoreRanksThanFilesMixed) {
  TmpDir dir("xchk");
  Fixture fx(dir, 10, 3, 4, MemberKind::kAlternate);
  crosscheck(fx, 5);
}

}  // namespace
}  // namespace dassa::io
