// KvList and counted file-layer tests: typed accessors, ordering,
// error paths; InputFile/OutputFile read/write/seek/update semantics
// and instrumentation.
#include <gtest/gtest.h>

#include "dassa/common/counters.hpp"
#include "dassa/io/file_io.hpp"
#include "dassa/io/kv.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

TEST(KvListTest, SetGetAndOverwrite) {
  KvList kv;
  EXPECT_TRUE(kv.empty());
  kv.set("a", "1");
  kv.set("b", "two");
  kv.set("a", "replaced");  // overwrite keeps position, changes value
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv.get_or_throw("a"), "replaced");
  EXPECT_EQ(kv.items()[0].first, "a");  // insertion order preserved
  EXPECT_FALSE(kv.get("missing").has_value());
  EXPECT_THROW((void)kv.get_or_throw("missing"), InvalidArgument);
  EXPECT_TRUE(kv.contains("b"));
}

TEST(KvListTest, TypedAccessors) {
  KvList kv;
  kv.set_i64("count", -42);
  kv.set_f64("rate", 500.5);
  EXPECT_EQ(kv.get_i64("count"), -42);
  EXPECT_DOUBLE_EQ(kv.get_f64("rate"), 500.5);
  // Integers parse as floats too.
  EXPECT_DOUBLE_EQ(kv.get_f64("count"), -42.0);

  kv.set("text", "not a number");
  EXPECT_THROW((void)kv.get_i64("text"), InvalidArgument);
  EXPECT_THROW((void)kv.get_f64("text"), InvalidArgument);
  kv.set("trailing", "12abc");
  EXPECT_THROW((void)kv.get_i64("trailing"), InvalidArgument);
  EXPECT_THROW((void)kv.get_f64("trailing"), InvalidArgument);
}

TEST(KvListTest, EqualityIsOrderSensitive) {
  KvList a;
  a.set("x", "1");
  a.set("y", "2");
  KvList b;
  b.set("y", "2");
  b.set("x", "1");
  EXPECT_NE(a, b);  // the on-disk representation differs
  KvList c;
  c.set("x", "1");
  c.set("y", "2");
  EXPECT_EQ(a, c);
}

TEST(FileIoTest, WriteThenReadBack) {
  TmpDir dir("fio");
  const std::string path = dir.file("data.bin");
  {
    OutputFile out(path);
    const std::uint32_t a = 0xDEADBEEF;
    out.write(&a, sizeof a);
    const double b = 3.5;
    out.write(&b, sizeof b);
    EXPECT_EQ(out.position(), sizeof a + sizeof b);
    out.close();
  }
  InputFile in(path);
  EXPECT_EQ(in.size(), 12u);
  std::uint32_t a = 0;
  in.read_at(0, &a, sizeof a);
  EXPECT_EQ(a, 0xDEADBEEFu);
  double b = 0;
  in.read_at(4, &b, sizeof b);
  EXPECT_EQ(b, 3.5);
}

TEST(FileIoTest, ReadPastEndThrows) {
  TmpDir dir("fio");
  {
    OutputFile out(dir.file("small.bin"));
    const char c = 'x';
    out.write(&c, 1);
    out.close();
  }
  InputFile in(dir.file("small.bin"));
  char buf[8];
  EXPECT_THROW(in.read_at(0, buf, 2), IoError);
  EXPECT_THROW(in.read_at(5, buf, 1), IoError);
  EXPECT_NO_THROW(in.read_at(0, buf, 1));
}

TEST(FileIoTest, MissingFileThrows) {
  EXPECT_THROW(InputFile f("/no/such/file.bin"), IoError);
}

TEST(FileIoTest, SequentialReadsDoNotSeek) {
  TmpDir dir("fio");
  {
    OutputFile out(dir.file("seq.bin"));
    const std::vector<char> data(64, 'a');
    out.write(data.data(), data.size());
    out.close();
  }
  InputFile in(dir.file("seq.bin"));
  char buf[16];
  global_counters().reset();
  in.read_at(0, buf, 16);
  in.read_at(16, buf, 16);  // continues at the cursor: no seek
  in.read_at(48, buf, 16);  // jumps: one seek
  EXPECT_EQ(global_counters().get(counters::kIoSeeks), 1u);
  EXPECT_EQ(global_counters().get(counters::kIoReadCalls), 3u);
  EXPECT_EQ(global_counters().get(counters::kIoReadBytes), 48u);
}

TEST(FileIoTest, WriteAtPatchesInPlace) {
  TmpDir dir("fio");
  const std::string path = dir.file("patch.bin");
  {
    OutputFile out(path);
    const std::vector<char> zeros(16, '\0');
    out.write(zeros.data(), zeros.size());
    out.close();
  }
  {
    OutputFile out(path, OutputFile::Mode::kUpdate);
    const char payload[4] = {'D', 'A', 'S', '!'};
    out.write_at(8, payload, 4);
    out.close();
  }
  InputFile in(path);
  EXPECT_EQ(in.size(), 16u);  // update mode must not truncate
  char buf[4];
  in.read_at(8, buf, 4);
  EXPECT_EQ(std::string(buf, 4), "DAS!");
  in.read_at(0, buf, 4);
  EXPECT_EQ(std::string(buf, 4), std::string(4, '\0'));
}

TEST(FileIoTest, CountersTrackWrites) {
  TmpDir dir("fio");
  global_counters().reset();
  OutputFile out(dir.file("w.bin"));
  const std::vector<char> data(100, 'z');
  out.write(data.data(), 60);
  out.write(data.data(), 40);
  out.close();
  EXPECT_EQ(global_counters().get(counters::kIoWriteCalls), 2u);
  EXPECT_EQ(global_counters().get(counters::kIoWriteBytes), 100u);
  EXPECT_EQ(global_counters().get(counters::kIoOpens), 1u);
}

}  // namespace
}  // namespace dassa::io
