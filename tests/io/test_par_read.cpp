// Parallel read strategy tests (paper Fig. 5): both strategies and the
// RCA reference must produce identical channel blocks, with the
// communication structure the paper describes (O(n) broadcasts vs one
// all-to-all).
#include "dassa/io/par_read.hpp"

#include <gtest/gtest.h>

#include <random>

#include "dassa/common/counters.hpp"
#include "dassa/mpi/runtime.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

struct Fixture {
  Shape2D global;
  std::vector<double> data;
  std::vector<std::string> files;

  Fixture(TmpDir& dir, std::size_t rows, std::size_t files_n,
          std::size_t cols_each) {
    global = {rows, files_n * cols_each};
    data.resize(global.size());
    std::mt19937_64 rng(5);
    std::normal_distribution<double> dist;
    for (auto& v : data) v = dist(rng);
    for (std::size_t i = 0; i < files_n; ++i) {
      const Shape2D fshape{rows, cols_each};
      std::vector<double> fdata(fshape.size());
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols_each; ++c) {
          fdata[fshape.at(r, c)] = data[global.at(r, i * cols_each + c)];
        }
      }
      Dash5Header h;
      h.shape = fshape;
      const std::string path = dir.file("f" + std::to_string(i) + ".dh5");
      dash5_write(path, h, fdata);
      files.push_back(path);
    }
  }

  /// The channel block rank `r` of `p` must end up with.
  std::vector<double> expected_block(int p, int r) const {
    const Range rows = even_chunk(global.rows, static_cast<std::size_t>(p),
                                  static_cast<std::size_t>(r));
    std::vector<double> out((rows.end - rows.begin) * global.cols);
    for (std::size_t row = rows.begin; row < rows.end; ++row) {
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(
                                   global.at(row, 0)),
                data.begin() + static_cast<std::ptrdiff_t>(
                                   global.at(row, 0) + global.cols),
                out.begin() + static_cast<std::ptrdiff_t>(
                                  (row - rows.begin) * global.cols));
    }
    return out;
  }
};

class ParReadTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(ParReadTest, CollectivePerFileAssemblesCorrectBlocks) {
  const auto [p, files_n] = GetParam();
  TmpDir dir("pr");
  Fixture fx(dir, 12, files_n, 6);
  Vca vca = Vca::build(fx.files);
  mpi::Runtime::run(p, [&](mpi::Comm& comm) {
    const ParallelReadResult res = read_vca_collective_per_file(comm, vca);
    EXPECT_EQ(res.data, fx.expected_block(comm.size(), comm.rank()));
  });
}

TEST_P(ParReadTest, CommAvoidingAssemblesCorrectBlocks) {
  const auto [p, files_n] = GetParam();
  TmpDir dir("pr");
  Fixture fx(dir, 12, files_n, 6);
  Vca vca = Vca::build(fx.files);
  mpi::Runtime::run(p, [&](mpi::Comm& comm) {
    const ParallelReadResult res = read_vca_comm_avoiding(comm, vca);
    EXPECT_EQ(res.data, fx.expected_block(comm.size(), comm.rank()));
  });
}

TEST_P(ParReadTest, RcaDirectAssemblesCorrectBlocks) {
  const auto [p, files_n] = GetParam();
  TmpDir dir("pr");
  Fixture fx(dir, 12, files_n, 6);
  (void)rca_create(fx.files, dir.file("merged.dh5"));
  mpi::Runtime::run(p, [&](mpi::Comm& comm) {
    const ParallelReadResult res =
        read_rca_direct(comm, dir.file("merged.dh5"));
    EXPECT_EQ(res.data, fx.expected_block(comm.size(), comm.rank()));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, ParReadTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{9})));

TEST(ParReadCountsTest, CollectivePerFileBroadcastsPerFile) {
  // The defining property of Fig. 5a: one broadcast per member file.
  TmpDir dir("prc");
  const std::size_t n_files = 6;
  Fixture fx(dir, 8, n_files, 4);
  Vca vca = Vca::build(fx.files);
  global_counters().reset();
  mpi::Runtime::run(4, [&](mpi::Comm& comm) {
    (void)read_vca_collective_per_file(comm, vca);
  });
  EXPECT_EQ(global_counters().get(counters::kMpiBcasts), n_files);
  EXPECT_EQ(global_counters().get(counters::kMpiAlltoalls), 0u);
}

TEST(ParReadCountsTest, CommAvoidingUsesOneAlltoall) {
  // The defining property of Fig. 5b: a single all-to-all, regardless
  // of the file count.
  TmpDir dir("prc");
  Fixture fx(dir, 8, 6, 4);
  Vca vca = Vca::build(fx.files);
  global_counters().reset();
  mpi::Runtime::run(4, [&](mpi::Comm& comm) {
    (void)read_vca_comm_avoiding(comm, vca);
  });
  EXPECT_EQ(global_counters().get(counters::kMpiAlltoalls), 1u);
  EXPECT_EQ(global_counters().get(counters::kMpiBcasts), 0u);
}

TEST(ParReadCountsTest, BothStrategiesReadEachFileOnce) {
  TmpDir dir("prc");
  const std::size_t n_files = 5;
  Fixture fx(dir, 8, n_files, 4);
  Vca vca = Vca::build(fx.files);

  for (int strategy = 0; strategy < 2; ++strategy) {
    global_counters().reset();
    mpi::Runtime::run(4, [&](mpi::Comm& comm) {
      if (strategy == 0) {
        (void)read_vca_collective_per_file(comm, vca);
      } else {
        (void)read_vca_comm_avoiding(comm, vca);
      }
    });
    // One data read per file: read calls = n_files data reads plus the
    // small header reads at open (3 each: magic, size, header block).
    const std::uint64_t data_reads =
        global_counters().get(counters::kIoReadCalls) - 3 * n_files;
    EXPECT_EQ(data_reads, n_files) << "strategy " << strategy;
  }
}

TEST(ParReadCountsTest, CommAvoidingModeledTimeWinsAtScale) {
  // Under the alpha-beta model the collective-per-file strategy pays
  // a broadcast per file and must model slower than the single
  // all-to-all of the communication-avoiding strategy.
  TmpDir dir("prc");
  Fixture fx(dir, 16, 12, 8);
  Vca vca = Vca::build(fx.files);

  const auto run = [&](auto reader) {
    return mpi::Runtime::run(8, [&](mpi::Comm& comm) {
      (void)reader(comm, vca, IoCostParams{});
    });
  };
  const double t_collective =
      run([](mpi::Comm& c, const Vca& v, const IoCostParams& io) {
        return read_vca_collective_per_file(c, v, io);
      }).aggregate().modeled_seconds;
  const double t_avoiding =
      run([](mpi::Comm& c, const Vca& v, const IoCostParams& io) {
        return read_vca_comm_avoiding(c, v, io);
      }).aggregate().modeled_seconds;
  EXPECT_LT(t_avoiding, t_collective);
}

TEST(ParReadTest, MoreRanksThanFilesStillCorrect) {
  TmpDir dir("pr");
  Fixture fx(dir, 10, 2, 5);
  Vca vca = Vca::build(fx.files);
  mpi::Runtime::run(5, [&](mpi::Comm& comm) {
    const ParallelReadResult res = read_vca_comm_avoiding(comm, vca);
    EXPECT_EQ(res.data, fx.expected_block(comm.size(), comm.rank()));
  });
}

TEST(ParReadTest, MoreRanksThanRowsStillCorrect) {
  TmpDir dir("pr");
  Fixture fx(dir, 3, 2, 4);
  Vca vca = Vca::build(fx.files);
  mpi::Runtime::run(5, [&](mpi::Comm& comm) {
    const ParallelReadResult res = read_vca_comm_avoiding(comm, vca);
    EXPECT_EQ(res.data, fx.expected_block(comm.size(), comm.rank()));
    if (comm.rank() >= 3) {
      EXPECT_TRUE(res.data.empty());
    }
  });
}


TEST(ParReadTest, DirectPerRankAssemblesCorrectBlocks) {
  TmpDir dir("pr");
  Fixture fx(dir, 12, 4, 6);
  Vca vca = Vca::build(fx.files);
  mpi::Runtime::run(3, [&](mpi::Comm& comm) {
    const ParallelReadResult res = read_vca_direct_per_rank(comm, vca);
    EXPECT_EQ(res.data, fx.expected_block(comm.size(), comm.rank()));
  });
}

TEST(ParReadCountsTest, DirectPerRankScalesWithRanksTimesFiles) {
  // O(p * n) I/O requests: the access pattern whose IOPS pressure the
  // paper's HAEE + communication-avoiding design eliminates.
  TmpDir dir("prc");
  const std::size_t n_files = 5;
  Fixture fx(dir, 8, n_files, 4);
  Vca vca = Vca::build(fx.files);

  auto data_reads = [&](int p) {
    global_counters().reset();
    mpi::Runtime::run(p, [&](mpi::Comm& comm) {
      (void)read_vca_direct_per_rank(comm, vca);
    });
    // Subtract the 3 header reads per open; each rank opens each file.
    return global_counters().get(counters::kIoReadCalls) -
           3 * n_files * static_cast<std::uint64_t>(p);
  };
  EXPECT_EQ(data_reads(1), n_files);
  EXPECT_EQ(data_reads(4), 4 * n_files);
  // No communication at all.
  EXPECT_EQ(global_counters().get(counters::kMpiP2pMsgs), 0u);
}

}  // namespace
}  // namespace dassa::io
