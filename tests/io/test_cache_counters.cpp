// Deterministic chunk-cache counter regression tests: with readahead
// disabled the io.cache.* counters are exact functions of the scripted
// access pattern (misses = distinct tiles touched, hits = re-touches),
// and with readahead on, the stride detector's prefetch_issued count
// and the hits it buys are pinned down by draining the prefetcher
// between windows. A drifting count here means the cache or prefetch
// policy changed -- which is exactly what these tests exist to catch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/io/chunk_cache.hpp"
#include "dassa/io/dash5.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

/// v3 file with a known chunk grid: shape 16x64 in 2x16 tiles makes an
/// 8x4 grid; every full-width 2-row slab touches exactly one grid row
/// (4 tiles).
std::string make_grid_file(TmpDir& dir) {
  Dash5Header h;
  h.shape = {16, 64};
  h.layout = Layout::kChunked;
  h.chunk = {2, 16};
  h.codec = CodecSpec::parse("lz");
  std::vector<double> data(h.shape.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>((i * 31) % 257);
  }
  const std::string path = dir.file("grid.dh5");
  dash5_write(path, h, data);
  return path;
}

struct Counts {
  std::uint64_t hits;
  std::uint64_t misses;
  std::uint64_t prefetch;
};

Counts cache_counts() {
  return {global_counters().get(counters::kIoCacheHits),
          global_counters().get(counters::kIoCacheMisses),
          global_counters().get(counters::kIoCachePrefetchIssued)};
}

/// Restores readahead and clears shared state around every test.
class CacheCountersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dash5File::set_readahead(false);
    ChunkCache::global().clear();
    global_counters().reset();
  }
  void TearDown() override { Dash5File::set_readahead(true); }
};

TEST_F(CacheCountersTest, SequentialPatternReadaheadOff) {
  TmpDir dir("cc");
  const std::string path = make_grid_file(dir);
  Dash5File f(path);
  global_counters().reset();

  // First sequential sweep: 8 windows x 4 tiles, all cold.
  for (std::size_t w = 0; w < 8; ++w) {
    (void)f.read_slab(Slab2D{w * 2, 0, 2, 64});
  }
  Counts c = cache_counts();
  EXPECT_EQ(c.misses, 32u);
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.prefetch, 0u);

  // Second sweep: everything cached, zero new misses.
  for (std::size_t w = 0; w < 8; ++w) {
    (void)f.read_slab(Slab2D{w * 2, 0, 2, 64});
  }
  c = cache_counts();
  EXPECT_EQ(c.misses, 32u);
  EXPECT_EQ(c.hits, 32u);
  EXPECT_EQ(c.prefetch, 0u);
}

TEST_F(CacheCountersTest, StridedPatternReadaheadOff) {
  TmpDir dir("cc");
  const std::string path = make_grid_file(dir);
  Dash5File f(path);
  global_counters().reset();

  // Stride-2 sweep over grid rows 0, 2, 4, 6: 16 distinct tiles.
  for (std::size_t w = 0; w < 4; ++w) {
    (void)f.read_slab(Slab2D{w * 4, 0, 2, 64});
  }
  // Partial-width re-reads of the same tiles: column window [16, 48)
  // touches tiles 1 and 2 of each visited grid row.
  for (std::size_t w = 0; w < 4; ++w) {
    (void)f.read_slab(Slab2D{w * 4, 16, 2, 32});
  }
  const Counts c = cache_counts();
  EXPECT_EQ(c.misses, 16u);
  EXPECT_EQ(c.hits, 8u);
  EXPECT_EQ(c.prefetch, 0u);
}

TEST_F(CacheCountersTest, SequentialPatternReadaheadOn) {
  TmpDir dir("cc");
  const std::string path = make_grid_file(dir);
  Dash5File f(path);
  Dash5File::set_readahead(true);
  global_counters().reset();

  // Window w covers grid row w. The stride detector sees its first
  // delta at w=1 and fires from w=2 on, always predicting grid row
  // w+1 (4 tiles). Draining between windows makes the counts exact:
  //   w=0: 4 misses
  //   w=1: 4 misses                       (delta recorded, no fire)
  //   w=2: 4 misses, issue 4 prefetches -> 4 background misses
  //   w=3..7: 4 hits each, issue 4 more  -> 4 background misses each,
  //           except w=7's prediction (grid row 8) is clipped away.
  for (std::size_t w = 0; w < 8; ++w) {
    (void)f.read_slab(Slab2D{w * 2, 0, 2, 64});
    f.drain_prefetch();
  }
  const Counts c = cache_counts();
  EXPECT_EQ(c.prefetch, 20u);  // fired at w=2..6, 4 tiles each
  EXPECT_EQ(c.hits, 20u);      // w=3..7 foreground windows
  EXPECT_EQ(c.misses, 32u);    // 12 foreground cold + 20 background
}

TEST_F(CacheCountersTest, StridedPatternReadaheadOn) {
  TmpDir dir("cc");
  const std::string path = make_grid_file(dir);
  Dash5File f(path);
  Dash5File::set_readahead(true);
  global_counters().reset();

  // Stride-2 windows over grid rows 0, 2, 4, 6: the detector locks on
  // the 2-row stride at w=2 and prefetches grid rows 6 (at w=2) and 8
  // (at w=3, clipped off the grid).
  for (std::size_t w = 0; w < 4; ++w) {
    (void)f.read_slab(Slab2D{w * 4, 0, 2, 64});
    f.drain_prefetch();
  }
  const Counts c = cache_counts();
  EXPECT_EQ(c.prefetch, 4u);  // grid row 6, fired at w=2
  EXPECT_EQ(c.hits, 4u);      // w=3 rides the prefetched row
  EXPECT_EQ(c.misses, 16u);   // 12 foreground cold + 4 background
}

TEST_F(CacheCountersTest, ReadaheadToggleIsObservable) {
  EXPECT_FALSE(Dash5File::readahead_enabled());
  Dash5File::set_readahead(true);
  EXPECT_TRUE(Dash5File::readahead_enabled());
  Dash5File::set_readahead(false);
  EXPECT_FALSE(Dash5File::readahead_enabled());
}

}  // namespace
}  // namespace dassa::io
