// Parallel repack engine tests: the MiniMPI concatenator must produce
// byte-identical files to the serial writer at every world size, over
// irregular mixed-version member sets, while each rank touches only
// ~1/p of the source bytes (the O(n/p) contract of the engine).
#include "dassa/io/repack.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>

#include "dassa/common/counters.hpp"
#include "dassa/io/vca.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

std::vector<std::byte> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> out(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

/// Member files with irregular column counts and deliberately mixed
/// storage: v2 contiguous, v2 chunked, and v3 compressed members in
/// one VCA, all f32 with ADC-style quantized samples so codec chains
/// have something to compress.
struct Fixture {
  Shape2D global;
  std::vector<std::string> files;

  Fixture(TmpDir& dir, std::size_t rows,
          const std::vector<std::size_t>& cols_per_file) {
    std::size_t total_cols = 0;
    for (std::size_t c : cols_per_file) total_cols += c;
    global = {rows, total_cols};
    std::mt19937_64 rng(20260809);
    std::normal_distribution<double> dist;

    for (std::size_t i = 0; i < cols_per_file.size(); ++i) {
      const Shape2D fshape{rows, cols_per_file[i]};
      std::vector<double> fdata(fshape.size());
      for (auto& v : fdata) {
        v = std::round(dist(rng) * 64.0) * 0.015625;
      }
      Dash5Header h;
      h.shape = fshape;
      h.dtype = DType::kF32;
      h.global.set(meta::kTimeStamp, "17072822451" + std::to_string(i));
      switch (i % 3) {
        case 0:  // v2 contiguous
          break;
        case 1:  // v2 chunked
          h.layout = Layout::kChunked;
          h.chunk = {8, 64};
          break;
        default:  // v3 compressed
          h.layout = Layout::kChunked;
          h.chunk = {8, 64};
          h.codec = CodecSpec::parse("shuffle+lz");
          break;
      }
      const std::string path = dir.file("part" + std::to_string(i) + ".dh5");
      dash5_write(path, h, fdata);
      files.push_back(path);
    }
  }

  /// The serial reference: the header the engine derives, fed through
  /// dash5_write with the merged (storage-rounded) array.
  [[nodiscard]] std::string write_reference(TmpDir& dir,
                                            const RepackOptions& opts) const {
    const Vca vca = Vca::build(files);
    Dash5Header header = Dash5File::read_header(files.front());
    header.shape = vca.shape();
    header.layout = Layout::kChunked;
    header.chunk = opts.chunk;
    header.codec = opts.codec;
    const std::vector<double> merged = vca.read_slab(
        Slab2D{0, 0, vca.shape().rows, vca.shape().cols});
    const std::string path = dir.file("reference.dh5");
    dash5_write(path, header, merged);
    return path;
  }
};

TEST(RepackParallel, ByteIdenticalToSerialAtEveryWorldSize) {
  TmpDir dir("repack_par");
  Fixture fx(dir, 24, {300, 157, 512, 31});
  RepackOptions opts;
  opts.codec = CodecSpec::parse("shuffle+lz");
  opts.chunk = {16, 256};  // does not divide 24 x 1000: pad path covered
  const std::vector<std::byte> want = slurp(fx.write_reference(dir, opts));

  for (const int ranks : {1, 2, 4}) {
    const std::string out =
        dir.file("par_r" + std::to_string(ranks) + ".dh5");
    const RepackReport report =
        parallel_repack(fx.files, out, opts, ranks);
    const std::vector<std::byte> got = slurp(out);
    ASSERT_EQ(want.size(), got.size()) << "ranks=" << ranks;
    EXPECT_TRUE(want == got) << "byte mismatch at ranks=" << ranks;
    EXPECT_EQ(report.out_bytes, got.size()) << "ranks=" << ranks;
    EXPECT_EQ(report.shape, fx.global);
  }
}

TEST(RepackParallel, ReadbackMatchesVcaView) {
  TmpDir dir("repack_par_read");
  Fixture fx(dir, 16, {100, 333, 67});
  RepackOptions opts;
  opts.codec = CodecSpec::parse("delta+lz");
  opts.chunk = {7, 100};
  const std::string out = dir.file("par.dh5");
  (void)parallel_repack(fx.files, out, opts, 3);

  const Vca vca = Vca::build(fx.files);
  const std::vector<double> want = vca.read_slab(
      Slab2D{0, 0, fx.global.rows, fx.global.cols});
  const Dash5File merged(out);
  ASSERT_EQ(merged.shape(), fx.global);
  const std::vector<double> got = merged.read_all();
  ASSERT_EQ(want.size(), got.size());
  EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                           want.size() * sizeof(double)));
}

TEST(RepackParallel, SourceBytesScaleAsOneOverP) {
  TmpDir dir("repack_par_cost");
  Fixture fx(dir, 32, {512, 512, 512, 512});
  RepackOptions opts;
  opts.codec = CodecSpec::parse("shuffle+lz");
  opts.chunk = {8, 256};
  const std::string out = dir.file("par.dh5");
  const int ranks = 4;
  const RepackReport report = parallel_repack(fx.files, out, opts, ranks);

  const std::uint64_t total_bytes =
      fx.global.size() * dtype_size(DType::kF32);
  std::uint64_t sum = 0;
  for (const std::uint64_t b : report.rank_source_bytes) sum += b;
  // Clamped tiles partition the source exactly once.
  EXPECT_EQ(sum, total_bytes);
  // Balanced grid: no rank reads more than its share plus one chunk.
  const std::uint64_t chunk_bytes =
      opts.chunk.rows * opts.chunk.cols * dtype_size(DType::kF32);
  const std::uint64_t fair = total_bytes / ranks;
  for (const std::uint64_t b : report.rank_source_bytes) {
    EXPECT_LE(b, fair + chunk_bytes);
  }
  std::uint64_t chunks = 0;
  for (const std::uint64_t c : report.rank_chunks) chunks += c;
  EXPECT_EQ(chunks, report.n_chunks);
}

TEST(RepackParallel, ChargesRepackCounters) {
  TmpDir dir("repack_par_counters");
  Fixture fx(dir, 8, {128, 64});
  RepackOptions opts;
  opts.codec = CodecSpec::parse("shuffle+lz");
  opts.chunk = {8, 64};
  const std::uint64_t runs0 =
      global_counters().get(counters::kIoRepackRuns);
  const std::uint64_t chunks0 =
      global_counters().get(counters::kIoRepackChunks);
  const std::uint64_t src0 =
      global_counters().get(counters::kIoRepackSourceBytes);

  const std::string out = dir.file("par.dh5");
  const RepackReport report = parallel_repack(fx.files, out, opts, 2);

  EXPECT_EQ(global_counters().get(counters::kIoRepackRuns), runs0 + 1);
  EXPECT_EQ(global_counters().get(counters::kIoRepackChunks),
            chunks0 + report.n_chunks);
  EXPECT_EQ(global_counters().get(counters::kIoRepackSourceBytes),
            src0 + fx.global.size() * dtype_size(DType::kF32));
}

TEST(RepackParallel, MoreRanksThanChunks) {
  TmpDir dir("repack_par_tiny");
  Fixture fx(dir, 4, {32, 17});
  RepackOptions opts;
  opts.codec = CodecSpec::parse("lz");
  opts.chunk = {4, 49};  // exactly one chunk
  const std::vector<std::byte> want = slurp(fx.write_reference(dir, opts));
  const std::string out = dir.file("par.dh5");
  const RepackReport report = parallel_repack(fx.files, out, opts, 4);
  EXPECT_EQ(report.n_chunks, 1u);
  EXPECT_TRUE(want == slurp(out));
}

TEST(RepackParallel, RejectsEmptyCodec) {
  TmpDir dir("repack_par_reject");
  Fixture fx(dir, 4, {32});
  RepackOptions opts;  // codec left empty
  EXPECT_THROW(
      (void)parallel_repack(fx.files, dir.file("out.dh5"), opts, 2),
      Error);
}

}  // namespace
}  // namespace dassa::io
