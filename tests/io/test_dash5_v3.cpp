// DASH5 v3 container tests: compressed chunked files must round-trip
// bit-exactly through every codec chain, dtype, and tile geometry
// (including non-divisible edge tiles), interoperate with the v2
// reader surface (VCA, slab selections), keep v2 output byte-stable,
// and exercise the chunk cache and readahead prefetcher.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/io/chunk_cache.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/vca.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

Dash5Header v3_header(Shape2D shape, ChunkShape chunk,
                      const std::string& codec, DType dtype = DType::kF64) {
  Dash5Header h;
  h.shape = shape;
  h.dtype = dtype;
  h.layout = Layout::kChunked;
  h.chunk = chunk;
  h.codec = CodecSpec::parse(codec);
  h.global.set("SamplingFrequency[Hz]", "500");
  return h;
}

/// Sample values exactly representable in f32, so f64 and f32 files
/// round-trip identically.
std::vector<double> sample_data(Shape2D shape) {
  std::vector<double> data(shape.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>((i * 37) % 4096) - 2048.0;
  }
  return data;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

TEST(Dash5V3Test, RoundtripsEveryChainDtypeAndGeometry) {
  TmpDir dir("v3");
  const char* const chains[] = {"none+lz", "shuffle", "delta", "lz",
                                "shuffle+lz", "delta+lz"};
  const Shape2D shapes[] = {{1, 1}, {3, 5}, {16, 64}, {7, 129}};
  const ChunkShape chunks[] = {{1, 1}, {2, 8}, {4, 48}, {16, 256}};
  int case_id = 0;
  for (const char* chain : chains) {
    for (const Shape2D shape : shapes) {
      for (const ChunkShape chunk : chunks) {
        for (const DType dtype : {DType::kF64, DType::kF32}) {
          const std::string path =
              dir.file("rt" + std::to_string(case_id++) + ".dh5");
          const std::vector<double> data = sample_data(shape);
          dash5_write(path, v3_header(shape, chunk, chain, dtype), data);
          Dash5File f(path);
          EXPECT_EQ(f.version(), 3);
          EXPECT_EQ(f.codec().str(), chain);
          EXPECT_EQ(f.shape(), shape);
          ASSERT_EQ(f.read_all(), data)
              << chain << " " << shape << " chunk " << chunk.rows << "x"
              << chunk.cols << " dtype " << static_cast<int>(dtype);
        }
      }
    }
  }
}

TEST(Dash5V3Test, SlabSelectionsMatchContiguousReference) {
  TmpDir dir("v3");
  const Shape2D shape{13, 101};
  const std::vector<double> data = sample_data(shape);
  dash5_write(dir.file("v3.dh5"), v3_header(shape, {4, 32}, "shuffle+lz"),
              data);
  Dash5Header ref_header;
  ref_header.shape = shape;
  dash5_write(dir.file("ref.dh5"), ref_header, data);

  Dash5File v3(dir.file("v3.dh5"));
  Dash5File ref(dir.file("ref.dh5"));
  const Slab2D slabs[] = {
      {0, 0, 13, 101},  // everything
      {0, 0, 1, 1},     // single element
      {3, 30, 2, 5},    // interior of one tile
      {2, 20, 9, 60},   // spans several tiles both ways
      {12, 96, 1, 5},   // bottom-right edge (padded tiles)
      {0, 31, 13, 2},   // tall sliver across a tile boundary
  };
  for (const Slab2D& slab : slabs) {
    EXPECT_EQ(v3.read_slab(slab), ref.read_slab(slab)) << slab;
  }
}

TEST(Dash5V3Test, StreamWriterProducesByteIdenticalFiles) {
  // The band-streaming writer must emit exactly the bytes of the
  // one-shot writer: same tile order, same codec output, same index.
  TmpDir dir("v3");
  const Shape2D shape{22, 130};  // partial final band, partial edge tiles
  const std::vector<double> data = sample_data(shape);
  const Dash5Header header = v3_header(shape, {8, 64}, "shuffle+lz");
  dash5_write(dir.file("oneshot.dh5"), header, data);

  Dash5StreamWriter w(dir.file("stream.dh5"), header);
  // Deliberately ragged appends: rows split mid-band and mid-row.
  std::size_t off = 0;
  const std::size_t pieces[] = {1, 129, 260, 7, 1000, 463};
  for (const std::size_t n : pieces) {
    w.append(std::span<const double>(data).subspan(off, n));
    off += n;
  }
  w.append(std::span<const double>(data).subspan(off));
  w.close();

  EXPECT_EQ(slurp(dir.file("stream.dh5")), slurp(dir.file("oneshot.dh5")));
}

TEST(Dash5V3Test, StreamWriterStillRefusesChunkedWithoutCodec) {
  TmpDir dir("v3");
  Dash5Header h = v3_header({4, 8}, {2, 4}, "none");
  EXPECT_TRUE(h.codec.empty());
  EXPECT_THROW(Dash5StreamWriter w(dir.file("x.dh5"), h), InvalidArgument);
}

TEST(Dash5V3Test, CodecWithContiguousLayoutIsRefused) {
  TmpDir dir("v3");
  Dash5Header h = v3_header({4, 8}, {2, 4}, "lz");
  h.layout = Layout::kContiguous;
  const std::vector<double> data(h.shape.size(), 1.0);
  EXPECT_THROW(dash5_write(dir.file("x.dh5"), h, data), InvalidArgument);
}

TEST(Dash5V3Test, ChunkIndexAccountsForEveryTile) {
  TmpDir dir("v3");
  const Shape2D shape{10, 100};  // 3x4 grid under 4x32 tiles
  dash5_write(dir.file("x.dh5"), v3_header(shape, {4, 32}, "shuffle+lz"),
              sample_data(shape));
  Dash5File f(dir.file("x.dh5"));
  ASSERT_EQ(f.chunk_index().size(), 12u);
  const std::uint64_t raw_each = 4 * 32 * sizeof(double);
  for (const ChunkIndexEntry& e : f.chunk_index()) {
    EXPECT_EQ(e.raw_size, raw_each);
    EXPECT_LE(e.codec, 1);
    EXPECT_GT(e.csize, 0u);
  }
}

TEST(Dash5V3Test, IncompressibleChunksFallBackToRawStorage) {
  // White-noise doubles do not compress; every chunk must carry the
  // raw flag and the file must not blow up past raw size + overhead.
  TmpDir dir("v3");
  const Shape2D shape{8, 64};
  std::vector<double> data(shape.size());
  std::uint64_t s = 0x243F6A8885A308D3ull;
  for (auto& v : data) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::memcpy(&v, &s, sizeof v);
    v = static_cast<double>(s >> 11) * 0x1p-53;  // full-entropy mantissa
  }
  dash5_write(dir.file("noise.dh5"), v3_header(shape, {8, 64}, "delta+lz"),
              data);
  Dash5File f(dir.file("noise.dh5"));
  ASSERT_EQ(f.chunk_index().size(), 1u);
  EXPECT_EQ(f.chunk_index()[0].codec, 0);  // stored raw
  EXPECT_EQ(f.chunk_index()[0].csize, f.chunk_index()[0].raw_size);
  EXPECT_EQ(f.read_all(), data);
}

TEST(Dash5V3Test, V2OutputBytesAreUnchangedByTheV3Engine) {
  // Format stability: a v2 writer round must still emit version byte 2
  // and no chunk index footer, and read back with version() == 2.
  TmpDir dir("v3");
  const Shape2D shape{4, 8};
  Dash5Header h;
  h.shape = shape;
  h.layout = Layout::kChunked;
  h.chunk = {2, 4};
  const std::vector<double> data = sample_data(shape);
  dash5_write(dir.file("v2.dh5"), h, data);

  const std::vector<char> bytes = slurp(dir.file("v2.dh5"));
  ASSERT_GE(bytes.size(), 16u);
  EXPECT_EQ(std::memcmp(bytes.data(), "DASH5\0\0\2", 8), 0);
  // Exactly prelude + header + dataset: a footer would add 20+ bytes.
  std::uint64_t head_size = 0;
  std::memcpy(&head_size, bytes.data() + 8, sizeof head_size);
  EXPECT_EQ(bytes.size(), 16 + head_size + shape.size() * sizeof(double));

  Dash5File f(dir.file("v2.dh5"));
  EXPECT_EQ(f.version(), 2);
  EXPECT_TRUE(f.codec().empty());
  EXPECT_TRUE(f.chunk_index().empty());
  EXPECT_EQ(f.read_all(), data);
}

TEST(Dash5V3Test, VcaMergesV2AndV3MembersTransparently) {
  TmpDir dir("v3");
  const Shape2D shape{6, 40};
  const std::vector<double> a = sample_data(shape);
  std::vector<double> b = a;
  for (auto& v : b) v += 1.0;
  Dash5Header v2h;
  v2h.shape = shape;
  dash5_write(dir.file("m0.dh5"), v2h, a);
  dash5_write(dir.file("m1.dh5"), v3_header(shape, {3, 16}, "shuffle+lz"), b);

  const Vca vca = Vca::build({dir.file("m0.dh5"), dir.file("m1.dh5")});
  EXPECT_EQ(vca.shape(), (Shape2D{6, 80}));
  std::vector<double> expect(6 * 80);
  for (std::size_t r = 0; r < 6; ++r) {
    std::memcpy(expect.data() + r * 80, a.data() + r * 40,
                40 * sizeof(double));
    std::memcpy(expect.data() + r * 80 + 40, b.data() + r * 40,
                40 * sizeof(double));
  }
  EXPECT_EQ(vca.read_all(), expect);
  // A slab that straddles the member seam decodes from both engines.
  const std::vector<double> seam = vca.read_slab({2, 35, 3, 10});
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      EXPECT_EQ(seam[r * 10 + c], expect[(r + 2) * 80 + 35 + c]);
    }
  }
}

TEST(Dash5V3Test, RepeatedReadsHitTheChunkCache) {
  TmpDir dir("v3");
  const Shape2D shape{16, 256};
  dash5_write(dir.file("x.dh5"), v3_header(shape, {4, 64}, "shuffle+lz"),
              sample_data(shape));
  Dash5File f(dir.file("x.dh5"));
  const Slab2D slab{4, 64, 8, 128};
  const std::vector<double> first = f.read_slab(slab);
  const std::uint64_t hits0 = global_counters().get(counters::kIoCacheHits);
  const std::vector<double> second = f.read_slab(slab);
  EXPECT_EQ(first, second);
  // All four tiles of the window were cached by the first read.
  EXPECT_GE(global_counters().get(counters::kIoCacheHits), hits0 + 4);
}

TEST(Dash5V3Test, ClosingAFileEvictsItsTiles) {
  TmpDir dir("v3");
  const Shape2D shape{8, 128};
  dash5_write(dir.file("x.dh5"), v3_header(shape, {4, 32}, "lz"),
              sample_data(shape));
  const std::size_t entries0 = ChunkCache::global().entries();
  {
    Dash5File f(dir.file("x.dh5"));
    (void)f.read_all();
    EXPECT_GT(ChunkCache::global().entries(), entries0);
  }
  EXPECT_EQ(ChunkCache::global().entries(), entries0);
}

TEST(Dash5V3Test, SequentialScansIssuePrefetch) {
  TmpDir dir("v3");
  const Shape2D shape{64, 512};
  dash5_write(dir.file("x.dh5"), v3_header(shape, {8, 64}, "shuffle+lz"),
              sample_data(shape));
  Dash5File f(dir.file("x.dh5"));
  const std::uint64_t issued0 =
      global_counters().get(counters::kIoCachePrefetchIssued);
  // A strided full-width scan: after two equal steps the prefetcher
  // must start predicting the next window.
  std::vector<double> all;
  for (std::size_t r0 = 0; r0 < shape.rows; r0 += 8) {
    const std::vector<double> band = f.read_slab({r0, 0, 8, shape.cols});
    all.insert(all.end(), band.begin(), band.end());
  }
  EXPECT_EQ(all, sample_data(shape));
  EXPECT_GT(global_counters().get(counters::kIoCachePrefetchIssued), issued0);
}

TEST(Dash5V3Test, ReadsWorkWithTheCacheDisabled) {
  // Budget 0 turns every access into a decode; results must not change.
  TmpDir dir("v3");
  const Shape2D shape{9, 70};
  const std::vector<double> data = sample_data(shape);
  dash5_write(dir.file("x.dh5"), v3_header(shape, {4, 16}, "delta+lz"), data);
  const std::size_t budget0 = ChunkCache::global().budget();
  ChunkCache::global().set_budget(0);
  {
    Dash5File f(dir.file("x.dh5"));
    EXPECT_EQ(f.read_all(), data);
    const Dash5File again(dir.file("x.dh5"));
    EXPECT_EQ(f.read_slab({1, 3, 5, 50}), again.read_slab({1, 3, 5, 50}));
  }
  ChunkCache::global().set_budget(budget0);
}

TEST(Dash5V3Test, ReadHeaderSeesCodecWithoutTouchingData) {
  TmpDir dir("v3");
  const Shape2D shape{4, 32};
  dash5_write(dir.file("x.dh5"), v3_header(shape, {2, 16}, "shuffle+lz"),
              sample_data(shape));
  const Dash5Header h = Dash5File::read_header(dir.file("x.dh5"));
  EXPECT_EQ(h.codec.str(), "shuffle+lz");
  EXPECT_EQ(h.layout, Layout::kChunked);
  EXPECT_EQ(h.shape, shape);
}

}  // namespace
}  // namespace dassa::io
