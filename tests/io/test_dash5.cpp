// DASH5 container tests: round trips, metadata, hyperslabs, dtype
// conversion, corruption detection, I/O instrumentation.
#include "dassa/io/dash5.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <random>

#include "dassa/common/counters.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::io {
namespace {

using testing::TmpDir;

Dash5Header make_header(Shape2D shape, DType dtype = DType::kF64) {
  Dash5Header h;
  h.shape = shape;
  h.dtype = dtype;
  h.global.set_f64(meta::kSamplingFrequencyHz, 500.0);
  h.global.set(meta::kTimeStamp, "170620100545");
  h.global.set_i64(meta::kNumObjects, static_cast<std::int64_t>(shape.rows));
  for (std::size_t ch = 0; ch < shape.rows; ++ch) {
    ObjectMeta obj;
    obj.path = "/Measurement/" + std::to_string(ch + 1);
    obj.kv.set_i64("Array dimension", 1);
    h.objects.push_back(std::move(obj));
  }
  return h;
}

std::vector<double> make_data(Shape2D shape, std::uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  std::vector<double> data(shape.size());
  for (auto& v : data) v = dist(rng);
  return data;
}

TEST(Dash5Test, RoundTripF64) {
  TmpDir dir("dash5");
  const Shape2D shape{7, 13};
  const std::vector<double> data = make_data(shape);
  dash5_write(dir.file("a.dh5"), make_header(shape), data);

  Dash5File f(dir.file("a.dh5"));
  EXPECT_EQ(f.shape(), shape);
  EXPECT_EQ(f.dtype(), DType::kF64);
  EXPECT_EQ(f.read_all(), data);
}

TEST(Dash5Test, RoundTripF32LosesOnlyPrecision) {
  TmpDir dir("dash5");
  const Shape2D shape{3, 50};
  const std::vector<double> data = make_data(shape, 2);
  dash5_write(dir.file("b.dh5"), make_header(shape, DType::kF32), data);

  Dash5File f(dir.file("b.dh5"));
  EXPECT_EQ(f.dtype(), DType::kF32);
  const std::vector<double> back = f.read_all();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(back[i], data[i], 1e-6 * (1.0 + std::abs(data[i])));
  }
}

TEST(Dash5Test, MetadataRoundTrip) {
  TmpDir dir("dash5");
  const Shape2D shape{4, 5};
  const Dash5Header h = make_header(shape);
  dash5_write(dir.file("m.dh5"), h, make_data(shape));

  Dash5File f(dir.file("m.dh5"));
  EXPECT_EQ(f.global_meta().get_f64(meta::kSamplingFrequencyHz), 500.0);
  EXPECT_EQ(f.global_meta().get_or_throw(meta::kTimeStamp), "170620100545");
  ASSERT_EQ(f.objects().size(), 4u);
  EXPECT_EQ(f.objects()[2].path, "/Measurement/3");
  EXPECT_EQ(f.objects()[2].kv.get_i64("Array dimension"), 1);
}

TEST(Dash5Test, HeaderOnlyReadMatchesFullOpen) {
  TmpDir dir("dash5");
  const Shape2D shape{2, 9};
  dash5_write(dir.file("h.dh5"), make_header(shape), make_data(shape));
  const Dash5Header h = Dash5File::read_header(dir.file("h.dh5"));
  EXPECT_EQ(h.shape, shape);
  EXPECT_EQ(h.global.get_or_throw(meta::kTimeStamp), "170620100545");
}

TEST(Dash5Test, HyperslabReadsMatchFullRead) {
  TmpDir dir("dash5");
  const Shape2D shape{10, 20};
  const std::vector<double> data = make_data(shape, 3);
  dash5_write(dir.file("s.dh5"), make_header(shape), data);
  Dash5File f(dir.file("s.dh5"));

  for (const Slab2D slab :
       {Slab2D{0, 0, 10, 20}, Slab2D{2, 0, 3, 20}, Slab2D{0, 5, 10, 7},
        Slab2D{4, 3, 2, 6}, Slab2D{9, 19, 1, 1}}) {
    const std::vector<double> got = f.read_slab(slab);
    ASSERT_EQ(got.size(), slab.size());
    for (std::size_t r = 0; r < slab.row_cnt; ++r) {
      for (std::size_t c = 0; c < slab.col_cnt; ++c) {
        EXPECT_EQ(got[r * slab.col_cnt + c],
                  data[shape.at(slab.row_off + r, slab.col_off + c)])
            << slab.str();
      }
    }
  }
}

TEST(Dash5Test, SlabOutOfBoundsThrows) {
  TmpDir dir("dash5");
  const Shape2D shape{4, 4};
  dash5_write(dir.file("o.dh5"), make_header(shape), make_data(shape));
  Dash5File f(dir.file("o.dh5"));
  EXPECT_THROW((void)f.read_slab(Slab2D{0, 0, 5, 4}), InvalidArgument);
  EXPECT_THROW((void)f.read_slab(Slab2D{3, 3, 1, 2}), InvalidArgument);
}

TEST(Dash5Test, WriteRejectsMismatchedData) {
  TmpDir dir("dash5");
  EXPECT_THROW(
      dash5_write(dir.file("x.dh5"), make_header(Shape2D{2, 3}),
                  std::vector<double>(5, 0.0)),
      InvalidArgument);
}

TEST(Dash5Test, DetectsBadMagic) {
  TmpDir dir("dash5");
  {
    std::ofstream out(dir.file("bad.dh5"), std::ios::binary);
    out << "not a dash5 file at all, padding padding padding";
  }
  EXPECT_THROW(Dash5File f(dir.file("bad.dh5")), FormatError);
}

TEST(Dash5Test, DetectsHeaderCorruption) {
  TmpDir dir("dash5");
  const Shape2D shape{2, 3};
  dash5_write(dir.file("c.dh5"), make_header(shape), make_data(shape));
  // Flip one byte inside the header region (after the 16-byte prelude).
  {
    std::fstream f(dir.file("c.dh5"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30);
    char c;
    f.seekg(30);
    f.get(c);
    f.seekp(30);
    f.put(static_cast<char>(c ^ 0x5A));
  }
  EXPECT_THROW(Dash5File f(dir.file("c.dh5")), FormatError);
}

TEST(Dash5Test, DetectsTruncatedData) {
  TmpDir dir("dash5");
  const Shape2D shape{4, 100};
  dash5_write(dir.file("t.dh5"), make_header(shape), make_data(shape));
  std::filesystem::resize_file(dir.file("t.dh5"),
                               std::filesystem::file_size(dir.file("t.dh5")) -
                                   64);
  EXPECT_THROW(Dash5File f(dir.file("t.dh5")), FormatError);
}

TEST(Dash5Test, MissingFileThrowsIoError) {
  EXPECT_THROW(Dash5File f("/nonexistent/path/x.dh5"), IoError);
}

TEST(Dash5Test, FullWidthRowBlockIsOneReadCall) {
  TmpDir dir("dash5");
  const Shape2D shape{16, 64};
  dash5_write(dir.file("r.dh5"), make_header(shape), make_data(shape));
  Dash5File f(dir.file("r.dh5"));

  global_counters().reset();
  (void)f.read_slab(Slab2D{4, 0, 8, 64});
  EXPECT_EQ(global_counters().get(counters::kIoReadCalls), 1u);

  // Partial-width selection: one read per row (small-I/O pattern).
  global_counters().reset();
  (void)f.read_slab(Slab2D{0, 10, 8, 5});
  EXPECT_EQ(global_counters().get(counters::kIoReadCalls), 8u);
}

TEST(Dash5Test, EmptyObjectListIsFine) {
  TmpDir dir("dash5");
  Dash5Header h;
  h.shape = {2, 2};
  dash5_write(dir.file("e.dh5"), h, std::vector<double>{1, 2, 3, 4});
  Dash5File f(dir.file("e.dh5"));
  EXPECT_TRUE(f.objects().empty());
  EXPECT_TRUE(f.global_meta().empty());
}

}  // namespace
}  // namespace dassa::io
