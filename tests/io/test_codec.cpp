// Codec pipeline tests: every chain must round-trip bit-exactly over
// every element width, payload size (including 0, 1, and non-divisible
// tails), and data character (constant, ramp, random, quantized
// floats). Malformed encoded streams must come back as FormatError --
// the decoders run on attacker-controlled disk bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/io/codec.hpp"

namespace dassa::io {
namespace {

std::vector<std::byte> to_bytes(const std::vector<std::uint8_t>& v) {
  std::vector<std::byte> out(v.size());
  if (!v.empty()) std::memcpy(out.data(), v.data(), v.size());
  return out;
}

/// Deterministic payload generators, one per data character.
std::vector<std::byte> make_payload(const std::string& kind,
                                    std::size_t nbytes) {
  std::vector<std::uint8_t> v(nbytes);
  std::mt19937 rng(42);
  if (kind == "zeros") {
    // already zero
  } else if (kind == "ramp") {
    for (std::size_t i = 0; i < nbytes; ++i) {
      v[i] = static_cast<std::uint8_t>(i / 7);
    }
  } else if (kind == "random") {
    for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  } else if (kind == "quantized") {
    // Doubles snapped to a power-of-two LSB: low mantissa bytes are
    // zero, the realistic DAS-after-ADC case the codecs target.
    std::vector<double> d((nbytes + 7) / 8, 0.0);
    for (std::size_t i = 0; i < d.size(); ++i) {
      const double x = std::sin(static_cast<double>(i) * 0.05) * 100.0;
      d[i] = std::nearbyint(x * 128.0) / 128.0;
    }
    if (nbytes > 0) std::memcpy(v.data(), d.data(), nbytes);
  }
  return to_bytes(v);
}

const char* const kChains[] = {
    "none", "shuffle", "delta", "lz",
    "shuffle+lz", "delta+lz", "shuffle+delta+lz",
};
const char* const kKinds[] = {"zeros", "ramp", "random", "quantized"};
constexpr std::size_t kSizes[] = {0, 1, 3, 7, 8, 17, 64, 1000, 4096, 32771};

TEST(CodecRoundtripTest, EveryChainEverySizeEveryKindIsBitExact) {
  for (const char* chain : kChains) {
    const CodecSpec spec = CodecSpec::parse(chain);
    for (const std::size_t esize : {std::size_t{4}, std::size_t{8}}) {
      for (const char* kind : kKinds) {
        for (const std::size_t nbytes : kSizes) {
          const std::vector<std::byte> raw = make_payload(kind, nbytes);
          const std::vector<std::byte> enc = encode_chain(spec, raw, esize);
          const std::vector<std::byte> dec =
              decode_chain(spec, enc, esize, raw.size());
          ASSERT_EQ(dec, raw) << chain << " esize=" << esize << " " << kind
                              << " nbytes=" << nbytes;
        }
      }
    }
  }
}

TEST(CodecRoundtripTest, LzStreamEndingExactlyOnMatchRoundtrips) {
  // Regression: when the input ends exactly where a match ends, the
  // encoder must not emit a trailing empty literal token -- the decoder
  // stops at decoded_size and would report trailing garbage.
  std::vector<std::byte> block = make_payload("random", 32);
  std::vector<std::byte> raw;
  for (int rep = 0; rep < 4; ++rep) {
    raw.insert(raw.end(), block.begin(), block.end());
  }
  const CodecSpec spec = CodecSpec::parse("lz");
  const std::vector<std::byte> enc = encode_chain(spec, raw, 8);
  EXPECT_LT(enc.size(), raw.size());  // the repeats must actually match
  EXPECT_EQ(decode_chain(spec, enc, 8, raw.size()), raw);
}

TEST(CodecRoundtripTest, LongLiteralAndMatchRunsUseExtensionBytes) {
  // >15 literals and >18 match bytes exercise the 255-run length
  // extension on both sides of the token.
  std::vector<std::byte> raw = make_payload("random", 600);
  std::vector<std::byte> tail(raw.begin(), raw.begin() + 500);
  raw.insert(raw.end(), tail.begin(), tail.end());
  const CodecSpec spec = CodecSpec::parse("lz");
  const std::vector<std::byte> enc = encode_chain(spec, raw, 8);
  EXPECT_EQ(decode_chain(spec, enc, 8, raw.size()), raw);
}

TEST(CodecRoundtripTest, CompressibleDataActuallyShrinks) {
  const std::vector<std::byte> raw = make_payload("quantized", 32768);
  for (const char* chain : {"shuffle+lz", "delta+lz"}) {
    const CodecSpec spec = CodecSpec::parse(chain);
    const std::vector<std::byte> enc = encode_chain(spec, raw, 8);
    EXPECT_LT(enc.size(), raw.size() / 2)
        << chain << " only reached " << enc.size() << " of " << raw.size();
  }
}

// ---------------------------------------------------------------------
// Spec parsing and registry

TEST(CodecSpecTest, ParseAndStrRoundtrip) {
  EXPECT_TRUE(CodecSpec::parse("none").empty());
  EXPECT_EQ(CodecSpec::parse("none").str(), "none");
  const CodecSpec s = CodecSpec::parse("shuffle+lz");
  ASSERT_EQ(s.chain.size(), 2u);
  EXPECT_EQ(s.chain[0], CodecId::kShuffle);
  EXPECT_EQ(s.chain[1], CodecId::kLz);
  EXPECT_EQ(s.str(), "shuffle+lz");
  EXPECT_EQ(CodecSpec::parse("delta+lz").str(), "delta+lz");
}

TEST(CodecSpecTest, ParseRejectsUnknownStageAndOverlongChain) {
  EXPECT_THROW(CodecSpec::parse("gzip"), InvalidArgument);
  EXPECT_THROW(CodecSpec::parse("shuffle+"), InvalidArgument);
  EXPECT_THROW(CodecSpec::parse(""), InvalidArgument);
  EXPECT_THROW(CodecSpec::parse("lz+lz+lz+lz+lz+lz+lz+lz+lz"),
               InvalidArgument);
  // Exactly kMaxChain stages is allowed.
  EXPECT_EQ(CodecSpec::parse("lz+lz+lz+lz+lz+lz+lz+lz").chain.size(),
            CodecSpec::kMaxChain);
}

TEST(CodecSpecTest, RegistryFindsBuiltinsAndRejectsUnknown) {
  const CodecRegistry& reg = CodecRegistry::instance();
  for (const CodecId id :
       {CodecId::kNone, CodecId::kShuffle, CodecId::kDelta, CodecId::kLz}) {
    const Codec* stage = reg.find(id);
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(stage->id(), id);
    EXPECT_EQ(reg.find(std::string(stage->name())), stage);
  }
  EXPECT_EQ(reg.find(static_cast<CodecId>(200)), nullptr);
  EXPECT_EQ(reg.find(std::string("bogus")), nullptr);
}

TEST(CodecSpecTest, EncodeChainRejectsBadElementSize) {
  const std::vector<std::byte> raw(16);
  EXPECT_THROW((void)encode_chain(CodecSpec::parse("lz"), raw, 3),
               InvalidArgument);
  EXPECT_THROW((void)decode_chain(CodecSpec::parse("lz"), raw, 16, 16),
               InvalidArgument);
}

// ---------------------------------------------------------------------
// Hostile streams

class MalformedCodecTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedCodecTest, TruncatedStreamIsFormatError) {
  const CodecSpec spec = CodecSpec::parse(GetParam());
  const std::vector<std::byte> raw = make_payload("quantized", 4096);
  std::vector<std::byte> enc = encode_chain(spec, raw, 8);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, enc.size() / 2, enc.size() - 1}) {
    std::vector<std::byte> cut(enc.begin(),
                               enc.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)decode_chain(spec, cut, 8, raw.size()), FormatError)
        << GetParam() << " keep=" << keep;
  }
}

TEST_P(MalformedCodecTest, AppendedGarbageIsFormatError) {
  const CodecSpec spec = CodecSpec::parse(GetParam());
  const std::vector<std::byte> raw = make_payload("ramp", 1024);
  std::vector<std::byte> enc = encode_chain(spec, raw, 8);
  enc.push_back(std::byte{0x5A});
  EXPECT_THROW((void)decode_chain(spec, enc, 8, raw.size()), FormatError);
}

INSTANTIATE_TEST_SUITE_P(Chains, MalformedCodecTest,
                         ::testing::Values("delta", "lz", "shuffle+lz",
                                           "delta+lz"),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           for (auto& c : n) {
                             if (c == '+') c = '_';
                           }
                           return n;
                         });

TEST(MalformedCodecDirectTest, LzSizeHeaderBeyondBoundIsRejected) {
  const CodecSpec spec = CodecSpec::parse("lz");
  const std::vector<std::byte> raw = make_payload("ramp", 256);
  std::vector<std::byte> enc = encode_chain(spec, raw, 8);
  const std::uint64_t huge = 1ull << 60;  // allocation bomb if trusted
  std::memcpy(enc.data(), &huge, sizeof huge);
  EXPECT_THROW((void)decode_chain(spec, enc, 8, raw.size()), FormatError);
}

TEST(MalformedCodecDirectTest, LzOffsetOutsideWindowIsRejected) {
  // Hand-build: size 8, one sequence of 4 literals then a match whose
  // offset points before the start of the output.
  std::vector<std::byte> enc(8, std::byte{0});
  const std::uint64_t n = 8;
  std::memcpy(enc.data(), &n, sizeof n);
  enc.push_back(std::byte{0x40});  // 4 literals, match len 4
  for (int i = 0; i < 4; ++i) enc.push_back(std::byte{0xAB});
  const std::uint16_t offset = 9;  // > 4 bytes produced so far
  enc.resize(enc.size() + 2);
  std::memcpy(enc.data() + enc.size() - 2, &offset, sizeof offset);
  EXPECT_THROW((void)decode_chain(CodecSpec::parse("lz"), enc, 8, 8),
               FormatError);
}

TEST(MalformedCodecDirectTest, DeltaSizeMismatchIsRejected) {
  const CodecSpec spec = CodecSpec::parse("delta");
  const std::vector<std::byte> raw = make_payload("ramp", 256);
  std::vector<std::byte> enc = encode_chain(spec, raw, 8);
  // Claim one byte fewer than the varint payload actually decodes to.
  std::uint64_t n = 0;
  std::memcpy(&n, enc.data(), sizeof n);
  n -= 1;
  std::memcpy(enc.data(), &n, sizeof n);
  EXPECT_THROW((void)decode_chain(spec, enc, 8, raw.size()), FormatError);
}

TEST(CodecCountersTest, EncodeAndDecodeChargeIoCodecCounters) {
  const std::uint64_t enc0 =
      global_counters().get(counters::kIoCodecEncodeCalls);
  const std::uint64_t dec0 =
      global_counters().get(counters::kIoCodecDecodeCalls);
  const CodecSpec spec = CodecSpec::parse("shuffle+lz");
  const std::vector<std::byte> raw = make_payload("ramp", 512);
  const std::vector<std::byte> enc = encode_chain(spec, raw, 8);
  (void)decode_chain(spec, enc, 8, raw.size());
  EXPECT_EQ(global_counters().get(counters::kIoCodecEncodeCalls), enc0 + 1);
  EXPECT_EQ(global_counters().get(counters::kIoCodecDecodeCalls), dec0 + 1);
}

}  // namespace
}  // namespace dassa::io
