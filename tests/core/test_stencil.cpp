// Stencil tests: paper-notation offsets S(dt, dch), windows, row spans,
// ghost-zone bounds.
#include "dassa/core/stencil.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "dassa/common/error.hpp"

namespace dassa::core {
namespace {

/// 4x5 block, values = 10*row + col, no halo, covering a 4x5 global.
struct PlainFixture {
  Shape2D shape{4, 5};
  std::vector<double> data;
  PlainFixture() {
    data.resize(shape.size());
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 5; ++c) {
        data[shape.at(r, c)] =
            10.0 * static_cast<double>(r) + static_cast<double>(c);
      }
    }
  }
  [[nodiscard]] Stencil at(std::size_t r, std::size_t c) const {
    return Stencil(data.data(), shape, 0, r, c, shape);
  }
};

TEST(StencilTest, CurrentCellIsZeroOffsets) {
  PlainFixture fx;
  EXPECT_EQ(fx.at(2, 3)(0, 0), 23.0);
  EXPECT_EQ(fx.at(0, 0)(0, 0), 0.0);
}

TEST(StencilTest, FirstIndexMovesAlongTime) {
  // Paper notation: S(dt, dch); dt moves along the time (column) axis.
  PlainFixture fx;
  const Stencil s = fx.at(1, 2);
  EXPECT_EQ(s(1, 0), 13.0);
  EXPECT_EQ(s(-1, 0), 11.0);
  EXPECT_EQ(s(0, 1), 22.0);
  EXPECT_EQ(s(0, -1), 2.0);
  EXPECT_EQ(s(2, -1), 4.0);
}

TEST(StencilTest, ThreePointMovingAverageExample) {
  // The paper's Section II-B example: (S(-1) + S(0) + S(1)) / 3.
  PlainFixture fx;
  const Stencil s = fx.at(2, 2);
  const double avg = (s(-1, 0) + s(0, 0) + s(1, 0)) / 3.0;
  EXPECT_DOUBLE_EQ(avg, 22.0);
}

TEST(StencilTest, OutOfBlockAccessThrows) {
  PlainFixture fx;
  EXPECT_THROW((void)fx.at(0, 0)(-1, 0), InvalidArgument);
  EXPECT_THROW((void)fx.at(0, 0)(0, -1), InvalidArgument);
  EXPECT_THROW((void)fx.at(3, 4)(1, 0), InvalidArgument);
  EXPECT_THROW((void)fx.at(3, 4)(0, 1), InvalidArgument);
}

TEST(StencilTest, InBoundsMatchesAccessibility) {
  PlainFixture fx;
  const Stencil s = fx.at(1, 1);
  EXPECT_TRUE(s.in_bounds(-1, -1));
  EXPECT_TRUE(s.in_bounds(3, 2));
  EXPECT_FALSE(s.in_bounds(-2, 0));
  EXPECT_FALSE(s.in_bounds(0, -2));
  EXPECT_FALSE(s.in_bounds(4, 0));
  EXPECT_FALSE(s.in_bounds(0, 3));
}

TEST(StencilTest, WindowExtractsInclusiveRange) {
  PlainFixture fx;
  const Stencil s = fx.at(2, 2);
  EXPECT_EQ(s.window(-2, 2, 0),
            (std::vector<double>{20, 21, 22, 23, 24}));
  EXPECT_EQ(s.window(-1, 1, 1), (std::vector<double>{31, 32, 33}));
  EXPECT_THROW((void)s.window(1, -1, 0), InvalidArgument);
  EXPECT_THROW((void)s.window(-3, 0, 0), InvalidArgument);
}

TEST(StencilTest, RowSpanCoversWholeChannel) {
  PlainFixture fx;
  const Stencil s = fx.at(1, 3);
  const std::span<const double> row = s.row_span(0);
  ASSERT_EQ(row.size(), 5u);
  EXPECT_EQ(row[0], 10.0);
  EXPECT_EQ(row[4], 14.0);
  EXPECT_EQ(s.row_span(2)[0], 30.0);
  EXPECT_THROW((void)s.row_span(3), InvalidArgument);
}

TEST(StencilTest, GlobalCoordinatesAccountForBlockOffset) {
  // Block holding global rows 10..13 (row0 = 10), cursor on local row 2.
  PlainFixture fx;
  const Shape2D global{40, 5};
  const Stencil s(fx.data.data(), fx.shape, 10, 2, 4, global);
  EXPECT_EQ(s.channel(), 12u);
  EXPECT_EQ(s.time(), 4u);
  EXPECT_EQ(s.global_shape(), global);
}

TEST(StencilTest, GhostRowsAreReachableButNotOwned) {
  // Local block: 1 halo row above + 2 owned + 1 halo below.
  const Shape2D block{4, 3};
  std::vector<double> data(block.size());
  std::iota(data.begin(), data.end(), 0.0);
  // Owned local rows are 1..2; cursor on local row 1 = global row 5.
  const Stencil s(data.data(), block, 4, 1, 1, Shape2D{100, 3});
  EXPECT_EQ(s(0, -1), 1.0);   // halo above
  EXPECT_EQ(s(0, 2), 10.0);   // halo below
  EXPECT_THROW((void)s(0, -2), InvalidArgument);  // beyond halo
  EXPECT_EQ(s.channel(), 5u);
}

TEST(StencilTest, InBoundsRespectsGlobalEdge) {
  // Block rows map to global rows 98..99 of a 100-row array; the row
  // below the block is outside the global array too.
  const Shape2D block{2, 3};
  std::vector<double> data(block.size(), 0.0);
  const Stencil s(data.data(), block, 98, 1, 0, Shape2D{100, 3});
  EXPECT_TRUE(s.in_bounds(0, -1));
  EXPECT_FALSE(s.in_bounds(0, 1));
}

}  // namespace
}  // namespace dassa::core
