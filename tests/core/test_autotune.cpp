// Auto-tuner tests: cost model monotonicity, the existence of the
// Fig. 11 sweet spot, calibration sanity, input validation.
#include "dassa/core/autotune.hpp"

#include <gtest/gtest.h>

#include "dassa/io/array_source.hpp"

namespace dassa::core {
namespace {

ClusterSpec cori_like() {
  ClusterSpec c;
  c.max_nodes = 1456;
  c.cores_per_node = 8;
  return c;
}

/// A paper-scale workload: 11648 channels, 2880 files of ~700 MB.
WorkloadSpec paper_like(double seconds_per_channel) {
  WorkloadSpec w;
  w.data_shape = {11648, 2880UL * 30000UL};
  w.file_count = 2880;
  w.file_bytes = 700ULL * 1000 * 1000;
  w.work_units = 11648;
  w.seconds_per_unit = seconds_per_channel;
  return w;
}

TEST(AutotuneTest, ComputeShrinksWithNodes) {
  const ClusterSpec c = cori_like();
  const WorkloadSpec w = paper_like(2.0);
  const TunePoint p1 = predict(c, w, 1);
  const TunePoint p8 = predict(c, w, 8);
  const TunePoint p64 = predict(c, w, 64);
  EXPECT_GT(p1.compute_seconds, p8.compute_seconds);
  EXPECT_GT(p8.compute_seconds, p64.compute_seconds);
  // Near-perfect division: 8 nodes = ~8x fewer seconds.
  EXPECT_NEAR(p1.compute_seconds / p8.compute_seconds, 8.0, 0.5);
}

TEST(AutotuneTest, IoCostFlattensAtAggregateBandwidth) {
  // More nodes split a fixed aggregate storage bandwidth (the paper's
  // fixed Lustre storage targets), so the marginal I/O gain of more
  // nodes vanishes -- the Fig. 11 efficiency decay.
  const ClusterSpec c = cori_like();
  const WorkloadSpec w = paper_like(2.0);
  const double io_small = predict(c, w, 4).io_seconds;
  const double io_mid = predict(c, w, 256).io_seconds;
  const double io_huge = predict(c, w, 1456).io_seconds;
  EXPECT_GT(io_small, io_mid);  // scaling helps at first
  // Beyond the bandwidth-bound point, 5.7x more nodes buy < 25% less IO.
  EXPECT_GT(io_huge, 0.75 * io_mid);
  // The I/O *efficiency* t(1) / (N * t(N)) therefore decays hard.
  const double eff_mid = predict(c, w, 1).io_seconds / (256 * io_mid);
  const double eff_huge = predict(c, w, 1).io_seconds / (1456 * io_huge);
  EXPECT_LT(eff_huge, eff_mid);
}

TEST(AutotuneTest, RecommendationIsInteriorForPaperWorkload) {
  // The paper observed the best *efficiency* at 364 of 1456 nodes: an
  // interior point. The tuner's knee recommendation must likewise be
  // interior -- many nodes, but well short of the full allocation --
  // while the raw-fastest point may sit at the boundary.
  const ClusterSpec c = cori_like();
  const TuneResult r = autotune_nodes(c, paper_like(2.0));
  EXPECT_GT(r.recommended_nodes, 8);
  EXPECT_LT(r.recommended_nodes, 1456);
  EXPECT_LE(r.recommended_nodes, r.best_nodes);
  // The fastest point is the minimum of the sweep.
  for (const TunePoint& p : r.sweep) {
    EXPECT_LE(r.best_seconds, p.total() + 1e-12);
  }
  // Past the knee, the remaining speedup to the fastest point is small
  // relative to the node-count increase (that is what "knee" means).
  const double leftover = r.recommended_seconds / r.best_seconds;
  const double node_ratio = static_cast<double>(r.best_nodes) /
                            static_cast<double>(r.recommended_nodes);
  EXPECT_LT(leftover, node_ratio);
}

TEST(AutotuneTest, CheapComputePushesOptimumDown) {
  // If compute is nearly free, extra nodes only buy I/O overhead, so
  // the optimum shifts to fewer nodes.
  const ClusterSpec c = cori_like();
  const TuneResult heavy = autotune_nodes(c, paper_like(10.0));
  const TuneResult light = autotune_nodes(c, paper_like(0.001));
  EXPECT_LE(light.recommended_nodes, heavy.recommended_nodes);
}

TEST(AutotuneTest, RespectsClusterBound) {
  ClusterSpec c = cori_like();
  c.max_nodes = 16;
  const TuneResult r = autotune_nodes(c, paper_like(50.0));
  EXPECT_LE(r.best_nodes, 16);
  EXPECT_GE(r.best_nodes, 1);
}

TEST(AutotuneTest, ModesDifferInRankCount) {
  // MPI-per-core multiplies ranks; with direct-per-rank reads its I/O
  // model must exceed HAEE + comm-avoiding at the same node count.
  const ClusterSpec c = cori_like();
  WorkloadSpec hybrid = paper_like(2.0);
  WorkloadSpec mpi = hybrid;
  mpi.mode = EngineMode::kMpiPerCore;
  mpi.read = ReadMethod::kDirectPerRank;
  EXPECT_LT(predict(c, hybrid, 91).io_seconds,
            predict(c, mpi, 91).io_seconds);
}

TEST(AutotuneTest, ValidatesInputs) {
  const ClusterSpec c = cori_like();
  EXPECT_THROW((void)predict(c, paper_like(1.0), 0), InvalidArgument);
  WorkloadSpec empty = paper_like(1.0);
  empty.work_units = 0;
  EXPECT_THROW((void)autotune_nodes(c, empty), InvalidArgument);
}

TEST(AutotuneTest, CalibrationMeasuresRealWork) {
  // A deliberately heavy row UDF must calibrate to a larger per-unit
  // cost than a trivial one.
  const Shape2D shape{8, 2048};
  io::MemorySource src(shape, std::vector<double>(shape.size(), 1.0));

  const RowUdf cheap = [](const Stencil& s) {
    return std::vector<double>{s.row_span(0)[0]};
  };
  const RowUdf heavy = [](const Stencil& s) {
    const std::span<const double> row = s.row_span(0);
    double acc = 0.0;
    for (int rep = 0; rep < 200; ++rep) {
      for (double v : row) acc += v * v;
    }
    return std::vector<double>{acc};
  };
  const double t_cheap = calibrate_row_udf(src, cheap);
  const double t_heavy = calibrate_row_udf(src, heavy);
  EXPECT_GT(t_heavy, t_cheap);
  EXPECT_GE(t_cheap, 0.0);
}

TEST(AutotuneTest, WorkloadForRowsExtractsVcaGeometry) {
  // Exercised via a paper-like synthetic spec in test_pipelines-style
  // fixtures elsewhere; here check the field mapping on a tiny VCA.
  // (Built indirectly: workload_for_rows only reads shape/members.)
  WorkloadSpec w;
  w.data_shape = {4, 100};
  w.work_units = 4;
  EXPECT_EQ(w.data_shape.rows, w.work_units);
}

}  // namespace
}  // namespace dassa::core
