// HAEE engine tests: distributed execution must equal single-rank
// execution for both modes, halo exchange must deliver neighbour rows,
// and the hybrid/MPI configurations must expose the paper's I/O-call
// and memory-duplication structure.
#include "dassa/core/haee.hpp"

#include <gtest/gtest.h>

#include <random>

#include "dassa/common/counters.hpp"
#include "dassa/das/synth.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::core {
namespace {

using testing::TmpDir;

/// Write a small synthetic acquisition and return VCA + ground truth.
struct Fixture {
  io::Vca vca;
  Array2D truth;

  explicit Fixture(TmpDir& dir, std::size_t channels = 24,
                   std::size_t files = 3, double secs_per_file = 0.5) {
    das::SynthDas synth = das::SynthDas::fig1b_scene(channels, 100.0, 7);
    das::AcquisitionSpec spec;
    spec.dir = dir.str();
    spec.start = das::Timestamp::parse("170728224510");
    spec.file_count = files;
    spec.seconds_per_file = secs_per_file;
    spec.dtype = io::DType::kF64;
    spec.per_channel_metadata = false;
    const std::vector<std::string> paths = das::write_acquisition(synth, spec);
    vca = io::Vca::build(paths);
    truth = Array2D(vca.shape(), vca.read_all());
  }
};

/// Clamped 3x3 cross average: needs a 1-channel halo.
double cross_udf(const Stencil& s) {
  double sum = s(0, 0);
  double n = 1.0;
  for (const auto& [dt, dch] :
       {std::pair{-1, 0}, std::pair{1, 0}, std::pair{0, -1},
        std::pair{0, 1}}) {
    if (s.in_bounds(dt, dch)) {
      sum += s(dt, dch);
      n += 1.0;
    }
  }
  return sum / n;
}

class HaeeModeTest
    : public ::testing::TestWithParam<std::tuple<EngineMode, int, int>> {};

TEST_P(HaeeModeTest, DistributedMatchesSingleRank) {
  const auto [mode, nodes, cores] = GetParam();
  TmpDir dir("haee");
  Fixture fx(dir);

  // Reference: single rank, serial.
  const Array2D ref =
      apply_cells_serial(LocalBlock::whole(fx.truth), cross_udf);

  EngineConfig config;
  config.nodes = nodes;
  config.cores_per_node = cores;
  config.mode = mode;
  config.halo_channels = 1;
  const EngineReport report = run_cells(
      config, fx.vca, [](const RankContext&) { return ScalarUdf(cross_udf); });

  EXPECT_EQ(report.world_size, config.world_size());
  ASSERT_EQ(report.output.shape, ref.shape);
  for (std::size_t i = 0; i < ref.data.size(); ++i) {
    ASSERT_NEAR(report.output.data[i], ref.data[i], 1e-12) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HaeeModeTest,
    ::testing::Values(
        std::make_tuple(EngineMode::kHybrid, 1, 1),
        std::make_tuple(EngineMode::kHybrid, 1, 4),
        std::make_tuple(EngineMode::kHybrid, 3, 2),
        std::make_tuple(EngineMode::kHybrid, 4, 3),
        std::make_tuple(EngineMode::kMpiPerCore, 2, 2),
        std::make_tuple(EngineMode::kMpiPerCore, 3, 2)));

TEST(HaeeTest, BothReadMethodsGiveSameOutput) {
  TmpDir dir("haee");
  Fixture fx(dir);
  EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  config.halo_channels = 1;

  config.read_method = ReadMethod::kCommunicationAvoiding;
  const EngineReport a = run_cells(
      config, fx.vca, [](const RankContext&) { return ScalarUdf(cross_udf); });
  config.read_method = ReadMethod::kCollectivePerFile;
  const EngineReport b = run_cells(
      config, fx.vca, [](const RankContext&) { return ScalarUdf(cross_udf); });
  EXPECT_EQ(a.output, b.output);
}

TEST(HaeeTest, HybridIssuesFewerIoCallsThanMpiPerCore) {
  // Paper Section VI-C: with k cores per node, MPI-per-core issues ~k
  // times the I/O calls of HAEE.
  TmpDir dir("haee");
  Fixture fx(dir, 32, 4, 0.3);

  // Each engine uses its natural read pattern: HAEE reads once per
  // node (communication-avoiding); original ArrayUDF has every
  // core-rank issue its own requests against every file.
  auto run_and_count = [&](EngineMode mode, ReadMethod read) {
    EngineConfig config;
    config.nodes = 2;
    config.cores_per_node = 4;
    config.mode = mode;
    config.read_method = read;
    config.halo_channels = 1;
    global_counters().reset();
    (void)run_cells(config, fx.vca, [](const RankContext&) {
      return ScalarUdf(cross_udf);
    });
    return global_counters().get(counters::kIoReadCalls);
  };

  const std::uint64_t hybrid_calls = run_and_count(
      EngineMode::kHybrid, ReadMethod::kCommunicationAvoiding);
  const std::uint64_t mpi_calls =
      run_and_count(EngineMode::kMpiPerCore, ReadMethod::kDirectPerRank);
  // 8 ranks x 4 files of direct reads vs 4 whole-file reads: the gap is
  // roughly the cores-per-node factor the paper reports.
  EXPECT_GT(mpi_calls, 4 * hybrid_calls);
}

TEST(HaeeTest, DirectPerRankReadGivesSameOutput) {
  TmpDir dir("haee");
  Fixture fx(dir);
  EngineConfig config;
  config.nodes = 2;
  config.cores_per_node = 2;
  config.halo_channels = 1;
  config.read_method = ReadMethod::kCommunicationAvoiding;
  const EngineReport a = run_cells(
      config, fx.vca, [](const RankContext&) { return ScalarUdf(cross_udf); });
  config.read_method = ReadMethod::kDirectPerRank;
  const EngineReport b = run_cells(
      config, fx.vca, [](const RankContext&) { return ScalarUdf(cross_udf); });
  EXPECT_EQ(a.output, b.output);
}

TEST(HaeeTest, MemoryModelScalesWithRanksPerNode) {
  TmpDir dir("haee");
  Fixture fx(dir);
  const std::size_t extra = 1000;

  auto peak = [&](EngineMode mode) {
    EngineConfig config;
    config.nodes = 2;
    config.cores_per_node = 4;
    config.mode = mode;
    return run_rows(config, fx.vca,
                    [](const RankContext&) {
                      return RowUdf([](const Stencil& s) {
                        return std::vector<double>{s.row_span(0)[0]};
                      });
                    },
                    extra)
        .modeled_peak_bytes_per_node;
  };
  // MPI-per-core: 4 ranks per node each holding block+extra; hybrid
  // holds one larger block once. The duplicated `extra` makes the
  // per-node total strictly larger at equal data size.
  const auto hybrid = peak(EngineMode::kHybrid);
  const auto mpi = peak(EngineMode::kMpiPerCore);
  EXPECT_GT(mpi, hybrid / 4 + 3 * extra);
}

TEST(HaeeTest, StagesAreReported) {
  TmpDir dir("haee");
  Fixture fx(dir);
  EngineConfig config;
  config.nodes = 2;
  config.cores_per_node = 2;
  const EngineReport report = run_cells(
      config, fx.vca, [](const RankContext&) {
        return ScalarUdf([](const Stencil& s) { return s(0, 0); });
      });
  EXPECT_GT(report.stages.get("read"), 0.0);
  EXPECT_GT(report.stages.get("compute"), 0.0);
  EXPECT_GT(report.stages.get("write"), 0.0);
}

TEST(HaeeTest, NoGatherLeavesOutputEmpty) {
  TmpDir dir("haee");
  Fixture fx(dir);
  EngineConfig config;
  config.nodes = 2;
  config.cores_per_node = 1;
  config.gather_output = false;
  const EngineReport report = run_cells(
      config, fx.vca, [](const RankContext&) {
        return ScalarUdf([](const Stencil& s) { return s(0, 0); });
      });
  EXPECT_TRUE(report.output.data.empty());
}

TEST(HaeeTest, OversizedHaloIsRejected) {
  TmpDir dir("haee");
  Fixture fx(dir, 8, 2, 0.3);  // 8 channels
  EngineConfig config;
  config.nodes = 4;  // 2 rows per rank
  config.cores_per_node = 1;
  config.halo_channels = 3;  // > 8/4
  EXPECT_THROW(
      (void)run_cells(config, fx.vca,
                      [](const RankContext&) {
                        return ScalarUdf(
                            [](const Stencil& s) { return s(0, 0); });
                      }),
      InvalidArgument);
}

TEST(BuildLocalBlockTest, HaloRowsComeFromNeighbours) {
  // 3 ranks x 2 rows, halo 1: middle rank must see rows 1..4.
  const Shape2D global{6, 4};
  Array2D data(global);
  for (std::size_t i = 0; i < data.data.size(); ++i) {
    data.data[i] = static_cast<double>(i);
  }
  mpi::Runtime::run(3, [&](mpi::Comm& comm) {
    const Range rows = even_chunk(6, 3, static_cast<std::size_t>(comm.rank()));
    io::ParallelReadResult read;
    read.rows = rows;
    read.shape = {rows.size(), 4};
    read.data.assign(
        data.data.begin() + static_cast<std::ptrdiff_t>(rows.begin * 4),
        data.data.begin() + static_cast<std::ptrdiff_t>(rows.end * 4));

    const LocalBlock block = build_local_block(comm, read, global, 1);
    if (comm.rank() == 1) {
      ASSERT_EQ(block.block_shape, (Shape2D{4, 4}));
      EXPECT_EQ(block.global_row0, 1u);
      EXPECT_EQ(block.data.front(), data.at(1, 0));
      EXPECT_EQ(block.data.back(), data.at(4, 3));
    } else {
      ASSERT_EQ(block.block_shape, (Shape2D{3, 4}));  // edge ranks
    }
    // Owned region always maps to the right global rows.
    EXPECT_EQ(block.global_row0 + block.owned_local.begin, rows.begin);
  });
}


TEST(HaeeTest, OverlapReadHaloMatchesExchange) {
  TmpDir dir("haee");
  Fixture fx(dir);
  EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  config.halo_channels = 1;

  config.halo_mode = HaloMode::kExchange;
  const EngineReport a = run_cells(
      config, fx.vca, [](const RankContext&) { return ScalarUdf(cross_udf); });
  config.halo_mode = HaloMode::kOverlapRead;
  const EngineReport b = run_cells(
      config, fx.vca, [](const RankContext&) { return ScalarUdf(cross_udf); });
  EXPECT_EQ(a.output, b.output);
}

TEST(HaeeTest, OverlapReadTradesMessagesForReads) {
  TmpDir dir("haee");
  Fixture fx(dir, 32, 4, 0.3);

  auto run_mode = [&](HaloMode halo) {
    EngineConfig config;
    config.nodes = 4;
    config.cores_per_node = 1;
    config.halo_channels = 2;
    config.halo_mode = halo;
    config.gather_output = false;
    global_counters().reset();
    const EngineReport r = run_cells(config, fx.vca, [](const RankContext&) {
      return ScalarUdf(cross_udf);
    });
    return std::pair{global_counters().get(counters::kIoReadCalls),
                     r.comm.p2p_sends};
  };
  const auto [reads_ex, msgs_ex] = run_mode(HaloMode::kExchange);
  const auto [reads_ov, msgs_ov] = run_mode(HaloMode::kOverlapRead);
  EXPECT_GT(reads_ov, reads_ex);  // overlap pays extra reads...
  EXPECT_LT(msgs_ov, msgs_ex);    // ...to avoid halo messages
}

TEST(HaeeTest, DistributedWriteMatchesGatheredOutput) {
  TmpDir dir("haee");
  Fixture fx(dir);
  EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  config.halo_channels = 1;
  config.output_path = dir.file("engine_out.dh5");
  const EngineReport report = run_cells(
      config, fx.vca, [](const RankContext&) { return ScalarUdf(cross_udf); });

  io::Dash5File written(config.output_path);
  EXPECT_EQ(written.shape(), report.output.shape);
  EXPECT_EQ(written.read_all(), report.output.data);
  // The output carries the input's global metadata.
  EXPECT_EQ(written.global_meta().get_or_throw(io::meta::kTimeStamp),
            "170728224510");
}

TEST(HaeeTest, DistributedWriteWorksForRowUdfOutputs) {
  // Row UDFs change the output width; the writer must agree on it.
  TmpDir dir("haee");
  Fixture fx(dir);
  EngineConfig config;
  config.nodes = 4;
  config.cores_per_node = 1;
  config.output_path = dir.file("rows_out.dh5");
  const EngineReport report = run_rows(
      config, fx.vca,
      [](const RankContext&) {
        return RowUdf([](const Stencil& s) {
          const std::span<const double> row = s.row_span(0);
          double acc = 0.0;
          for (double v : row) acc += v;
          return std::vector<double>{acc, acc * 2.0, acc * 3.0};
        });
      });
  io::Dash5File written(config.output_path);
  EXPECT_EQ(written.shape(), (Shape2D{fx.vca.shape().rows, 3}));
  EXPECT_EQ(written.read_all(), report.output.data);
}

}  // namespace
}  // namespace dassa::core
