// Apply engine tests: all backends (serial, pool-MT Algorithm 1,
// direct-MT ablation, OpenMP) must agree with each other on cell and
// row UDFs, including blocks with ghost rows.
#include "dassa/core/apply.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace dassa::core {
namespace {

Array2D random_array(Shape2D shape, std::uint64_t seed = 3) {
  Array2D a(shape);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  for (auto& v : a.data) v = dist(rng);
  return a;
}

/// Three-point moving average in time with edge clamping -- the paper's
/// introductory Stencil example, made edge-safe.
double moving_avg_udf(const Stencil& s) {
  const double left = s.in_bounds(-1, 0) ? s(-1, 0) : s(0, 0);
  const double right = s.in_bounds(1, 0) ? s(1, 0) : s(0, 0);
  return (left + s(0, 0) + right) / 3.0;
}

TEST(ApplySerialTest, MovingAverageMatchesNaive) {
  const Array2D a = random_array({4, 16});
  const Array2D out =
      apply_cells_serial(LocalBlock::whole(a), moving_avg_udf);
  ASSERT_EQ(out.shape, a.shape);
  for (std::size_t r = 0; r < a.shape.rows; ++r) {
    for (std::size_t c = 0; c < a.shape.cols; ++c) {
      const double left = c > 0 ? a.at(r, c - 1) : a.at(r, c);
      const double right = c + 1 < a.shape.cols ? a.at(r, c + 1) : a.at(r, c);
      EXPECT_NEAR(out.at(r, c), (left + a.at(r, c) + right) / 3.0, 1e-12);
    }
  }
}

class ApplyBackendTest : public ::testing::TestWithParam<int> {};

TEST_P(ApplyBackendTest, AllBackendsMatchSerial) {
  const int threads = GetParam();
  const Array2D a = random_array({7, 33});
  const LocalBlock block = LocalBlock::whole(a);
  const Array2D ref = apply_cells_serial(block, moving_avg_udf);

  ThreadPool pool(static_cast<std::size_t>(threads));
  EXPECT_EQ(apply_cells_mt(block, moving_avg_udf, pool), ref);
  EXPECT_EQ(apply_cells_mt_direct(block, moving_avg_udf, pool), ref);
  EXPECT_EQ(apply_cells_omp(block, moving_avg_udf, threads), ref);
}

INSTANTIATE_TEST_SUITE_P(Threads, ApplyBackendTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(ApplyMtTest, ResultOrderIsDeterministic) {
  // The prefix merge must place every thread's chunk at the right
  // offset regardless of completion order: value = linear cell index.
  const Shape2D shape{5, 101};
  Array2D a(shape);
  const LocalBlock block = LocalBlock::whole(a);
  const ScalarUdf idx_udf = [&shape](const Stencil& s) {
    return static_cast<double>(s.channel() * shape.cols + s.time());
  };
  ThreadPool pool(4);
  for (int rep = 0; rep < 5; ++rep) {
    const Array2D out = apply_cells_mt(block, idx_udf, pool);
    for (std::size_t i = 0; i < out.data.size(); ++i) {
      ASSERT_EQ(out.data[i], static_cast<double>(i));
    }
  }
}

TEST(ApplyTest, GhostRowsVisibleButNotIterated) {
  // 2 owned rows + 1 halo on each side; the UDF sums the channel
  // neighbours, which must read halo values, and the output has only
  // the owned rows.
  const Shape2D block_shape{4, 3};
  LocalBlock block;
  block.block_shape = block_shape;
  block.data.resize(block_shape.size());
  for (std::size_t i = 0; i < block.data.size(); ++i) {
    block.data[i] = static_cast<double>(i);
  }
  block.global_row0 = 9;              // halo row 0 is global row 9
  block.owned_local = Range{1, 3};    // owned global rows 10..11
  block.global_shape = {100, 3};

  const ScalarUdf udf = [](const Stencil& s) { return s(0, -1) + s(0, 1); };
  const Array2D out = apply_cells_serial(block, udf);
  ASSERT_EQ(out.shape, (Shape2D{2, 3}));
  // Owned row 0 (local 1): up = local 0, down = local 2.
  EXPECT_EQ(out.at(0, 0), block.data[0] + block.data[6]);
  EXPECT_EQ(out.at(1, 2), block.data[5] + block.data[11]);
}

TEST(ApplyRowsTest, RowUdfRunsOncePerOwnedChannel) {
  const Array2D a = random_array({6, 20});
  const LocalBlock block = LocalBlock::whole(a);
  // Output: [mean, max] per channel.
  const RowUdf udf = [](const Stencil& s) -> std::vector<double> {
    const std::span<const double> row = s.row_span(0);
    double mean = 0.0;
    double mx = -1e300;
    for (double v : row) {
      mean += v;
      mx = std::max(mx, v);
    }
    return {mean / static_cast<double>(row.size()), mx};
  };
  const Array2D out = apply_rows_serial(block, udf);
  ASSERT_EQ(out.shape, (Shape2D{6, 2}));
  for (std::size_t r = 0; r < 6; ++r) {
    double mean = 0.0;
    double mx = -1e300;
    for (double v : a.row(r)) {
      mean += v;
      mx = std::max(mx, v);
    }
    EXPECT_NEAR(out.at(r, 0), mean / 20.0, 1e-12);
    EXPECT_EQ(out.at(r, 1), mx);
  }
}

TEST(ApplyRowsTest, BackendsMatchAndLengthsEnforced) {
  const Array2D a = random_array({9, 17});
  const LocalBlock block = LocalBlock::whole(a);
  const RowUdf udf = [](const Stencil& s) -> std::vector<double> {
    const std::span<const double> row = s.row_span(0);
    std::vector<double> out(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) out[i] = 2.0 * row[i];
    return out;
  };
  const Array2D ref = apply_rows_serial(block, udf);
  ThreadPool pool(3);
  EXPECT_EQ(apply_rows_mt(block, udf, pool), ref);
  EXPECT_EQ(apply_rows_omp(block, udf, 3), ref);

  // Inconsistent lengths must be rejected.
  const RowUdf bad = [](const Stencil& s) -> std::vector<double> {
    return std::vector<double>(s.channel() % 2 + 1, 0.0);
  };
  EXPECT_THROW((void)apply_rows_serial(block, bad), InvalidArgument);
}

TEST(ApplyTest, ValidatesBlockConsistency) {
  LocalBlock block;
  block.block_shape = {2, 3};
  block.data.resize(5);  // wrong size
  block.owned_local = Range{0, 2};
  block.global_shape = {2, 3};
  EXPECT_THROW(
      (void)apply_cells_serial(block, [](const Stencil&) { return 0.0; }),
      InvalidArgument);
}

TEST(ApplyTest, EmptyOwnedRegionGivesEmptyOutput) {
  LocalBlock block;
  block.block_shape = {2, 3};
  block.data.resize(6, 0.0);
  block.owned_local = Range{1, 1};  // nothing owned
  block.global_shape = {2, 3};
  const Array2D out =
      apply_cells_serial(block, [](const Stencil&) { return 1.0; });
  EXPECT_EQ(out.shape.rows, 0u);
  EXPECT_TRUE(out.data.empty());
}

}  // namespace
}  // namespace dassa::core
