// Concurrency stress tests for ThreadPool + HAEE row-partitioned
// Apply, written to be run under -fsanitize=thread (scripts/check.sh
// tsan preset) but cheap enough to stay in the plain tier-1 suite.
//
// The interesting shared state is (a) the FFT plan cache -- a
// read-mostly std::shared_mutex map hit by every ApplyMT thread of
// every MiniMPI rank-thread at once, with misses racing to insert --
// and (b) the global counter registry, which the engine's haee.*
// counters and the dsp cache statistics update concurrently. PR 1's
// TSan coverage exercised the FFT engine alone; these tests drive the
// same state through the full engine stack.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/common/thread_pool.hpp"
#include "dassa/core/haee.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/dsp/fft.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::core {
namespace {

using testing::TmpDir;

struct Fixture {
  io::Vca vca;
  Array2D truth;

  explicit Fixture(TmpDir& dir, std::size_t channels, std::size_t files,
                   double secs_per_file) {
    das::SynthDas synth = das::SynthDas::fig1b_scene(channels, 100.0, 7);
    das::AcquisitionSpec spec;
    spec.dir = dir.str();
    spec.start = das::Timestamp::parse("170728224510");
    spec.file_count = files;
    spec.seconds_per_file = secs_per_file;
    spec.dtype = io::DType::kF64;
    spec.per_channel_metadata = false;
    const std::vector<std::string> paths = das::write_acquisition(synth, spec);
    vca = io::Vca::build(paths);
    truth = Array2D(vca.shape(), vca.read_all());
  }
};

/// Row UDF that leans on the FFT plan cache: a full-row transform (one
/// shared plan, all threads hit it) plus a channel-dependent prefix
/// transform (several sizes, so cold-start insertions race under the
/// cache's exclusive lock). Returns a short spectral fingerprint.
RowUdf fft_row_udf() {
  return [](const Stencil& s) {
    const std::span<const double> row = s.row_span(0);
    const std::vector<dsp::cplx> full = dsp::rfft_half(row);
    // 4 distinct prefix lengths spread across channels (kept >= 8 so
    // Bluestein vs radix-2 both appear).
    const std::size_t prefix = row.size() / 2 + (s.channel() % 4);
    const std::vector<dsp::cplx> part =
        dsp::rfft_half(row.subspan(0, prefix));
    return std::vector<double>{std::abs(full[0]), std::abs(full[1]),
                               std::abs(part[0]), std::abs(part[1])};
  };
}

TEST(HaeeStressTest, ConcurrentRowApplySharesPlanCacheSafely) {
  TmpDir dir("haee_stress");
  Fixture fx(dir, 32, 2, 0.4);

  // Reference: serial, single rank.
  const Array2D ref = apply_rows_serial(LocalBlock::whole(fx.truth),
                                        fft_row_udf());

  global_counters().reset();
  EngineConfig config;
  config.nodes = 4;
  config.cores_per_node = 4;  // 4 rank-threads x 4 pool threads
  config.mode = EngineMode::kHybrid;
  const EngineReport report = run_rows(
      config, fx.vca, [](const RankContext&) { return fft_row_udf(); });

  ASSERT_EQ(report.output.shape, ref.shape);
  for (std::size_t i = 0; i < ref.data.size(); ++i) {
    ASSERT_DOUBLE_EQ(report.output.data[i], ref.data[i]) << "i=" << i;
  }
  // The engine's own counters were bumped from inside the run.
  EXPECT_EQ(global_counters().get(counters::kHaeeRuns), 1u);
  EXPECT_EQ(global_counters().get(counters::kHaeeRanksLaunched), 4u);
}

TEST(HaeeStressTest, RepeatedHybridRunsWithHaloTraffic) {
  // Back-to-back engine runs with halo exchange: rank threads send and
  // receive ghost rows while pool threads transform; the haee.* halo
  // counter is updated from every rank concurrently.
  TmpDir dir("haee_stress");
  Fixture fx(dir, 24, 2, 0.3);
  global_counters().reset();

  EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  config.mode = EngineMode::kHybrid;
  config.halo_channels = 1;

  Array2D first;
  for (int round = 0; round < 3; ++round) {
    const EngineReport report = run_rows(
        config, fx.vca, [](const RankContext&) { return fft_row_udf(); });
    if (round == 0) {
      first = report.output;
    } else {
      ASSERT_EQ(report.output, first) << "round " << round;
    }
  }
  EXPECT_EQ(global_counters().get(counters::kHaeeRuns), 3u);
  // 3 ranks, interior rank exchanges both ways: 4 per run.
  EXPECT_EQ(global_counters().get(counters::kHaeeHaloExchanges), 12u);
}

TEST(HaeeStressTest, ThreadPoolHammersPlanCacheAndCounters) {
  // Pure ThreadPool stress, no engine: every pool thread transforms a
  // rotating set of lengths (shared-lock hits + racing insertions) and
  // bumps the same counter. Any lost update or data race shows up as a
  // wrong count / TSan report.
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 256;
  std::atomic<std::size_t> ok{0};
  global_counters().reset();

  pool.parallel_for(kTasks, [&](std::size_t, std::size_t begin,
                                std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t n = 64 + (i % 7) * 13;  // 7 lengths, mixed radix
      std::vector<double> x(n);
      for (std::size_t j = 0; j < n; ++j) {
        x[j] = static_cast<double>((i + j) % 17) - 8.0;
      }
      const std::vector<dsp::cplx> spec = dsp::rfft_half(x);
      if (spec.size() == n / 2 + 1) ok.fetch_add(1);
      global_counters().add(counters::kHaeeRanksLaunched);
    }
  });
  pool.wait_idle();
  EXPECT_EQ(ok.load(), kTasks);
  EXPECT_EQ(global_counters().get(counters::kHaeeRanksLaunched), kTasks);
}

}  // namespace
}  // namespace dassa::core
