// DASSA_DEBUG_BOUNDS checked accessors.
//
// This binary is compiled with DASSA_DEBUG_BOUNDS defined on the
// target (see tests/CMakeLists.txt), so the checks are exercised by a
// plain `ctest` run even when the rest of the build has the mode off.
// All checked types are header-only, so the define fully controls the
// behaviour seen here.
#include <gtest/gtest.h>

#include "dassa/core/array.hpp"
#include "dassa/core/stencil.hpp"

namespace dassa::core {
namespace {

#if !defined(DASSA_DEBUG_BOUNDS)
#error "test_bounds must be compiled with DASSA_DEBUG_BOUNDS"
#endif

TEST(DebugBounds, Shape2DAtChecksBothAxes) {
  const Shape2D s{3, 5};
  EXPECT_EQ(s.at(2, 4), 2 * 5 + 4);
  EXPECT_THROW((void)s.at(3, 0), InvalidArgument);
  EXPECT_THROW((void)s.at(0, 5), InvalidArgument);
}

TEST(DebugBounds, Shape2DMessageNamesCoordinates) {
  const Shape2D s{2, 2};
  try {
    (void)s.at(7, 1);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("(7,1)"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("[2 x 2]"), std::string::npos)
        << e.what();
  }
}

TEST(DebugBounds, Array2DAtChecked) {
  Array2D a(Shape2D{2, 3}, 1.0);
  EXPECT_EQ(a.at(1, 2), 1.0);
  a.at(1, 2) = 4.0;
  EXPECT_EQ(a.at(1, 2), 4.0);
  EXPECT_THROW((void)a.at(2, 0), InvalidArgument);
  EXPECT_THROW(a.at(0, 3) = 0.0, InvalidArgument);
  const Array2D& ca = a;
  EXPECT_THROW((void)ca.at(2, 0), InvalidArgument);
}

TEST(DebugBounds, Array2DRowChecked) {
  Array2D a(Shape2D{2, 3}, 0.0);
  EXPECT_EQ(a.row(1).size(), 3u);
  EXPECT_THROW((void)a.row(2), InvalidArgument);
  const Array2D& ca = a;
  EXPECT_THROW((void)ca.row(5), InvalidArgument);
}

TEST(DebugBounds, Array2DRowOfZeroWidthArrayIsFine) {
  Array2D a(Shape2D{2, 0});
  EXPECT_EQ(a.row(0).size(), 0u);
  EXPECT_EQ(a.row(1).size(), 0u);
  EXPECT_THROW((void)a.row(2), InvalidArgument);
}

TEST(DebugBounds, StencilCursorInsideBlockIsFine) {
  const std::vector<double> block(12, 0.0);
  const Shape2D bs{3, 4};
  const Shape2D global{3, 4};
  const Stencil s(block.data(), bs, 0, 1, 2, global);
  EXPECT_EQ(s.channel(), 1u);
  EXPECT_EQ(s.time(), 2u);
}

TEST(DebugBounds, StencilCursorOutsideBlockThrows) {
  const std::vector<double> block(12, 0.0);
  const Shape2D bs{3, 4};
  const Shape2D global{3, 4};
  EXPECT_THROW(Stencil(block.data(), bs, 0, 3, 0, global), InvalidArgument);
  EXPECT_THROW(Stencil(block.data(), bs, 0, 0, 4, global), InvalidArgument);
}

TEST(DebugBounds, StencilCursorPastGlobalArrayThrows) {
  const std::vector<double> block(12, 0.0);
  const Shape2D bs{3, 4};
  const Shape2D global{4, 4};
  // Local row 2 with the block anchored at global row 2 would be
  // global row 4 of a 4-row array.
  EXPECT_THROW(Stencil(block.data(), bs, 2, 2, 0, global), InvalidArgument);
}

TEST(DebugBounds, StencilNullBlockThrows) {
  EXPECT_THROW(Stencil(nullptr, Shape2D{1, 1}, 0, 0, 0, Shape2D{1, 1}),
               InvalidArgument);
}

// The always-on ghost-zone contract is unchanged by the mode: relative
// access past the block still throws, exactly as in release builds.
TEST(DebugBounds, GhostZoneContractStillHolds) {
  const std::vector<double> block = {1, 2, 3, 4, 5, 6};
  const Shape2D bs{2, 3};
  const Stencil s(block.data(), bs, 0, 0, 1, Shape2D{2, 3});
  EXPECT_EQ(s(0, 0), 2.0);
  EXPECT_EQ(s(1, 1), 6.0);
  EXPECT_THROW((void)s(0, -1), InvalidArgument);
  EXPECT_THROW((void)s(2, 0), InvalidArgument);
}

}  // namespace
}  // namespace dassa::core
