// Concurrency tests for the FFT engine: the plan cache is a shared
// read-mostly structure hit simultaneously by every ApplyMT/HAEE
// worker, and each thread owns a thread_local workspace. These tests
// hammer both from a pool and check the numerical results against a
// single-threaded reference; run them under -DDASSA_SANITIZE=thread to
// turn latent races into failures.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <vector>

#include "dassa/common/thread_pool.hpp"
#include "dassa/dsp/fft.hpp"
#include "dassa/dsp/stats.hpp"

namespace dassa::dsp {
namespace {

std::vector<double> make_signal(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

TEST(FftThreadsTest, ConcurrentPlanLookupsAgreeWithReference) {
  // Sizes chosen so threads race to build the same plans: pow2, even
  // composite (packed real path), and primes (Bluestein + sub-plans).
  const std::vector<std::size_t> sizes{64, 100, 101, 250, 256, 499, 1000};
  std::vector<std::vector<double>> signals;
  std::vector<std::vector<cplx>> expected;
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    signals.push_back(make_signal(sizes[s], 1000 + s));
    expected.push_back(rfft_half(signals.back()));
  }

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRepsPerThread = 25;
  ThreadPool pool(kThreads);
  std::atomic<std::size_t> mismatches{0};
  pool.parallel_for(kThreads * kRepsPerThread,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        const std::size_t s = i % sizes.size();
                        const std::vector<cplx> got = rfft_half(signals[s]);
                        for (std::size_t k = 0; k < got.size(); ++k) {
                          if (std::abs(got[k] - expected[s][k]) > 1e-9) {
                            mismatches.fetch_add(1);
                          }
                        }
                      }
                    });
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(FftThreadsTest, RaceToBuildOnePlanYieldsOneInstance) {
  // A size nobody has requested yet in this process: every thread
  // arrives at a cold cache entry at once and exactly one build must
  // win, with all callers receiving the same immutable plan.
  constexpr std::size_t kColdSize = 7919;  // prime -> Bluestein chain
  constexpr std::size_t kThreads = 8;
  ThreadPool pool(kThreads);
  std::vector<std::shared_ptr<const FftPlan>> plans(kThreads);
  pool.parallel_for(kThreads,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        plans[i] = FftPlan::get(kColdSize);
                      }
                    });
  for (std::size_t i = 1; i < kThreads; ++i) {
    EXPECT_EQ(plans[i].get(), plans[0].get());
  }
  EXPECT_EQ(plans[0]->size(), kColdSize);
}

TEST(FftThreadsTest, RoundTripsStayExactUnderContention) {
  const std::vector<double> x = make_signal(750, 42);  // even non-pow2
  constexpr std::size_t kThreads = 6;
  ThreadPool pool(kThreads);
  std::atomic<std::size_t> failures{0};
  pool.parallel_for(kThreads * 20,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        const std::vector<double> back =
                            irfft_half(rfft_half(x), x.size());
                        for (std::size_t j = 0; j < x.size(); ++j) {
                          if (std::abs(back[j] - x[j]) > 1e-8) {
                            failures.fetch_add(1);
                          }
                        }
                      }
                    });
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace dassa::dsp
