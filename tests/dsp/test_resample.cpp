// Resampling tests: length contract, tone preservation, anti-aliasing,
// amplitude fidelity.
#include "dassa/dsp/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dassa/common/error.hpp"

namespace dassa::dsp {
namespace {

std::vector<double> tone(std::size_t n, double cycles_per_sample,
                         double amp = 1.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * cycles_per_sample *
                          static_cast<double>(i));
  }
  return x;
}

TEST(ResampleTest, OutputLengthIsCeilRatio) {
  const std::vector<double> x(1000, 1.0);
  EXPECT_EQ(resample(x, 1, 2).size(), 500u);
  EXPECT_EQ(resample(x, 1, 3).size(), 334u);  // ceil(1000/3)
  EXPECT_EQ(resample(x, 2, 1).size(), 2000u);
  EXPECT_EQ(resample(x, 3, 2).size(), 1500u);
  EXPECT_EQ(resample(x, 1, 1).size(), 1000u);
}

TEST(ResampleTest, IdentityWhenFactorsEqual) {
  const std::vector<double> x{1.0, -2.0, 3.0, 0.5};
  const std::vector<double> y = resample(x, 7, 7);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(ResampleTest, EmptyInputGivesEmptyOutput) {
  const std::vector<double> x;
  EXPECT_TRUE(resample(x, 1, 4).empty());
}

TEST(ResampleTest, RejectsZeroFactors) {
  const std::vector<double> x(10, 1.0);
  EXPECT_THROW((void)resample(x, 0, 2), InvalidArgument);
  EXPECT_THROW((void)resample(x, 2, 0), InvalidArgument);
}

TEST(ResampleTest, ConstantSignalStaysConstant) {
  const std::vector<double> x(500, 3.0);
  const std::vector<double> y = resample(x, 1, 4);
  // DC gain is normalised; interior samples must equal the constant.
  for (std::size_t i = 20; i + 20 < y.size(); ++i) {
    EXPECT_NEAR(y[i], 3.0, 1e-6) << "i=" << i;
  }
}

TEST(ResampleTest, DownsamplePreservesLowFrequencyTone) {
  // 0.02 cycles/sample downsampled 4x -> 0.08 cycles/sample, still far
  // below the new Nyquist (0.5): waveform must be preserved.
  const std::size_t n = 2000;
  const double f0 = 0.02;
  const std::vector<double> x = tone(n, f0);
  const std::vector<double> y = resample(x, 1, 4);
  for (std::size_t i = 30; i + 30 < y.size(); ++i) {
    const double expect = std::sin(2.0 * std::numbers::pi * f0 *
                                   static_cast<double>(4 * i));
    EXPECT_NEAR(y[i], expect, 2e-3) << "i=" << i;
  }
}

TEST(ResampleTest, UpsamplePreservesTone) {
  const std::size_t n = 500;
  const double f0 = 0.05;
  const std::vector<double> x = tone(n, f0);
  const std::vector<double> y = resample(x, 3, 1);
  for (std::size_t i = 60; i + 60 < y.size(); ++i) {
    const double expect = std::sin(2.0 * std::numbers::pi * f0 *
                                   static_cast<double>(i) / 3.0);
    EXPECT_NEAR(y[i], expect, 2e-3) << "i=" << i;
  }
}

TEST(ResampleTest, AntiAliasRemovesAboveNewNyquist) {
  // 0.4 cycles/sample is above the post-decimation Nyquist of
  // 0.5/4 = 0.125: the anti-alias filter must kill it, not fold it.
  const std::size_t n = 4000;
  const std::vector<double> x = tone(n, 0.4, 5.0);
  const std::vector<double> y = resample(x, 1, 4);
  double max_mid = 0.0;
  for (std::size_t i = 50; i + 50 < y.size(); ++i) {
    max_mid = std::max(max_mid, std::abs(y[i]));
  }
  EXPECT_LT(max_mid, 0.05);
}

TEST(ResampleTest, MixedSignalKeepsOnlyLowBand) {
  const std::size_t n = 4000;
  std::vector<double> x = tone(n, 0.01, 2.0);
  const std::vector<double> high = tone(n, 0.45, 2.0);
  for (std::size_t i = 0; i < n; ++i) x[i] += high[i];
  const std::vector<double> y = resample(x, 1, 4);
  for (std::size_t i = 50; i + 50 < y.size(); ++i) {
    const double expect = 2.0 * std::sin(2.0 * std::numbers::pi * 0.01 *
                                         static_cast<double>(4 * i));
    EXPECT_NEAR(y[i], expect, 0.05) << "i=" << i;
  }
}

TEST(ResampleTest, FilterIsSymmetricWithUnitDc) {
  const std::vector<double> h = resample_filter(1, 4);
  ASSERT_EQ(h.size() % 2, 1u);
  for (std::size_t i = 0; i < h.size() / 2; ++i) {
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
  }
  double dc = 0.0;
  for (double v : h) dc += v;
  EXPECT_NEAR(dc, 1.0, 1e-9);  // up = 1
}

TEST(DecimateTest, MatchesResampleByOne) {
  const std::vector<double> x = tone(800, 0.03);
  const std::vector<double> a = decimate(x, 4);
  const std::vector<double> b = resample(x, 1, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace dassa::dsp
