// Tests for the extended DasLib kernels: Hilbert/envelope, STFT,
// STA/LTA triggering, median filtering / despiking.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dassa/common/error.hpp"
#include "dassa/dsp/hilbert.hpp"
#include "dassa/dsp/median.hpp"
#include "dassa/dsp/sta_lta.hpp"
#include "dassa/dsp/stft.hpp"

namespace dassa::dsp {
namespace {

// ---------- Hilbert / envelope --------------------------------------------

TEST(HilbertTest, AnalyticSignalRealPartIsInput) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> dist;
  std::vector<double> x(128);
  for (auto& v : x) v = dist(rng);
  const std::vector<cplx> z = analytic_signal(x);
  ASSERT_EQ(z.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(z[i].real(), x[i], 1e-9);
  }
}

TEST(HilbertTest, EnvelopeOfToneIsItsAmplitude) {
  const std::size_t n = 512;
  const double amp = 3.0;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::cos(2.0 * std::numbers::pi * 16.0 *
                          static_cast<double>(i) / static_cast<double>(n));
  }
  const std::vector<double> env = envelope(x);
  for (std::size_t i = 20; i + 20 < n; ++i) {
    EXPECT_NEAR(env[i], amp, 5e-3) << "i=" << i;
  }
}

TEST(HilbertTest, EnvelopeTracksAmplitudeModulation) {
  const std::size_t n = 1024;
  std::vector<double> x(n);
  std::vector<double> am(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    am[i] = 1.0 + 0.5 * std::sin(2.0 * std::numbers::pi * 3.0 * t);
    x[i] = am[i] * std::cos(2.0 * std::numbers::pi * 100.0 * t);
  }
  const std::vector<double> env = envelope(x);
  for (std::size_t i = 50; i + 50 < n; ++i) {
    EXPECT_NEAR(env[i], am[i], 0.05) << "i=" << i;
  }
}

TEST(HilbertTest, PhaseOfToneAdvancesLinearly) {
  const std::size_t n = 256;
  const double cycles = 8.0;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0 * std::numbers::pi * cycles *
                    static_cast<double>(i) / static_cast<double>(n));
  }
  const std::vector<double> phase = instantaneous_phase(x);
  const double step = 2.0 * std::numbers::pi * cycles / static_cast<double>(n);
  for (std::size_t i = 21; i + 20 < n; ++i) {
    EXPECT_NEAR(phase[i] - phase[i - 1], step, 0.02) << "i=" << i;
  }
}

TEST(HilbertTest, EmptyInput) {
  EXPECT_TRUE(analytic_signal(std::vector<double>{}).empty());
  EXPECT_TRUE(envelope(std::vector<double>{}).empty());
}

// ---------- STFT ------------------------------------------------------------

TEST(StftTest, FrameCountFollowsHop) {
  std::vector<double> x(1000, 1.0);
  StftParams p;
  p.window = 256;
  p.hop = 128;
  EXPECT_EQ(stft(x, p).size(), (1000 - 256) / 128 + 1u);
  p.hop = 256;
  EXPECT_EQ(stft(x, p).size(), 3u);  // non-overlapping
  EXPECT_TRUE(stft(std::vector<double>(100, 0.0), p).empty());  // too short
}

TEST(StftTest, ToneConcentratesInItsBin) {
  const double fs = 1000.0;
  const double f0 = 125.0;
  const std::size_t n = 4096;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * f0 * static_cast<double>(i) / fs);
  }
  StftParams p;
  p.window = 256;
  p.hop = 128;
  const Spectrogram spec = spectrogram(x, p);
  // f0 = 125 Hz at fs 1000, window 256 -> bin 32 exactly.
  const std::size_t expect_bin = 32;
  EXPECT_NEAR(bin_frequency_hz(expect_bin, p.window, fs), f0, 1e-9);
  for (std::size_t f = 0; f < spec.shape.rows; ++f) {
    std::size_t argmax = 0;
    for (std::size_t b = 1; b < spec.shape.cols; ++b) {
      if (spec.at(f, b) > spec.at(f, argmax)) argmax = b;
    }
    EXPECT_EQ(argmax, expect_bin) << "frame " << f;
  }
}

TEST(StftTest, ChirpMovesAcrossBins) {
  const std::size_t n = 8192;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    // Frequency sweeps from ~0.02 to ~0.2 cycles/sample.
    x[i] = std::sin(2.0 * std::numbers::pi * (0.02 + 0.09 * t) *
                    static_cast<double>(i));
  }
  StftParams p;
  p.window = 256;
  p.hop = 256;
  const Spectrogram spec = spectrogram(x, p);
  std::size_t first_peak = 0;
  std::size_t last_peak = 0;
  for (std::size_t b = 1; b < spec.shape.cols; ++b) {
    if (spec.at(0, b) > spec.at(0, first_peak)) first_peak = b;
    if (spec.at(spec.shape.rows - 1, b) >
        spec.at(spec.shape.rows - 1, last_peak)) {
      last_peak = b;
    }
  }
  EXPECT_GT(last_peak, first_peak + 10);  // clear upward sweep
}

TEST(StftTest, RejectsBadParams) {
  std::vector<double> x(10, 0.0);
  StftParams p;
  p.window = 1;
  EXPECT_THROW((void)stft(x, p), InvalidArgument);
  p.window = 4;
  p.hop = 0;
  EXPECT_THROW((void)stft(x, p), InvalidArgument);
  EXPECT_THROW((void)bin_frequency_hz(0, 1, 100.0), InvalidArgument);
}

// ---------- STA/LTA ----------------------------------------------------------

std::vector<double> noise_with_burst(std::size_t n, std::size_t burst_at,
                                     std::size_t burst_len, double burst_amp,
                                     std::uint64_t seed = 3) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  for (std::size_t i = burst_at; i < std::min(n, burst_at + burst_len); ++i) {
    x[i] += burst_amp * std::sin(0.7 * static_cast<double>(i));
  }
  return x;
}

TEST(StaLtaTest, RatioPeaksAtBurst) {
  const std::vector<double> x = noise_with_burst(5000, 3000, 200, 10.0);
  StaLtaParams p;
  p.sta = 50;
  p.lta = 1000;
  const std::vector<double> ratio = sta_lta(x, p);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < ratio.size(); ++i) {
    if (ratio[i] > ratio[argmax]) argmax = i;
  }
  EXPECT_GE(argmax, 3000u);
  EXPECT_LE(argmax, 3300u);
  EXPECT_GT(ratio[argmax], 5.0);
}

TEST(StaLtaTest, QuietNoiseStaysNearOne) {
  const std::vector<double> x = noise_with_burst(5000, 0, 0, 0.0);
  StaLtaParams p;
  p.sta = 50;
  p.lta = 1000;
  const std::vector<double> ratio = sta_lta(x, p);
  for (std::size_t i = p.lta; i < ratio.size(); ++i) {
    EXPECT_LT(ratio[i], 2.5) << "i=" << i;
  }
}

TEST(StaLtaTest, WarmupIsZeroAndShortInputsSafe) {
  const std::vector<double> x(100, 1.0);
  StaLtaParams p;
  p.sta = 10;
  p.lta = 50;
  const std::vector<double> ratio = sta_lta(x, p);
  for (std::size_t i = 0; i < p.lta; ++i) EXPECT_EQ(ratio[i], 0.0);
  const std::vector<double> tiny(10, 1.0);
  for (double v : sta_lta(tiny, p)) EXPECT_EQ(v, 0.0);
}

TEST(StaLtaTest, RejectsBadWindows) {
  const std::vector<double> x(10, 0.0);
  EXPECT_THROW((void)sta_lta(x, StaLtaParams{0, 5}), InvalidArgument);
  EXPECT_THROW((void)sta_lta(x, StaLtaParams{5, 5}), InvalidArgument);
}

TEST(TriggerTest, HysteresisPicksOneRegionPerBurst) {
  const std::vector<double> x = noise_with_burst(6000, 2000, 300, 12.0, 4);
  StaLtaParams p;
  p.sta = 40;
  p.lta = 800;
  const std::vector<double> ratio = sta_lta(x, p);
  const std::vector<Trigger> trig = pick_triggers(ratio, 4.0, 1.5);
  ASSERT_EQ(trig.size(), 1u);
  EXPECT_GE(trig[0].on, 2000u);
  EXPECT_LE(trig[0].on, 2200u);
  EXPECT_GT(trig[0].peak_ratio, 4.0);
  EXPECT_GT(trig[0].off, trig[0].on);
}

TEST(TriggerTest, OpenTriggerClosesAtEnd) {
  const std::vector<double> ratio{0.0, 5.0, 5.0, 5.0};
  const std::vector<Trigger> trig = pick_triggers(ratio, 4.0, 1.0);
  ASSERT_EQ(trig.size(), 1u);
  EXPECT_EQ(trig[0].off, 4u);
  EXPECT_THROW((void)pick_triggers(ratio, 1.0, 2.0), InvalidArgument);
}

// ---------- median / despike ---------------------------------------------------

TEST(MedianTest, KnownValues) {
  EXPECT_EQ(median({3.0}), 3.0);
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_THROW((void)median({}), InvalidArgument);
}

TEST(MedianFilterTest, RemovesImpulsePreservesStep) {
  std::vector<double> x(50, 1.0);
  for (std::size_t i = 25; i < 50; ++i) x[i] = 5.0;  // step
  x[10] = 100.0;                                     // spike
  const std::vector<double> y = median_filter(x, 2);
  EXPECT_EQ(y[10], 1.0);              // spike gone
  EXPECT_EQ(y[20], 1.0);              // plateau kept
  EXPECT_EQ(y[30], 5.0);              // step level kept
  EXPECT_EQ(y[24], 1.0);              // edge of step not smeared past
  EXPECT_EQ(y[25], 5.0);
}

TEST(DespikeTest, ReplacesOnlyOutliers) {
  std::mt19937_64 rng(9);
  std::normal_distribution<double> dist;
  std::vector<double> x(400);
  for (auto& v : x) v = dist(rng);
  std::vector<double> spiked = x;
  spiked[100] = 50.0;
  spiked[200] = -40.0;
  const std::vector<double> y = despike_mad(spiked, 10, 6.0);
  // The spikes are pulled back to local scale...
  EXPECT_LT(std::abs(y[100]), 5.0);
  EXPECT_LT(std::abs(y[200]), 5.0);
  // ...and almost everything else is untouched.
  std::size_t changed = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] != spiked[i]) ++changed;
  }
  EXPECT_LE(changed, 8u);
}

TEST(DespikeTest, ConstantSignalUntouched) {
  const std::vector<double> x(64, 2.0);
  EXPECT_EQ(despike_mad(x, 5, 4.0), x);
  EXPECT_THROW((void)despike_mad(x, 5, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace dassa::dsp
