// FFT unit + property tests: known transforms, round trips, Parseval,
// linearity, power-of-two and Bluestein paths.
#include "dassa/dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <span>

#include "dassa/dsp/stats.hpp"

namespace dassa::dsp {
namespace {

constexpr double kTol = 1e-9;

TEST(FftTest, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(FftTest, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(FftTest, EmptyInputIsNoop) {
  std::vector<cplx> x;
  fft_inplace(x);
  EXPECT_TRUE(x.empty());
  ifft_inplace(x);
  EXPECT_TRUE(x.empty());
}

TEST(FftTest, SingleElement) {
  std::vector<cplx> x{cplx(3.5, -1.25)};
  fft_inplace(x);
  EXPECT_NEAR(x[0].real(), 3.5, kTol);
  EXPECT_NEAR(x[0].imag(), -1.25, kTol);
}

TEST(FftTest, ImpulseGivesFlatSpectrum) {
  std::vector<cplx> x(8, cplx(0, 0));
  x[0] = cplx(1, 0);
  fft_inplace(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, kTol);
    EXPECT_NEAR(v.imag(), 0.0, kTol);
  }
}

TEST(FftTest, DcGivesImpulseAtZero) {
  std::vector<cplx> x(16, cplx(2.0, 0));
  fft_inplace(x);
  EXPECT_NEAR(x[0].real(), 32.0, kTol);
  for (std::size_t k = 1; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(x[k]), 0.0, kTol);
  }
}

TEST(FftTest, PureToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                    static_cast<double>(n));
  }
  const std::vector<cplx> spec = rfft(x);
  // A real cosine splits between bins +k and -k, each of magnitude n/2.
  EXPECT_NEAR(std::abs(spec[bin]), static_cast<double>(n) / 2.0, 1e-8);
  EXPECT_NEAR(std::abs(spec[n - bin]), static_cast<double>(n) / 2.0, 1e-8);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin || k == n - bin) continue;
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-8) << "bin " << k;
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(n * 977 + 13);
  std::normal_distribution<double> dist;
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(dist(rng), dist(rng));
  std::vector<cplx> y = x;
  fft_inplace(y);
  ifft_inplace(y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-8) << "n=" << n << " i=" << i;
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-8);
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(n * 31 + 7);
  std::normal_distribution<double> dist;
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(dist(rng), dist(rng));
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft_inplace(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-7 * (1.0 + time_energy));
}

// Cover radix-2 sizes, primes (pure Bluestein), and composites.
INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17,
                                           31, 32, 60, 97, 100, 128, 243, 256,
                                           499, 512, 1000, 1024));

TEST(FftTest, LinearityOnBluesteinPath) {
  const std::size_t n = 30;  // non-power-of-two
  std::mt19937_64 rng(99);
  std::normal_distribution<double> dist;
  std::vector<cplx> a(n);
  std::vector<cplx> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = cplx(dist(rng), dist(rng));
    b[i] = cplx(dist(rng), dist(rng));
  }
  std::vector<cplx> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  const std::vector<cplx> fa = fft(a);
  const std::vector<cplx> fb = fft(b);
  const std::vector<cplx> fsum = fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const cplx expect = 2.0 * fa[i] + 3.0 * fb[i];
    EXPECT_NEAR(std::abs(fsum[i] - expect), 0.0, 1e-7);
  }
}

TEST(FftTest, BluesteinMatchesNaiveDft) {
  const std::size_t n = 23;  // prime: must use Bluestein
  std::mt19937_64 rng(5);
  std::normal_distribution<double> dist;
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(dist(rng), dist(rng));

  std::vector<cplx> naive(n, cplx(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * j) /
                           static_cast<double>(n);
      naive[k] += x[j] * cplx(std::cos(angle), std::sin(angle));
    }
  }
  const std::vector<cplx> fast = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fast[k] - naive[k]), 0.0, 1e-7) << "bin " << k;
  }
}

TEST(FftTest, RfftOfRealSignalIsConjugateSymmetric) {
  std::mt19937_64 rng(17);
  std::normal_distribution<double> dist;
  std::vector<double> x(40);
  for (auto& v : x) v = dist(rng);
  const std::vector<cplx> spec = rfft(x);
  for (std::size_t k = 1; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(spec[k] - std::conj(spec[x.size() - k])), 0.0, 1e-8);
  }
}

TEST(FftTest, IrfftRealRoundTrip) {
  std::mt19937_64 rng(23);
  std::normal_distribution<double> dist;
  std::vector<double> x(50);
  for (auto& v : x) v = dist(rng);
  const std::vector<double> back = irfft_real(rfft(x));
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-8);
  }
}

/// Reference O(n^2) DFT of a real signal, first n/2 + 1 bins.
std::vector<cplx> naive_half_dft(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n / 2 + 1, cplx(0, 0));
  for (std::size_t k = 0; k < out.size(); ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * j) /
                           static_cast<double>(n);
      out[k] += x[j] * cplx(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

class RfftHalf : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RfftHalf, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(n * 131 + 3);
  std::normal_distribution<double> dist;
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  const std::vector<cplx> fast = rfft_half(x);
  const std::vector<cplx> naive = naive_half_dft(x);
  ASSERT_EQ(fast.size(), n / 2 + 1);
  for (std::size_t k = 0; k < fast.size(); ++k) {
    EXPECT_NEAR(std::abs(fast[k] - naive[k]), 0.0,
                1e-8 * (1.0 + static_cast<double>(n)))
        << "n=" << n << " bin " << k;
  }
}

TEST_P(RfftHalf, IrfftHalfRoundTrips) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(n * 7 + 11);
  std::normal_distribution<double> dist;
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  const std::vector<double> back = irfft_half(rfft_half(x), n);
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-8) << "n=" << n << " i=" << i;
  }
}

// n = 1 and 2 (degenerate), even packed path, odd fallback, primes,
// powers of two, and even-but-not-pow2 composites.
INSTANTIATE_TEST_SUITE_P(Sizes, RfftHalf,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 17, 23,
                                           30, 50, 64, 100, 101, 128, 250,
                                           256));

TEST(FftTest, RfftMatchesRfftHalfPlusMirror) {
  std::mt19937_64 rng(41);
  std::normal_distribution<double> dist;
  std::vector<double> x(96);
  for (auto& v : x) v = dist(rng);
  const std::vector<cplx> full = rfft(x);
  const std::vector<cplx> half = rfft_half(x);
  for (std::size_t k = 0; k < half.size(); ++k) {
    EXPECT_NEAR(std::abs(full[k] - half[k]), 0.0, 1e-10);
  }
  for (std::size_t k = half.size(); k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(full[k] - std::conj(half[x.size() - k])), 0.0,
                1e-10);
  }
}

TEST(FftTest, RfftHalfBatchMatchesPerRow) {
  const std::size_t rows = 5;
  const std::size_t cols = 60;
  std::mt19937_64 rng(59);
  std::normal_distribution<double> dist;
  std::vector<double> data(rows * cols);
  for (auto& v : data) v = dist(rng);
  const std::vector<std::vector<cplx>> batch =
      rfft_half_batch(data, rows, cols);
  ASSERT_EQ(batch.size(), rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::vector<cplx> row = rfft_half(
        std::span<const double>(data.data() + r * cols, cols));
    ASSERT_EQ(batch[r].size(), row.size());
    for (std::size_t k = 0; k < row.size(); ++k) {
      EXPECT_NEAR(std::abs(batch[r][k] - row[k]), 0.0, 1e-10);
    }
  }
}

TEST(FftTest, SteadyStateTransformsAllocateNothing) {
  std::mt19937_64 rng(73);
  std::normal_distribution<double> dist;
  std::vector<double> x(1000);  // Bluestein path: the heaviest scratch use
  for (auto& v : x) v = dist(rng);
  // Warm up: builds the plan chain and grows this thread's workspace.
  (void)rfft_half(x);
  (void)irfft_half(rfft_half(x), x.size());
  const std::uint64_t before = dsp_stats().fft_bytes_allocated;
  for (std::size_t rep = 0; rep < 8; ++rep) {
    const std::vector<double> back = irfft_half(rfft_half(x), x.size());
    EXPECT_NEAR(back[rep], x[rep], 1e-8);
  }
  EXPECT_EQ(dsp_stats().fft_bytes_allocated, before)
      << "steady-state transforms must not grow plans or workspace";
}

TEST(FftTest, PlanCacheHitsOnRepeatedLookups) {
  const DspStats before = dsp_stats();
  const auto plan = FftPlan::get(4096);
  const auto again = FftPlan::get(4096);
  EXPECT_EQ(plan.get(), again.get());
  const DspStats after = dsp_stats();
  EXPECT_GE(after.fft_plan_hits, before.fft_plan_hits + 1);
}

}  // namespace
}  // namespace dassa::dsp
