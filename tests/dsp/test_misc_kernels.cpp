// Tests for interp1, windows, whitening and moving statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dassa/common/error.hpp"
#include "dassa/dsp/fft.hpp"
#include "dassa/dsp/interp.hpp"
#include "dassa/dsp/moving.hpp"
#include "dassa/dsp/whiten.hpp"
#include "dassa/dsp/window.hpp"

namespace dassa::dsp {
namespace {

// ---------- interp1 ------------------------------------------------------

TEST(Interp1Test, ExactAtSourcePoints) {
  const std::vector<double> x0{0.0, 1.0, 2.0, 4.0};
  const std::vector<double> y0{1.0, 3.0, 2.0, -1.0};
  const std::vector<double> y = interp1(x0, y0, x0);
  for (std::size_t i = 0; i < y0.size(); ++i) EXPECT_NEAR(y[i], y0[i], 1e-12);
}

TEST(Interp1Test, MidpointsAreAverages) {
  const std::vector<double> x0{0.0, 2.0, 4.0};
  const std::vector<double> y0{0.0, 4.0, 0.0};
  const std::vector<double> q{1.0, 3.0};
  const std::vector<double> y = interp1(x0, y0, q);
  EXPECT_NEAR(y[0], 2.0, 1e-12);
  EXPECT_NEAR(y[1], 2.0, 1e-12);
}

TEST(Interp1Test, ClampsOutsideRange) {
  const std::vector<double> x0{1.0, 2.0};
  const std::vector<double> y0{10.0, 20.0};
  const std::vector<double> q{-5.0, 0.99, 2.01, 100.0};
  const std::vector<double> y = interp1(x0, y0, q);
  EXPECT_EQ(y[0], 10.0);
  EXPECT_EQ(y[1], 10.0);
  EXPECT_EQ(y[2], 20.0);
  EXPECT_EQ(y[3], 20.0);
}

TEST(Interp1Test, RejectsBadInput) {
  const std::vector<double> inc{0.0, 1.0};
  const std::vector<double> y2{1.0, 2.0};
  const std::vector<double> q{0.5};
  EXPECT_THROW((void)interp1(std::vector<double>{1.0, 1.0}, y2, q),
               InvalidArgument);
  EXPECT_THROW((void)interp1(std::vector<double>{2.0, 1.0}, y2, q),
               InvalidArgument);
  EXPECT_THROW((void)interp1(inc, std::vector<double>{1.0}, q),
               InvalidArgument);
}

TEST(Interp1Test, UniformVariantMatchesGeneral) {
  const double dt = 0.25;
  std::vector<double> y0(40);
  std::vector<double> x0(40);
  for (std::size_t i = 0; i < y0.size(); ++i) {
    x0[i] = static_cast<double>(i) * dt;
    y0[i] = std::sin(0.3 * static_cast<double>(i));
  }
  std::vector<double> q;
  for (double t = -0.3; t < 10.5; t += 0.173) q.push_back(t);
  const std::vector<double> a = interp1(x0, y0, q);
  const std::vector<double> b = interp1_uniform(y0, dt, q);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-10) << "q=" << q[i];
  }
}

// ---------- windows ------------------------------------------------------

TEST(WindowTest, HannEndpointsAndPeak) {
  const std::vector<double> w = hann_window(9);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[4], 1.0, 1e-12);  // centre of odd-length window
}

TEST(WindowTest, AllWindowsAreSymmetricAndBounded) {
  for (std::size_t n : {2u, 5u, 16u, 33u}) {
    for (const auto& w :
         {hann_window(n), hamming_window(n), blackman_window(n),
          tukey_window(n, 0.5), kaiser_window(n, 6.0)}) {
      ASSERT_EQ(w.size(), n);
      for (std::size_t i = 0; i < n / 2; ++i) {
        EXPECT_NEAR(w[i], w[n - 1 - i], 1e-12);
      }
      for (double v : w) {
        EXPECT_GE(v, -1e-12);
        EXPECT_LE(v, 1.0 + 1e-12);
      }
    }
  }
}

TEST(WindowTest, TukeyLimits) {
  // alpha = 0 -> rectangular; alpha = 1 -> Hann.
  const std::vector<double> rect = tukey_window(16, 0.0);
  for (double v : rect) EXPECT_EQ(v, 1.0);
  const std::vector<double> tk = tukey_window(17, 1.0);
  const std::vector<double> hn = hann_window(17);
  for (std::size_t i = 0; i < tk.size(); ++i) {
    EXPECT_NEAR(tk[i], hn[i], 1e-9);
  }
  EXPECT_THROW((void)tukey_window(8, 1.5), InvalidArgument);
}

TEST(WindowTest, BesselI0KnownValues) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-14);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-12);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-9);
}

TEST(WindowTest, ApplyWindowMultiplies) {
  std::vector<double> x{2.0, 2.0, 2.0};
  const std::vector<double> w{0.0, 0.5, 1.0};
  apply_window(x, w);
  EXPECT_EQ(x[0], 0.0);
  EXPECT_EQ(x[1], 1.0);
  EXPECT_EQ(x[2], 2.0);
  std::vector<double> bad{1.0};
  EXPECT_THROW(apply_window(bad, w), InvalidArgument);
}

// ---------- whitening ----------------------------------------------------

TEST(WhitenTest, FlattensSpectrumOfDominantTone) {
  // A strong tone plus weak noise: after whitening, the tone's bin must
  // no longer dominate the amplitude spectrum.
  const std::size_t n = 256;
  std::mt19937_64 rng(8);
  std::normal_distribution<double> dist;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 50.0 * std::sin(2.0 * std::numbers::pi * 32.0 *
                           static_cast<double>(i) / static_cast<double>(n)) +
           0.5 * dist(rng);
  }
  auto ratio = [n](const std::vector<double>& sig) {
    const std::vector<cplx> spec = rfft(sig);
    double peak = 0.0;
    double mean = 0.0;
    for (std::size_t k = 1; k < n / 2; ++k) {
      peak = std::max(peak, std::abs(spec[k]));
      mean += std::abs(spec[k]);
    }
    return peak / (mean / static_cast<double>(n / 2 - 1));
  };
  const double before = ratio(x);
  const double after = ratio(spectral_whiten(x, 9));
  EXPECT_GT(before, 20.0);
  EXPECT_LT(after, before / 4.0);
}

TEST(WhitenTest, HandlesZeroSignal) {
  const std::vector<double> x(64, 0.0);
  const std::vector<double> y = spectral_whiten(x, 5);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(OneBitTest, SignsOnly) {
  const std::vector<double> x{3.0, -0.5, 0.0, 1e-9};
  const std::vector<double> y = one_bit(x);
  EXPECT_EQ(y[0], 1.0);
  EXPECT_EQ(y[1], -1.0);
  EXPECT_EQ(y[2], 0.0);
  EXPECT_EQ(y[3], 1.0);
}

TEST(RamNormalizeTest, UnitAmplitudeOutput) {
  std::vector<double> x(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = (i < 100 ? 1.0 : 10.0) * std::sin(0.7 * static_cast<double>(i));
  }
  const std::vector<double> y = ram_normalize(x, 10);
  // Both the quiet and loud halves must end up with comparable levels.
  double rms_a = 0.0;
  double rms_b = 0.0;
  for (std::size_t i = 20; i < 80; ++i) rms_a += y[i] * y[i];
  for (std::size_t i = 120; i < 180; ++i) rms_b += y[i] * y[i];
  EXPECT_NEAR(rms_a / rms_b, 1.0, 0.5);
}

// ---------- moving statistics --------------------------------------------

TEST(MovingTest, MeanOfConstantIsConstant) {
  const std::vector<double> x(20, 4.0);
  for (double v : moving_mean(x, 3)) EXPECT_NEAR(v, 4.0, 1e-12);
  for (double v : moving_rms(x, 3)) EXPECT_NEAR(v, 4.0, 1e-12);
}

TEST(MovingTest, MeanMatchesNaive) {
  std::mt19937_64 rng(14);
  std::normal_distribution<double> dist;
  std::vector<double> x(57);
  for (auto& v : x) v = dist(rng);
  const std::size_t half = 4;
  const std::vector<double> y = moving_mean(x, half);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(x.size(), i + half + 1);
    double expect = 0.0;
    for (std::size_t j = lo; j < hi; ++j) expect += x[j];
    expect /= static_cast<double>(hi - lo);
    EXPECT_NEAR(y[i], expect, 1e-10) << "i=" << i;
  }
}

TEST(MovingTest, AbsmaxMatchesNaive) {
  std::mt19937_64 rng(15);
  std::normal_distribution<double> dist;
  std::vector<double> x(64);
  for (auto& v : x) v = dist(rng);
  const std::size_t half = 5;
  const std::vector<double> y = moving_absmax(x, half);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(x.size() - 1, i + half);
    double expect = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) {
      expect = std::max(expect, std::abs(x[j]));
    }
    EXPECT_NEAR(y[i], expect, 1e-12) << "i=" << i;
  }
}

TEST(MovingTest, EmptyInput) {
  const std::vector<double> x;
  EXPECT_TRUE(moving_mean(x, 2).empty());
  EXPECT_TRUE(moving_absmax(x, 2).empty());
}

}  // namespace
}  // namespace dassa::dsp
