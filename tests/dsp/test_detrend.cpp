#include "dassa/dsp/detrend.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dassa::dsp {
namespace {

TEST(DetrendTest, RemovesExactLine) {
  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 3.0 + 0.25 * static_cast<double>(i);
  }
  const std::vector<double> y = detrend_linear(x);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(DetrendTest, PreservesResidualAroundLine) {
  // x = line + wiggle: detrend must return exactly the wiggle when the
  // wiggle is orthogonal to {1, t}.
  const std::size_t n = 101;
  std::vector<double> x(n);
  std::vector<double> wiggle(n);
  const double mid = static_cast<double>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double c = static_cast<double>(i) - mid;
    wiggle[i] = c * c - (mid * (mid + 1)) / 3.0;  // orthogonal to 1 and t
    x[i] = -2.0 + 0.1 * static_cast<double>(i) + wiggle[i];
  }
  const std::vector<double> y = detrend_linear(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], wiggle[i], 1e-8);
  }
}

TEST(DetrendTest, OutputIsZeroMeanAndTrendFree) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> dist;
  std::vector<double> x(257);
  for (auto& v : x) v = dist(rng) + 5.0;
  const std::vector<double> y = detrend_linear(x);
  double mean = 0.0;
  double slope_num = 0.0;
  const double mid = static_cast<double>(x.size() - 1) / 2.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    mean += y[i];
    slope_num += (static_cast<double>(i) - mid) * y[i];
  }
  EXPECT_NEAR(mean / static_cast<double>(y.size()), 0.0, 1e-10);
  EXPECT_NEAR(slope_num, 0.0, 1e-7);
}

TEST(DetrendTest, ConstantVariantRemovesMeanOnly) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = detrend_constant(x);
  EXPECT_NEAR(y[0], -1.5, 1e-12);
  EXPECT_NEAR(y[3], 1.5, 1e-12);
}

TEST(DetrendTest, DegenerateLengths) {
  std::vector<double> one{5.0};
  const std::vector<double> y1 = detrend_linear(one);
  EXPECT_NEAR(y1[0], 0.0, 1e-12);
  std::vector<double> empty;
  EXPECT_TRUE(detrend_linear(empty).empty());
}

TEST(DetrendTest, Idempotent) {
  std::mt19937_64 rng(11);
  std::normal_distribution<double> dist;
  std::vector<double> x(64);
  for (auto& v : x) v = dist(rng);
  const std::vector<double> once = detrend_linear(x);
  const std::vector<double> twice = detrend_linear(once);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(twice[i], once[i], 1e-10);
  }
}

}  // namespace
}  // namespace dassa::dsp
