// Welch PSD and coherence tests: tone localisation, variance (Parseval)
// accounting, coherence of shared vs independent signals, validation.
#include "dassa/dsp/welch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dassa/common/error.hpp"

namespace dassa::dsp {
namespace {

std::vector<double> gaussian(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

TEST(WelchTest, TonePeaksAtItsBin) {
  const double fs = 500.0;
  const double f0 = 62.5;  // exactly bin 32 for segment 256
  const std::size_t n = 8192;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * f0 * static_cast<double>(i) / fs);
  }
  WelchParams p;
  const std::vector<double> psd = welch_psd(x, fs, p);
  std::size_t argmax = 0;
  for (std::size_t b = 1; b < psd.size(); ++b) {
    if (psd[b] > psd[argmax]) argmax = b;
  }
  EXPECT_NEAR(welch_bin_hz(argmax, fs, p), f0, fs / 256.0);
}

TEST(WelchTest, PsdIntegralMatchesVariance) {
  // For white noise, sum(psd) * df ~ variance (Parseval under the
  // density normalisation).
  const double fs = 100.0;
  const std::vector<double> x = gaussian(65536, 3);
  double var = 0.0;
  for (double v : x) var += v * v;
  var /= static_cast<double>(x.size());

  WelchParams p;
  p.segment = 512;
  p.overlap = 256;
  const std::vector<double> psd = welch_psd(x, fs, p);
  double integral = 0.0;
  for (double v : psd) integral += v;
  integral *= fs / static_cast<double>(p.segment);
  EXPECT_NEAR(integral, var, 0.1 * var);
}

TEST(WelchTest, WhiteNoisePsdIsFlat) {
  const std::vector<double> x = gaussian(65536, 5);
  WelchParams p;
  p.segment = 256;
  p.overlap = 128;
  const std::vector<double> psd = welch_psd(x, 1.0, p);
  double lo = 1e300;
  double hi = 0.0;
  for (std::size_t b = 4; b + 4 < psd.size(); ++b) {
    lo = std::min(lo, psd[b]);
    hi = std::max(hi, psd[b]);
  }
  EXPECT_LT(hi / lo, 3.0);  // flat within averaging noise
}

TEST(WelchTest, Validation) {
  const std::vector<double> x(100, 0.0);
  WelchParams p;
  p.segment = 4;  // too small
  EXPECT_THROW((void)welch_psd(x, 10.0, p), InvalidArgument);
  p.segment = 64;
  p.overlap = 64;  // overlap == segment
  EXPECT_THROW((void)welch_psd(x, 10.0, p), InvalidArgument);
  p.overlap = 32;
  EXPECT_THROW((void)welch_psd(std::vector<double>(10, 0.0), 10.0, p),
               InvalidArgument);
  EXPECT_THROW((void)welch_psd(x, 0.0, p), InvalidArgument);
}

TEST(CoherenceTest, SharedSignalIsCoherentInItsBand) {
  const double fs = 200.0;
  const std::size_t n = 16384;
  std::vector<double> x = gaussian(n, 7);
  std::vector<double> y = gaussian(n, 8);
  // Shared 25 Hz tone on both, strong against the noise.
  for (std::size_t i = 0; i < n; ++i) {
    const double tone =
        4.0 * std::sin(2.0 * std::numbers::pi * 25.0 *
                       static_cast<double>(i) / fs);
    x[i] += tone;
    y[i] += tone;
  }
  WelchParams p;
  p.segment = 256;
  p.overlap = 128;
  const std::vector<double> coh = coherence(x, y, p);
  const auto tone_bin = static_cast<std::size_t>(25.0 / fs * 256.0);
  EXPECT_GT(coh[tone_bin], 0.9);
  // Away from the tone: independent noise, low coherence.
  double off_band = 0.0;
  for (std::size_t b = 80; b < 120; ++b) off_band += coh[b];
  EXPECT_LT(off_band / 40.0, 0.3);
}

TEST(CoherenceTest, IndependentNoiseIsIncoherent) {
  const std::vector<double> x = gaussian(16384, 11);
  const std::vector<double> y = gaussian(16384, 12);
  WelchParams p;
  p.segment = 256;
  p.overlap = 128;
  const std::vector<double> coh = coherence(x, y, p);
  double mean = 0.0;
  for (double v : coh) mean += v;
  mean /= static_cast<double>(coh.size());
  EXPECT_LT(mean, 0.15);
}

TEST(CoherenceTest, IdenticalSignalsFullyCoherent) {
  const std::vector<double> x = gaussian(4096, 13);
  WelchParams p;
  const std::vector<double> coh = coherence(x, x, p);
  for (std::size_t b = 1; b + 1 < coh.size(); ++b) {
    EXPECT_NEAR(coh[b], 1.0, 1e-9) << "bin " << b;
  }
}

TEST(CoherenceTest, BoundedInUnitInterval) {
  const std::vector<double> x = gaussian(4096, 14);
  std::vector<double> y = gaussian(4096, 15);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += 0.5 * x[i];
  WelchParams p;
  for (double v : coherence(x, y, p)) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST(CoherenceTest, RejectsSingleSegmentAndLengthMismatch) {
  WelchParams p;
  p.segment = 256;
  p.overlap = 0;
  const std::vector<double> x(256, 1.0);  // exactly one segment
  EXPECT_THROW((void)coherence(x, x, p), InvalidArgument);
  const std::vector<double> longer(512, 1.0);
  EXPECT_THROW((void)coherence(x, longer, p), InvalidArgument);
}

}  // namespace
}  // namespace dassa::dsp
