#include "dassa/dsp/correlate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <utility>

#include "dassa/common/error.hpp"

namespace dassa::dsp {
namespace {

TEST(AbscorrTest, IdenticalVectorsGiveOne) {
  const std::vector<double> a{1.0, -2.0, 3.0, 0.5};
  EXPECT_NEAR(abscorr(a, a), 1.0, 1e-12);
}

TEST(AbscorrTest, NegatedVectorGivesOne) {
  const std::vector<double> a{1.0, -2.0, 3.0};
  std::vector<double> b(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) b[i] = -a[i];
  EXPECT_NEAR(abscorr(a, b), 1.0, 1e-12);  // absolute correlation
}

TEST(AbscorrTest, OrthogonalVectorsGiveZero) {
  const std::vector<double> a{1.0, 0.0, -1.0, 0.0};
  const std::vector<double> b{0.0, 1.0, 0.0, -1.0};
  EXPECT_NEAR(abscorr(a, b), 0.0, 1e-12);
}

TEST(AbscorrTest, ScaleInvariant) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> dist;
  std::vector<double> a(50);
  std::vector<double> b(50);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
  }
  std::vector<double> a_scaled(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) a_scaled[i] = 42.0 * a[i];
  EXPECT_NEAR(abscorr(a, b), abscorr(a_scaled, b), 1e-12);
}

TEST(AbscorrTest, ZeroNormGivesZero) {
  const std::vector<double> a{0.0, 0.0, 0.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_EQ(abscorr(a, b), 0.0);
}

TEST(AbscorrTest, BoundedByOne) {
  std::mt19937_64 rng(9);
  std::normal_distribution<double> dist;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a(20);
    std::vector<double> b(20);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = dist(rng);
      b[i] = dist(rng);
    }
    const double c = abscorr(a, b);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
  }
}

TEST(AbscorrTest, RejectsLengthMismatch) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)abscorr(a, b), InvalidArgument);
}

TEST(AbscorrComplexTest, MatchesSelfAndPhaseRotation) {
  std::vector<cplx> a{{1, 2}, {3, -1}, {0, 4}};
  EXPECT_NEAR(abscorr(std::span<const cplx>(a), std::span<const cplx>(a)),
              1.0, 1e-12);
  // A global phase rotation must not change |cos(theta)|.
  const cplx phase = std::polar(1.0, 1.234);
  std::vector<cplx> b(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) b[i] = a[i] * phase;
  EXPECT_NEAR(abscorr(std::span<const cplx>(a), std::span<const cplx>(b)),
              1.0, 1e-12);
}

TEST(XcorrTest, MatchesNaiveCorrelation) {
  std::mt19937_64 rng(21);
  std::normal_distribution<double> dist;
  std::vector<double> a(17);
  std::vector<double> b(11);
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);

  const std::vector<double> fast = xcorr_full(a, b);
  ASSERT_EQ(fast.size(), a.size() + b.size() - 1);
  // naive[k] = sum_j a[j] * b[j - (k - (nb-1))]
  for (std::size_t k = 0; k < fast.size(); ++k) {
    const std::ptrdiff_t lag =
        static_cast<std::ptrdiff_t>(k) -
        static_cast<std::ptrdiff_t>(b.size() - 1);
    double expect = 0.0;
    for (std::size_t j = 0; j < a.size(); ++j) {
      const std::ptrdiff_t bj = static_cast<std::ptrdiff_t>(j) - lag;
      if (bj >= 0 && bj < static_cast<std::ptrdiff_t>(b.size())) {
        expect += a[j] * b[static_cast<std::size_t>(bj)];
      }
    }
    EXPECT_NEAR(fast[k], expect, 1e-9) << "k=" << k;
  }
}

/// Direct time-domain reference: full cross-correlation laid out the
/// same way as xcorr_full (index k corresponds to lag k - (nb - 1)).
std::vector<double> naive_xcorr_full(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const std::ptrdiff_t lag = static_cast<std::ptrdiff_t>(k) -
                               static_cast<std::ptrdiff_t>(b.size() - 1);
    for (std::size_t j = 0; j < a.size(); ++j) {
      const std::ptrdiff_t bj = static_cast<std::ptrdiff_t>(j) - lag;
      if (bj >= 0 && bj < static_cast<std::ptrdiff_t>(b.size())) {
        out[k] += a[j] * b[static_cast<std::size_t>(bj)];
      }
    }
  }
  return out;
}

TEST(XcorrTest, LengthOneInputs) {
  // 1 x 1: a single product.
  const std::vector<double> r11 = xcorr_full(std::vector<double>{3.0},
                                             std::vector<double>{-2.0});
  ASSERT_EQ(r11.size(), 1u);
  EXPECT_NEAR(r11[0], -6.0, 1e-12);

  // 1 x n and n x 1: scaled (reversed) copies of the longer input.
  const std::vector<double> a{1.0, -2.0, 4.0, 0.5};
  const std::vector<double> one{2.0};
  const std::vector<double> r1n = xcorr_full(one, a);
  const std::vector<double> rn1 = xcorr_full(a, one);
  const std::vector<double> e1n = naive_xcorr_full(one, a);
  const std::vector<double> en1 = naive_xcorr_full(a, one);
  ASSERT_EQ(r1n.size(), e1n.size());
  ASSERT_EQ(rn1.size(), en1.size());
  for (std::size_t k = 0; k < r1n.size(); ++k) {
    EXPECT_NEAR(r1n[k], e1n[k], 1e-10) << "k=" << k;
  }
  for (std::size_t k = 0; k < rn1.size(); ++k) {
    EXPECT_NEAR(rn1[k], en1[k], 1e-10) << "k=" << k;
  }
}

class XcorrShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(XcorrShapes, MatchesNaiveForUnequalAndNonPow2Lengths) {
  const auto [na, nb] = GetParam();
  std::mt19937_64 rng(na * 1009 + nb);
  std::normal_distribution<double> dist;
  std::vector<double> a(na);
  std::vector<double> b(nb);
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);
  const std::vector<double> fast = xcorr_full(a, b);
  const std::vector<double> naive = naive_xcorr_full(a, b);
  ASSERT_EQ(fast.size(), na + nb - 1);
  for (std::size_t k = 0; k < fast.size(); ++k) {
    EXPECT_NEAR(fast[k], naive[k], 1e-9) << "na=" << na << " nb=" << nb
                                         << " k=" << k;
  }
}

// Very unequal lengths, and totals (na + nb - 1) that are prime or
// otherwise far from a power of two, exercising the padded-size
// selection inside xcorr_full.
INSTANTIATE_TEST_SUITE_P(
    Shapes, XcorrShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 9},
                      std::pair<std::size_t, std::size_t>{3, 64},
                      std::pair<std::size_t, std::size_t>{13, 7},
                      std::pair<std::size_t, std::size_t>{31, 31},
                      std::pair<std::size_t, std::size_t>{100, 3},
                      std::pair<std::size_t, std::size_t>{127, 129}));

TEST(XcorrTest, AutocorrelationPeaksAtZeroLag) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> dist;
  std::vector<double> a(64);
  for (auto& v : a) v = dist(rng);
  const std::vector<double> r = xcorr_full(a, a);
  const std::size_t zero_lag = a.size() - 1;
  for (std::size_t k = 0; k < r.size(); ++k) {
    EXPECT_LE(std::abs(r[k]), r[zero_lag] + 1e-9);
  }
}

TEST(XcorrSpectraTest, CircularCorrelationIdentity) {
  // xcorr_spectra(F(x), F(x)) at index 0 equals sum(x^2).
  std::mt19937_64 rng(4);
  std::normal_distribution<double> dist;
  std::vector<double> x(32);
  double energy = 0.0;
  for (auto& v : x) {
    v = dist(rng);
    energy += v * v;
  }
  const std::vector<cplx> fx = rfft(x);
  const std::vector<double> r = xcorr_spectra(fx, fx);
  EXPECT_NEAR(r[0], energy, 1e-8);
}

TEST(PearsonTest, KnownValues) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c(a.rbegin(), a.rend());
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

}  // namespace
}  // namespace dassa::dsp
