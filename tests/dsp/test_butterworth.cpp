// Butterworth design tests: frequency response checked against the
// analytically expected magnitude |H| at DC, cutoff and Nyquist.
#include "dassa/dsp/butterworth.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "dassa/common/error.hpp"

namespace dassa::dsp {
namespace {

/// Evaluate |H(e^{jw})| of a digital filter at Nyquist-relative
/// frequency wn in [0, 1].
double magnitude(const FilterCoeffs& f, double wn) {
  const double w = std::numbers::pi * wn;
  const std::complex<double> z = std::polar(1.0, w);
  std::complex<double> num(0, 0);
  std::complex<double> den(0, 0);
  std::complex<double> zk(1, 0);
  for (double b : f.b) {
    num += b * zk;
    zk /= z;
  }
  zk = std::complex<double>(1, 0);
  for (double a : f.a) {
    den += a * zk;
    zk /= z;
  }
  return std::abs(num / den);
}

constexpr double kHalfPower = 0.7071067811865476;  // 1/sqrt(2)

class ButterLowpass
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ButterLowpass, ResponseShape) {
  const auto [order, wn] = GetParam();
  const FilterCoeffs f = butter_lowpass(order, wn);
  EXPECT_EQ(f.a.size(), static_cast<std::size_t>(order) + 1);
  EXPECT_EQ(f.b.size(), static_cast<std::size_t>(order) + 1);
  EXPECT_NEAR(magnitude(f, 1e-9), 1.0, 1e-6);          // unity at DC
  EXPECT_NEAR(magnitude(f, wn), kHalfPower, 1e-6);     // -3 dB at cutoff
  EXPECT_LT(magnitude(f, 1.0 - 1e-9), 1e-4);           // dead at Nyquist
  // Monotonic decrease (Butterworth is maximally flat / monotonic).
  double prev = magnitude(f, 0.01);
  for (double w = 0.05; w < 1.0; w += 0.05) {
    const double mag = magnitude(f, w);
    EXPECT_LE(mag, prev + 1e-9) << "w=" << w;
    prev = mag;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, ButterLowpass,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(0.1, 0.25, 0.5, 0.8)));

class ButterHighpass
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ButterHighpass, ResponseShape) {
  const auto [order, wn] = GetParam();
  const FilterCoeffs f = butter_highpass(order, wn);
  EXPECT_LT(magnitude(f, 1e-9), 1e-4);                  // dead at DC
  EXPECT_NEAR(magnitude(f, wn), kHalfPower, 1e-6);      // -3 dB at cutoff
  EXPECT_NEAR(magnitude(f, 1.0 - 1e-9), 1.0, 1e-5);     // unity at Nyquist
}

INSTANTIATE_TEST_SUITE_P(
    Orders, ButterHighpass,
    ::testing::Combine(::testing::Values(1, 2, 4, 6),
                       ::testing::Values(0.15, 0.4, 0.7)));

class ButterBandpass
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(ButterBandpass, ResponseShape) {
  const auto [order, lo, hi] = GetParam();
  const FilterCoeffs f = butter_bandpass(order, lo, hi);
  // butter(n, [lo hi]) doubles the order: 2n+1 coefficients.
  EXPECT_EQ(f.a.size(), static_cast<std::size_t>(2 * order) + 1);
  EXPECT_LT(magnitude(f, 1e-9), 1e-3);               // dead at DC
  EXPECT_LT(magnitude(f, 1.0 - 1e-9), 1e-3);         // dead at Nyquist
  EXPECT_NEAR(magnitude(f, lo), kHalfPower, 1e-5);   // -3 dB at both edges
  EXPECT_NEAR(magnitude(f, hi), kHalfPower, 1e-5);
  // Near unity at the (geometric) band centre.
  const double centre = std::sqrt(lo * hi);
  EXPECT_NEAR(magnitude(f, centre), 1.0, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Bands, ButterBandpass,
    ::testing::Values(std::make_tuple(2, 0.1, 0.4),
                      std::make_tuple(3, 0.2, 0.6),
                      std::make_tuple(4, 0.05, 0.2),
                      std::make_tuple(3, 0.004, 0.18)));

TEST(ButterTest, RejectsBadParameters) {
  EXPECT_THROW((void)butter_lowpass(0, 0.5), InvalidArgument);
  EXPECT_THROW((void)butter_lowpass(2, 0.0), InvalidArgument);
  EXPECT_THROW((void)butter_lowpass(2, 1.0), InvalidArgument);
  EXPECT_THROW((void)butter_lowpass(2, -0.5), InvalidArgument);
  EXPECT_THROW((void)butter_bandpass(2, 0.5, 0.2), InvalidArgument);
  EXPECT_THROW((void)butter_bandpass(2, 0.2, 0.2), InvalidArgument);
}

TEST(ButterTest, MatchesKnownScipyCoefficients) {
  // scipy.signal.butter(2, 0.5): b ~ [0.29289322, 0.58578644,
  // 0.29289322], a ~ [1, 0, 0.17157288].
  const FilterCoeffs f = butter_lowpass(2, 0.5);
  ASSERT_EQ(f.b.size(), 3u);
  const double a0 = f.a[0];
  EXPECT_NEAR(f.b[0] / a0, 0.2928932188, 1e-9);
  EXPECT_NEAR(f.b[1] / a0, 0.5857864376, 1e-9);
  EXPECT_NEAR(f.b[2] / a0, 0.2928932188, 1e-9);
  EXPECT_NEAR(f.a[1] / a0, 0.0, 1e-9);
  EXPECT_NEAR(f.a[2] / a0, 0.1715728753, 1e-9);
}

}  // namespace
}  // namespace dassa::dsp
