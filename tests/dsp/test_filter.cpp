// IIR filtering tests: lfilter reference behaviour, steady-state
// initial conditions, filtfilt zero-phase property.
#include "dassa/dsp/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dassa/common/error.hpp"
#include "dassa/dsp/butterworth.hpp"

namespace dassa::dsp {
namespace {

TEST(LfilterTest, FirMovingAverage) {
  // b = [1/3 1/3 1/3], a = [1]: causal 3-point moving average.
  const FilterCoeffs f{{1.0 / 3, 1.0 / 3, 1.0 / 3}, {1.0}};
  const std::vector<double> x{3.0, 6.0, 9.0, 12.0};
  const std::vector<double> y = lfilter(f, x);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_NEAR(y[0], 1.0, 1e-12);
  EXPECT_NEAR(y[1], 3.0, 1e-12);
  EXPECT_NEAR(y[2], 6.0, 1e-12);
  EXPECT_NEAR(y[3], 9.0, 1e-12);
}

TEST(LfilterTest, FirstOrderIirMatchesRecurrence) {
  // y[n] = x[n] + 0.5 y[n-1]  <=>  b = [1], a = [1, -0.5].
  const FilterCoeffs f{{1.0}, {1.0, -0.5}};
  const std::vector<double> x{1.0, 0.0, 0.0, 0.0, 0.0};
  const std::vector<double> y = lfilter(f, x);
  double expect = 1.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], expect, 1e-12);
    expect *= 0.5;
  }
}

TEST(LfilterTest, NormalisesByA0) {
  const FilterCoeffs f{{2.0}, {2.0, -1.0}};
  const FilterCoeffs g{{1.0}, {1.0, -0.5}};
  const std::vector<double> x{1.0, 2.0, -1.0, 0.5};
  const std::vector<double> yf = lfilter(f, x);
  const std::vector<double> yg = lfilter(g, x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(yf[i], yg[i], 1e-12);
  }
}

TEST(LfilterTest, RejectsEmptyAndZeroA0) {
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW((void)lfilter(FilterCoeffs{{}, {1.0}}, x), InvalidArgument);
  EXPECT_THROW((void)lfilter(FilterCoeffs{{1.0}, {0.0, 1.0}}, x),
               InvalidArgument);
}

TEST(LfilterTest, StreamingBlocksMatchOneShot) {
  const FilterCoeffs f = butter_lowpass(3, 0.3);
  std::vector<double> x(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.05 * static_cast<double>(i)) +
           0.3 * std::cos(0.6 * static_cast<double>(i));
  }
  const std::vector<double> whole = lfilter(f, x);

  std::vector<double> zi(std::max(f.a.size(), f.b.size()) - 1, 0.0);
  std::vector<double> pieced;
  for (std::size_t start = 0; start < x.size(); start += 64) {
    const std::size_t len = std::min<std::size_t>(64, x.size() - start);
    const std::vector<double> block =
        lfilter(f, std::span<const double>(x.data() + start, len), zi);
    pieced.insert(pieced.end(), block.begin(), block.end());
  }
  ASSERT_EQ(pieced.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_NEAR(pieced[i], whole[i], 1e-10);
  }
}

TEST(LfilterZiTest, SuppressesStepTransient) {
  // Filtering a constant signal with zi scaled by the first sample must
  // produce the steady-state output immediately.
  const FilterCoeffs f = butter_lowpass(4, 0.2);
  std::vector<double> zi = lfilter_zi(f);
  for (auto& v : zi) v *= 5.0;  // input amplitude
  const std::vector<double> x(50, 5.0);
  const std::vector<double> y = lfilter(f, x, zi);
  for (double v : y) {
    EXPECT_NEAR(v, 5.0, 1e-6);
  }
}

TEST(FiltfiltTest, ConstantSignalPassesThrough) {
  const FilterCoeffs f = butter_lowpass(4, 0.25);
  const std::vector<double> x(100, 2.5);
  const std::vector<double> y = filtfilt(f, x);
  ASSERT_EQ(y.size(), x.size());
  for (double v : y) EXPECT_NEAR(v, 2.5, 1e-6);
}

TEST(FiltfiltTest, ZeroPhaseOnPassbandTone) {
  // A tone well inside the passband must come out with the same phase
  // and amplitude (zero-phase filtering), unlike single-pass lfilter.
  const double wn = 0.5;
  const FilterCoeffs f = butter_lowpass(4, wn);
  const std::size_t n = 400;
  const double w_tone = 0.05;  // far below cutoff
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(std::numbers::pi * w_tone * static_cast<double>(i));
  }
  const std::vector<double> y = filtfilt(f, x);
  // Compare away from the edges.
  for (std::size_t i = 50; i < n - 50; ++i) {
    EXPECT_NEAR(y[i], x[i], 5e-3) << "i=" << i;
  }
}

TEST(FiltfiltTest, AttenuatesStopbandTone) {
  const FilterCoeffs f = butter_lowpass(4, 0.1);
  const std::size_t n = 600;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(std::numbers::pi * 0.8 * static_cast<double>(i));
  }
  const std::vector<double> y = filtfilt(f, x);
  double max_mid = 0.0;
  for (std::size_t i = 100; i < n - 100; ++i) {
    max_mid = std::max(max_mid, std::abs(y[i]));
  }
  // Two passes of a 4th-order filter at 8x the cutoff: essentially gone.
  EXPECT_LT(max_mid, 1e-4);
}

TEST(FiltfiltTest, TimeReversalSymmetryInInterior) {
  // filtfilt(x reversed) ~= reverse(filtfilt(x)). Edge padding and the
  // zi scaling are not exactly reversal-symmetric (same as MATLAB /
  // scipy), so compare the interior at edge-effect tolerance.
  const FilterCoeffs f = butter_lowpass(3, 0.3);
  std::vector<double> x(128);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.11 * static_cast<double>(i)) +
           0.5 * std::sin(0.41 * static_cast<double>(i) + 1.0);
  }
  std::vector<double> xr(x.rbegin(), x.rend());
  const std::vector<double> a = filtfilt(f, x);
  std::vector<double> b = filtfilt(f, xr);
  std::reverse(b.begin(), b.end());
  for (std::size_t i = 16; i + 16 < x.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 5e-3) << "i=" << i;
  }
}

TEST(FiltfiltTest, RejectsTooShortInput) {
  // Order-4 lowpass: 5 coefficients, pad = 3*(5-1) = 12; input must be
  // strictly longer than the pad.
  const FilterCoeffs f = butter_lowpass(4, 0.2);
  const std::vector<double> x(12, 1.0);
  EXPECT_THROW((void)filtfilt(f, x), InvalidArgument);
  const std::vector<double> ok(13, 1.0);
  EXPECT_NO_THROW((void)filtfilt(f, ok));
}

}  // namespace
}  // namespace dassa::dsp
