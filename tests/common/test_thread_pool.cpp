#include "dassa/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "dassa/common/error.hpp"

namespace dassa {
namespace {

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), InvalidArgument);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t, std::size_t b,
                                     std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForStaticChunksAreContiguous) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> chunks(4);
  pool.parallel_for(10, [&](std::size_t t, std::size_t b, std::size_t e) {
    chunks[t] = {b, e};
  });
  // even_chunk(10, 4): 3,3,2,2.
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(chunks[1], (std::pair<std::size_t, std::size_t>{3, 6}));
  EXPECT_EQ(chunks[2], (std::pair<std::size_t, std::size_t>{6, 8}));
  EXPECT_EQ(chunks[3], (std::pair<std::size_t, std::size_t>{8, 10}));
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    ran = true;
  });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t, std::size_t b, std::size_t) {
                          if (b == 0) throw IoError("boom");
                        }),
      IoError);
  // The pool must still be usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(4, [&](std::size_t, std::size_t b, std::size_t e) {
    ok.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPoolTest, NestedSubmissionFromTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      count.fetch_add(1);
      pool.submit([&] { count.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ManyMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100000, [&](std::size_t, std::size_t b, std::size_t e) {
    std::int64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<std::int64_t>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 100000LL * 99999 / 2);
}

}  // namespace
}  // namespace dassa
