// Tracer concurrency stress, written for the TSan leg of
// scripts/check.sh (suite name carries "Trace" so the -R filter picks
// it up) but cheap enough for the plain tier-1 run.
//
// The shared state under test: every HAEE hybrid rank-thread and every
// ApplyMT pool worker emits spans into its own ring while the main
// thread concurrently collect()s the global buffer registry, clear()s
// it, and flips the master toggle -- the emit path racing the
// collection path on one shared sink, mirroring test_haee_stress.cpp's
// engine-level shape.
#include "dassa/common/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <span>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "dassa/core/haee.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/dsp/fft.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::trace {
namespace {

using testing::TmpDir;

struct Fixture {
  io::Vca vca;

  explicit Fixture(TmpDir& dir, std::size_t channels, std::size_t files,
                   double secs_per_file) {
    das::SynthDas synth = das::SynthDas::fig1b_scene(channels, 100.0, 3);
    das::AcquisitionSpec spec;
    spec.dir = dir.str();
    spec.start = das::Timestamp::parse("170728224510");
    spec.file_count = files;
    spec.seconds_per_file = secs_per_file;
    spec.dtype = io::DType::kF64;
    spec.per_channel_metadata = false;
    vca = io::Vca::build(das::write_acquisition(synth, spec));
  }
};

class TraceStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    set_ring_capacity(kDefaultRingCapacity);
    clear();
  }
  void TearDown() override {
    set_enabled(false);
    set_ring_capacity(kDefaultRingCapacity);
    clear();
  }
};

TEST_F(TraceStressTest, HybridEngineEmissionRacesCollection) {
  TmpDir dir("trst");
  Fixture fx(dir, 12, 2, 1.0);

  core::EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  config.mode = core::EngineMode::kHybrid;

  set_enabled(true);
  std::atomic<bool> done{false};
  // A reader thread hammering collect() while 3 rank-threads x 2 pool
  // workers emit: the registry lock vs per-buffer locks under TSan.
  std::thread reader([&] {
    std::size_t sink = 0;
    while (!done.load(std::memory_order_acquire)) {
      sink += collect().size();
      std::this_thread::yield();
    }
    EXPECT_GE(sink, 0u);
  });

  (void)core::run_rows(config, fx.vca, [](const core::RankContext&) {
    return [](const core::Stencil& s) {
      const std::span<const double> row = s.row_span(0);
      const std::vector<dsp::cplx> spec = dsp::rfft_half(row);
      double acc = 0.0;
      for (const dsp::cplx& c : spec) acc += std::norm(c);
      return std::vector<double>{acc};
    };
  });
  done.store(true, std::memory_order_release);
  reader.join();
  set_enabled(false);

  const std::vector<TraceEvent> events = collect();
  EXPECT_FALSE(events.empty());
  std::size_t apply_chunks = 0;
  for (const TraceEvent& e : events) {
    if (std::string_view(e.name) == "haee.apply_rows_chunk") ++apply_chunks;
  }
  // 3 ranks x 2 pool workers, one chunk span per worker chunk.
  EXPECT_GE(apply_chunks, 3u);
  publish_trace_counters();
}

TEST_F(TraceStressTest, ConcurrentEmitToggleAndClear) {
  // Raw shared-sink stress with a tiny ring so the drop path races
  // too: emitters flood, one thread toggles the master switch, another
  // clears. Nothing to assert beyond "no data race, balanced spans".
  set_ring_capacity(64);
  set_enabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  emitters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        DASSA_TRACE_SPAN("test", "test.stress_outer");
        DASSA_TRACE_SPAN("test", "test.stress_inner");
      }
    });
  }
  std::thread toggler([&] {
    for (int i = 0; i < 200; ++i) {
      set_enabled(i % 2 == 0);
      std::this_thread::yield();
    }
    set_enabled(true);
  });
  std::thread clearer([&] {
    for (int i = 0; i < 100; ++i) {
      clear();
      (void)collect();
      std::this_thread::yield();
    }
  });
  toggler.join();
  clearer.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : emitters) t.join();
  set_enabled(false);

  // Whatever survived the clears must still export as a balanced,
  // monotonic chrome trace.
  std::ostringstream os;
  write_chrome_trace(os, collect());
  validate_chrome_trace(parse_chrome_trace(os.str()));
}

}  // namespace
}  // namespace dassa::trace
