// HistogramSnapshot::diff: the bucket-exact interval view das_top is
// built on. Pinned here: diff is exact (merging it back onto the older
// snapshot reproduces the newer one bucket for bucket) and the
// counter-reset guard never produces a negative delta.
#include <gtest/gtest.h>

#include <cstdint>

#include "dassa/common/metrics.hpp"

using namespace dassa;

namespace {

/// Deterministic latency stream: a decorrelated walk over the full
/// bucket range, including sub-2ns and multi-second durations.
std::uint64_t synthetic_ns(std::uint64_t i) {
  return (i * 2654435761u) % (1ull << ((i % 40) + 1));
}

}  // namespace

TEST(MetricsDiff, DiffMergeRoundTripIsExact) {
  LatencyHistogram h;
  for (std::uint64_t i = 0; i < 500; ++i) h.record_ns(synthetic_ns(i));
  const HistogramSnapshot older = h.snapshot();
  for (std::uint64_t i = 500; i < 1300; ++i) h.record_ns(synthetic_ns(i));
  const HistogramSnapshot newer = h.snapshot();

  const HistogramSnapshot d = newer.diff(older);
  EXPECT_EQ(d.count, 800u);

  // The exactness identity: merge(diff(a, b), b) == a, bucket for
  // bucket, count for count, total for total.
  HistogramSnapshot rebuilt = d;
  rebuilt.merge(older);
  EXPECT_EQ(rebuilt, newer);
}

TEST(MetricsDiff, DiffOfEqualSnapshotsIsEmpty) {
  LatencyHistogram h;
  for (std::uint64_t i = 0; i < 64; ++i) h.record_ns(i * 1000);
  const HistogramSnapshot s = h.snapshot();
  const HistogramSnapshot d = s.diff(s);
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.total_ns, 0u);
  for (const std::uint64_t b : d.buckets) EXPECT_EQ(b, 0u);
}

TEST(MetricsDiff, ResetGuardReturnsNewerSnapshotWhole) {
  // "older" has records in a bucket the restarted process's histogram
  // has never touched: not bucket-wise contained, so everything in the
  // newer snapshot post-dates the reset and is returned as the delta.
  LatencyHistogram before_restart;
  before_restart.record_ns(1 << 20);
  before_restart.record_ns(1 << 20);
  const HistogramSnapshot older = before_restart.snapshot();

  LatencyHistogram after_restart;
  after_restart.record_ns(1 << 4);
  const HistogramSnapshot newer = after_restart.snapshot();

  const HistogramSnapshot d = newer.diff(older);
  EXPECT_EQ(d, newer);
}

TEST(MetricsDiff, ResetGuardCatchesCountRegression) {
  // Same bucket, smaller count: also a reset, also never negative.
  LatencyHistogram big;
  for (int i = 0; i < 10; ++i) big.record_ns(100);
  LatencyHistogram small;
  small.record_ns(100);
  const HistogramSnapshot d = small.snapshot().diff(big.snapshot());
  EXPECT_EQ(d, small.snapshot());
}

TEST(MetricsDiff, IntervalQuantilesComeFromIntervalOnly) {
  // First epoch: all fast (1us). Second epoch: all slow (1ms). The
  // cumulative p50 is polluted by the fast epoch; the diff's is not.
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record_ns(1000);
  const HistogramSnapshot older = h.snapshot();
  for (int i = 0; i < 100; ++i) h.record_ns(1000000);
  const HistogramSnapshot newer = h.snapshot();

  const HistogramSnapshot d = newer.diff(older);
  EXPECT_EQ(d.count, 100u);
  EXPECT_GE(d.quantile_ns(0.50), 1e6 / 2);
  EXPECT_LT(newer.quantile_ns(0.50), 10000.0);
}
