// Telemetry tests: deterministic sampling via tick(), the JSONL
// schema round-trip through the in-tree parser, the validator's teeth,
// gauge registration, histogram merging, quantile interpolation, and
// the health report's stall detector.
#include "dassa/common/telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/metrics.hpp"

namespace dassa::telemetry {
namespace {

// ---- deterministic sampling ------------------------------------------

TEST(TelemetrySampler, ManualTicksAreDeterministic) {
  global_counters().reset();
  TelemetrySampler sampler;
  for (int i = 0; i < 5; ++i) sampler.tick();

  const std::vector<Sample> timeline = sampler.timeline();
  ASSERT_EQ(timeline.size(), 5u);
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const Sample& s = timeline[i];
    EXPECT_EQ(s.seq, i);
    // tick() charges the sample counter before snapshotting, so every
    // sample already includes itself.
    ASSERT_TRUE(s.counters.count(counters::kTelemetrySamples));
    EXPECT_EQ(s.counters.at(counters::kTelemetrySamples), s.seq + 1);
    if (i > 0) {
      EXPECT_GE(s.wall_ns, timeline[i - 1].wall_ns);
    }
  }
  EXPECT_EQ(sampler.dropped(), 0u);
}

TEST(TelemetrySampler, SamplesSeeCounterProgress) {
  global_counters().reset();
  TelemetrySampler sampler;
  sampler.tick();
  global_counters().add(counters::kIoReadBytes, 4096);
  sampler.tick();

  const std::vector<Sample> timeline = sampler.timeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].counters.count(counters::kIoReadBytes), 0u);
  EXPECT_EQ(timeline[1].counters.at(counters::kIoReadBytes), 4096u);
}

TEST(TelemetrySampler, TimelineCapDropsExtraTicks) {
  SamplerConfig cfg;
  cfg.max_samples = 2;
  TelemetrySampler sampler(cfg);
  for (int i = 0; i < 5; ++i) sampler.tick();
  EXPECT_EQ(sampler.timeline().size(), 2u);
  EXPECT_EQ(sampler.dropped(), 3u);
}

TEST(TelemetrySampler, RejectsNonPositivePeriod) {
  SamplerConfig cfg;
  cfg.period = std::chrono::milliseconds{0};
  EXPECT_THROW(TelemetrySampler{cfg}, Error);
}

TEST(TelemetrySampler, BackgroundThreadSamplesAndStops) {
  SamplerConfig cfg;
  cfg.period = std::chrono::milliseconds{1};
  TelemetrySampler sampler(cfg);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sampler.timeline().size() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());

  const std::vector<Sample> timeline = sampler.timeline();
  ASSERT_GE(timeline.size(), 3u);
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].seq, i);
  }
  // stop() is idempotent and the timeline is frozen afterwards.
  sampler.stop();
  EXPECT_EQ(sampler.timeline().size(), timeline.size());
}

TEST(TelemetrySampler, HistogramPercentilesFoldIntoGauges) {
  global_metrics().histogram("telemetry_test.fold").record_ns(1 << 10);
  TelemetrySampler sampler;
  sampler.tick();
  const Sample s = sampler.timeline().back();
  EXPECT_TRUE(s.gauges.count("hist.telemetry_test.fold.count"));
  EXPECT_TRUE(s.gauges.count("hist.telemetry_test.fold.p50_ns"));
  EXPECT_TRUE(s.gauges.count("hist.telemetry_test.fold.p95_ns"));
  EXPECT_TRUE(s.gauges.count("hist.telemetry_test.fold.p99_ns"));
  EXPECT_GE(s.gauges.at("hist.telemetry_test.fold.count"), 1.0);
}

// ---- gauges and resources --------------------------------------------

TEST(TelemetryGauges, BuiltinsAndRegistrationAndReplacement) {
  const std::map<std::string, double> before = read_gauges();
  EXPECT_TRUE(before.count("trace.open_spans"));
  EXPECT_TRUE(before.count("trace.dropped_spans"));
  EXPECT_TRUE(before.count("log.records"));

  register_gauge("telemetry_test.gauge", [] { return 41.0; });
  register_gauge("telemetry_test.gauge", [] { return 42.0; });  // replaces
  EXPECT_EQ(read_gauges().at("telemetry_test.gauge"), 42.0);

  EXPECT_THROW(register_gauge("", [] { return 0.0; }), Error);
  EXPECT_THROW(register_gauge("telemetry_test.null", GaugeFn{}), Error);
}

TEST(TelemetryResources, ReportsProcessUsage) {
  const ResourceUsage res = sample_resources();
#if defined(__linux__)
  EXPECT_GT(res.rss_bytes, 0u);
  EXPECT_GT(res.peak_rss_bytes, 0u);
  EXPECT_GE(res.peak_rss_bytes, res.rss_bytes / 2);  // same order
#endif
}

// ---- metrics: merge + quantile interpolation -------------------------

TEST(TelemetryMetrics, QuantileInterpolatesWithinBucket) {
  LatencyHistogram h;
  // 100 samples, all landing in bucket 4 ([16, 32) ns).
  for (int i = 0; i < 100; ++i) h.record_ns(20);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile_ns(0.5), 24.0);   // 16 + 16 * 0.5
  EXPECT_DOUBLE_EQ(s.quantile_ns(0.25), 20.0);  // 16 + 16 * 0.25
  EXPECT_DOUBLE_EQ(s.quantile_ns(1.0), 32.0);   // bucket upper bound
  EXPECT_EQ(HistogramSnapshot{}.quantile_ns(0.5), 0.0);
  EXPECT_THROW((void)s.quantile_ns(1.5), Error);
}

TEST(TelemetryMetrics, SnapshotMergeIsExact) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record_ns(2);    // bucket 1
  a.record_ns(100);  // bucket 6
  b.record_ns(2);
  b.record_ns(1 << 20);

  HistogramSnapshot sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.count, 4u);
  EXPECT_EQ(sa.total_ns, 2u + 100u + 2u + (1u << 20));
  EXPECT_EQ(sa.buckets[1], 2u);

  // Live merge back into a histogram (the cross-rank path).
  LatencyHistogram c;
  c.merge(sa);
  EXPECT_EQ(c.count(), 4u);
  EXPECT_EQ(c.snapshot().buckets[1], 2u);
}

TEST(TelemetryMetrics, RegistryMergeAndReset) {
  MetricsRegistry reg;
  reg.histogram("a").record_ns(10);

  MetricsRegistry other;
  other.histogram("a").record_ns(10);
  other.histogram("b").record_ns(1000);

  reg.merge(other.snapshot());
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("a").count, 2u);
  EXPECT_EQ(snap.at("b").count, 1u);

  reg.reset();
  snap = reg.snapshot();
  EXPECT_EQ(snap.at("a").count, 0u);  // names retained, counts zeroed
  EXPECT_EQ(snap.at("b").count, 0u);
}

// ---- JSONL round trip ------------------------------------------------

TelemetryFile make_file() {
  TelemetryFile file;
  file.meta["tool"] = "test";
  file.meta["pipeline"] = "similarity";

  for (std::uint64_t i = 0; i < 3; ++i) {
    Sample s;
    s.seq = i;
    s.wall_ns = 1000 * (i + 1);
    s.res.rss_bytes = 1 << 20;
    s.res.peak_rss_bytes = 2 << 20;
    s.res.user_cpu_ns = 5000 * (i + 1);
    s.res.sys_cpu_ns = 100 * (i + 1);
    s.counters["io.read_bytes"] = 4096 * (i + 1);
    s.counters["telemetry.samples"] = i + 1;
    s.gauges["trace.open_spans"] = 0.0;
    s.gauges["io.pool.queue_depth"] = static_cast<double>(i);
    file.samples.push_back(std::move(s));
  }

  file.stages.push_back({"read", 0.5, std::uint64_t{1} << 20, 128u});
  file.stages.push_back({"compute", 1.5, 0u, 128u});

  RankRecord r0;
  r0.rank = 0;
  r0.counters["haee.rows_owned"] = 100;
  RankRecord r1;
  r1.rank = 1;
  r1.counters["haee.rows_owned"] = 300;
  file.ranks = {r0, r1};

  AggRecord agg;
  agg.counter = "haee.rows_owned";
  agg.sum = 400;
  agg.min = 100;
  agg.max = 300;
  agg.min_rank = 0;
  agg.max_rank = 1;
  agg.imbalance = 1.5;
  file.aggs.push_back(agg);

  HistRecord h;
  h.name = "haee.stage_ns";
  h.count = 7;
  h.total_ns = 12345;
  h.p50_ns = 1000.0;
  h.p95_ns = 2000.0;
  h.p99_ns = 3000.0;
  h.buckets[3] = 4;
  h.buckets[10] = 3;
  file.hists.push_back(h);
  return file;
}

TEST(TelemetryJsonl, RoundTripPreservesEveryRecord) {
  const TelemetryFile file = make_file();
  std::ostringstream os;
  write_telemetry_file(os, file);

  const TelemetryFile back = parse_telemetry_jsonl(os.str());
  EXPECT_EQ(back.meta.at("schema"), kSchemaVersion);
  EXPECT_EQ(back.meta.at("tool"), "test");
  EXPECT_EQ(back.meta.at("pipeline"), "similarity");

  ASSERT_EQ(back.samples.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.samples[i].seq, file.samples[i].seq);
    EXPECT_EQ(back.samples[i].wall_ns, file.samples[i].wall_ns);
    EXPECT_EQ(back.samples[i].res.rss_bytes, file.samples[i].res.rss_bytes);
    EXPECT_EQ(back.samples[i].res.user_cpu_ns,
              file.samples[i].res.user_cpu_ns);
    EXPECT_EQ(back.samples[i].counters, file.samples[i].counters);
    EXPECT_EQ(back.samples[i].gauges, file.samples[i].gauges);
  }

  ASSERT_EQ(back.stages.size(), 2u);
  EXPECT_EQ(back.stages[0].name, "read");
  EXPECT_DOUBLE_EQ(back.stages[0].seconds, 0.5);
  EXPECT_EQ(back.stages[0].bytes, 1u << 20);
  EXPECT_EQ(back.stages[0].rows, 128u);

  ASSERT_EQ(back.ranks.size(), 2u);
  EXPECT_EQ(back.ranks[1].counters.at("haee.rows_owned"), 300u);

  ASSERT_EQ(back.aggs.size(), 1u);
  EXPECT_EQ(back.aggs[0].sum, 400u);
  EXPECT_EQ(back.aggs[0].max_rank, 1);
  EXPECT_DOUBLE_EQ(back.aggs[0].imbalance, 1.5);

  ASSERT_EQ(back.hists.size(), 1u);
  EXPECT_EQ(back.hists[0].count, 7u);
  EXPECT_EQ(back.hists[0].buckets[3], 4u);
  EXPECT_EQ(back.hists[0].buckets[10], 3u);

  // The round-tripped file satisfies the validator.
  validate_telemetry_file(back);
}

TEST(TelemetryJsonl, ParserRejectsGarbage) {
  EXPECT_THROW((void)parse_telemetry_jsonl("not json\n"), FormatError);
  EXPECT_THROW((void)parse_telemetry_jsonl("{\"type\":\"wat\"}\n"),
               FormatError);
  EXPECT_THROW((void)parse_telemetry_jsonl("{\"no_type\":1}\n"),
               FormatError);
  EXPECT_THROW(  // sample without its required fields
      (void)parse_telemetry_jsonl("{\"type\":\"sample\",\"seq\":0}\n"),
      FormatError);
  try {
    (void)parse_telemetry_jsonl("{\"type\":\"meta\"}\nboom\n");
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// ---- validator teeth -------------------------------------------------

TEST(TelemetryValidate, RejectsMissingOrWrongSchema) {
  TelemetryFile file;
  EXPECT_THROW(validate_telemetry_file(file), FormatError);
  file.meta["schema"] = "dassa.telemetry.v999";
  EXPECT_THROW(validate_telemetry_file(file), FormatError);
  file.meta["schema"] = kSchemaVersion;
  validate_telemetry_file(file);  // minimal but valid
}

TEST(TelemetryValidate, RejectsSeqGapAndTimeTravel) {
  TelemetryFile file = make_file();
  file.meta["schema"] = kSchemaVersion;
  file.samples[2].seq = 7;
  EXPECT_THROW(validate_telemetry_file(file), FormatError);

  file = make_file();
  file.meta["schema"] = kSchemaVersion;
  file.samples[2].wall_ns = 1;  // earlier than sample 1
  EXPECT_THROW(validate_telemetry_file(file), FormatError);
}

TEST(TelemetryValidate, RejectsDecreasingCounter) {
  TelemetryFile file = make_file();
  file.meta["schema"] = kSchemaVersion;
  file.samples[2].counters["io.read_bytes"] = 1;  // below sample 1
  EXPECT_THROW(validate_telemetry_file(file), FormatError);
}

TEST(TelemetryValidate, RejectsHistCountBucketMismatch) {
  TelemetryFile file = make_file();
  file.meta["schema"] = kSchemaVersion;
  file.hists[0].count = 99;  // buckets sum to 7
  EXPECT_THROW(validate_telemetry_file(file), FormatError);
}

TEST(TelemetryValidate, RejectsAggInconsistentWithRanks) {
  TelemetryFile file = make_file();
  file.meta["schema"] = kSchemaVersion;
  file.aggs[0].sum = 401;
  EXPECT_THROW(validate_telemetry_file(file), FormatError);

  file = make_file();
  file.meta["schema"] = kSchemaVersion;
  file.aggs[0].max_rank = 0;  // rank 1 holds the max
  EXPECT_THROW(validate_telemetry_file(file), FormatError);

  file = make_file();
  file.meta["schema"] = kSchemaVersion;
  file.ranks.clear();  // aggregates with nothing to back them
  EXPECT_THROW(validate_telemetry_file(file), FormatError);
}

// ---- health report ---------------------------------------------------

TEST(TelemetryHealth, ReportCoversStagesRanksAndLatency) {
  TelemetryFile file = make_file();
  file.meta["schema"] = kSchemaVersion;
  std::ostringstream os;
  write_health_report(os, file);
  const std::string report = os.str();
  EXPECT_NE(report.find("dassa pipeline health"), std::string::npos);
  EXPECT_NE(report.find("stages:"), std::string::npos);
  EXPECT_NE(report.find("read"), std::string::npos);
  EXPECT_NE(report.find("rank balance (2 ranks)"), std::string::npos);
  EXPECT_NE(report.find("haee.rows_owned"), std::string::npos);
  EXPECT_NE(report.find("latency (cluster-merged)"), std::string::npos);
  EXPECT_NE(report.find("no stalls detected"), std::string::npos);
  EXPECT_EQ(report.find("WARNING: stall"), std::string::npos);
}

TEST(TelemetryHealth, FlagsIntervalWithOpenSpansButNoProgress) {
  TelemetryFile file = make_file();
  file.meta["schema"] = kSchemaVersion;
  // Sample 1 -> 2: counters frozen (except the sampler's own), spans
  // open. That is the definition of a stall.
  file.samples[2].counters = file.samples[1].counters;
  file.samples[2].counters["telemetry.samples"] =
      file.samples[1].counters.at("telemetry.samples") + 1;
  file.samples[2].gauges["trace.open_spans"] = 2.0;
  validate_telemetry_file(file);  // still schema-valid

  std::ostringstream os;
  write_health_report(os, file);
  EXPECT_NE(os.str().find("WARNING: stall"), std::string::npos);
}

}  // namespace
}  // namespace dassa::telemetry
