// Tracer core + chrome-trace schema tests: span recording through the
// thread-local rings, drop-newest overflow, rank labeling across
// MiniMPI rank threads and ThreadPool workers, and the exported JSON's
// structural contract -- required event fields, balanced begin/end
// pairs per (pid, tid) lane, monotonic timestamps -- under both a
// single thread and rank-threads x pool-threads. The five-layer test
// drives a real v3 acquisition through the engine and requires spans
// from io, codec, cache, par_read, haee, and dsp in one trace.
#include "dassa/common/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/thread_pool.hpp"
#include "dassa/core/haee.hpp"
#include "dassa/dsp/fft.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/mpi/runtime.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::trace {
namespace {

using testing::TmpDir;

/// Every test starts and ends with a quiet, empty tracer.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    set_ring_capacity(kDefaultRingCapacity);
    clear();
  }
  void TearDown() override {
    set_enabled(false);
    set_ring_capacity(kDefaultRingCapacity);
    clear();
  }
};

void emit_named_pair() {
  DASSA_TRACE_SPAN("test", "test.outer");
  DASSA_TRACE_SPAN("test", "test.inner");
}

TEST_F(TraceTest, DisabledEmitsNothing) {
  emit_named_pair();
  EXPECT_TRUE(collect().empty());
}

TEST_F(TraceTest, EnabledRecordsNestedSpans) {
  set_enabled(true);
  emit_named_pair();
  set_enabled(false);
  const std::vector<TraceEvent> events = collect();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start ascending, then duration descending: outer first.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_STREQ(events[0].cat, "test");
  // The inner span nests inside the outer one.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
  clear();
  EXPECT_TRUE(collect().empty());
}

TEST_F(TraceTest, RingOverflowDropsNewestAndCounts) {
  // A small ring on a fresh thread: the first `cap` spans survive, the
  // rest are dropped (prefix-consistent), and the drop is counted.
  set_ring_capacity(8);
  set_enabled(true);
  const std::uint64_t dropped_before = dropped_spans();
  std::thread t([] {
    for (int i = 0; i < 50; ++i) {
      DASSA_TRACE_SPAN("test", "test.flood");
    }
  });
  t.join();
  set_enabled(false);
  std::size_t flood = 0;
  for (const TraceEvent& e : collect()) {
    if (std::string_view(e.name) == "test.flood") ++flood;
  }
  EXPECT_EQ(flood, 8u);
  EXPECT_EQ(dropped_spans() - dropped_before, 42u);
}

TEST_F(TraceTest, PublishTraceCountersReachesGlobalRegistry) {
  set_enabled(true);
  emit_named_pair();
  set_enabled(false);
  publish_trace_counters();
  EXPECT_GE(global_counters().get(counters::kTraceSpansEmitted), 2u);
  EXPECT_GE(global_counters().get(counters::kTraceThreads), 1u);
}

TEST_F(TraceTest, SpanDurationsFeedMetricsHistograms) {
  set_enabled(true);
  emit_named_pair();
  set_enabled(false);
  EXPECT_GE(global_metrics().histogram("test.outer").count(), 1u);
  const HistogramSnapshot snap =
      global_metrics().histogram("test.outer").snapshot();
  EXPECT_GE(snap.quantile_ns(0.99), snap.quantile_ns(0.5));
}

// ---- chrome-trace schema ---------------------------------------------

std::string export_json() {
  std::ostringstream os;
  write_chrome_trace(os, collect());
  return os.str();
}

/// Structural checks shared by the single-thread and multi-thread
/// schema tests: required fields present (parse throws otherwise),
/// B/E balanced with matching names per lane, per-lane timestamps
/// monotonic (validate throws otherwise).
std::vector<ChromeEvent> parse_and_validate(const std::string& json) {
  const std::vector<ChromeEvent> events = parse_chrome_trace(json);
  validate_chrome_trace(events);
  return events;
}

TEST_F(TraceTest, ChromeExportValidatesSingleThread) {
  set_enabled(true);
  for (int i = 0; i < 3; ++i) emit_named_pair();
  set_enabled(false);
  const std::vector<ChromeEvent> events = parse_and_validate(export_json());

  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t meta = 0;
  for (const ChromeEvent& e : events) {
    if (e.ph == "B") ++begins;
    if (e.ph == "E") ++ends;
    if (e.ph == "M") ++meta;
  }
  EXPECT_EQ(begins, 6u);
  EXPECT_EQ(ends, 6u);
  EXPECT_GE(meta, 1u);  // process_name metadata for the unranked lane
}

TEST_F(TraceTest, ChromeExportValidatesAcrossRanksAndPools) {
  set_enabled(true);
  mpi::Runtime::run(3, [&](mpi::Comm& comm) {
    DASSA_TRACE_SPAN("test", "test.rank_body");
    ThreadPool pool(2);
    pool.parallel_for(8, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        DASSA_TRACE_SPAN("test", "test.pool_chunk");
      }
    });
    (void)comm;
  });
  set_enabled(false);
  const std::vector<ChromeEvent> events = parse_and_validate(export_json());

  // Rank lanes 0..2 export as pids 1..3; pool workers inherit their
  // creating rank's lane. mpi.rank spans come from Runtime itself.
  std::set<long long> pids;
  for (const ChromeEvent& e : events) {
    if (e.ph == "B") pids.insert(e.pid);
  }
  EXPECT_TRUE(pids.count(1) && pids.count(2) && pids.count(3))
      << "expected one process lane per rank";
  std::size_t pool_spans = 0;
  for (const ChromeEvent& e : events) {
    if (e.ph == "B" && e.name == "test.pool_chunk") {
      ++pool_spans;
      EXPECT_GE(e.pid, 1) << "pool span lost its creator's rank";
    }
  }
  EXPECT_GE(pool_spans, 3u);
}

TEST_F(TraceTest, ValidatorRejectsMalformedTraces) {
  // Missing required field.
  EXPECT_THROW(
      (void)parse_chrome_trace(R"([{"ph":"B","cat":"c","ts":1,"pid":1,"tid":1}])"),
      FormatError);
  // Not JSON at all.
  EXPECT_THROW((void)parse_chrome_trace("not json"), FormatError);
  // Unbalanced: E without a matching B.
  {
    const auto events = parse_chrome_trace(
        R"([{"name":"a","cat":"c","ph":"E","ts":1,"pid":1,"tid":1}])");
    EXPECT_THROW(validate_chrome_trace(events), FormatError);
  }
  // Mismatched nesting names.
  {
    const auto events = parse_chrome_trace(R"([
      {"name":"a","cat":"c","ph":"B","ts":1,"pid":1,"tid":1},
      {"name":"b","cat":"c","ph":"E","ts":2,"pid":1,"tid":1}])");
    EXPECT_THROW(validate_chrome_trace(events), FormatError);
  }
  // Backwards timestamps in one lane.
  {
    const auto events = parse_chrome_trace(R"([
      {"name":"a","cat":"c","ph":"B","ts":5,"pid":1,"tid":1},
      {"name":"a","cat":"c","ph":"E","ts":2,"pid":1,"tid":1}])");
    EXPECT_THROW(validate_chrome_trace(events), FormatError);
  }
  // Dangling B at end of trace.
  {
    const auto events = parse_chrome_trace(
        R"([{"name":"a","cat":"c","ph":"B","ts":1,"pid":1,"tid":1}])");
    EXPECT_THROW(validate_chrome_trace(events), FormatError);
  }
}

TEST_F(TraceTest, SummaryListsEverySpanName) {
  set_enabled(true);
  emit_named_pair();
  set_enabled(false);
  std::ostringstream os;
  write_summary(os, collect());
  const std::string text = os.str();
  EXPECT_NE(text.find("test.outer"), std::string::npos);
  EXPECT_NE(text.find("test.inner"), std::string::npos);
}

// ---- five-layer coverage ---------------------------------------------

TEST_F(TraceTest, TracedEngineRunCoversAllFiveLayers) {
  // A compressed v3 acquisition read collectively and pushed through a
  // distributed row UDF that does real DSP: the resulting trace must
  // contain spans from every layer the tentpole instruments.
  TmpDir dir("tr5");
  std::vector<std::string> files;
  for (int i = 0; i < 2; ++i) {
    io::Dash5Header h;
    h.shape = {8, 64};
    h.layout = io::Layout::kChunked;
    h.chunk = {2, 32};
    h.codec = io::CodecSpec::parse("shuffle+lz");
    std::vector<double> data(h.shape.size());
    for (std::size_t k = 0; k < data.size(); ++k) {
      data[k] = static_cast<double>((k * 13 + static_cast<std::size_t>(i)) %
                                    101);
    }
    const std::string path = dir.file("m" + std::to_string(i) + ".dh5");
    io::dash5_write(path, h, data);
    files.push_back(path);
  }
  io::Vca vca = io::Vca::build(files);

  core::EngineConfig config;
  config.nodes = 2;
  config.cores_per_node = 2;
  config.read_method = core::ReadMethod::kCollectivePerFile;

  set_enabled(true);
  (void)core::run_rows(config, vca, [](const core::RankContext&) {
    return [](const core::Stencil& s) {
      const std::span<const double> row = s.row_span(0);
      const std::vector<dsp::cplx> spec = dsp::rfft_half(row);
      return std::vector<double>{spec.empty() ? 0.0 : std::abs(spec[0])};
    };
  });
  set_enabled(false);

  const std::vector<TraceEvent> events = collect();
  std::set<std::string> cats;
  for (const TraceEvent& e : events) cats.insert(e.cat);
  for (const char* want : {"io", "codec", "cache", "par_read", "haee",
                           "dsp", "mpi"}) {
    EXPECT_TRUE(cats.count(want) == 1)
        << "no '" << want << "' spans in the traced engine run";
  }
  // And the whole thing exports to a valid chrome trace.
  (void)parse_and_validate(export_json());
}

}  // namespace
}  // namespace dassa::trace
