// Tests for shapes, chunking, timers, counters and the KV-backed
// checking macro.
#include <gtest/gtest.h>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/shape.hpp"
#include "dassa/common/timer.hpp"

namespace dassa {
namespace {

TEST(ShapeTest, SizeAndIndexing) {
  const Shape2D s{3, 5};
  EXPECT_EQ(s.size(), 15u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.at(0, 0), 0u);
  EXPECT_EQ(s.at(1, 0), 5u);
  EXPECT_EQ(s.at(2, 4), 14u);
  EXPECT_TRUE((Shape2D{0, 5}).empty());
}

TEST(SlabTest, WholeCoversArray) {
  const Shape2D s{4, 6};
  const Slab2D w = Slab2D::whole(s);
  EXPECT_EQ(w.shape(), s);
  EXPECT_TRUE(w.fits(s));
}

TEST(SlabTest, FitsDetectsOverflow) {
  const Shape2D s{4, 6};
  EXPECT_TRUE((Slab2D{3, 5, 1, 1}).fits(s));
  EXPECT_FALSE((Slab2D{3, 5, 2, 1}).fits(s));
  EXPECT_FALSE((Slab2D{0, 0, 5, 6}).fits(s));
  EXPECT_THROW((Slab2D{0, 0, 5, 6}).validate_against(s), InvalidArgument);
}

TEST(EvenChunkTest, ExactDivision) {
  EXPECT_EQ(even_chunk(12, 4, 0), (Range{0, 3}));
  EXPECT_EQ(even_chunk(12, 4, 3), (Range{9, 12}));
}

TEST(EvenChunkTest, RemainderGoesToFirstChunks) {
  // 10 items over 4 parts: sizes 3,3,2,2.
  EXPECT_EQ(even_chunk(10, 4, 0), (Range{0, 3}));
  EXPECT_EQ(even_chunk(10, 4, 1), (Range{3, 6}));
  EXPECT_EQ(even_chunk(10, 4, 2), (Range{6, 8}));
  EXPECT_EQ(even_chunk(10, 4, 3), (Range{8, 10}));
}

TEST(EvenChunkTest, ChunksPartitionTheRange) {
  for (std::size_t total : {0u, 1u, 7u, 100u, 101u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t i = 0; i < parts; ++i) {
        const Range r = even_chunk(total, parts, i);
        EXPECT_EQ(r.begin, prev_end);
        covered += r.size();
        prev_end = r.end;
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(prev_end, total);
    }
  }
}

TEST(EvenChunkTest, MorePartsThanItems) {
  EXPECT_EQ(even_chunk(2, 5, 0).size(), 1u);
  EXPECT_EQ(even_chunk(2, 5, 1).size(), 1u);
  EXPECT_EQ(even_chunk(2, 5, 4).size(), 0u);
  EXPECT_THROW((void)even_chunk(5, 0, 0), InvalidArgument);
  EXPECT_THROW((void)even_chunk(5, 2, 2), InvalidArgument);
}

TEST(StageTimesTest, AccumulatesAndMerges) {
  StageTimes t;
  t.add("read", 1.0);
  t.add("read", 0.5);
  t.add("compute", 2.0);
  EXPECT_DOUBLE_EQ(t.get("read"), 1.5);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 3.5);

  StageTimes u;
  u.add("write", 1.0);
  t.merge(u);
  EXPECT_DOUBLE_EQ(t.total(), 4.5);
}

TEST(StageScopeTest, ChargesOnExit) {
  StageTimes t;
  {
    StageScope scope(t, "x");
  }
  EXPECT_GE(t.get("x"), 0.0);
  EXPECT_LT(t.get("x"), 1.0);  // just proves it recorded something sane
}

TEST(CounterRegistryTest, AddGetResetSnapshot) {
  CounterRegistry reg;
  EXPECT_EQ(reg.get("a"), 0u);
  reg.add("a");
  reg.add("a", 5);
  reg.add("b", 2);
  EXPECT_EQ(reg.get("a"), 6u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("b"), 2u);
  reg.reset();
  EXPECT_EQ(reg.get("a"), 0u);
}

TEST(CounterRegistryTest, HighWaterKeepsMax) {
  CounterRegistry reg;
  reg.high_water("peak", 10);
  reg.high_water("peak", 3);
  EXPECT_EQ(reg.get("peak"), 10u);
  reg.high_water("peak", 42);
  EXPECT_EQ(reg.get("peak"), 42u);
}

TEST(ErrorTest, CheckMacroThrowsWithContext) {
  try {
    DASSA_CHECK(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorTest, HierarchyRootsAtError) {
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw FormatError("x"), Error);
  EXPECT_THROW(throw MpiError("x"), Error);
  EXPECT_THROW(throw StateError("x"), Error);
}

}  // namespace
}  // namespace dassa
