// Telemetry stress: the background sampler ticking at full speed while
// worker threads hammer the counter registry, the metrics histograms,
// and the gauge registry. Run under TSan by scripts/check.sh; the
// assertions here are about invariants that must survive the races
// (contiguous seq, monotone counters within the timeline).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/telemetry.hpp"

namespace dassa::telemetry {
namespace {

TEST(TelemetryStress, SamplerRacesCountersHistogramsAndGauges) {
  SamplerConfig cfg;
  cfg.period = std::chrono::milliseconds{1};
  TelemetrySampler sampler(cfg);
  sampler.start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([t, &stop] {
      const std::string hist_name =
          "telemetry_stress.worker" + std::to_string(t);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        global_counters().add(counters::kTelemetryRowsProcessed, 1);
        global_metrics().histogram(hist_name).record_ns(100 + i % 1000);
        if (i % 64 == 0) {
          // Re-registering an existing gauge is the documented way for
          // re-created singletons to stay current; race it on purpose.
          register_gauge("telemetry_stress.gauge" + std::to_string(t),
                         [t] { return static_cast<double>(t); });
        }
        if (i % 128 == 0) {
          // Cross-rank style merge racing live recording.
          global_metrics().merge(
              {{hist_name, HistogramSnapshot{}}});
        }
        ++i;
      }
    });
  }

  // Extra manual ticks race the background loop's ticks.
  for (int i = 0; i < 50; ++i) {
    sampler.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  sampler.stop();

  const std::vector<Sample> timeline = sampler.timeline();
  ASSERT_GE(timeline.size(), 50u);
  std::uint64_t prev_rows = 0;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].seq, i);
    const auto it =
        timeline[i].counters.find(counters::kTelemetryRowsProcessed);
    if (it != timeline[i].counters.end()) {
      EXPECT_GE(it->second, prev_rows);
      prev_rows = it->second;
    }
  }
}

}  // namespace
}  // namespace dassa::telemetry
