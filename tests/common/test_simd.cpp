// SIMD kernel parity tests: every vectorized kernel must compute
// exactly the scalar reference on every dispatch level the host can
// run, across random inputs, adversarial streams, and tails that are
// not a multiple of the vector width.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "dassa/common/simd.hpp"

namespace dassa::simd {
namespace {

/// Levels testable on this host: scalar, plus every hardware level the
/// CPU supports (on AVX2 x86 that includes the SSE2 tier).
std::vector<Level> testable_levels() {
  std::vector<Level> out{Level::kScalar};
  const Level best = detect_level();
  if (best == Level::kAvx2) out.push_back(Level::kSse2);
  if (best != Level::kScalar) out.push_back(best);
  return out;
}

class SimdParityTest : public ::testing::Test {
 protected:
  void TearDown() override { set_level(detect_level()); }

  std::mt19937 rng_{20260809};

  std::vector<std::byte> random_bytes(std::size_t n) {
    std::vector<std::byte> v(n);
    std::uniform_int_distribution<int> d(0, 255);
    for (auto& b : v) b = static_cast<std::byte>(d(rng_));
    return v;
  }
};

const std::size_t kSizes[] = {0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 63, 64, 100,
                              1000, 4101};

TEST_F(SimdParityTest, ShuffleMatchesScalarAndRoundtrips) {
  for (const std::size_t es : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                               std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t n : kSizes) {
      const std::vector<std::byte> in = random_bytes(n * es);
      set_level(Level::kScalar);
      std::vector<std::byte> ref(n * es);
      shuffle_bytes(in.data(), ref.data(), n, es);
      for (const Level level : testable_levels()) {
        set_level(level);
        std::vector<std::byte> got(n * es, std::byte{0xAA});
        shuffle_bytes(in.data(), got.data(), n, es);
        ASSERT_EQ(ref, got) << "shuffle es=" << es << " n=" << n
                            << " level=" << level_name(level);
        std::vector<std::byte> back(n * es, std::byte{0x55});
        unshuffle_bytes(got.data(), back.data(), n, es);
        ASSERT_EQ(in, back) << "unshuffle es=" << es << " n=" << n
                            << " level=" << level_name(level);
      }
    }
  }
}

TEST_F(SimdParityTest, UnshuffleMatchesScalar) {
  for (const std::size_t es : {std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t n : kSizes) {
      const std::vector<std::byte> in = random_bytes(n * es);
      set_level(Level::kScalar);
      std::vector<std::byte> ref(n * es);
      unshuffle_bytes(in.data(), ref.data(), n, es);
      for (const Level level : testable_levels()) {
        set_level(level);
        std::vector<std::byte> got(n * es, std::byte{0xAA});
        unshuffle_bytes(in.data(), got.data(), n, es);
        ASSERT_EQ(ref, got) << "es=" << es << " n=" << n
                            << " level=" << level_name(level);
      }
    }
  }
}

TEST_F(SimdParityTest, DeltaZigzagMatchesScalarAndRoundtrips) {
  for (const std::size_t w : {std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t n : kSizes) {
      const std::vector<std::byte> in = random_bytes(n * w);
      set_level(Level::kScalar);
      std::vector<std::byte> ref(n * w);
      if (w == 4) {
        delta_zigzag_w4(in.data(), ref.data(), n);
      } else {
        delta_zigzag_w8(in.data(), ref.data(), n);
      }
      for (const Level level : testable_levels()) {
        set_level(level);
        std::vector<std::byte> got(n * w, std::byte{0xAA});
        std::vector<std::byte> back = got;
        if (w == 4) {
          delta_zigzag_w4(in.data(), got.data(), n);
          back = got;
          unzigzag_prefix_w4(back.data(), n);
        } else {
          delta_zigzag_w8(in.data(), got.data(), n);
          back = got;
          unzigzag_prefix_w8(back.data(), n);
        }
        ASSERT_EQ(ref, got) << "w=" << w << " n=" << n
                            << " level=" << level_name(level);
        ASSERT_EQ(in, back) << "roundtrip w=" << w << " n=" << n
                            << " level=" << level_name(level);
      }
    }
  }
}

/// Lane buffers exercising every varint length class, including the
/// exact lane-width maxima.
std::vector<std::byte> varint_lane_fixture(std::size_t w, std::size_t n,
                                           std::mt19937& rng) {
  std::vector<std::byte> lanes(n * w);
  std::uniform_int_distribution<int> kind(0, 5);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    switch (kind(rng)) {
      case 0:
        v = rng() & 0x7F;  // single byte
        break;
      case 1:
        v = 0x80 + (rng() & 0x3FFF);  // two bytes
        break;
      case 2:
        v = rng();  // up to 32 bits
        break;
      case 3:
        v = w == 4 ? 0xFFFFFFFFULL : ~std::uint64_t{0};  // lane max
        break;
      case 4:
        v = (static_cast<std::uint64_t>(rng()) << 32) | rng();
        if (w == 4) v &= 0xFFFFFFFFULL;
        break;
      default:
        v = 0;
        break;
    }
    std::memcpy(lanes.data() + i * w, &v, w);
  }
  return lanes;
}

TEST_F(SimdParityTest, VarintEncodeDecodeParityAndRoundtrip) {
  for (const std::size_t w : {std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t n : kSizes) {
      const std::vector<std::byte> lanes = varint_lane_fixture(w, n, rng_);
      set_level(Level::kScalar);
      std::vector<std::byte> ref(n * (w == 4 ? 5 : 10) + 8);
      const std::size_t ref_len =
          w == 4 ? varint_encode_w4(lanes.data(), n, ref.data())
                 : varint_encode_w8(lanes.data(), n, ref.data());
      ref.resize(ref_len);
      for (const Level level : testable_levels()) {
        set_level(level);
        std::vector<std::byte> enc(n * (w == 4 ? 5 : 10) + 8);
        const std::size_t len =
            w == 4 ? varint_encode_w4(lanes.data(), n, enc.data())
                   : varint_encode_w8(lanes.data(), n, enc.data());
        enc.resize(len);
        ASSERT_EQ(ref, enc) << "encode w=" << w << " n=" << n
                            << " level=" << level_name(level);
        std::vector<std::byte> dec(n * w, std::byte{0xAA});
        const VarintResult r =
            w == 4 ? varint_decode_w4(enc.data(), enc.size(), dec.data(), n)
                   : varint_decode_w8(enc.data(), enc.size(), dec.data(), n);
        ASSERT_EQ(r.status, VarintStatus::kOk);
        ASSERT_EQ(r.consumed, enc.size());
        ASSERT_EQ(dec, lanes) << "decode w=" << w << " n=" << n
                              << " level=" << level_name(level);
      }
    }
  }
}

TEST_F(SimdParityTest, VarintDecodeRejectsHostileStreams) {
  for (const Level level : testable_levels()) {
    set_level(level);
    std::vector<std::byte> out(64);
    // Truncated: continuation bit set on the final byte.
    const std::byte trunc[] = {std::byte{0x80}};
    EXPECT_EQ(varint_decode_w4(trunc, 1, out.data(), 1).status,
              VarintStatus::kTruncated);
    EXPECT_EQ(varint_decode_w8(trunc, 1, out.data(), 1).status,
              VarintStatus::kTruncated);
    // Empty input but lanes requested.
    EXPECT_EQ(varint_decode_w4(trunc, 0, out.data(), 1).status,
              VarintStatus::kTruncated);
    // Overlong for u32: 5th byte carries bits above bit 31.
    const std::byte over32[] = {std::byte{0x80}, std::byte{0x80},
                                std::byte{0x80}, std::byte{0x80},
                                std::byte{0x10}};
    EXPECT_EQ(varint_decode_w4(over32, 5, out.data(), 1).status,
              VarintStatus::kOverlong);
    // Exactly 2^32 - 1 is fine for u32.
    const std::byte max32[] = {std::byte{0xFF}, std::byte{0xFF},
                               std::byte{0xFF}, std::byte{0xFF},
                               std::byte{0x0F}};
    const VarintResult ok = varint_decode_w4(max32, 5, out.data(), 1);
    EXPECT_EQ(ok.status, VarintStatus::kOk);
    std::uint32_t v = 0;
    std::memcpy(&v, out.data(), 4);
    EXPECT_EQ(v, 0xFFFFFFFFu);
    // Overlong for u64: 10th byte with anything above bit 63.
    std::vector<std::byte> over64(10, std::byte{0x80});
    over64[9] = std::byte{0x02};
    EXPECT_EQ(varint_decode_w8(over64.data(), 10, out.data(), 1).status,
              VarintStatus::kOverlong);
    // Unterminated 10-byte run.
    std::vector<std::byte> unterm(10, std::byte{0x80});
    EXPECT_EQ(varint_decode_w8(unterm.data(), 10, out.data(), 1).status,
              VarintStatus::kOverlong);
    // An all-small word straddling the fast path boundary decodes.
    std::vector<std::byte> small(16, std::byte{0x05});
    const VarintResult r = varint_decode_w4(small.data(), 16, out.data(), 9);
    EXPECT_EQ(r.status, VarintStatus::kOk);
    EXPECT_EQ(r.consumed, 9u);
  }
}

TEST_F(SimdParityTest, MatchLengthExactAtEveryDivergence) {
  const std::size_t n = 200;
  for (const Level level : testable_levels()) {
    set_level(level);
    for (const std::size_t diverge :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
          std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{63},
          std::size_t{199}}) {
      std::vector<std::byte> a = random_bytes(n);
      std::vector<std::byte> b = a;
      b[diverge] = static_cast<std::byte>(static_cast<int>(b[diverge]) ^ 1);
      EXPECT_EQ(match_length(a.data(), b.data(), n), diverge)
          << "level=" << level_name(level);
      EXPECT_EQ(match_length(a.data(), b.data(), diverge), diverge);
      EXPECT_EQ(match_length(a.data(), a.data(), n), n);
    }
  }
}

TEST_F(SimdParityTest, CopyMatchHandlesOverlappingDistances) {
  for (const Level level : testable_levels()) {
    set_level(level);
    for (std::size_t dist = 1; dist <= 20; ++dist) {
      for (const std::size_t n :
           {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{8},
            std::size_t{13}, std::size_t{64}, std::size_t{200}}) {
        // Buffer: `dist` seed bytes, then n produced bytes + slack.
        std::vector<std::byte> buf(dist + n + kCopySlack, std::byte{0});
        for (std::size_t i = 0; i < dist; ++i) {
          buf[i] = static_cast<std::byte>(i + 1);
        }
        std::vector<std::byte> ref = buf;
        // Reference: strict byte-serial semantics.
        for (std::size_t k = 0; k < n; ++k) {
          ref[dist + k] = ref[k];
        }
        copy_match(buf.data() + dist, dist, n);
        ASSERT_TRUE(std::memcmp(buf.data(), ref.data(), dist + n) == 0)
            << "dist=" << dist << " n=" << n
            << " level=" << level_name(level);
      }
    }
  }
}

TEST_F(SimdParityTest, LevelDispatchIsClampedToHardware) {
  // Request a level the other architecture owns; it must clamp.
  set_level(detect_level() == Level::kNeon ? Level::kAvx2 : Level::kNeon);
  EXPECT_EQ(active_level(), detect_level());
  set_level(Level::kScalar);
  EXPECT_EQ(active_level(), Level::kScalar);
}

}  // namespace
}  // namespace dassa::simd
