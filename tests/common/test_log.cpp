// Logger tests: level filtering, thread safety of concurrent emission.
#include "dassa/common/log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dassa {
namespace {

/// Restores the global log level on scope exit so tests don't leak
/// configuration into each other.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(LogTest, LevelRoundTrip) {
  LevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(LogTest, MacroCompilesAndFiltersBelowThreshold) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);
  // These must not crash and (by the macro's design) must not even
  // evaluate the stream expression when filtered.
  bool evaluated = false;
  auto touch = [&evaluated]() {
    evaluated = true;
    return "body";
  };
  DASSA_LOG(kDebug) << touch();
  EXPECT_FALSE(evaluated);  // filtered before evaluation
  set_log_level(LogLevel::kDebug);
  DASSA_LOG(kDebug) << touch();
  EXPECT_TRUE(evaluated);
}

TEST(LogTest, ConcurrentLoggingDoesNotCrash) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);  // keep the test output quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        DASSA_LOG(kInfo) << "thread " << t << " message " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace dassa
