// Logger tests: level filtering, thread safety of concurrent emission,
// structured fields, the warn/error ring, and the JSONL file sink.
#include "dassa/common/log.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <thread>
#include <vector>

#include "dassa/common/error.hpp"
#include "testing/tmpdir.hpp"

namespace dassa {
namespace {

/// Restores the global log level on scope exit so tests don't leak
/// configuration into each other.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(LogTest, LevelRoundTrip) {
  LevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(LogTest, MacroCompilesAndFiltersBelowThreshold) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);
  // These must not crash and (by the macro's design) must not even
  // evaluate the stream expression when filtered.
  bool evaluated = false;
  auto touch = [&evaluated]() {
    evaluated = true;
    return "body";
  };
  DASSA_LOG(kDebug) << touch();
  EXPECT_FALSE(evaluated);  // filtered before evaluation
  set_log_level(LogLevel::kDebug);
  DASSA_LOG(kDebug) << touch();
  EXPECT_TRUE(evaluated);
}

TEST(LogTest, ConcurrentLoggingDoesNotCrash) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);  // keep the test output quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        DASSA_LOG(kInfo) << "thread " << t << " message " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(LogTest, StructuredRecordCarriesEventAndTypedFields) {
  LevelGuard guard;
  set_log_level(LogLevel::kWarn);
  DASSA_SLOG(kWarn, "test.structured")
          .field("files", std::uint64_t{42})
          .field("ratio", 2.5)
          .field("ok", true)
          .field("path", "a/b.dh5")
      << "structured message";

  const std::vector<LogRecord> ring = recent_errors();
  ASSERT_FALSE(ring.empty());
  const LogRecord& rec = ring.back();
  EXPECT_EQ(rec.event, "test.structured");
  EXPECT_EQ(rec.message, "structured message");
  EXPECT_EQ(rec.level, LogLevel::kWarn);
  EXPECT_GT(rec.wall_seconds, 0.0);
  ASSERT_EQ(rec.fields.size(), 4u);
  EXPECT_EQ(rec.fields[0].key, "files");
  EXPECT_EQ(rec.fields[0].value, "42");
  EXPECT_FALSE(rec.fields[0].quoted);
  EXPECT_EQ(rec.fields[2].value, "true");
  EXPECT_EQ(rec.fields[3].value, "a/b.dh5");
  EXPECT_TRUE(rec.fields[3].quoted);
}

TEST(LogTest, ErrorRingKeepsOnlyWarnAndAboveAndHonorsCapacity) {
  LevelGuard guard;
  set_log_level(LogLevel::kDebug);
  set_error_ring_capacity(4);
  DASSA_SLOG(kInfo, "test.ring.info") << "not retained";
  for (int i = 0; i < 6; ++i) {
    DASSA_SLOG(kError, "test.ring.err").field("i", i) << "boom";
  }
  const std::vector<LogRecord> ring = recent_errors();
  ASSERT_EQ(ring.size(), 4u);
  for (const LogRecord& rec : ring) {
    EXPECT_EQ(rec.event, "test.ring.err");  // info record never entered
  }
  // Oldest first: the retained records are i = 2..5.
  EXPECT_EQ(ring.front().fields.at(0).value, "2");
  EXPECT_EQ(ring.back().fields.at(0).value, "5");
  set_error_ring_capacity(128);  // restore the default for later tests
}

TEST(LogTest, RecordsEmittedCountsOnlyUnfiltered) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);
  const std::uint64_t before = log_records_emitted();
  DASSA_LOG(kDebug) << "filtered";
  EXPECT_EQ(log_records_emitted(), before);
  DASSA_LOG(kError) << "emitted";
  EXPECT_EQ(log_records_emitted(), before + 1);
}

TEST(LogTest, JsonlSinkWritesOneParsableObjectPerRecord) {
  LevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::TmpDir dir("log");
  const std::string path = dir.file("run.log.jsonl");
  set_log_file(path);
  DASSA_SLOG(kInfo, "test.jsonl")
          .field("n", std::uint64_t{3})
          .field("what", "x\"y")  // must be escaped in the sink
      << "line one";
  DASSA_SLOG(kWarn, "test.jsonl2") << "line two";
  set_log_file("");  // close the sink so the file is flushed

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"test.jsonl\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"n\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("x\\\"y"), std::string::npos);
  EXPECT_NE(lines[0].find("\"msg\":\"line one\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":\"warn\""), std::string::npos);
}

TEST(LogTest, SetLogFileRejectsUnwritablePath) {
  EXPECT_THROW(set_log_file("/nonexistent_dir_xyz/log.jsonl"), Error);
}

TEST(LogTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "debug");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "info");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "warn");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "error");
}

}  // namespace
}  // namespace dassa
