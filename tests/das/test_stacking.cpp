// Windowed stacking tests: window arithmetic, the sqrt(W) SNR property
// that motivates stacking, coherent-lag recovery, and distributed
// equivalence.
#include "dassa/das/stacking.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dassa/das/synth.hpp"
#include "dassa/dsp/correlate.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::das {
namespace {

using testing::TmpDir;

StackingParams test_params(std::size_t window = 256) {
  StackingParams p;
  p.base.sampling_hz = 100.0;
  p.base.butter_order = 2;
  p.base.band_lo_hz = 2.0;
  p.base.band_hi_hz = 30.0;
  p.base.resample_down = 2;
  p.window_samples = window;
  return p;
}

TEST(StackingTest, WindowCountArithmetic) {
  StackingParams p = test_params(100);
  EXPECT_EQ(stack_window_count(1000, p), 10u);
  EXPECT_EQ(stack_window_count(1050, p), 10u);
  EXPECT_EQ(stack_window_count(99, p), 0u);
  p.window_hop = 50;  // 50% overlap
  EXPECT_EQ(stack_window_count(1000, p), 19u);
}

TEST(StackingTest, ValidatesParameters) {
  StackingParams p = test_params(4);  // too small
  EXPECT_THROW((void)stack_window_count(100, p), InvalidArgument);
  p = test_params(256);
  const std::vector<double> a(300, 0.0);
  const std::vector<double> b(200, 0.0);
  EXPECT_THROW((void)stacked_ncf(a, b, p), InvalidArgument);  // lengths
  const std::vector<double> small(100, 0.0);
  EXPECT_THROW((void)stacked_ncf(small, small, p), InvalidArgument);
}

TEST(StackingTest, SingleWindowEqualsPlainNcf) {
  const StackingParams p = test_params(256);
  std::mt19937_64 rng(3);
  std::normal_distribution<double> dist;
  std::vector<double> ch(256);
  std::vector<double> ms(256);
  for (std::size_t i = 0; i < 256; ++i) {
    ch[i] = dist(rng);
    ms[i] = dist(rng);
  }
  const std::vector<double> stacked = stacked_ncf(ch, ms, p);
  const std::vector<double> plain = dsp::xcorr_spectra(
      interferometry_spectrum(ch, p.base),
      interferometry_spectrum(ms, p.base));
  ASSERT_EQ(stacked.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(stacked[i], plain[i], 1e-12);
  }
}

TEST(StackingTest, StackingSuppressesIncoherentNoise) {
  // Channel = master + independent noise. The coherent part (zero-lag
  // peak) survives stacking; incoherent side-lobes average down, so the
  // peak-to-sidelobe ratio must IMPROVE with more windows.
  const std::size_t window = 256;
  std::mt19937_64 rng(7);
  std::normal_distribution<double> dist;

  // Ambient-noise premise: both channels record the same broadband
  // noise excitation (zero lag), buried under stronger independent
  // noise. Periodic signals would have coherent side lobes that do not
  // stack down, so the shared component must be aperiodic.
  auto ratio_for = [&](std::size_t n_windows) {
    const std::size_t n = window * n_windows;
    std::vector<double> master(n);
    std::vector<double> channel(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double common = dist(rng);
      master[i] = common + 2.0 * dist(rng);
      channel[i] = common + 2.0 * dist(rng);  // independent noise
    }
    const std::vector<double> ncf =
        stacked_ncf(channel, master, test_params(window));
    const double peak = std::abs(ncf[0]);
    double side = 0.0;
    for (std::size_t i = ncf.size() / 4; i < ncf.size() / 2; ++i) {
      side = std::max(side, std::abs(ncf[i]));
    }
    return peak / side;
  };

  const double r1 = ratio_for(1);
  const double r16 = ratio_for(16);
  EXPECT_GT(r16, 1.5 * r1);  // clear SNR gain from stacking (~sqrt(16))
}

TEST(StackingTest, IdenticalChannelPeaksAtZeroLag) {
  const std::size_t n = 1024;
  std::mt19937_64 rng(9);
  std::normal_distribution<double> dist;
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  const std::vector<double> ncf = stacked_ncf(x, x, test_params(256));
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < ncf.size(); ++i) {
    if (std::abs(ncf[i]) > std::abs(ncf[argmax])) argmax = i;
  }
  EXPECT_EQ(argmax, 0u);  // autocorrelation peaks at zero lag
  EXPECT_GT(ncf[0], 0.0);
}

TEST(StackingTest, DistributedMatchesSerial) {
  TmpDir dir("stack");
  const SynthDas synth = SynthDas::fig1b_scene(10, 100.0, 19);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.start = Timestamp::parse("170728224510");
  spec.file_count = 2;
  spec.seconds_per_file = 6.0;
  spec.dtype = io::DType::kF64;
  spec.per_channel_metadata = false;
  io::Vca vca = io::Vca::build(write_acquisition(synth, spec));

  StackingParams p = test_params(256);
  p.base.master_channel = 4;

  // Serial reference.
  const core::Array2D data(vca.shape(), vca.read_all());
  std::vector<double> master(data.row(4).begin(), data.row(4).end());

  core::EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  const core::EngineReport report = stacking_distributed(config, vca, p);
  ASSERT_EQ(report.output.shape.rows, 10u);
  for (std::size_t ch = 0; ch < 10; ++ch) {
    const std::vector<double> expect = stacked_ncf(
        data.row(ch), master, p);
    ASSERT_EQ(report.output.shape.cols, expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_NEAR(report.output.at(ch, i), expect[i], 1e-9)
          << "ch=" << ch << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace dassa::das
