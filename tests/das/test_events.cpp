// Event detection tests: synthetic similarity maps with known
// footprints must come back as the right events with the right classes,
// and the full stack (synthetic wavefield -> Algorithm 2 -> detector)
// must recover the Fig. 1b scene.
#include "dassa/das/events.hpp"

#include <gtest/gtest.h>

#include <random>

#include "dassa/das/local_similarity.hpp"
#include "dassa/das/synth.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::das {
namespace {

using testing::TmpDir;

/// A noise-floor map with optional painted footprints.
core::Array2D noise_map(Shape2D shape, double floor = 0.3,
                        std::uint64_t seed = 2) {
  core::Array2D map(shape);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.8 * floor, 1.2 * floor);
  for (auto& v : map.data) v = dist(rng);
  return map;
}

void paint(core::Array2D& map, std::size_t ch_lo, std::size_t ch_hi,
           std::size_t t_lo, std::size_t t_hi, double value) {
  for (std::size_t r = ch_lo; r <= ch_hi; ++r) {
    for (std::size_t c = t_lo; c <= t_hi; ++c) {
      map.at(r, c) = value;
    }
  }
}

TEST(DetectEventsTest, PureNoiseYieldsNothing) {
  const core::Array2D map = noise_map({40, 400});
  EXPECT_TRUE(detect_events(map).empty());
}

TEST(DetectEventsTest, VerticalStripeIsEarthquake) {
  core::Array2D map = noise_map({50, 1000});
  paint(map, 2, 47, 500, 540, 0.9);  // 92% of channels, 4% of time
  const auto events = detect_events(map);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventClass::kEarthquake);
  EXPECT_LE(events[0].channel_lo, 2u);
  EXPECT_GE(events[0].channel_hi, 47u);
  EXPECT_NEAR(static_cast<double>(events[0].time_lo), 500.0, 2.0);
  EXPECT_GT(events[0].peak_similarity, 0.85);
}

TEST(DetectEventsTest, HorizontalBandIsPersistent) {
  core::Array2D map = noise_map({50, 1000});
  paint(map, 20, 23, 0, 999, 0.8);  // 8% of channels, whole record
  const auto events = detect_events(map);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventClass::kPersistent);
}

TEST(DetectEventsTest, SlantedTrackIsVehicleWithSpeed) {
  core::Array2D map = noise_map({60, 1200});
  // A track moving +1 channel every 20 samples: slope 0.05 ch/sample.
  for (std::size_t t = 100; t < 1100; ++t) {
    const std::size_t ch = 5 + (t - 100) / 20;
    if (ch + 1 >= 60) break;
    map.at(ch, t) = 0.85;
    map.at(ch + 1, t) = 0.85;
  }
  const auto events = detect_events(map);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventClass::kVehicle);
  EXPECT_NEAR(events[0].slope_channels_per_sample, 0.05, 0.01);
}

TEST(DetectEventsTest, CrossingEventsAreSeparated) {
  // A quake stripe CROSSES a persistent band (as in Fig. 10, where the
  // earthquake intersects the persistent vibration): the projection
  // detector must still report both, not one merged blob.
  core::Array2D map = noise_map({64, 2000});
  paint(map, 30, 33, 0, 1999, 0.75);  // persistent band
  paint(map, 2, 61, 900, 980, 0.9);   // quake, crossing the band
  const auto events = detect_events(map);
  ASSERT_GE(events.size(), 2u);
  bool has_quake = false;
  bool has_persistent = false;
  for (const auto& e : events) {
    has_quake |= e.type == EventClass::kEarthquake;
    has_persistent |= e.type == EventClass::kPersistent;
  }
  EXPECT_TRUE(has_quake);
  EXPECT_TRUE(has_persistent);
}

TEST(DetectEventsTest, VehicleCrossingQuakeStillSeparated) {
  core::Array2D map = noise_map({64, 2000});
  // Vehicle track active through the quake's window.
  for (std::size_t t = 200; t < 1800; ++t) {
    const std::size_t ch = 2 + (t - 200) / 30;
    if (ch + 1 >= 64) break;
    map.at(ch, t) = 0.8;
    map.at(ch + 1, t) = 0.8;
  }
  paint(map, 2, 61, 900, 980, 0.9);  // quake crossing the track
  const auto events = detect_events(map);
  bool has_quake = false;
  bool has_vehicle = false;
  for (const auto& e : events) {
    has_quake |= e.type == EventClass::kEarthquake;
    has_vehicle |= e.type == EventClass::kVehicle;
  }
  EXPECT_TRUE(has_quake);
  EXPECT_TRUE(has_vehicle);
}

TEST(DetectEventsTest, SmallBlobsFiltered) {
  core::Array2D map = noise_map({40, 400});
  paint(map, 10, 12, 50, 54, 0.9);  // 15 cells < min_cells
  EXPECT_TRUE(detect_events(map).empty());
  DetectorParams p;
  p.min_cells = 10;
  EXPECT_EQ(detect_events(map, p).size(), 1u);
}

TEST(DetectEventsTest, ValidatesInputs) {
  EXPECT_THROW((void)detect_events(core::Array2D{}), InvalidArgument);
  DetectorParams p;
  p.noise_floor_multiplier = 0.9;
  EXPECT_THROW((void)detect_events(noise_map({4, 4}), p), InvalidArgument);
}

TEST(DetectEventsTest, DescribeIncludesClassAndTimes) {
  DetectedEvent e;
  e.type = EventClass::kVehicle;
  e.channel_lo = 3;
  e.channel_hi = 9;
  e.time_lo = 100;
  e.time_hi = 200;
  e.peak_similarity = 0.8;
  e.slope_channels_per_sample = 0.05;
  const std::string text = describe(e, 50.0);
  EXPECT_NE(text.find("vehicle"), std::string::npos);
  EXPECT_NE(text.find("ch[3,9]"), std::string::npos);
  EXPECT_NE(text.find("2s"), std::string::npos);     // 100 / 50 Hz
  EXPECT_NE(text.find("speed"), std::string::npos);  // 0.05*50 = 2.5 ch/s
}

TEST(DetectEventsTest, FullStackRecoversFig1bScene) {
  // Synthetic wavefield -> Algorithm 2 -> detector: the quake and the
  // persistent source must be found and classified. (Vehicles in the
  // fig1b scene produce near-vertical similarity tracks at this scale;
  // their classification is covered by the synthetic-map test above.)
  TmpDir dir("events");
  const std::size_t channels = 64;
  const double rate = 20.0;
  const SynthDas synth = SynthDas::fig1b_scene(channels, rate, 17);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.start = Timestamp::parse("170728224510");
  spec.file_count = 6;
  spec.seconds_per_file = 60.0;  // the full 6-minute record
  spec.per_channel_metadata = false;
  io::Vca vca = io::Vca::build(write_acquisition(synth, spec));

  LocalSimilarityParams p;
  p.window_half = 10;
  p.lag_half = 8;
  core::EngineConfig config;
  config.nodes = 4;
  config.cores_per_node = 2;
  const core::EngineReport report =
      local_similarity_distributed(config, vca, p);

  const auto events = detect_events(report.output);
  ASSERT_FALSE(events.empty());

  bool quake_found = false;
  bool persistent_found = false;
  for (const auto& e : events) {
    if (e.type == EventClass::kEarthquake) {
      quake_found = true;
      // Origin 210 s + ~3.4 s travel at 20 Hz.
      EXPECT_NEAR(static_cast<double>(e.time_lo) / rate, 213.0, 8.0);
    }
    if (e.type == EventClass::kPersistent) {
      persistent_found = true;
      // The hum sits at 78-82% of the array.
      EXPECT_GE(e.channel_lo, static_cast<std::size_t>(0.7 * channels));
      EXPECT_LE(e.channel_hi, static_cast<std::size_t>(0.9 * channels));
    }
  }
  EXPECT_TRUE(quake_found);
  EXPECT_TRUE(persistent_found);
}

}  // namespace
}  // namespace dassa::das
