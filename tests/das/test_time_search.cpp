// Timestamp + das_search catalog tests (paper Section IV-A).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/das/search.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/das/time.hpp"
#include "dassa/io/interval_index.hpp"
#include "dassa/io/vca.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::das {
namespace {

using testing::TmpDir;

TEST(TimestampTest, ParseFormatRoundTrip) {
  for (const std::string s :
       {"170620100545", "170728224510", "000101000000", "991231235959"}) {
    EXPECT_EQ(Timestamp::parse(s).str(), s);
  }
}

TEST(TimestampTest, ParseRejectsMalformed) {
  EXPECT_THROW((void)Timestamp::parse("17062010054"), InvalidArgument);
  EXPECT_THROW((void)Timestamp::parse("1706201005456"), InvalidArgument);
  EXPECT_THROW((void)Timestamp::parse("17062010054x"), InvalidArgument);
  EXPECT_THROW((void)Timestamp::parse("171320100545"), InvalidArgument);  // month 13
  EXPECT_THROW((void)Timestamp::parse("170620106045"), InvalidArgument);  // minute 60
}

TEST(TimestampTest, PlusSecondsWithinMinute) {
  const Timestamp t = Timestamp::parse("170728224510");
  EXPECT_EQ(t.plus_seconds(30).str(), "170728224540");
}

TEST(TimestampTest, PlusSecondsRollsMinutesHoursDays) {
  const Timestamp t = Timestamp::parse("170728235950");
  EXPECT_EQ(t.plus_seconds(10).str(), "170729000000");
  EXPECT_EQ(t.plus_seconds(70).str(), "170729000100");
  EXPECT_EQ(t.plus_seconds(86400).str(), "170729235950");
}

TEST(TimestampTest, MonthAndYearBoundaries) {
  EXPECT_EQ(Timestamp::parse("171231235959").plus_seconds(1).str(),
            "180101000000");
  EXPECT_EQ(Timestamp::parse("170630235959").plus_seconds(1).str(),
            "170701000000");
  // 2020 is a leap year.
  EXPECT_EQ(Timestamp::parse("200228235959").plus_seconds(1).str(),
            "200229000000");
  // 2017 is not.
  EXPECT_EQ(Timestamp::parse("170228235959").plus_seconds(1).str(),
            "170301000000");
}

TEST(TimestampTest, OrderingFollowsTime) {
  EXPECT_LT(Timestamp::parse("170728224510"),
            Timestamp::parse("170728224511"));
  EXPECT_LT(Timestamp::parse("170728235959"),
            Timestamp::parse("170729000000"));
  EXPECT_EQ(Timestamp::parse("170728224510"),
            Timestamp::parse("170728224510"));
}

TEST(TimestampTest, EpochSecondsDifferencesAreExact) {
  const Timestamp a = Timestamp::parse("170728224510");
  EXPECT_EQ(a.plus_seconds(3600).epoch_seconds() - a.epoch_seconds(), 3600);
  EXPECT_EQ(a.plus_seconds(-60).epoch_seconds(), a.epoch_seconds() - 60);
}

/// Ten 1-"minute" files (scaled to 0.1 s) starting at the paper's
/// example timestamp 170728224510, stepping 60 s... no: stepping
/// seconds_per_file. Use 60 s steps explicitly via seconds_per_file=60
/// but tiny sampling rate so files stay small.
struct CatalogFixture {
  TmpDir dir{"search"};
  std::vector<std::string> paths;

  CatalogFixture() {
    SynthDas synth = SynthDas::fig1b_scene(4, 0.2, 1);  // 12 samples/min
    AcquisitionSpec spec;
    spec.dir = dir.str();
    spec.start = Timestamp::parse("170728224510");
    spec.file_count = 10;
    spec.seconds_per_file = 60.0;
    spec.per_channel_metadata = false;
    paths = write_acquisition(synth, spec);
  }
};

TEST(CatalogTest, ScanFindsAllFilesSorted) {
  CatalogFixture fx;
  const Catalog cat = Catalog::scan(fx.dir.str());
  ASSERT_EQ(cat.size(), 10u);
  for (std::size_t i = 1; i < cat.size(); ++i) {
    EXPECT_LT(cat.entries()[i - 1].timestamp, cat.entries()[i].timestamp);
  }
  EXPECT_EQ(cat.entries()[0].timestamp.str(), "170728224510");
  EXPECT_EQ(cat.entries()[9].timestamp.str(), "170728225410");
}

TEST(CatalogTest, FilenameScanMatchesHeaderScan) {
  CatalogFixture fx;
  const Catalog with_headers = Catalog::scan(fx.dir.str(), true);
  const Catalog names_only = Catalog::scan(fx.dir.str(), false);
  ASSERT_EQ(with_headers.size(), names_only.size());
  for (std::size_t i = 0; i < with_headers.size(); ++i) {
    EXPECT_EQ(with_headers.entries()[i].timestamp,
              names_only.entries()[i].timestamp);
    EXPECT_EQ(with_headers.entries()[i].path, names_only.entries()[i].path);
  }
}

// The names-only scan is the das_search fast path for huge spools: it
// must stay a pure directory-entry walk. Pinned here via the io.*
// counters -- any Dash5File open or read in the names-only branch
// would bump them.
TEST(CatalogTest, NamesOnlyScanOpensNoFiles) {
  CatalogFixture fx;
  auto& ctr = global_counters();
  const std::uint64_t opens_before = ctr.get(counters::kIoOpens);
  const std::uint64_t reads_before = ctr.get(counters::kIoReadCalls);
  const Catalog names_only = Catalog::scan(fx.dir.str(), false);
  EXPECT_EQ(names_only.size(), 10u);
  EXPECT_EQ(ctr.get(counters::kIoOpens), opens_before);
  EXPECT_EQ(ctr.get(counters::kIoReadCalls), reads_before);
  // Sanity check that the pin is meaningful: the header scan of the
  // same directory does open and read every file.
  const Catalog with_headers = Catalog::scan(fx.dir.str(), true);
  EXPECT_GE(ctr.get(counters::kIoOpens), opens_before + 10);
  EXPECT_GE(ctr.get(counters::kIoReadCalls), reads_before + 10);
}

TEST(CatalogTest, RangeQueryPaperExample) {
  // Paper: das_search -s 170728224510 -c 2 returns the file at the
  // timestamp plus the next one.
  CatalogFixture fx;
  const Catalog cat = Catalog::scan(fx.dir.str());
  const auto hits = cat.query_range(Timestamp::parse("170728224510"), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].timestamp.str(), "170728224510");
  EXPECT_EQ(hits[1].timestamp.str(), "170728224610");
}

TEST(CatalogTest, RangeQuerySnapsToNextFile) {
  CatalogFixture fx;
  const Catalog cat = Catalog::scan(fx.dir.str());
  // A timestamp between files snaps forward.
  const auto hits = cat.query_range(Timestamp::parse("170728224530"), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].timestamp.str(), "170728224610");
}

TEST(CatalogTest, RangeQueryClampsAtEnd) {
  CatalogFixture fx;
  const Catalog cat = Catalog::scan(fx.dir.str());
  const auto hits = cat.query_range(Timestamp::parse("170728225310"), 99);
  EXPECT_EQ(hits.size(), 2u);  // only two files remain
  const auto none = cat.query_range(Timestamp::parse("180101000000"), 5);
  EXPECT_TRUE(none.empty());
}

TEST(CatalogTest, IntervalQuery) {
  CatalogFixture fx;
  const Catalog cat = Catalog::scan(fx.dir.str());
  const auto hits = cat.query_interval(Timestamp::parse("170728224610"),
                                       Timestamp::parse("170728224910"));
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].timestamp.str(), "170728224610");
  EXPECT_EQ(hits[2].timestamp.str(), "170728224810");
}

TEST(CatalogTest, RegexQueryPaperExample) {
  // Paper: das_search -e 170728224[567]10.
  CatalogFixture fx;
  const Catalog cat = Catalog::scan(fx.dir.str());
  const auto hits = cat.query_regex("170728224[567]10");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].timestamp.str(), "170728224510");
  EXPECT_EQ(hits[1].timestamp.str(), "170728224610");
  EXPECT_EQ(hits[2].timestamp.str(), "170728224710");
}

TEST(CatalogTest, RegexMatchesWholeString) {
  CatalogFixture fx;
  const Catalog cat = Catalog::scan(fx.dir.str());
  EXPECT_TRUE(cat.query_regex("2245").empty());      // substring: no match
  EXPECT_EQ(cat.query_regex(".*2245.*").size(), 1u);  // explicit wildcard
}

TEST(CatalogTest, PathsHelper) {
  CatalogFixture fx;
  const Catalog cat = Catalog::scan(fx.dir.str());
  const auto hits = cat.query_range(Timestamp::parse("170728224510"), 3);
  const auto paths = Catalog::paths(hits);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], hits[0].path);
}

TEST(CatalogTest, IgnoresForeignFiles) {
  CatalogFixture fx;
  {
    std::ofstream((fx.dir.file("README.txt"))) << "not a das file";
    std::ofstream((fx.dir.file("noise.dh5.bak"))) << "also not";
  }
  EXPECT_EQ(Catalog::scan(fx.dir.str(), false).size(), 10u);
}

// ---- query_vca_interval: indexed path vs. linear fallback ---------

/// The CatalogFixture acquisition published as a VCA + .tix sidecar,
/// the way das_search --save-vca / das_ingest republish archives.
struct VcaIntervalFixture : CatalogFixture {
  std::string vca_path;
  std::string tix_path;

  VcaIntervalFixture() {
    vca_path = dir.file("arch.vca");
    save_vca_with_index(io::Vca::build(paths), vca_path);
    tix_path = io::IntervalIndex::sidecar_path(vca_path);
  }
};

/// [170728224610, 170728224910) overlaps exactly the three members
/// starting at 224610, 224710, 224810 (each file spans 60 s).
void expect_paper_interval_hits(const std::vector<DasFileInfo>& hits) {
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].timestamp.str(), "170728224610");
  EXPECT_EQ(hits[1].timestamp.str(), "170728224710");
  EXPECT_EQ(hits[2].timestamp.str(), "170728224810");
}

TEST(VcaIntervalTest, SidecarQueryIsSubLinearAndNeverFallsBack) {
  VcaIntervalFixture fx;
  ASSERT_TRUE(std::filesystem::exists(fx.tix_path));
  auto& ctr = global_counters();
  const std::uint64_t fallbacks = ctr.get(counters::kIoIndexFallbacks);
  const std::uint64_t touches = ctr.get(counters::kIoIndexEntryTouches);
  const std::uint64_t loads = ctr.get(counters::kIoIndexLoads);

  expect_paper_interval_hits(Catalog::query_vca_interval(
      fx.vca_path, Timestamp::parse("170728224610"),
      Timestamp::parse("170728224910")));

  EXPECT_EQ(ctr.get(counters::kIoIndexFallbacks), fallbacks);
  EXPECT_EQ(ctr.get(counters::kIoIndexLoads), loads + 1);
  // Binary search over 10 entries plus the 3 hits -- well under the
  // member count the linear fallback would charge.
  const std::uint64_t spent = ctr.get(counters::kIoIndexEntryTouches) - touches;
  EXPECT_GT(spent, 0u);
  EXPECT_LT(spent, 10u);
}

TEST(VcaIntervalTest, MissingSidecarFallsBackToSameAnswer) {
  VcaIntervalFixture fx;
  const Timestamp begin = Timestamp::parse("170728224610");
  const Timestamp end = Timestamp::parse("170728224910");
  const auto indexed = Catalog::query_vca_interval(fx.vca_path, begin, end);

  ASSERT_TRUE(std::filesystem::remove(fx.tix_path));
  auto& ctr = global_counters();
  const std::uint64_t fallbacks = ctr.get(counters::kIoIndexFallbacks);
  const std::uint64_t touches = ctr.get(counters::kIoIndexEntryTouches);

  const auto scanned = Catalog::query_vca_interval(fx.vca_path, begin, end);
  expect_paper_interval_hits(scanned);
  ASSERT_EQ(scanned.size(), indexed.size());
  for (std::size_t i = 0; i < scanned.size(); ++i) {
    EXPECT_EQ(scanned[i].path, indexed[i].path);
    EXPECT_EQ(scanned[i].timestamp, indexed[i].timestamp);
  }
  EXPECT_EQ(ctr.get(counters::kIoIndexFallbacks), fallbacks + 1);
  // The fallback derives every member's extent: one touch per member.
  EXPECT_EQ(ctr.get(counters::kIoIndexEntryTouches), touches + 10);
}

TEST(VcaIntervalTest, CorruptSidecarIsCorruptionNotAbsence) {
  VcaIntervalFixture fx;
  {
    // Flip a payload byte past the magic: the CRC must catch it.
    std::fstream f(fx.tix_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    char b = 0;
    f.seekg(20);
    f.get(b);
    f.seekp(20);
    f.put(static_cast<char>(b ^ 0x5a));
  }
  EXPECT_THROW((void)Catalog::query_vca_interval(
                   fx.vca_path, Timestamp::parse("170728224610"),
                   Timestamp::parse("170728224910")),
               FormatError);
}

}  // namespace
}  // namespace dassa::das
