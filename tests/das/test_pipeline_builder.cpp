// ChannelPipeline builder tests: stage composition, equivalence with
// the hand-written Algorithm 3 chain, immutability of built UDFs,
// validation, HAEE execution.
#include "dassa/das/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dassa/das/interferometry.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/dsp/daslib.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::das {
namespace {

using testing::TmpDir;

std::vector<double> noisy_signal(std::size_t n, std::uint64_t seed = 5) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 3.0 + 0.01 * static_cast<double>(i) + dist(rng) +
           2.0 * std::sin(2.0 * std::numbers::pi * 10.0 *
                          static_cast<double>(i) / 100.0);
  }
  return x;
}

TEST(PipelineBuilderTest, EmptyPipelineIsIdentity) {
  const ChannelPipeline p(100.0);
  const std::vector<double> x = noisy_signal(64);
  EXPECT_EQ(p.run(x), x);
  EXPECT_TRUE(p.stage_names().empty());
}

TEST(PipelineBuilderTest, StagesComposeInOrder) {
  ChannelPipeline p(100.0);
  p.detrend().bandpass(2, 2.0, 30.0).resample(1, 2);
  EXPECT_EQ(p.stage_names(),
            (std::vector<std::string>{"detrend", "bandpass", "resample"}));

  // Composition equals applying the kernels by hand in order.
  const std::vector<double> x = noisy_signal(400);
  const auto coeffs = dsp::butter_bandpass(2, 2.0 / 50.0, 30.0 / 50.0);
  const std::vector<double> manual = dsp::resample(
      dsp::filtfilt(coeffs, dsp::detrend_linear(x)), 1, 2);
  EXPECT_EQ(p.run(x), manual);
}

TEST(PipelineBuilderTest, ResampleTracksSamplingRate) {
  ChannelPipeline p(500.0);
  EXPECT_DOUBLE_EQ(p.current_sampling_hz(), 500.0);
  p.resample(1, 2);
  EXPECT_DOUBLE_EQ(p.current_sampling_hz(), 250.0);
  p.resample(3, 1);
  EXPECT_DOUBLE_EQ(p.current_sampling_hz(), 750.0);
  // Band edges validate against the ORIGINAL rate at build time of the
  // stage: adding a 200 Hz lowpass at 750 Hz effective rate is fine.
  EXPECT_NO_THROW(p.lowpass(2, 200.0));
}

TEST(PipelineBuilderTest, ValidatesParameters) {
  ChannelPipeline p(100.0);
  EXPECT_THROW(p.bandpass(2, 0.0, 30.0), InvalidArgument);
  EXPECT_THROW(p.bandpass(2, 30.0, 2.0), InvalidArgument);
  EXPECT_THROW(p.lowpass(2, 50.0), InvalidArgument);  // at Nyquist
  EXPECT_THROW(p.taper(1.5), InvalidArgument);
  EXPECT_THROW(p.despike(3, 0.0), InvalidArgument);
  EXPECT_THROW(p.resample(0, 1), InvalidArgument);
  EXPECT_THROW(p.whiten(0), InvalidArgument);
  EXPECT_THROW(p.custom("null", nullptr), InvalidArgument);
  EXPECT_THROW(ChannelPipeline bad(0.0), InvalidArgument);
}

TEST(PipelineBuilderTest, BuiltUdfIsImmutableSnapshot) {
  ChannelPipeline p(100.0);
  p.demean();
  const core::RowUdf udf = p.build();
  p.one_bit();  // added AFTER build: must not affect `udf`

  core::Array2D data(Shape2D{1, 32});
  for (std::size_t i = 0; i < 32; ++i) {
    data.at(0, i) = 5.0 + static_cast<double>(i % 2);
  }
  const core::Array2D out =
      core::apply_rows_serial(core::LocalBlock::whole(data), udf);
  // demean only: values are +-0.5, not +-1 (one_bit would give that).
  EXPECT_NEAR(std::abs(out.at(0, 0)), 0.5, 1e-12);
}

TEST(PipelineBuilderTest, MatchesHandWrittenInterferometry) {
  // The builder expression of Algorithm 3 must equal the hand-coded
  // pipeline in interferometry.cpp, bit for bit.
  InterferometryParams ip;
  ip.sampling_hz = 100.0;
  ip.butter_order = 2;
  ip.band_lo_hz = 2.0;
  ip.band_hi_hz = 30.0;
  ip.resample_down = 2;

  ChannelPipeline p(ip.sampling_hz);
  p.detrend().bandpass(ip.butter_order, ip.band_lo_hz, ip.band_hi_hz)
      .resample(ip.resample_up, ip.resample_down);

  const std::vector<double> x = noisy_signal(500, 8);
  EXPECT_EQ(p.run(x), interferometry_preprocess(x, ip));

  // And the correlate-with-master terminal matches too.
  const std::vector<double> master = noisy_signal(500, 9);
  const core::RowUdf theirs =
      make_interferometry_udf(ip, interferometry_spectrum(master, ip));
  const core::RowUdf ours = p.correlate_with_master(p.spectrum(master));

  core::Array2D data(Shape2D{1, 500});
  std::copy(x.begin(), x.end(), data.data.begin());
  const core::LocalBlock block = core::LocalBlock::whole(data);
  const core::Array2D a = core::apply_rows_serial(block, theirs);
  const core::Array2D b = core::apply_rows_serial(block, ours);
  ASSERT_EQ(a.shape, b.shape);
  EXPECT_NEAR(a.at(0, 0), b.at(0, 0), 1e-12);
}

TEST(PipelineBuilderTest, MismatchedMasterLengthRejected) {
  ChannelPipeline p(100.0);
  p.resample(1, 2);
  const core::RowUdf udf =
      p.correlate_with_master(std::vector<dsp::cplx>(10));  // wrong length

  core::Array2D data(Shape2D{1, 100}, 1.0);
  EXPECT_THROW(
      (void)core::apply_rows_serial(core::LocalBlock::whole(data), udf),
      InvalidArgument);
}

TEST(PipelineBuilderTest, CustomStageParticipates) {
  ChannelPipeline p(100.0);
  p.custom("double", [](std::vector<double> x) {
    for (double& v : x) v *= 2.0;
    return x;
  }).custom("add_one", [](std::vector<double> x) {
    for (double& v : x) v += 1.0;
    return x;
  });
  EXPECT_EQ(p.run({1.0, 2.0}), (std::vector<double>{3.0, 5.0}));
  EXPECT_EQ(p.stage_names(),
            (std::vector<std::string>{"double", "add_one"}));
}

TEST(PipelineBuilderTest, RunsThroughHaeeEngine) {
  TmpDir dir("pipe");
  const SynthDas synth = SynthDas::fig1b_scene(12, 50.0, 3);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.start = Timestamp::parse("170728224510");
  spec.file_count = 2;
  spec.seconds_per_file = 2.0;
  spec.dtype = io::DType::kF64;
  spec.per_channel_metadata = false;
  io::Vca vca = io::Vca::build(write_acquisition(synth, spec));

  ChannelPipeline p(50.0);
  p.detrend().bandpass(2, 2.0, 20.0).envelope();
  const core::RowUdf udf = p.build();

  core::EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  const core::EngineReport report = core::run_rows(
      config, vca, [&](const core::RankContext&) { return udf; });
  ASSERT_EQ(report.output.shape, vca.shape());

  // Envelopes are non-negative by construction.
  for (double v : report.output.data) EXPECT_GE(v, -1e-12);
}

TEST(PipelineBuilderTest, OneBitAndWhitenAndDespike) {
  ChannelPipeline p(100.0);
  p.despike(5, 6.0).whiten(5).one_bit();
  std::vector<double> x = noisy_signal(256, 12);
  x[50] = 1000.0;  // spike for the despiker
  const std::vector<double> y = p.run(x);
  ASSERT_EQ(y.size(), x.size());
  for (double v : y) {
    EXPECT_TRUE(v == 1.0 || v == -1.0 || v == 0.0) << v;
  }
}

}  // namespace
}  // namespace dassa::das
