// Case-study pipeline tests: local similarity detects coherent events,
// interferometry chain behaves, baseline and DASSA produce identical
// numerics, distributed equals single-node.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dassa/common/counters.hpp"
#include "dassa/das/baseline.hpp"
#include "dassa/das/interferometry.hpp"
#include "dassa/das/local_similarity.hpp"
#include "dassa/das/synth.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::das {
using dassa::global_counters;
namespace counters = dassa::counters;
namespace {

using testing::TmpDir;

// ---------- local similarity ---------------------------------------------

TEST(LocalSimilarityTest, CoherentSignalScoresHigherThanNoise) {
  // Channels share a common waveform during [100, 200): similarity
  // there must be near 1; in the noise-only region it stays low.
  const Shape2D shape{8, 300};
  core::Array2D data(shape);
  std::mt19937_64 rng(3);
  std::normal_distribution<double> dist;
  for (auto& v : data.data) v = 0.5 * dist(rng);
  for (std::size_t ch = 0; ch < shape.rows; ++ch) {
    for (std::size_t t = 100; t < 200; ++t) {
      data.at(ch, t) += 5.0 * std::sin(0.3 * static_cast<double>(t));
    }
  }
  LocalSimilarityParams p;
  p.window_half = 10;
  p.lag_half = 3;
  p.channel_offset = 1;
  const core::Array2D sim = local_similarity(data, p, 1);
  ASSERT_EQ(sim.shape, shape);

  double coherent = 0.0;
  double noise = 0.0;
  for (std::size_t ch = 2; ch < 6; ++ch) {
    for (std::size_t t = 130; t < 170; ++t) coherent += sim.at(ch, t);
    for (std::size_t t = 30; t < 70; ++t) noise += sim.at(ch, t);
  }
  EXPECT_GT(coherent / (4 * 40), 0.8);
  EXPECT_LT(noise / (4 * 40), 0.6);
  EXPECT_GT(coherent, 1.5 * noise);
}

TEST(LocalSimilarityTest, EdgesReturnZero) {
  const core::Array2D data(Shape2D{5, 60}, 1.0);
  LocalSimilarityParams p;
  p.window_half = 5;
  p.lag_half = 2;
  p.channel_offset = 1;
  const core::Array2D sim = local_similarity(data, p, 1);
  // First/last channels lack a +-K neighbour; early/late times lack the
  // full window.
  for (std::size_t t = 0; t < 60; ++t) {
    EXPECT_EQ(sim.at(0, t), 0.0);
    EXPECT_EQ(sim.at(4, t), 0.0);
  }
  for (std::size_t ch = 0; ch < 5; ++ch) {
    EXPECT_EQ(sim.at(ch, 0), 0.0);
    EXPECT_EQ(sim.at(ch, 6), 0.0);  // M+L = 7 samples needed on each side
  }
}

TEST(LocalSimilarityTest, ScoresAreInUnitInterval) {
  core::Array2D data(Shape2D{6, 80});
  std::mt19937_64 rng(8);
  std::normal_distribution<double> dist;
  for (auto& v : data.data) v = dist(rng);
  LocalSimilarityParams p;
  p.window_half = 4;
  p.lag_half = 2;
  const core::Array2D sim = local_similarity(data, p, 1);
  for (double v : sim.data) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(LocalSimilarityTest, ThreadCountDoesNotChangeResult) {
  core::Array2D data(Shape2D{6, 64});
  std::mt19937_64 rng(12);
  std::normal_distribution<double> dist;
  for (auto& v : data.data) v = dist(rng);
  LocalSimilarityParams p;
  p.window_half = 3;
  p.lag_half = 2;
  const core::Array2D a = local_similarity(data, p, 1);
  const core::Array2D b = local_similarity(data, p, 4);
  EXPECT_EQ(a, b);
}

TEST(LocalSimilarityTest, DistributedMatchesSingleNode) {
  TmpDir dir("ls");
  const SynthDas synth = SynthDas::fig1b_scene(18, 50.0, 5);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.start = Timestamp::parse("170728224510");
  spec.file_count = 2;
  spec.seconds_per_file = 1.0;
  spec.dtype = io::DType::kF64;
  spec.per_channel_metadata = false;
  io::Vca vca = io::Vca::build(write_acquisition(synth, spec));

  LocalSimilarityParams p;
  p.window_half = 4;
  p.lag_half = 2;
  p.channel_offset = 2;

  const core::Array2D local = local_similarity(
      core::Array2D(vca.shape(), vca.read_all()), p, 1);

  core::EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  const core::EngineReport report =
      local_similarity_distributed(config, vca, p);
  EXPECT_EQ(report.output, local);
}

// ---------- interferometry ------------------------------------------------

InterferometryParams test_params() {
  InterferometryParams p;
  p.sampling_hz = 100.0;
  p.butter_order = 2;
  p.band_lo_hz = 2.0;
  p.band_hi_hz = 30.0;
  p.resample_up = 1;
  p.resample_down = 2;
  p.master_channel = 0;
  return p;
}

TEST(InterferometryTest, PreprocessShrinksByResampleFactor) {
  const InterferometryParams p = test_params();
  const std::vector<double> x(400, 1.0);
  const std::vector<double> y = interferometry_preprocess(x, p);
  EXPECT_EQ(y.size(), 200u);
}

TEST(InterferometryTest, PreprocessRemovesDcAndHighFreq) {
  const InterferometryParams p = test_params();
  std::vector<double> x(600);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / p.sampling_hz;
    x[i] = 10.0                                      // DC: below band
           + std::sin(2.0 * std::numbers::pi * 10.0 * t)  // in band
           + std::sin(2.0 * std::numbers::pi * 45.0 * t); // above band
  }
  const std::vector<double> y = interferometry_preprocess(x, p);
  // DC is gone.
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 0.0, 0.05);
  // The in-band tone survives with meaningful energy.
  double rms = 0.0;
  for (std::size_t i = 50; i + 50 < y.size(); ++i) rms += y[i] * y[i];
  rms = std::sqrt(rms / static_cast<double>(y.size() - 100));
  EXPECT_GT(rms, 0.3);
}

TEST(InterferometryTest, MasterChannelCorrelatesPerfectlyWithItself) {
  const InterferometryParams p = test_params();
  core::Array2D data(Shape2D{4, 300});
  std::mt19937_64 rng(4);
  std::normal_distribution<double> dist;
  for (auto& v : data.data) v = dist(rng);
  const core::Array2D out = interferometry_single_node(data, p, 1);
  ASSERT_EQ(out.shape, (Shape2D{4, 1}));
  EXPECT_NEAR(out.at(0, 0), 1.0, 1e-9);  // master vs itself
  for (std::size_t ch = 1; ch < 4; ++ch) {
    EXPECT_GE(out.at(ch, 0), 0.0);
    EXPECT_LE(out.at(ch, 0), 1.0 + 1e-12);
  }
}

TEST(InterferometryTest, IdenticalChannelsAllScoreOne) {
  const InterferometryParams p = test_params();
  core::Array2D data(Shape2D{3, 256});
  for (std::size_t ch = 0; ch < 3; ++ch) {
    for (std::size_t t = 0; t < 256; ++t) {
      data.at(ch, t) = std::sin(0.4 * static_cast<double>(t)) +
                       0.2 * std::sin(1.1 * static_cast<double>(t));
    }
  }
  const core::Array2D out = interferometry_single_node(data, p, 1);
  for (std::size_t ch = 0; ch < 3; ++ch) {
    EXPECT_NEAR(out.at(ch, 0), 1.0, 1e-6);
  }
}

TEST(InterferometryTest, FullCorrelationPeaksAtSharedLag) {
  InterferometryParams p = test_params();
  p.full_correlation = true;
  core::Array2D data(Shape2D{2, 400});
  std::mt19937_64 rng(6);
  std::normal_distribution<double> dist;
  std::vector<double> common(400);
  for (auto& v : common) v = dist(rng);
  // Channel 1 = channel 0 (no lag): circular correlation must peak at 0.
  for (std::size_t t = 0; t < 400; ++t) {
    data.at(0, t) = common[t];
    data.at(1, t) = common[t];
  }
  const core::Array2D out = interferometry_single_node(data, p, 1);
  ASSERT_EQ(out.shape.cols, 200u);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < out.shape.cols; ++i) {
    if (out.at(1, i) > out.at(1, argmax)) argmax = i;
  }
  EXPECT_EQ(argmax, 0u);
}

TEST(InterferometryTest, DistributedMatchesSingleNodeBothModes) {
  TmpDir dir("intf");
  const SynthDas synth = SynthDas::fig1b_scene(12, 100.0, 13);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.start = Timestamp::parse("170728224510");
  spec.file_count = 3;
  spec.seconds_per_file = 1.0;
  spec.dtype = io::DType::kF64;
  spec.per_channel_metadata = false;
  io::Vca vca = io::Vca::build(write_acquisition(synth, spec));

  const InterferometryParams p = test_params();
  const core::Array2D ref = interferometry_single_node(
      core::Array2D(vca.shape(), vca.read_all()), p, 1);

  for (const auto mode :
       {core::EngineMode::kHybrid, core::EngineMode::kMpiPerCore}) {
    core::EngineConfig config;
    config.nodes = 3;
    config.cores_per_node = 2;
    config.mode = mode;
    const core::EngineReport report =
        interferometry_distributed(config, vca, p);
    ASSERT_EQ(report.output.shape, ref.shape);
    for (std::size_t i = 0; i < ref.data.size(); ++i) {
      ASSERT_NEAR(report.output.data[i], ref.data[i], 1e-9);
    }
  }
}

TEST(InterferometryTest, MasterChannelCopiesCountedPerRank) {
  TmpDir dir("intf");
  const SynthDas synth = SynthDas::fig1b_scene(12, 100.0, 13);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.start = Timestamp::parse("170728224510");
  spec.file_count = 2;
  spec.seconds_per_file = 1.0;
  spec.per_channel_metadata = false;
  io::Vca vca = io::Vca::build(write_acquisition(synth, spec));
  const InterferometryParams p = test_params();

  auto copies = [&](core::EngineMode mode) {
    core::EngineConfig config;
    config.nodes = 2;
    config.cores_per_node = 3;
    config.mode = mode;
    global_counters().reset();
    (void)interferometry_distributed(config, vca, p);
    return global_counters().get(counters::kMemMasterChannelCopies);
  };
  // HAEE: one copy per node. MPI-per-core: one per core -- the paper's
  // k-fold duplication.
  EXPECT_EQ(copies(core::EngineMode::kHybrid), 2u);
  EXPECT_EQ(copies(core::EngineMode::kMpiPerCore), 6u);
}

// ---------- baseline vs DASSA ---------------------------------------------

TEST(BaselineTest, BaselineMatchesDassaNumerics) {
  const InterferometryParams p = test_params();
  core::Array2D data(Shape2D{6, 300});
  std::mt19937_64 rng(5);
  std::normal_distribution<double> dist;
  for (auto& v : data.data) v = dist(rng);

  const BaselineReport matlab = baseline_interferometry(data, p);
  const BaselineReport dassa = dassa_interferometry(data, p, 2);
  ASSERT_EQ(matlab.output.shape, dassa.output.shape);
  for (std::size_t i = 0; i < matlab.output.data.size(); ++i) {
    EXPECT_NEAR(matlab.output.data[i], dassa.output.data[i], 1e-9);
  }
}

TEST(BaselineTest, BaselineMaterialisesTemporariesAndCopies) {
  const InterferometryParams p = test_params();
  core::Array2D data(Shape2D{4, 300});
  std::mt19937_64 rng(15);
  std::normal_distribution<double> dist;
  for (auto& v : data.data) v = dist(rng);

  const BaselineReport report = baseline_interferometry(data, p);
  EXPECT_EQ(report.full_array_temporaries, 4u);
  // At least one argument copy per stage per channel plus temporaries.
  EXPECT_GT(report.bytes_copied,
            4 * data.data.size() * sizeof(double));
  // Stage-wise timing covers the whole pipeline.
  EXPECT_GT(report.stages.get("compute.filtfilt"), 0.0);
  EXPECT_GT(report.stages.get("compute.fft"), 0.0);
}

TEST(BaselineTest, FullCorrelationModeMatchesToo) {
  InterferometryParams p = test_params();
  p.full_correlation = true;
  core::Array2D data(Shape2D{3, 200});
  std::mt19937_64 rng(16);
  std::normal_distribution<double> dist;
  for (auto& v : data.data) v = dist(rng);
  const BaselineReport matlab = baseline_interferometry(data, p);
  const BaselineReport dassa = dassa_interferometry(data, p, 1);
  ASSERT_EQ(matlab.output.shape, dassa.output.shape);
  for (std::size_t i = 0; i < matlab.output.data.size(); ++i) {
    EXPECT_NEAR(matlab.output.data[i], dassa.output.data[i], 1e-9);
  }
}

}  // namespace
}  // namespace dassa::das
