// Channel QC tests: statistics, dead/noisy classification, distributed
// equivalence, masked-analysis integration.
#include "dassa/das/channel_qc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dassa/das/synth.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::das {
namespace {

using testing::TmpDir;

TEST(ChannelStatsTest, GaussianNoiseStats) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> dist(0.0, 2.0);
  std::vector<double> x(50000);
  for (auto& v : x) v = dist(rng);
  const ChannelStats s = channel_stats(x);
  EXPECT_NEAR(s.rms, 2.0, 0.05);
  EXPECT_NEAR(s.kurtosis, 0.0, 0.15);  // excess kurtosis of a Gaussian
  EXPECT_GT(s.peak, 6.0);              // ~3+ sigma extremes exist
}

TEST(ChannelStatsTest, ConstantAndEmpty) {
  const std::vector<double> flat(100, 3.0);
  const ChannelStats s = channel_stats(flat);
  EXPECT_NEAR(s.rms, 3.0, 1e-12);
  EXPECT_EQ(s.kurtosis, 0.0);  // zero variance handled
  EXPECT_EQ(channel_stats(std::vector<double>{}).rms, 0.0);
}

TEST(ChannelStatsTest, SpikyChannelHasHighKurtosis) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> dist;
  std::vector<double> x(20000);
  for (auto& v : x) v = dist(rng);
  for (std::size_t i = 0; i < x.size(); i += 1000) x[i] += 40.0;  // spikes
  EXPECT_GT(channel_stats(x).kurtosis, 5.0);
}

core::Array2D array_with_bad_channels() {
  // 16 channels of unit noise; channel 4 dead, channel 11 screaming.
  const Shape2D shape{16, 4000};
  core::Array2D data(shape);
  std::mt19937_64 rng(5);
  std::normal_distribution<double> dist;
  for (auto& v : data.data) v = dist(rng);
  for (std::size_t t = 0; t < shape.cols; ++t) {
    data.at(4, t) = 1e-6 * dist(rng);  // dead
    data.at(11, t) *= 20.0;            // noisy
  }
  return data;
}

TEST(ChannelQcTest, FlagsDeadAndNoisyChannels) {
  const ChannelQcReport report = channel_qc(array_with_bad_channels());
  ASSERT_EQ(report.channels.size(), 16u);
  EXPECT_EQ(report.channels[4].status, ChannelStatus::kDead);
  EXPECT_EQ(report.channels[11].status, ChannelStatus::kNoisy);
  EXPECT_EQ(report.count(ChannelStatus::kDead), 1u);
  EXPECT_EQ(report.count(ChannelStatus::kNoisy), 1u);
  EXPECT_EQ(report.count(ChannelStatus::kGood), 14u);
  EXPECT_NEAR(report.median_rms, 1.0, 0.1);

  const std::vector<std::size_t> good = report.good_channels();
  EXPECT_EQ(good.size(), 14u);
  EXPECT_TRUE(std::find(good.begin(), good.end(), 4u) == good.end());
  EXPECT_TRUE(std::find(good.begin(), good.end(), 11u) == good.end());
}

TEST(ChannelQcTest, AllGoodArrayFlagsNothing) {
  const Shape2D shape{8, 2000};
  core::Array2D data(shape);
  std::mt19937_64 rng(6);
  std::normal_distribution<double> dist;
  for (auto& v : data.data) v = dist(rng);
  const ChannelQcReport report = channel_qc(data);
  EXPECT_EQ(report.count(ChannelStatus::kGood), 8u);
}

TEST(ChannelQcTest, ThresholdsAreValidated) {
  const core::Array2D data(Shape2D{4, 100}, 1.0);
  ChannelQcParams p;
  p.dead_rms_fraction = 0.0;
  EXPECT_THROW((void)channel_qc(data, p), InvalidArgument);
  p = ChannelQcParams{};
  p.noisy_rms_multiple = 0.5;
  EXPECT_THROW((void)channel_qc(data, p), InvalidArgument);
}

TEST(ChannelQcTest, DistributedMatchesSingleNode) {
  TmpDir dir("qc");
  const SynthDas synth = SynthDas::fig1b_scene(20, 50.0, 23);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.start = Timestamp::parse("170728224510");
  spec.file_count = 3;
  spec.seconds_per_file = 2.0;
  spec.dtype = io::DType::kF64;
  spec.per_channel_metadata = false;
  io::Vca vca = io::Vca::build(write_acquisition(synth, spec));

  const ChannelQcReport serial =
      channel_qc(core::Array2D(vca.shape(), vca.read_all()));
  core::EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  const ChannelQcReport distributed = channel_qc(config, vca);

  ASSERT_EQ(distributed.channels.size(), serial.channels.size());
  for (std::size_t ch = 0; ch < serial.channels.size(); ++ch) {
    EXPECT_NEAR(distributed.channels[ch].rms, serial.channels[ch].rms,
                1e-12);
    EXPECT_EQ(distributed.channels[ch].status, serial.channels[ch].status);
  }
}

TEST(ChannelQcTest, StatusNamesAreStable) {
  EXPECT_STREQ(channel_status_name(ChannelStatus::kGood), "good");
  EXPECT_STREQ(channel_status_name(ChannelStatus::kDead), "dead");
  EXPECT_STREQ(channel_status_name(ChannelStatus::kNoisy), "noisy");
}

}  // namespace
}  // namespace dassa::das
