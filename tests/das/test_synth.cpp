// Synthetic DAS generator tests: determinism, random access,
// event structure (vehicle moveout, quake arrival times, coherence),
// acquisition file emission.
#include "dassa/das/synth.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dassa/dsp/correlate.hpp"
#include "dassa/io/vca.hpp"
#include "testing/tmpdir.hpp"

namespace dassa::das {
namespace {

using testing::TmpDir;

TEST(SynthTest, DeterministicAcrossCalls) {
  const SynthDas a = SynthDas::fig1b_scene(16, 100.0, 9);
  const SynthDas b = SynthDas::fig1b_scene(16, 100.0, 9);
  for (std::size_t ch = 0; ch < 16; ch += 5) {
    for (std::uint64_t idx = 0; idx < 2000; idx += 137) {
      EXPECT_EQ(a.sample(ch, idx), b.sample(ch, idx));
    }
  }
}

TEST(SynthTest, DifferentSeedsDiffer) {
  const SynthDas a = SynthDas::fig1b_scene(8, 100.0, 1);
  const SynthDas b = SynthDas::fig1b_scene(8, 100.0, 2);
  int diffs = 0;
  for (std::uint64_t idx = 0; idx < 100; ++idx) {
    if (a.sample(0, idx) != b.sample(0, idx)) ++diffs;
  }
  EXPECT_GT(diffs, 90);
}

TEST(SynthTest, RenderIsRandomAccessConsistent) {
  // Rendering [0, 100) must agree with rendering [50, 100) -- this is
  // what makes per-file emission independent of the file split.
  const SynthDas synth = SynthDas::fig1b_scene(6, 50.0, 4);
  const core::Array2D whole = synth.render(0, 100);
  const core::Array2D part = synth.render(50, 50);
  for (std::size_t ch = 0; ch < 6; ++ch) {
    for (std::size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(part.at(ch, i), whole.at(ch, 50 + i));
    }
  }
}

TEST(SynthTest, NoiseHasRequestedRms) {
  SynthConfig cfg;
  cfg.channels = 1;
  cfg.sampling_hz = 100.0;
  cfg.noise_rms = 2.5;
  const SynthDas synth(cfg);  // no events: pure noise
  double sum_sq = 0.0;
  const std::size_t n = 20000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double v = synth.sample(0, i);
    sum_sq += v * v;
  }
  EXPECT_NEAR(std::sqrt(sum_sq / static_cast<double>(n)), 2.5, 0.1);
}

TEST(SynthTest, VehicleAppearsAtPredictedChannelAndTime) {
  SynthConfig cfg;
  cfg.channels = 64;
  cfg.sampling_hz = 100.0;
  cfg.noise_rms = 0.0;  // signal only
  SynthDas synth(cfg);
  VehicleEvent car;
  car.start_s = 10.0;
  car.start_channel = 0.0;
  car.speed_ch_per_s = 2.0;
  car.width_channels = 2.0;
  car.amplitude = 3.0;
  synth.add(car);

  // At t = 20 s the car sits at channel 20: that channel must carry
  // energy, channel 50 must not.
  const std::uint64_t idx = 2000;
  double on = 0.0;
  double off = 0.0;
  for (std::uint64_t k = 0; k < 50; ++k) {
    on = std::max(on, std::abs(synth.sample(20, idx + k)));
    off = std::max(off, std::abs(synth.sample(50, idx + k)));
  }
  EXPECT_GT(on, 1.0);
  EXPECT_EQ(off, 0.0);
  // Before the car enters, silence everywhere.
  EXPECT_EQ(synth.sample(20, 500), 0.0);
}

TEST(SynthTest, EarthquakeArrivalFollowsHyperbolicMoveout) {
  SynthConfig cfg;
  cfg.channels = 100;
  cfg.sampling_hz = 200.0;
  cfg.spatial_resolution_m = 50.0;
  cfg.noise_rms = 0.0;
  SynthDas synth(cfg);
  EarthquakeEvent q;
  q.origin_s = 5.0;
  q.epicenter_channel = 50.0;
  q.depth_m = 8000.0;
  q.velocity_m_s = 4000.0;
  q.amplitude = 10.0;
  synth.add(q);

  auto first_arrival = [&](std::size_t ch) {
    for (std::uint64_t i = 0; i < 6000; ++i) {
      if (std::abs(synth.sample(ch, i)) > 0.2) {
        return static_cast<double>(i) / cfg.sampling_hz;
      }
    }
    return -1.0;
  };
  const double t_epi = first_arrival(50);
  const double t_far = first_arrival(99);
  const double expect_epi = 5.0 + 8000.0 / 4000.0;
  const double expect_far =
      5.0 + std::hypot(8000.0, 49.0 * 50.0) / 4000.0;
  EXPECT_NEAR(t_epi, expect_epi, 0.05);
  EXPECT_NEAR(t_far, expect_far, 0.05);
  EXPECT_GT(t_far, t_epi);  // later at the far channel
}

TEST(SynthTest, QuakeIsCoherentAcrossNeighbours) {
  // Neighbouring channels during the quake correlate strongly; noise-
  // only windows do not. This is the physical basis of Algorithm 2.
  const double fs = 100.0;
  SynthDas synth = SynthDas::fig1b_scene(32, fs, 11);
  // fig1b quake: origin 210 s; depth 12 km at 3.5 km/s => ~3.4 s travel.
  const auto arrival = static_cast<std::uint64_t>((210.0 + 3.5) * fs);
  const core::Array2D during = synth.render(arrival, 100);
  const core::Array2D before = synth.render(1000, 100);
  const double corr_quake = dsp::abscorr(during.row(15), during.row(16));
  const double corr_noise = dsp::abscorr(before.row(15), before.row(16));
  EXPECT_GT(corr_quake, 0.6);
  EXPECT_LT(corr_noise, 0.4);
}

TEST(SynthTest, PersistentSourceIsAlwaysOn) {
  SynthConfig cfg;
  cfg.channels = 10;
  cfg.sampling_hz = 100.0;
  cfg.noise_rms = 0.0;
  SynthDas synth(cfg);
  PersistentSource hum;
  hum.channel_lo = 3;
  hum.channel_hi = 5;
  hum.freq_hz = 10.0;
  hum.amplitude = 1.0;
  synth.add(hum);
  double in_band = 0.0;
  double out_band = 0.0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    in_band = std::max(in_band, std::abs(synth.sample(4, i)));
    out_band = std::max(out_band, std::abs(synth.sample(7, i)));
  }
  EXPECT_NEAR(in_band, 1.0, 0.05);
  EXPECT_EQ(out_band, 0.0);
}

TEST(AcquisitionTest, WritesTimestampedFilesWithMetadata) {
  TmpDir dir("acq");
  const SynthDas synth = SynthDas::fig1b_scene(8, 10.0, 3);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.prefix = "sacramento";
  spec.start = Timestamp::parse("170620100545");
  spec.file_count = 3;
  spec.seconds_per_file = 2.0;
  const auto paths = write_acquisition(synth, spec);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_NE(paths[0].find("sacramento_170620100545.dh5"), std::string::npos);
  EXPECT_NE(paths[1].find("sacramento_170620100547.dh5"), std::string::npos);

  io::Dash5File f(paths[1]);
  EXPECT_EQ(f.shape(), (Shape2D{8, 20}));
  EXPECT_EQ(f.global_meta().get_f64(io::meta::kSamplingFrequencyHz), 10.0);
  EXPECT_EQ(f.global_meta().get_or_throw(io::meta::kTimeStamp),
            "170620100547");
  EXPECT_EQ(f.global_meta().get_i64(io::meta::kNumObjects), 8);
  ASSERT_EQ(f.objects().size(), 8u);
  EXPECT_EQ(f.objects()[0].path, "/Measurement/1");
  EXPECT_EQ(f.objects()[0].kv.get_i64("Number of raw data values"), 20);
}

TEST(AcquisitionTest, VcaOverFilesEqualsDirectRender) {
  // The acquisition split into files, virtually concatenated, must
  // reproduce the directly rendered wavefield (up to f32 storage).
  TmpDir dir("acq");
  const SynthDas synth = SynthDas::fig1b_scene(6, 20.0, 5);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.start = Timestamp::parse("170728224510");
  spec.file_count = 4;
  spec.seconds_per_file = 1.5;  // 30 samples each
  spec.per_channel_metadata = false;
  const auto paths = write_acquisition(synth, spec);

  io::Vca vca = io::Vca::build(paths);
  EXPECT_EQ(vca.shape(), (Shape2D{6, 120}));
  const std::vector<double> merged = vca.read_all();
  const core::Array2D direct = synth.render(0, 120);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_NEAR(merged[i], direct.data[i],
                1e-5 * (1.0 + std::abs(direct.data[i])));
  }
}

TEST(AcquisitionTest, RejectsBadSpecs) {
  TmpDir dir("acq");
  const SynthDas synth = SynthDas::fig1b_scene(2, 10.0, 1);
  AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.file_count = 0;
  EXPECT_THROW((void)write_acquisition(synth, spec), InvalidArgument);
  spec.file_count = 1;
  spec.seconds_per_file = 0.0;
  EXPECT_THROW((void)write_acquisition(synth, spec), InvalidArgument);
}


TEST(AcquisitionTest, ChunkedLayoutIsTransparentToAnalysis) {
  // The same scene written contiguous and chunked must read back
  // identically through the VCA (the layout is a storage detail).
  TmpDir dir_a("acq_plain");
  TmpDir dir_b("acq_chunk");
  const SynthDas synth = SynthDas::fig1b_scene(10, 20.0, 4);
  AcquisitionSpec spec;
  spec.start = Timestamp::parse("170728224510");
  spec.file_count = 3;
  spec.seconds_per_file = 2.0;
  spec.dtype = io::DType::kF64;
  spec.per_channel_metadata = false;

  spec.dir = dir_a.str();
  io::Vca plain = io::Vca::build(write_acquisition(synth, spec));
  spec.dir = dir_b.str();
  spec.chunk = {4, 16};
  io::Vca chunked = io::Vca::build(write_acquisition(synth, spec));

  EXPECT_EQ(plain.shape(), chunked.shape());
  EXPECT_EQ(plain.read_all(), chunked.read_all());
  const Slab2D slab{2, 30, 5, 50};
  EXPECT_EQ(plain.read_slab(slab), chunked.read_slab(slab));
}

}  // namespace
}  // namespace dassa::das
