// compile-fail fixture: calling a DASSA_REQUIRES(mu) function without
// holding mu. Under clang-strict this is rejected with
//   warning: calling function 'bump_locked' requires holding mutex
//   'mu' exclusively [-Wthread-safety-analysis]
// The corrected twin is requires_unheld_good.cpp.
#include "dassa/common/sync.hpp"

namespace {

struct State {
  dassa::Mutex mu;
  int value DASSA_GUARDED_BY(mu) = 0;

  void bump_locked() DASSA_REQUIRES(mu) { ++value; }
};

}  // namespace

void cf_requires_unheld_bad() {
  State s;
  s.bump_locked();  // BAD: caller does not hold s.mu
}
