// Corrected twin of double_lock_bad.cpp: the two critical sections are
// sequential scopes, so the mutex is released before it is re-acquired
// and the analysis (and std::mutex at runtime) is satisfied.
#include "dassa/common/sync.hpp"

namespace {

struct State {
  dassa::Mutex mu;
  int value DASSA_GUARDED_BY(mu) = 0;
};

}  // namespace

int cf_double_lock_good() {
  State s;
  {
    dassa::MutexLock lock(s.mu);
    s.value = 1;
  }
  int out = 0;
  {
    dassa::MutexLock lock(s.mu);
    out = s.value;
  }
  return out;
}
