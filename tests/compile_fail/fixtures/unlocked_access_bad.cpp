// compile-fail fixture: writing a DASSA_GUARDED_BY member without the
// lock. Under clang-strict this is rejected with
//   warning: writing variable 'hits' requires holding mutex 'mu'
//   exclusively [-Wthread-safety-analysis]
// The corrected twin is unlocked_access_good.cpp.
#include "dassa/common/sync.hpp"

namespace {

struct Counter {
  dassa::Mutex mu;
  long hits DASSA_GUARDED_BY(mu) = 0;
};

}  // namespace

long cf_unlocked_access_bad() {
  Counter c;
  c.hits += 1;  // BAD: no lock held
  return c.hits;
}
