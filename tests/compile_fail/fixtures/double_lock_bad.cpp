// compile-fail fixture: acquiring a mutex that is already held
// (self-deadlock with std::mutex). Under clang-strict this is rejected
// with
//   warning: acquiring mutex 'mu' that is already held
//   [-Wthread-safety-analysis]
// The corrected twin is double_lock_good.cpp.
#include "dassa/common/sync.hpp"

namespace {

struct State {
  dassa::Mutex mu;
  int value DASSA_GUARDED_BY(mu) = 0;
};

}  // namespace

int cf_double_lock_bad() {
  State s;
  dassa::MutexLock outer(s.mu);
  dassa::MutexLock inner(s.mu);  // BAD: mu is already held
  return s.value;
}
