// Corrected twin of missing_release_bad.cpp: the manual lock()/unlock()
// pair balances on every path out of the function, which is exactly the
// invariant the analysis proves.
#include "dassa/common/sync.hpp"

namespace {

struct State {
  dassa::Mutex mu;
  int value DASSA_GUARDED_BY(mu) = 0;
};

}  // namespace

int cf_missing_release_good() {
  State s;
  s.mu.lock();
  int out = s.value;
  s.mu.unlock();
  return out;
}
