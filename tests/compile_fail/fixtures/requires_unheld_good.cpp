// Corrected twin of requires_unheld_bad.cpp: the caller takes a scoped
// MutexLock before entering the DASSA_REQUIRES(mu) function, so the
// precondition is provably met at the call site.
#include "dassa/common/sync.hpp"

namespace {

struct State {
  dassa::Mutex mu;
  int value DASSA_GUARDED_BY(mu) = 0;

  void bump_locked() DASSA_REQUIRES(mu) { ++value; }
};

}  // namespace

void cf_requires_unheld_good() {
  State s;
  dassa::MutexLock lock(s.mu);
  s.bump_locked();
}
