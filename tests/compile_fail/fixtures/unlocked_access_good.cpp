// Corrected twin of unlocked_access_bad.cpp: every access to the
// guarded member happens under a scoped MutexLock, so the fixture
// compiles cleanly under clang-strict (and under GCC, where the
// annotations expand to nothing).
#include "dassa/common/sync.hpp"

namespace {

struct Counter {
  dassa::Mutex mu;
  long hits DASSA_GUARDED_BY(mu) = 0;
};

}  // namespace

long cf_unlocked_access_good() {
  Counter c;
  long out = 0;
  {
    dassa::MutexLock lock(c.mu);
    c.hits += 1;
    out = c.hits;
  }
  return out;
}
