// compile-fail fixture: a manually-acquired mutex that is still held
// when the function returns. Under clang-strict this is rejected with
//   warning: mutex 'mu' is still held at the end of function
//   [-Wthread-safety-analysis]
// The corrected twin is missing_release_good.cpp.
#include "dassa/common/sync.hpp"

namespace {

struct State {
  dassa::Mutex mu;
  int value DASSA_GUARDED_BY(mu) = 0;
};

}  // namespace

int cf_missing_release_bad() {
  State s;
  s.mu.lock();
  int out = s.value;
  return out;  // BAD: mu never unlocked on this path
}
