// Fault-injection tests: corruption and loss at every storage layer
// must surface as typed errors through the full distributed stack --
// never as wrong results, hangs, or crashes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dassa/das/local_similarity.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/io/par_read.hpp"
#include "dassa/mpi/runtime.hpp"
#include "testing/tmpdir.hpp"

namespace dassa {
namespace {

using testing::TmpDir;

std::vector<std::string> make_files(const TmpDir& dir) {
  const das::SynthDas synth = das::SynthDas::fig1b_scene(12, 40.0, 9);
  das::AcquisitionSpec spec;
  spec.dir = dir.str();
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = 4;
  spec.seconds_per_file = 1.0;
  spec.per_channel_metadata = false;
  return das::write_acquisition(synth, spec);
}

void corrupt_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x5A));
}

TEST(FaultInjectionTest, MemberDeletedAfterVcaBuild) {
  // VCA holds only metadata; a member vanishing between build and read
  // must fail the read cleanly, not crash.
  TmpDir dir("fault");
  const auto files = make_files(dir);
  io::Vca vca = io::Vca::build(files);
  std::filesystem::remove(files[2]);
  EXPECT_THROW((void)vca.read_all(), IoError);
  // Reads that avoid the missing member still succeed.
  EXPECT_NO_THROW((void)vca.read_slab(Slab2D{0, 0, 12, 40}));
}

TEST(FaultInjectionTest, MemberHeaderCorruptionSurfacesAsFormatError) {
  TmpDir dir("fault");
  const auto files = make_files(dir);
  io::Vca vca = io::Vca::build(files);
  corrupt_byte(files[1], 40);  // inside the CRC-protected header
  EXPECT_THROW((void)vca.read_all(), FormatError);
}

TEST(FaultInjectionTest, MemberTruncationSurfacesAsFormatError) {
  TmpDir dir("fault");
  const auto files = make_files(dir);
  io::Vca vca = io::Vca::build(files);
  std::filesystem::resize_file(
      files[3], std::filesystem::file_size(files[3]) / 2);
  EXPECT_THROW((void)vca.read_all(), FormatError);
}

TEST(FaultInjectionTest, ParallelReadersPropagateMemberFailure) {
  // A rank hitting the broken file must abort the whole world with the
  // root-cause error; the peers blocked in the all-to-all must be
  // released (no deadlock).
  TmpDir dir("fault");
  const auto files = make_files(dir);
  io::Vca vca = io::Vca::build(files);
  corrupt_byte(files[0], 40);
  EXPECT_THROW(mpi::Runtime::run(4,
                                 [&](mpi::Comm& comm) {
                                   (void)io::read_vca_comm_avoiding(comm,
                                                                    vca);
                                 }),
               FormatError);
}

TEST(FaultInjectionTest, EngineSurfacesStorageFaults) {
  // The full HAEE pipeline over a VCA with a missing member: the engine
  // must rethrow the I/O error, and every rank/pool thread must be
  // joined (verified implicitly: the test returns instead of hanging).
  TmpDir dir("fault");
  const auto files = make_files(dir);
  io::Vca vca = io::Vca::build(files);
  std::filesystem::remove(files[1]);

  das::LocalSimilarityParams p;
  p.window_half = 3;
  p.lag_half = 2;
  core::EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 2;
  EXPECT_THROW((void)das::local_similarity_distributed(config, vca, p),
               IoError);
}

TEST(FaultInjectionTest, VcaRejectsWrongFileKind) {
  TmpDir dir("fault");
  const auto files = make_files(dir);
  // A .vca logical file is not a DASH5 member.
  io::Vca::build(files).save(dir.file("logical.vca"));
  std::vector<std::string> mixed = files;
  mixed.push_back(dir.file("logical.vca"));
  EXPECT_THROW((void)io::Vca::build(mixed), FormatError);
}

TEST(FaultInjectionTest, UdfExceptionAbortsEngineCleanly) {
  // A user-defined function throwing on one rank must not deadlock the
  // remaining ranks (they block in the gather).
  TmpDir dir("fault");
  io::Vca vca = io::Vca::build(make_files(dir));
  core::EngineConfig config;
  config.nodes = 3;
  config.cores_per_node = 1;
  EXPECT_THROW(
      (void)core::run_cells(
          config, vca,
          [](const core::RankContext& ctx) {
            return core::ScalarUdf([rank = ctx.comm.rank()](
                                       const core::Stencil& s) -> double {
              if (rank == 1 && s.time() == 5) {
                throw IoError("injected UDF failure");
              }
              return s(0, 0);
            });
          }),
      IoError);
}

TEST(FaultInjectionTest, ZeroByteFileRejectedEverywhere) {
  TmpDir dir("fault");
  std::ofstream(dir.file("empty.dh5")).close();
  EXPECT_THROW(io::Dash5File f(dir.file("empty.dh5")), FormatError);
  EXPECT_THROW((void)io::Vca::build({dir.file("empty.dh5")}), FormatError);
  EXPECT_THROW((void)io::Vca::load(dir.file("empty.dh5")), Error);
}

}  // namespace
}  // namespace dassa
