// Integration tests: the full user workflow across every module --
// generate -> catalog/search -> VCA/LAV -> HAEE pipelines -> DASH5
// output round trip -- plus cross-module consistency properties.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dassa/core/autotune.hpp"
#include "dassa/das/interferometry.hpp"
#include "dassa/das/local_similarity.hpp"
#include "dassa/das/search.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/io/dash5_source.hpp"
#include "testing/tmpdir.hpp"

namespace dassa {
namespace {

using testing::TmpDir;

/// One shared acquisition for the whole suite: 24 channels, 6 files.
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TmpDir("e2e");
    const das::SynthDas synth = das::SynthDas::fig1b_scene(24, 40.0, 21);
    das::AcquisitionSpec spec;
    spec.dir = dir_->str();
    spec.start = das::Timestamp::parse("170728224510");
    spec.file_count = 6;
    spec.seconds_per_file = 2.0;
    spec.dtype = io::DType::kF64;
    paths_ = new std::vector<std::string>(das::write_acquisition(synth, spec));
  }
  static void TearDownTestSuite() {
    delete paths_;
    paths_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  static TmpDir* dir_;
  static std::vector<std::string>* paths_;
};

TmpDir* EndToEndTest::dir_ = nullptr;
std::vector<std::string>* EndToEndTest::paths_ = nullptr;

TEST_F(EndToEndTest, SearchSelectsConsistentSubsets) {
  const das::Catalog cat = das::Catalog::scan(dir_->str());
  ASSERT_EQ(cat.size(), 6u);
  // Range and regex queries that target the same files must agree.
  const auto by_range =
      cat.query_range(das::Timestamp::parse("170728224512"), 2);
  const auto by_regex = cat.query_regex("17072822451[24]");
  ASSERT_EQ(by_range.size(), 2u);
  EXPECT_EQ(das::Catalog::paths(by_range), das::Catalog::paths(by_regex));
}

TEST_F(EndToEndTest, VcaEqualsRcaEqualsStreamingRcaEverywhere) {
  io::Vca vca = io::Vca::build(*paths_);
  (void)io::rca_create(*paths_, dir_->file("merged.dh5"));
  (void)io::rca_create_streaming(*paths_, dir_->file("streamed.dh5"), 5);

  io::Dash5File rca(dir_->file("merged.dh5"));
  io::Dash5File srca(dir_->file("streamed.dh5"));
  const std::vector<double> a = vca.read_all();
  EXPECT_EQ(a, rca.read_all());
  EXPECT_EQ(a, srca.read_all());

  // Random slabs agree too (property over the resolve path).
  std::mt19937_64 rng(33);
  for (int i = 0; i < 25; ++i) {
    const Shape2D shape = vca.shape();
    const std::size_t r0 = rng() % shape.rows;
    const std::size_t c0 = rng() % shape.cols;
    const Slab2D slab{r0, c0, 1 + rng() % (shape.rows - r0),
                      1 + rng() % (shape.cols - c0)};
    EXPECT_EQ(vca.read_slab(slab), rca.read_slab(slab)) << slab.str();
  }
}

TEST_F(EndToEndTest, LavOverVcaEqualsDirectSlab) {
  auto vca = std::make_shared<io::Vca>(io::Vca::build(*paths_));
  const Slab2D window{4, 30, 10, 100};
  io::Lav lav(vca, window);
  EXPECT_EQ(lav.read_all(), vca->read_slab(window));
}

TEST_F(EndToEndTest, SimilarityPipelineDashRoundTrip) {
  io::Vca vca = io::Vca::build(*paths_);
  das::LocalSimilarityParams p;
  p.window_half = 4;
  p.lag_half = 2;

  core::EngineConfig config;
  config.nodes = 2;
  config.cores_per_node = 2;
  const core::EngineReport report =
      das::local_similarity_distributed(config, vca, p);

  // Persist the result and read it back: full storage round trip.
  io::Dash5Header header;
  header.shape = report.output.shape;
  header.global = vca.global_meta();
  io::dash5_write(dir_->file("sim.dh5"), header, report.output.data);

  io::Dash5File back(dir_->file("sim.dh5"));
  EXPECT_EQ(back.shape(), report.output.shape);
  EXPECT_EQ(back.read_all(), report.output.data);
  EXPECT_EQ(back.global_meta().get_or_throw(io::meta::kTimeStamp),
            "170728224510");
}

TEST_F(EndToEndTest, PipelinesAgreeAcrossAllEngineConfigs) {
  io::Vca vca = io::Vca::build(*paths_);
  das::InterferometryParams p;
  p.sampling_hz = 40.0;
  p.band_lo_hz = 1.0;
  p.band_hi_hz = 15.0;
  p.resample_down = 2;

  const core::Array2D reference = das::interferometry_single_node(
      core::Array2D(vca.shape(), vca.read_all()), p, 1);

  for (const auto mode :
       {core::EngineMode::kHybrid, core::EngineMode::kMpiPerCore}) {
    for (const auto read : {core::ReadMethod::kCommunicationAvoiding,
                            core::ReadMethod::kCollectivePerFile,
                            core::ReadMethod::kDirectPerRank}) {
      for (const int nodes : {1, 3}) {
        core::EngineConfig config;
        config.nodes = nodes;
        config.cores_per_node = 2;
        config.mode = mode;
        config.read_method = read;
        const core::EngineReport report =
            das::interferometry_distributed(config, vca, p);
        ASSERT_EQ(report.output.shape, reference.shape);
        for (std::size_t i = 0; i < reference.data.size(); ++i) {
          ASSERT_NEAR(report.output.data[i], reference.data[i], 1e-9)
              << "mode/read/nodes = " << static_cast<int>(mode) << "/"
              << static_cast<int>(read) << "/" << nodes;
        }
      }
    }
  }
}

TEST_F(EndToEndTest, EventsDetectedThroughTheFullStack) {
  // The synthetic quake at ~210 s is outside this short record; use the
  // first vehicle instead: it enters at 20 s... also outside (12 s
  // record). So check the coherence property that drives detection:
  // neighbouring channels correlate more during any coherent event than
  // the map's own noise floor. With a 12 s record the record holds only
  // ambient noise -- similarity must be uniformly LOW, which is the
  // equally important no-false-alarm half of Fig. 10.
  io::Vca vca = io::Vca::build(*paths_);
  das::LocalSimilarityParams p;
  p.window_half = 6;
  p.lag_half = 3;
  core::EngineConfig config;
  config.nodes = 2;
  config.cores_per_node = 2;
  const core::EngineReport report =
      das::local_similarity_distributed(config, vca, p);
  double mean = 0.0;
  std::size_t n = 0;
  double peak = 0.0;
  for (double v : report.output.data) {
    mean += v;
    peak = std::max(peak, v);
    ++n;
  }
  mean /= static_cast<double>(n);
  EXPECT_LT(mean, 0.6);   // noise does not look like an event
  EXPECT_LE(peak, 1.0 + 1e-12);
}

TEST_F(EndToEndTest, AutotunerConsumesRealCalibration) {
  io::Vca vca = io::Vca::build(*paths_);
  das::InterferometryParams p;
  p.sampling_hz = 40.0;
  p.band_lo_hz = 1.0;
  p.band_hi_hz = 15.0;

  const std::vector<double> master =
      vca.read_slab(Slab2D{0, 0, 1, vca.shape().cols});
  const core::RowUdf udf = das::make_interferometry_udf(
      p, das::interferometry_spectrum(master, p));
  const double sec = core::calibrate_row_udf(vca, udf, 3);
  EXPECT_GT(sec, 0.0);

  core::ClusterSpec cluster;
  cluster.max_nodes = 64;
  cluster.cores_per_node = 4;
  const core::TuneResult result =
      core::autotune_nodes(cluster, core::workload_for_rows(vca, sec));
  EXPECT_GE(result.best_nodes, 1);
  EXPECT_LE(result.best_nodes, 64);
  EXPECT_FALSE(result.sweep.empty());
}

}  // namespace
}  // namespace dassa
