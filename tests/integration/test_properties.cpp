// Randomized property tests across modules: for arbitrary shapes, file
// splits, halos and engine configurations, the distributed result must
// equal the serial reference; storage round trips must be lossless for
// arbitrary metadata; resolve/assemble must be a bijection.
#include <gtest/gtest.h>

#include <random>

#include "dassa/core/haee.hpp"
#include "dassa/io/dash5.hpp"
#include "dassa/io/vca.hpp"
#include "testing/tmpdir.hpp"

namespace dassa {
namespace {

using testing::TmpDir;

/// Deterministic RNG per test-case index.
std::mt19937_64 rng_for(std::size_t trial) {
  return std::mt19937_64(0xD0551E5ULL * (trial + 1));
}

/// Write a random global array as randomly-split member files.
struct RandomAcquisition {
  Shape2D shape;
  std::vector<double> data;
  std::vector<std::string> files;

  RandomAcquisition(TmpDir& dir, std::mt19937_64& rng) {
    shape.rows = 3 + rng() % 14;        // 3..16 channels
    const std::size_t n_files = 1 + rng() % 5;
    std::vector<std::size_t> widths;
    shape.cols = 0;
    for (std::size_t f = 0; f < n_files; ++f) {
      widths.push_back(4 + rng() % 29);  // 4..32 samples per file
      shape.cols += widths.back();
    }
    data.resize(shape.size());
    std::normal_distribution<double> dist;
    for (auto& v : data) v = dist(rng);

    std::size_t col0 = 0;
    for (std::size_t f = 0; f < n_files; ++f) {
      const Shape2D fshape{shape.rows, widths[f]};
      std::vector<double> fdata(fshape.size());
      for (std::size_t r = 0; r < shape.rows; ++r) {
        for (std::size_t c = 0; c < widths[f]; ++c) {
          fdata[fshape.at(r, c)] = data[shape.at(r, c + col0)];
        }
      }
      io::Dash5Header h;
      h.shape = fshape;
      // Randomly chunk some members: layout must be invisible.
      if (rng() % 2 == 0) {
        h.layout = io::Layout::kChunked;
        h.chunk = {1 + rng() % fshape.rows, 1 + rng() % fshape.cols};
      }
      const std::string path =
          dir.file("m" + std::to_string(f) + ".dh5");
      io::dash5_write(path, h, fdata);
      files.push_back(path);
      col0 += widths[f];
    }
  }
};

class PropertyTrial : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PropertyTrial, VcaReadsEqualSourceForRandomSplitsAndSlabs) {
  TmpDir dir("prop");
  auto rng = rng_for(GetParam());
  RandomAcquisition acq(dir, rng);
  io::Vca vca = io::Vca::build(acq.files);
  ASSERT_EQ(vca.shape(), acq.shape);
  EXPECT_EQ(vca.read_all(), acq.data);

  for (int i = 0; i < 10; ++i) {
    const std::size_t r0 = rng() % acq.shape.rows;
    const std::size_t c0 = rng() % acq.shape.cols;
    const Slab2D slab{r0, c0, 1 + rng() % (acq.shape.rows - r0),
                      1 + rng() % (acq.shape.cols - c0)};
    const std::vector<double> got = vca.read_slab(slab);
    for (std::size_t r = 0; r < slab.row_cnt; ++r) {
      for (std::size_t c = 0; c < slab.col_cnt; ++c) {
        ASSERT_EQ(got[r * slab.col_cnt + c],
                  acq.data[acq.shape.at(slab.row_off + r,
                                        slab.col_off + c)])
            << slab.str();
      }
    }
  }
}

TEST_P(PropertyTrial, DistributedApplyEqualsSerialForRandomConfigs) {
  TmpDir dir("prop");
  auto rng = rng_for(GetParam() + 100);
  RandomAcquisition acq(dir, rng);
  io::Vca vca = io::Vca::build(acq.files);

  // Random engine configuration (halo bounded by the partition size).
  core::EngineConfig config;
  config.nodes = 1 + static_cast<int>(rng() % 4);
  config.cores_per_node = 1 + static_cast<int>(rng() % 3);
  config.mode = rng() % 2 == 0 ? core::EngineMode::kHybrid
                               : core::EngineMode::kMpiPerCore;
  const std::array<core::ReadMethod, 3> reads{
      core::ReadMethod::kCommunicationAvoiding,
      core::ReadMethod::kCollectivePerFile,
      core::ReadMethod::kDirectPerRank};
  config.read_method = reads[rng() % 3];
  config.halo_mode = rng() % 2 == 0 ? core::HaloMode::kExchange
                                    : core::HaloMode::kOverlapRead;
  const std::size_t max_halo =
      acq.shape.rows / static_cast<std::size_t>(config.world_size());
  config.halo_channels = max_halo > 0 ? rng() % (max_halo + 1) : 0;

  const auto halo = static_cast<std::ptrdiff_t>(config.halo_channels);
  const core::ScalarUdf udf = [halo](const core::Stencil& s) {
    // Sum over the full reachable ghost neighbourhood, clamped at
    // array edges -- sensitive to any halo/partition mistake.
    double acc = 0.0;
    for (std::ptrdiff_t dch = -halo; dch <= halo; ++dch) {
      if (s.in_bounds(0, dch)) acc += s(0, dch);
    }
    const double left = s.in_bounds(-1, 0) ? s(-1, 0) : 0.0;
    return acc + 0.5 * left;
  };

  const core::Array2D serial = core::apply_cells_serial(
      core::LocalBlock::whole(core::Array2D(acq.shape, acq.data)), udf);
  const core::EngineReport report = core::run_cells(
      config, vca, [&](const core::RankContext&) { return udf; });

  ASSERT_EQ(report.output.shape, serial.shape)
      << "nodes=" << config.nodes << " cores=" << config.cores_per_node
      << " halo=" << config.halo_channels;
  for (std::size_t i = 0; i < serial.data.size(); ++i) {
    ASSERT_NEAR(report.output.data[i], serial.data[i], 1e-12)
        << "i=" << i << " nodes=" << config.nodes
        << " halo=" << config.halo_channels;
  }
}

TEST_P(PropertyTrial, MetadataRoundTripsArbitraryStrings) {
  TmpDir dir("prop");
  auto rng = rng_for(GetParam() + 200);
  io::Dash5Header h;
  h.shape = {2, 3};
  // Random keys/values including empty strings and binary-ish bytes.
  const std::size_t nkv = rng() % 8;
  for (std::size_t i = 0; i < nkv; ++i) {
    std::string key = "k" + std::to_string(i);
    std::string value;
    const std::size_t len = rng() % 20;
    for (std::size_t j = 0; j < len; ++j) {
      value.push_back(static_cast<char>(rng() % 256));
    }
    h.global.set(std::move(key), std::move(value));
  }
  io::ObjectMeta obj;
  obj.path = "/Measurement/1";
  obj.kv.set("empty", "");
  h.objects.push_back(obj);

  dash5_write(dir.file("m.dh5"), h, std::vector<double>(6, 1.0));
  const io::Dash5Header back = io::Dash5File::read_header(dir.file("m.dh5"));
  EXPECT_EQ(back.global, h.global);
  EXPECT_EQ(back.objects, h.objects);
}

INSTANTIATE_TEST_SUITE_P(Trials, PropertyTrial,
                         ::testing::Range<std::size_t>(0, 12));

}  // namespace
}  // namespace dassa
