// Test helper: unique temporary directory, removed on destruction.
#pragma once

#include <atomic>
#include <filesystem>
#include <string>

namespace dassa::testing {

class TmpDir {
 public:
  explicit TmpDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("dassa_test_" + tag + "_" + std::to_string(counter.fetch_add(1)) +
             "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TmpDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TmpDir(const TmpDir&) = delete;
  TmpDir& operator=(const TmpDir&) = delete;

  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

}  // namespace dassa::testing
