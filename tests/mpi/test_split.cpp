// Comm::split tests: group formation, key ordering, context isolation
// between sibling and parent communicators, collectives over
// sub-communicators, nested splits.
#include <gtest/gtest.h>

#include "dassa/mpi/runtime.hpp"

namespace dassa::mpi {
namespace {

TEST(SplitTest, EvenOddGroups) {
  Runtime::run(6, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);  // key order = world order
  });
}

TEST(SplitTest, KeyControlsOrdering) {
  Runtime::run(4, [](Comm& comm) {
    // Reverse ordering: key = -world rank.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - comm.rank());
  });
}

TEST(SplitTest, SingletonGroups) {
  Runtime::run(3, [](Comm& comm) {
    Comm sub = comm.split(comm.rank(), 0);  // every rank its own color
    EXPECT_EQ(sub.size(), 1);
    EXPECT_EQ(sub.rank(), 0);
    // Collectives on a singleton still work.
    std::vector<int> v{comm.rank()};
    sub.bcast(v, 0);
    EXPECT_EQ(v.front(), comm.rank());
  });
}

TEST(SplitTest, SubCommunicatorP2pUsesLocalRanks) {
  Runtime::run(4, [](Comm& comm) {
    // Groups {0,1} and {2,3}; local rank 0 sends to local rank 1.
    Comm sub = comm.split(comm.rank() / 2, comm.rank());
    if (sub.rank() == 0) {
      const std::vector<int> v{comm.rank() * 10};
      sub.send(std::span<const int>(v), 1, 5);
    } else {
      const std::vector<int> got = sub.recv<int>(0, 5);
      // Received from the group peer, not any world rank 0.
      EXPECT_EQ(got.front(), (comm.rank() - 1) * 10);
    }
  });
}

TEST(SplitTest, CollectivesStayInsideTheGroup) {
  Runtime::run(6, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    // Per-group allreduce: even ranks sum 0+2+4, odd sum 1+3+5.
    const int sum = sub.allreduce<int>(comm.rank(),
                                       [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, comm.rank() % 2 == 0 ? 6 : 9);

    // Per-group gather in key order.
    const std::vector<int> mine{comm.rank()};
    const auto all = sub.gatherv(std::span<const int>(mine), 0);
    if (sub.rank() == 0) {
      ASSERT_EQ(all.size(), 3u);
      for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].front(),
                  2 * r + comm.rank() % 2);
      }
    }
  });
}

TEST(SplitTest, ParentStillUsableAfterSplit) {
  Runtime::run(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 2, comm.rank());
    // Interleave: sub-collective, then parent-collective, then sub.
    (void)sub.allreduce<int>(1, [](int a, int b) { return a + b; });
    const int world_sum =
        comm.allreduce<int>(1, [](int a, int b) { return a + b; });
    EXPECT_EQ(world_sum, 4);
    const int group_sum =
        sub.allreduce<int>(1, [](int a, int b) { return a + b; });
    EXPECT_EQ(group_sum, 2);
  });
}

TEST(SplitTest, SiblingGroupsDoNotCrossTalk) {
  // Both groups run the same tagged p2p pattern simultaneously; context
  // separation must keep the messages apart even though world mailbox
  // slots are shared.
  Runtime::run(8, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 4, comm.rank());
    for (int iter = 0; iter < 50; ++iter) {
      if (sub.rank() % 2 == 0) {
        const std::vector<int> v{comm.rank() * 1000 + iter};
        sub.send(std::span<const int>(v), sub.rank() + 1, 7);
      } else {
        const std::vector<int> got = sub.recv<int>(sub.rank() - 1, 7);
        EXPECT_EQ(got.front(), (comm.rank() - 1) * 1000 + iter);
      }
    }
  });
}

TEST(SplitTest, NestedSplits) {
  Runtime::run(8, [](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());   // 2 x 4
    Comm quarter = half.split(half.rank() / 2, half.rank());  // 4 x 2
    EXPECT_EQ(quarter.size(), 2);
    const int sum = quarter.allreduce<int>(
        comm.rank(), [](int a, int b) { return a + b; });
    // Pairs are (0,1), (2,3), (4,5), (6,7) in world ranks.
    EXPECT_EQ(sum, (comm.rank() / 2) * 4 + 1);
  });
}

TEST(SplitTest, HaeeStyleNodeGroups) {
  // The pattern a real HAEE would use: per-node sub-communicators with
  // a node-leader cross-communicator.
  const int nodes = 3;
  const int cores = 2;
  Runtime::run(nodes * cores, [&](Comm& comm) {
    const int node = comm.rank() / cores;
    Comm node_comm = comm.split(node, comm.rank());
    EXPECT_EQ(node_comm.size(), cores);

    Comm leader_comm =
        comm.split(node_comm.rank() == 0 ? 0 : 1, comm.rank());
    if (node_comm.rank() == 0) {
      EXPECT_EQ(leader_comm.size(), nodes);
      const int leaders_sum = leader_comm.allreduce<int>(
          1, [](int a, int b) { return a + b; });
      EXPECT_EQ(leaders_sum, nodes);
    }
  });
}

}  // namespace
}  // namespace dassa::mpi
