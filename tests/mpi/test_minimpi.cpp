// MiniMPI tests: point-to-point semantics, every collective checked
// against a sequential reference, instrumentation counts, abort
// propagation.
#include <gtest/gtest.h>

#include <numeric>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/mpi/runtime.hpp"

namespace dassa::mpi {
namespace {

TEST(RuntimeTest, SingleRankWorld) {
  bool ran = false;
  Runtime::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(RuntimeTest, RejectsZeroRanks) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), InvalidArgument);
}

TEST(RuntimeTest, ExceptionInRankPropagates) {
  EXPECT_THROW(Runtime::run(4,
                            [](Comm& comm) {
                              if (comm.rank() == 2) throw IoError("rank 2");
                              // Other ranks block; the abort must wake
                              // them rather than deadlock the test.
                              if (comm.rank() != 2) {
                                (void)comm.recv<int>((comm.rank() + 1) % 4,
                                                     77);
                              }
                            }),
               IoError);
}

TEST(P2pTest, SendRecvRoundTrip) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> payload{1, 2, 3, 4, 5};
      comm.send(std::span<const int>(payload), 1, 7);
    } else {
      const std::vector<int> got = comm.recv<int>(0, 7);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5}));
    }
  });
}

TEST(P2pTest, EmptyMessage) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::span<const double>{}, 1, 1);
    } else {
      EXPECT_TRUE(comm.recv<double>(0, 1).empty());
    }
  });
}

TEST(P2pTest, TagMatchingSelectsRightMessage) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> a{10};
      const std::vector<int> b{20};
      comm.send(std::span<const int>(a), 1, 100);
      comm.send(std::span<const int>(b), 1, 200);
    } else {
      // Receive in the opposite order of sending: matching is by tag.
      EXPECT_EQ(comm.recv<int>(0, 200).front(), 20);
      EXPECT_EQ(comm.recv<int>(0, 100).front(), 10);
    }
  });
}

TEST(P2pTest, FifoPerTag) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        const std::vector<int> v{i};
        comm.send(std::span<const int>(v), 1, 5);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv<int>(0, 5).front(), i);  // non-overtaking
      }
    }
  });
}

TEST(P2pTest, RejectsNegativeUserTagAndBadRank) {
  Runtime::run(2, [](Comm& comm) {
    const std::vector<int> v{1};
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send(std::span<const int>(v), 1, -3),
                   InvalidArgument);
      EXPECT_THROW(comm.send(std::span<const int>(v), 9, 3),
                   InvalidArgument);
      comm.send(std::span<const int>(v), 1, 3);  // unblock peer
    } else {
      (void)comm.recv<int>(0, 3);
    }
  });
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, Barrier) {
  const int p = GetParam();
  std::atomic<int> before{0};
  std::atomic<bool> any_after_saw_partial{false};
  Runtime::run(p, [&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != p) any_after_saw_partial.store(true);
  });
  EXPECT_FALSE(any_after_saw_partial.load());
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    Runtime::run(p, [&](Comm& comm) {
      std::vector<double> data;
      if (comm.rank() == root) {
        data = {1.5, 2.5, static_cast<double>(root)};
      }
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[2], static_cast<double>(root));
    });
  }
}

TEST_P(CollectiveTest, GathervCollectsInRankOrder) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    // Rank r contributes r+1 values, all equal to r.
    const std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1),
                                comm.rank());
    const auto all = comm.gatherv(std::span<const int>(mine), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r + 1));
        for (int v : all[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveTest, AllgathervGivesEveryoneEverything) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    const std::vector<int> mine{comm.rank(), comm.rank() * 10};
    const auto all = comm.allgatherv(std::span<const int>(mine));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)],
                (std::vector<int>{r, r * 10}));
    }
  });
}

TEST_P(CollectiveTest, ScatterDistributesChunks) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    std::vector<int> all;
    if (comm.rank() == 0) {
      all.resize(static_cast<std::size_t>(3 * p));
      std::iota(all.begin(), all.end(), 0);
    }
    const std::vector<int> mine =
        comm.scatter(std::span<const int>(all), 3, 0);
    ASSERT_EQ(mine.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(mine[static_cast<std::size_t>(i)], comm.rank() * 3 + i);
    }
  });
}

TEST_P(CollectiveTest, AlltoallvRoutesEveryPair) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    // Rank r sends {r*100 + q} repeated (q+1) times to rank q.
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) {
      out[static_cast<std::size_t>(q)]
          .assign(static_cast<std::size_t>(q + 1), comm.rank() * 100 + q);
    }
    const auto in = comm.alltoallv(out);
    ASSERT_EQ(in.size(), static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      const auto& v = in[static_cast<std::size_t>(src)];
      ASSERT_EQ(v.size(), static_cast<std::size_t>(comm.rank() + 1));
      for (int x : v) EXPECT_EQ(x, src * 100 + comm.rank());
    }
  });
}

TEST_P(CollectiveTest, ReduceAndAllreduce) {
  const int p = GetParam();
  Runtime::run(p, [&](Comm& comm) {
    const auto plus = [](int a, int b) { return a + b; };
    const int sum = comm.reduce<int>(comm.rank() + 1, plus, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(sum, p * (p + 1) / 2);
    }

    const int all_sum = comm.allreduce<int>(comm.rank() + 1, plus);
    EXPECT_EQ(all_sum, p * (p + 1) / 2);

    const auto max_op = [](double a, double b) { return std::max(a, b); };
    const double mx =
        comm.allreduce<double>(static_cast<double>(comm.rank()), max_op);
    EXPECT_EQ(mx, static_cast<double>(p - 1));
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13));

TEST(InstrumentationTest, BcastUsesTreeNotStar) {
  // Binomial broadcast: exactly p-1 point-to-point messages, and the
  // root sends only ceil(log2(p)) of them.
  const int p = 8;
  const RunReport report = Runtime::run(p, [](Comm& comm) {
    std::vector<double> v(100, 1.0);
    comm.bcast(v, 0);
  });
  std::uint64_t total_sends = 0;
  for (const auto& s : report.per_rank) total_sends += s.p2p_sends;
  EXPECT_EQ(total_sends, static_cast<std::uint64_t>(p - 1));
  EXPECT_EQ(report.per_rank[0].p2p_sends, 3u);  // log2(8)
}

TEST(InstrumentationTest, AlltoallvSendCountsArePairwise) {
  const int p = 5;
  const RunReport report = Runtime::run(p, [p](Comm& comm) {
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p),
                                      std::vector<int>{comm.rank()});
    (void)comm.alltoallv(out);
  });
  for (const auto& s : report.per_rank) {
    EXPECT_EQ(s.p2p_sends, static_cast<std::uint64_t>(p - 1));
    EXPECT_EQ(s.p2p_recvs, static_cast<std::uint64_t>(p - 1));
  }
}

TEST(InstrumentationTest, ModeledTimeGrowsWithBytes) {
  CostParams params;
  params.alpha_seconds = 1e-6;
  params.beta_bytes_per_second = 1e9;
  const RunReport small = Runtime::run(2, params, [](Comm& comm) {
    std::vector<double> v(10, 1.0);
    comm.bcast(v, 0);
  });
  const RunReport big = Runtime::run(2, params, [](Comm& comm) {
    std::vector<double> v(100000, 1.0);
    comm.bcast(v, 0);
  });
  EXPECT_GT(big.aggregate().modeled_seconds,
            small.aggregate().modeled_seconds);
}

TEST(InstrumentationTest, GlobalCountersTrackCollectives) {
  global_counters().reset();
  Runtime::run(4, [](Comm& comm) {
    std::vector<int> v{1};
    comm.bcast(v, 0);
    comm.bcast(v, 1);
    comm.barrier();
    std::vector<std::vector<int>> out(4, std::vector<int>{comm.rank()});
    (void)comm.alltoallv(out);
  });
  EXPECT_EQ(global_counters().get(counters::kMpiBcasts), 2u);
  EXPECT_EQ(global_counters().get(counters::kMpiBarriers), 1u);
  EXPECT_EQ(global_counters().get(counters::kMpiAlltoalls), 1u);
}

TEST(InstrumentationTest, StatsAggregateMergesAndMaxes) {
  CommStats a;
  a.p2p_sends = 3;
  a.bytes_sent = 100;
  a.modeled_seconds = 1.0;
  CommStats b;
  b.p2p_sends = 2;
  b.bytes_sent = 50;
  b.modeled_seconds = 4.0;
  a.merge(b);
  EXPECT_EQ(a.p2p_sends, 5u);
  EXPECT_EQ(a.bytes_sent, 150u);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, 4.0);  // critical path = max
}

}  // namespace
}  // namespace dassa::mpi
