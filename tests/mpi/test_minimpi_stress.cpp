// MiniMPI stress and property tests: randomized message storms,
// fuzzed variable-length collectives, interleaved collective sequences,
// repeated worlds -- checking delivery exactness under contention.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "dassa/mpi/runtime.hpp"

namespace dassa::mpi {
namespace {

TEST(MpiStressTest, ManySmallMessagesAllArriveInOrder) {
  // Every rank sends 200 numbered messages to every other rank on a
  // shared tag; per-pair FIFO must hold under full contention.
  const int p = 6;
  const int per_pair = 200;
  Runtime::run(p, [&](Comm& comm) {
    for (int dst = 0; dst < p; ++dst) {
      if (dst == comm.rank()) continue;
      for (int k = 0; k < per_pair; ++k) {
        const std::vector<int> payload{comm.rank(), k};
        comm.send(std::span<const int>(payload), dst, 11);
      }
    }
    for (int src = 0; src < p; ++src) {
      if (src == comm.rank()) continue;
      for (int k = 0; k < per_pair; ++k) {
        const std::vector<int> got = comm.recv<int>(src, 11);
        ASSERT_EQ(got.size(), 2u);
        EXPECT_EQ(got[0], src);
        EXPECT_EQ(got[1], k);  // non-overtaking per (src, tag)
      }
    }
  });
}

TEST(MpiStressTest, FuzzedAlltoallvRoundTrips) {
  // Random payload lengths per (src, dst) pair, checked for exact
  // content across 10 rounds.
  const int p = 5;
  std::mt19937_64 seed_rng(42);
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t seed = seed_rng();
    Runtime::run(p, [&](Comm& comm) {
      // Deterministic per-pair lengths both sides can compute.
      auto len = [&](int src, int dst) {
        return static_cast<std::size_t>(
            (seed ^ (static_cast<std::uint64_t>(src) << 16) ^
             static_cast<std::uint64_t>(dst)) %
            97);
      };
      std::vector<std::vector<double>> out(static_cast<std::size_t>(p));
      for (int dst = 0; dst < p; ++dst) {
        const std::size_t n = len(comm.rank(), dst);
        auto& v = out[static_cast<std::size_t>(dst)];
        v.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          v[i] = comm.rank() * 1000.0 + dst * 100.0 + static_cast<double>(i);
        }
      }
      const auto in = comm.alltoallv(out);
      for (int src = 0; src < p; ++src) {
        const auto& v = in[static_cast<std::size_t>(src)];
        ASSERT_EQ(v.size(), len(src, comm.rank()));
        for (std::size_t i = 0; i < v.size(); ++i) {
          ASSERT_EQ(v[i], src * 1000.0 + comm.rank() * 100.0 +
                              static_cast<double>(i));
        }
      }
    });
  }
}

TEST(MpiStressTest, BackToBackCollectivesDoNotInterleave) {
  // A rapid sequence of different collectives with matching contents;
  // tag-range separation must keep them straight.
  const int p = 7;
  Runtime::run(p, [&](Comm& comm) {
    for (int iter = 0; iter < 25; ++iter) {
      std::vector<int> data{iter, comm.rank()};
      std::vector<int> bcast_data{iter * 7};
      comm.bcast(bcast_data, iter % p);
      EXPECT_EQ(bcast_data.front(), iter * 7);

      const int sum = comm.allreduce<int>(
          1, [](int a, int b) { return a + b; });
      EXPECT_EQ(sum, p);

      const auto gathered =
          comm.gatherv(std::span<const int>(data), (iter + 1) % p);
      if (comm.rank() == (iter + 1) % p) {
        for (int r = 0; r < p; ++r) {
          EXPECT_EQ(gathered[static_cast<std::size_t>(r)],
                    (std::vector<int>{iter, r}));
        }
      }
      comm.barrier();
    }
  });
}

TEST(MpiStressTest, LargePayloadsSurviveExchange) {
  // 1 MiB per pairwise payload through the all-to-all.
  const int p = 3;
  const std::size_t n = 128 * 1024;  // doubles
  Runtime::run(p, [&](Comm& comm) {
    std::vector<std::vector<double>> out(
        static_cast<std::size_t>(p),
        std::vector<double>(n, static_cast<double>(comm.rank())));
    const auto in = comm.alltoallv(out);
    for (int src = 0; src < p; ++src) {
      const auto& v = in[static_cast<std::size_t>(src)];
      ASSERT_EQ(v.size(), n);
      EXPECT_EQ(v.front(), static_cast<double>(src));
      EXPECT_EQ(v.back(), static_cast<double>(src));
    }
  });
}

TEST(MpiStressTest, RepeatedWorldsAreIndependent) {
  // Sequential worlds must not leak messages into each other.
  for (int world = 0; world < 20; ++world) {
    const RunReport report = Runtime::run(4, [&](Comm& comm) {
      const std::vector<int> v{world};
      comm.send(std::span<const int>(v), (comm.rank() + 1) % 4, 3);
      const std::vector<int> got =
          comm.recv<int>((comm.rank() + 3) % 4, 3);
      ASSERT_EQ(got.front(), world);
    });
    EXPECT_EQ(report.aggregate().p2p_sends, 4u);
  }
}

TEST(MpiStressTest, ReduceMatchesSequentialFoldForRandomInput) {
  const int p = 9;
  std::vector<double> values(static_cast<std::size_t>(p));
  std::mt19937_64 rng(17);
  std::normal_distribution<double> dist;
  for (auto& v : values) v = dist(rng);
  const double expected = std::accumulate(values.begin(), values.end(), 0.0);

  Runtime::run(p, [&](Comm& comm) {
    const double sum = comm.allreduce<double>(
        values[static_cast<std::size_t>(comm.rank())],
        [](double a, double b) { return a + b; });
    // Tree order differs from sequential order; allow rounding slack.
    EXPECT_NEAR(sum, expected, 1e-12 * (1.0 + std::abs(expected)));
  });
}

}  // namespace
}  // namespace dassa::mpi
