// Cross-rank telemetry reduction: exact aggregate math over a real
// 4-rank MiniMPI world. Every assertion here is an equality -- the
// reduction is a gather of integers, so nothing is approximate.
#include "dassa/mpi/telemetry.hpp"

#include <gtest/gtest.h>

#include "dassa/common/metrics.hpp"
#include "dassa/mpi/runtime.hpp"

namespace dassa::mpi {
namespace {

TEST(TelemetryReduce, FourRankAggregatesAreExact) {
  Runtime::run(4, [](Comm& comm) {
    const auto rank = static_cast<std::uint64_t>(comm.rank());

    RankTelemetry mine;
    mine.counters["haee.rows_owned"] = (rank + 1) * 1000;
    if (comm.rank() == 1) mine.counters["haee.halo_exchanges"] = 7;

    // Rank r records (r + 1) samples of 2^r ns: bucket r of the merged
    // histogram must hold exactly r + 1 entries.
    LatencyHistogram hist;
    for (std::uint64_t i = 0; i <= rank; ++i) {
      hist.record_ns(std::uint64_t{1} << rank);
    }
    mine.hists["haee.stage_ns"] = hist.snapshot();

    const ClusterTelemetry cluster = reduce_telemetry(comm, mine, 0);
    EXPECT_EQ(cluster.world_size, 4);
    if (comm.rank() != 0) {
      // Non-root ranks get no reduced data back.
      EXPECT_TRUE(cluster.per_rank.empty());
      EXPECT_TRUE(cluster.counters.empty());
      return;
    }

    ASSERT_EQ(cluster.per_rank.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(cluster.per_rank[static_cast<std::size_t>(r)].counters.at(
                    "haee.rows_owned"),
                static_cast<std::uint64_t>(r + 1) * 1000);
    }

    const CounterAggregate& rows = cluster.counters.at("haee.rows_owned");
    EXPECT_EQ(rows.sum, 10000u);  // 1000 + 2000 + 3000 + 4000
    EXPECT_EQ(rows.min, 1000u);
    EXPECT_EQ(rows.min_rank, 0);
    EXPECT_EQ(rows.max, 4000u);
    EXPECT_EQ(rows.max_rank, 3);
    // max / mean = 4000 / 2500.
    EXPECT_DOUBLE_EQ(rows.imbalance(cluster.world_size), 1.6);

    // A counter only one rank charged: absent ranks count as zero.
    const CounterAggregate& halo =
        cluster.counters.at("haee.halo_exchanges");
    EXPECT_EQ(halo.sum, 7u);
    EXPECT_EQ(halo.min, 0u);
    EXPECT_EQ(halo.max, 7u);
    EXPECT_EQ(halo.max_rank, 1);

    const HistogramSnapshot& merged = cluster.hists.at("haee.stage_ns");
    EXPECT_EQ(merged.count, 10u);  // 1 + 2 + 3 + 4
    for (std::size_t b = 0; b < 4; ++b) {
      EXPECT_EQ(merged.buckets[b], b + 1);
    }
    std::uint64_t expected_total = 0;
    for (std::uint64_t r = 0; r < 4; ++r) {
      expected_total += (r + 1) * (std::uint64_t{1} << r);
    }
    EXPECT_EQ(merged.total_ns, expected_total);
  });
}

TEST(TelemetryReduce, ZeroCounterHasUnitImbalance) {
  Runtime::run(2, [](Comm& comm) {
    RankTelemetry mine;
    mine.counters["haee.runs"] = 0;
    const ClusterTelemetry cluster = reduce_telemetry(comm, mine, 0);
    if (comm.rank() != 0) return;
    const CounterAggregate& agg = cluster.counters.at("haee.runs");
    EXPECT_EQ(agg.sum, 0u);
    EXPECT_DOUBLE_EQ(agg.imbalance(cluster.world_size), 1.0);
  });
}

TEST(TelemetryReduce, NonZeroRootCollects) {
  Runtime::run(3, [](Comm& comm) {
    RankTelemetry mine;
    mine.counters["haee.rows_owned"] =
        static_cast<std::uint64_t>(comm.rank()) + 1;
    const ClusterTelemetry cluster = reduce_telemetry(comm, mine, 2);
    if (comm.rank() != 2) {
      EXPECT_TRUE(cluster.per_rank.empty());
      return;
    }
    EXPECT_EQ(cluster.counters.at("haee.rows_owned").sum, 6u);
  });
}

}  // namespace
}  // namespace dassa::mpi
