// Fig. 10 reproduction: event detection with local similarity
// (Algorithm 2) on the 6-minute record of Fig. 1b.
//
// The paper's figure shows the local-similarity map revealing two
// moving vehicles, the M4.4 earthquake, and a persistent vibration.
// This bench regenerates the map from the synthetic Fig. 1b scene and
// *checks* each signature quantitatively: similarity inside each
// event's known (channel, time) footprint must exceed the noise floor
// by a clear margin, and the vehicle tracks must show moveout (the
// active channel advances with time).
#include <cmath>

#include "bench_util.hpp"
#include "dassa/das/local_similarity.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

namespace {

/// Mean similarity over a (channel, time) box of the map.
double box_mean(const core::Array2D& map, std::size_t ch_lo,
                std::size_t ch_hi, std::size_t t_lo, std::size_t t_hi) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t ch = ch_lo; ch < ch_hi; ++ch) {
    for (std::size_t t = t_lo; t < t_hi; ++t) {
      sum += map.at(ch, t);
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  BenchDir dir("fig10");
  const std::size_t channels = 96;
  const double rate = 25.0;
  const double total_seconds = 360.0;  // the 6-minute record
  const auto span = static_cast<double>(channels);

  const auto paths = bench::make_acquisition(
      dir, "acq", channels, 6,
      static_cast<std::size_t>(total_seconds / 6.0 * rate), rate);
  io::Vca vca = io::Vca::build(paths);

  das::LocalSimilarityParams params;
  params.window_half = 12;
  params.lag_half = 10;
  params.channel_offset = 1;

  core::EngineConfig config;
  config.nodes = 4;
  config.cores_per_node = 2;
  WallTimer timer;
  const core::EngineReport report =
      das::local_similarity_distributed(config, vca, params);
  const core::Array2D& map = report.output;
  std::cout << "similarity map " << map.shape << " computed in "
            << timer.seconds() << " s (" << report.stages << ")\n";

  auto t_idx = [&](double seconds) {
    return static_cast<std::size_t>(seconds * rate);
  };
  auto ch_idx = [&](double frac) {
    return static_cast<std::size_t>(frac * span);
  };

  // Noise floor: a quiet region before any event.
  const double noise = box_mean(map, ch_idx(0.3), ch_idx(0.5), t_idx(2.0),
                                t_idx(16.0));

  // Event footprints from the fig1b scene definition (synth.cpp):
  //   vehicle 1: starts 20 s at 5% span, speed span/200 ch/s;
  //   vehicle 2: starts 120 s at 90% span, speed -span/150 ch/s;
  //   quake: origin 210 s (+~3.4 s travel), all channels;
  //   persistent hum: channels 78-82% of span, all times.
  const double v1_t = 60.0;  // 40 s into vehicle 1's drive
  const double v1_ch = (0.05 * span + span / 200.0 * (v1_t - 20.0)) / span;
  const double v2_t = 150.0;
  const double v2_ch = (0.9 * span - span / 150.0 * (v2_t - 120.0)) / span;

  struct EventCheck {
    const char* name;
    double mean;
  };
  const EventCheck checks[] = {
      {"vehicle 1", box_mean(map, ch_idx(v1_ch) - 2, ch_idx(v1_ch) + 3,
                             t_idx(v1_t - 4), t_idx(v1_t + 4))},
      {"vehicle 2", box_mean(map, ch_idx(v2_ch) - 2, ch_idx(v2_ch) + 3,
                             t_idx(v2_t - 4), t_idx(v2_t + 4))},
      {"earthquake", box_mean(map, ch_idx(0.2), ch_idx(0.8),
                              t_idx(214.0), t_idx(218.0))},
      {"persistent", box_mean(map, ch_idx(0.79), ch_idx(0.81),
                              t_idx(60.0), t_idx(180.0))},
  };

  bench::section("Fig 10: event signatures vs noise floor");
  std::cout << "noise floor similarity: " << noise << "\n\n";
  Table t({"event", "similarity", "vs_noise", "detected"});
  bool all = true;
  for (const auto& c : checks) {
    const bool detected = c.mean > 1.5 * noise;
    all = all && detected;
    t.row(c.name, c.mean, c.mean / noise, detected ? "YES" : "no");
  }

  // Vehicle moveout: the most-similar channel must advance with time.
  bench::section("Vehicle 1 moveout (peak channel vs time)");
  Table mv({"t_seconds", "peak_channel", "expected"});
  bool moveout_ok = true;
  for (double secs = 40.0; secs <= 100.0; secs += 20.0) {
    std::size_t peak_ch = 0;
    double best = -1.0;
    for (std::size_t ch = 1; ch + 1 < channels; ++ch) {
      const double v = box_mean(map, ch, ch + 1, t_idx(secs - 2),
                                t_idx(secs + 2));
      if (v > best) {
        best = v;
        peak_ch = ch;
      }
    }
    const double expected = 0.05 * span + span / 200.0 * (secs - 20.0);
    mv.row(secs, peak_ch, expected);
    if (std::abs(static_cast<double>(peak_ch) - expected) > 8.0) {
      moveout_ok = false;
    }
  }

  std::cout << "\nall signatures detected: " << (all ? "YES" : "NO")
            << ", vehicle moveout tracks position: "
            << (moveout_ok ? "YES" : "NO")
            << "\n(paper Fig. 10: two vehicles, one M4.4 earthquake and a "
               "persistent vibration distinguishable in the map)\n";
  return all && moveout_ok ? 0 : 1;
}
