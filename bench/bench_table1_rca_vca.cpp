// Table I reproduction: RCA vs VCA along the paper's four dimensions --
// extra space, construction overhead, duplication across groups, and
// parallel I/O -- each measured rather than asserted.
//
// Paper row:            Extra space  Construction  Duplication  Parallel I/O
//   RCA                 100%         High          Exist        Yes
//   VCA                 0%           Low           No           NO (needs
//                                                  the communication-
//                                                  avoiding method)
//
// Also benches the VCA resolve-path ablation called out in DESIGN.md:
// binary search over member extents vs a linear scan.
#include <filesystem>

#include "bench_util.hpp"
#include "dassa/io/par_read.hpp"
#include "dassa/mpi/runtime.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

namespace {

std::uintmax_t total_size(const std::vector<std::string>& paths) {
  std::uintmax_t total = 0;
  for (const auto& p : paths) total += std::filesystem::file_size(p);
  return total;
}

}  // namespace

int main() {
  BenchDir dir("table1");
  const std::size_t files_n = 16;
  const auto paths =
      bench::make_acquisition(dir, "acq", 64, files_n, 512);
  const std::uintmax_t source_bytes = total_size(paths);

  // --- construction + extra space ---------------------------------------
  global_counters().reset();
  WallTimer timer;
  io::Vca vca = io::Vca::build(paths);
  vca.save(dir.file("merged.vca"));
  const double vca_seconds = timer.seconds();
  const std::uint64_t vca_read = global_counters().get(counters::kIoReadBytes);
  const std::uintmax_t vca_bytes = std::filesystem::file_size(dir.file("merged.vca"));

  global_counters().reset();
  const io::RcaBuildStats rca = io::rca_create(paths, dir.file("merged.dh5"));
  const std::uintmax_t rca_bytes =
      std::filesystem::file_size(dir.file("merged.dh5"));

  bench::section("Table I: RCA vs VCA (measured)");
  std::cout << "source: " << files_n << " files, " << source_bytes
            << " bytes total\n\n";
  Table t({"method", "extra_space%", "construct_s", "bytes_read",
           "speedup_vs_rca"});
  t.row("RCA", 100.0 * static_cast<double>(rca_bytes) /
                   static_cast<double>(source_bytes),
        rca.seconds, rca.bytes_read, 1.0);
  t.row("VCA", 100.0 * static_cast<double>(vca_bytes) /
                   static_cast<double>(source_bytes),
        vca_seconds, vca_read, rca.seconds / vca_seconds);

  // --- duplication across groups -----------------------------------------
  // Merging the SAME files into two different analysis groups: VCA adds
  // only another metadata file; RCA duplicates all data again.
  bench::section("Duplication across groups (same files in 2 merges)");
  const std::uintmax_t before = total_size(paths);
  io::Vca::build(paths).save(dir.file("group_a.vca"));
  io::Vca::build(paths).save(dir.file("group_b.vca"));
  const std::uintmax_t vca_extra =
      std::filesystem::file_size(dir.file("group_a.vca")) +
      std::filesystem::file_size(dir.file("group_b.vca"));
  (void)io::rca_create(paths, dir.file("group_a.dh5"));
  (void)io::rca_create(paths, dir.file("group_b.dh5"));
  const std::uintmax_t rca_extra =
      std::filesystem::file_size(dir.file("group_a.dh5")) +
      std::filesystem::file_size(dir.file("group_b.dh5"));
  Table d({"method", "extra_bytes", "fraction_of_src"});
  d.row("RCA", rca_extra,
        static_cast<double>(rca_extra) / static_cast<double>(before));
  d.row("VCA", vca_extra,
        static_cast<double>(vca_extra) / static_cast<double>(before));

  // --- parallel I/O --------------------------------------------------------
  // Naive parallel access to a VCA (direct-per-rank) amplifies request
  // counts; the RCA supports plain parallel reads; the communication-
  // avoiding method restores VCA parallel access (paper Section IV-B).
  bench::section("Parallel access with 6 ranks (read calls, modeled s)");
  const int ranks = 6;
  Table p({"access", "read_calls", "modeled_s"});
  const auto run_case = [&](const char* name, auto&& body) {
    global_counters().reset();
    const mpi::RunReport report = mpi::Runtime::run(ranks, body);
    p.row(name, global_counters().get(counters::kIoReadCalls),
          report.aggregate().modeled_seconds);
  };
  run_case("VCA naive", [&](mpi::Comm& comm) {
    (void)io::read_vca_direct_per_rank(comm, vca);
  });
  run_case("VCA comm-avoid", [&](mpi::Comm& comm) {
    (void)io::read_vca_comm_avoiding(comm, vca);
  });
  run_case("RCA direct", [&](mpi::Comm& comm) {
    (void)io::read_rca_direct(comm, dir.file("merged.dh5"));
  });

  // --- ablation: resolve via binary search vs linear scan -----------------
  bench::section("Ablation: VCA resolve binary search vs linear scan");
  const Shape2D shape = vca.shape();
  const std::size_t queries = 20000;
  WallTimer bs_timer;
  std::size_t checksum = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    const std::size_t col = (q * 7919) % (shape.cols - 8);
    checksum += vca.resolve(Slab2D{0, col, 1, 8}).size();
  }
  const double bs_seconds = bs_timer.seconds();

  // Linear-scan reference implemented against the public member list.
  const auto& members = vca.members();
  WallTimer lin_timer;
  std::size_t checksum2 = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    const std::size_t col = (q * 7919) % (shape.cols - 8);
    std::size_t remaining = 8;
    std::size_t cursor = col;
    std::size_t m = 0;
    std::size_t start = 0;
    while (remaining > 0) {
      while (start + members[m].shape.cols <= cursor) {
        start += members[m].shape.cols;
        ++m;  // linear scan
      }
      const std::size_t take =
          std::min(remaining, start + members[m].shape.cols - cursor);
      cursor += take;
      remaining -= take;
      ++checksum2;
    }
  }
  const double lin_seconds = lin_timer.seconds();
  Table a({"resolve", "seconds", "pieces"});
  a.row("binary-search", bs_seconds, checksum);
  a.row("linear-scan", lin_seconds, checksum2);

  // --- ablation: contiguous vs chunked dataset layout ---------------------
  // A time-window selection over all channels is the access pattern
  // chunking exists for: contiguous storage serves it with one request
  // per channel, chunked storage with one request per intersecting
  // tile.
  bench::section("Ablation: contiguous vs chunked layout, time-window read");
  {
    const Shape2D dshape{128, 4096};
    std::vector<double> data(dshape.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<double>(i % 1000);
    }
    io::Dash5Header plain;
    plain.shape = dshape;
    io::dash5_write(dir.file("plain.dh5"), plain, data);

    io::Dash5Header tiled = plain;
    tiled.layout = io::Layout::kChunked;
    tiled.chunk = {32, 512};
    io::dash5_write(dir.file("tiled.dh5"), tiled, data);

    const Slab2D window{0, 1024, 128, 512};  // all channels, 1/8 of time
    Table c({"layout", "read_calls", "bytes_read", "seconds"});
    for (const char* which : {"contiguous", "chunked"}) {
      io::Dash5File file(dir.file(
          std::string(which) == "contiguous" ? "plain.dh5" : "tiled.dh5"));
      global_counters().reset();
      WallTimer read_timer;
      const std::vector<double> got = file.read_slab(window);
      c.row(which, global_counters().get(counters::kIoReadCalls),
            global_counters().get(counters::kIoReadBytes),
            read_timer.seconds());
      if (got.size() != window.size()) return 1;
    }
  }
  return 0;
}
