#!/usr/bin/env python3
"""Compare FFT-stack micro-benchmarks against the recorded seed baseline.

Runs the bench_micro_dsp binary (google-benchmark) with JSON output,
extracts the FFT-dependent benchmarks, computes speedups against the
baseline numbers recorded before the plan-cache engine landed, and
writes the result to BENCH_fft.json at the repository root.

Every run also appends one timestamped line to BENCH_history.jsonl at
the repository root (git-ignored), so perf drift across local runs can
be plotted without scraping old BENCH_fft.json revisions.

Usage:
    python3 bench/bench_compare.py [--bench-bin build/bench/bench_micro_dsp]
                                   [--out BENCH_fft.json]
                                   [--history BENCH_history.jsonl]
                                   [--min-time 0.2]
    python3 bench/bench_compare.py --ingest-bin build/bench/bench_ingest
    python3 bench/bench_compare.py --serve-bin build/bench/bench_serve

With --ingest-bin the script instead runs the self-gating streaming
ingest benchmark (bench_ingest --check), which writes BENCH_ingest.json
(ingest-to-detection p50/p99 from validated telemetry, queue
backpressure counters, streamed-vs-offline byte identity), and appends
a {"bench": "ingest", ...} line to the same history log.

With --serve-bin it runs the self-gating query-serving benchmark
(bench_serve --check), which writes BENCH_serve.json (shared-decode
ratio vs the unbatched baseline, request latency p50/p99, interval
index touch counts) and appends a {"bench": "serve", ...} history
line.

Exit status is non-zero if the binary is missing or any acceptance
threshold (see THRESHOLDS, or bench_ingest's built-in gates) is not
met, so the script doubles as a perf regression gate.
"""

import argparse
import datetime
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Median real_time (ns) of the seed implementation (per-call twiddle
# recomputation, mutex-per-lookup cache, full-spectrum real FFT),
# measured on the reference container with --benchmark_min_time=0.2.
BASELINE_NS = {
    "BM_FftPow2/256": 8777,
    "BM_FftPow2/1024": 45928,
    "BM_FftPow2/4096": 224166,
    "BM_FftPow2/16384": 1073519,
    "BM_FftBluestein/250": 70155,
    "BM_FftBluestein/1000": 328381,
    "BM_FftBluestein/3750": 1567359,
    "BM_FftBluestein/15000": 6898800,
    "BM_Filtfilt/3000": 31359,
    "BM_Filtfilt/30000": 358454,
    "BM_Resample/3000": 175362,
    "BM_Resample/30000": 2232023,
    "BM_XcorrFull/1024": 430132,
    "BM_XcorrFull/8192": 4262248,
    "BM_Envelope/1024": 123785,
    "BM_Envelope/8192": 1332395,
    "BM_SpectralWhiten/4096": 631182,
}

# Acceptance gates (ISSUE: >= 1.5x on pow2 FFT, >= 2x on Bluestein).
THRESHOLDS = {
    "BM_FftPow2": 1.5,
    "BM_FftBluestein": 2.0,
}

FILTER = ("BM_FftPow2|BM_FftBluestein|BM_RfftHalf|BM_Filtfilt|BM_Resample"
          "|BM_XcorrFull|BM_Envelope|BM_SpectralWhiten")


def run_bench(bench_bin, min_time):
    cmd = [
        str(bench_bin),
        f"--benchmark_filter={FILTER}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    return json.loads(proc.stdout)


def append_history(history_path, entry):
    entry = dict(entry)
    entry["ts"] = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds")
    with pathlib.Path(history_path).open("a") as history:
        history.write(json.dumps(entry) + "\n")
    print(f"appended run to {history_path}")


def run_ingest(ingest_bin, out_path, history_path):
    """Run the self-gating ingest bench and log its result."""
    ingest_bin = pathlib.Path(ingest_bin)
    if not ingest_bin.exists():
        print(f"bench_compare: binary not found: {ingest_bin}\n"
              "build it first: cmake --build build -j --target "
              "bench_ingest", file=sys.stderr)
        return 2
    proc = subprocess.run(
        [str(ingest_bin), "--check", "--out", str(out_path)])
    report = {}
    out = pathlib.Path(out_path)
    if out.exists():
        report = json.loads(out.read_text())
        print(f"wrote {out}")
    append_history(history_path, {
        "bench": "ingest",
        "passed": proc.returncode == 0,
        "results": {
            "latency_p50_ns": report.get("latency_p50_ns"),
            "latency_p99_ns": report.get("latency_p99_ns"),
            "run_seconds": report.get("run_seconds"),
            "queue_push_blocked": report.get("queue", {}).get(
                "push_blocked"),
            "byte_identical": report.get("byte_identical_to_offline"),
        },
    })
    if proc.returncode != 0:
        print("bench_ingest gates FAILED (see messages above)",
              file=sys.stderr)
    return proc.returncode


def run_serve(serve_bin, out_path, history_path):
    """Run the self-gating query-serving bench and log its result."""
    serve_bin = pathlib.Path(serve_bin)
    if not serve_bin.exists():
        print(f"bench_compare: binary not found: {serve_bin}\n"
              "build it first: cmake --build build -j --target "
              "bench_serve", file=sys.stderr)
        return 2
    proc = subprocess.run(
        [str(serve_bin), "--check", "--out", str(out_path)])
    report = {}
    out = pathlib.Path(out_path)
    if out.exists():
        report = json.loads(out.read_text())
        print(f"wrote {out}")
    append_history(history_path, {
        "bench": "serve",
        "passed": proc.returncode == 0,
        "results": {
            "decode_ratio": report.get("decode_ratio"),
            "latency_p50_ns": report.get("latency_p50_ns"),
            "latency_p99_ns": report.get("latency_p99_ns"),
            "coalesced": report.get("batch", {}).get("coalesced"),
            "index_touches": report.get("index", {}).get("touches"),
            "byte_identical": report.get("byte_identical"),
        },
    })
    if proc.returncode != 0:
        print("bench_serve gates FAILED (see messages above)",
              file=sys.stderr)
    return proc.returncode


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-bin",
                        default=REPO_ROOT / "build" / "bench"
                        / "bench_micro_dsp")
    parser.add_argument("--ingest-bin", default=None,
                        help="run bench_ingest --check instead of the "
                        "FFT micro-bench comparison")
    parser.add_argument("--serve-bin", default=None,
                        help="run bench_serve --check instead of the "
                        "FFT micro-bench comparison")
    parser.add_argument("--out", default=None)
    parser.add_argument("--history",
                        default=REPO_ROOT / "BENCH_history.jsonl")
    parser.add_argument("--min-time", default="0.2")
    args = parser.parse_args()

    if args.ingest_bin is not None:
        out = args.out or REPO_ROOT / "BENCH_ingest.json"
        return run_ingest(args.ingest_bin, out, args.history)
    if args.serve_bin is not None:
        out = args.out or REPO_ROOT / "BENCH_serve.json"
        return run_serve(args.serve_bin, out, args.history)
    if args.out is None:
        args.out = REPO_ROOT / "BENCH_fft.json"

    bench_bin = pathlib.Path(args.bench_bin)
    if not bench_bin.exists():
        print(f"bench_compare: binary not found: {bench_bin}\n"
              "build it first: cmake --build build -j --target "
              "bench_micro_dsp", file=sys.stderr)
        return 2

    raw = run_bench(bench_bin, args.min_time)

    results = {}
    for entry in raw.get("benchmarks", []):
        name = entry["name"]
        ns = entry["real_time"]
        row = {"current_ns": round(ns, 1)}
        if name in BASELINE_NS:
            row["baseline_ns"] = BASELINE_NS[name]
            row["speedup"] = round(BASELINE_NS[name] / ns, 2)
        results[name] = row

    failures = []
    for prefix, need in THRESHOLDS.items():
        cases = {n: r for n, r in results.items()
                 if n.startswith(prefix + "/") and "speedup" in r}
        for name, row in sorted(cases.items()):
            if row["speedup"] < need:
                failures.append(
                    f"{name}: {row['speedup']}x < required {need}x")

    report = {
        "description": "FFT-stack micro-benchmarks vs seed baseline "
                       "(real_time ns, lower is better)",
        "context": raw.get("context", {}),
        "thresholds": THRESHOLDS,
        "results": results,
        "passed": not failures,
        "failures": failures,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    # Append one compact line per run to the local history log.
    append_history(args.history, {
        "bench": "fft",
        "passed": not failures,
        "results": {n: r["current_ns"] for n, r in sorted(results.items())},
    })
    for name, row in sorted(results.items()):
        speed = f"  {row['speedup']}x" if "speedup" in row else ""
        print(f"  {name}: {row['current_ns']} ns{speed}")
    if failures:
        print("FAILED thresholds:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
