// Fig. 7 reproduction: reading DAS data from a VCA with the
// "collective-per-file" and "communication-avoiding" methods, with RCA
// access as a reference, across file counts.
//
// Paper setup: 90 MPI processes evenly partitioning 2880 x ~700 MB
// files; result: communication-avoiding is on average 37x faster than
// collective-per-file; collective-per-file is even slower than reading
// the RCA; communication-avoiding also beats the RCA.
//
// Mechanism being checked: collective-per-file pushes EVERY file's
// full contents through EVERY rank (one broadcast per file, O(n)
// broadcasts), while communication-avoiding moves each byte once
// (round-robin whole-file reads + a single all-to-all). The RCA read
// is one slab per rank, but p ranks striding into one shared file pay
// seek/OST contention.
//
// On this single-node substrate wall times compress (all ranks share
// one disk cache and one core), so next to wall seconds each row
// reports the exact communication counts and the alpha-beta + storage
// model time, where the paper's ordering
//     comm-avoiding < RCA < collective-per-file
// must appear. A closed-form projection of the same cost model at the
// paper's scale (90 ranks, 2880 x 700 MB files) is printed last.
#include <cmath>

#include "bench_util.hpp"
#include "dassa/io/par_read.hpp"
#include "dassa/mpi/runtime.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

namespace {

struct CaseResult {
  double wall = 0.0;
  double modeled = 0.0;
  std::uint64_t bcasts = 0;
  std::uint64_t read_calls = 0;
  std::uint64_t p2p = 0;
};

template <typename Fn>
CaseResult run_case(int ranks, Fn&& body) {
  global_counters().reset();
  WallTimer timer;
  const mpi::RunReport report = mpi::Runtime::run(ranks, body);
  CaseResult r;
  r.wall = timer.seconds();
  r.modeled = report.aggregate().modeled_seconds;
  r.bcasts = global_counters().get(counters::kMpiBcasts);
  r.read_calls = global_counters().get(counters::kIoReadCalls);
  r.p2p = report.aggregate().p2p_sends;
  return r;
}

/// Closed-form per-rank cost of the three methods under the same
/// alpha-beta + storage model, for arbitrary scale.
struct Projection {
  double collective = 0.0;
  double avoiding = 0.0;
  double rca = 0.0;
};

Projection project(double n_files, double p, double file_bytes,
                   const io::IoCostParams& io, const mpi::CostParams& net) {
  const double reads_per_rank = n_files / p;
  const double io_s = reads_per_rank * io.call_cost(
                          static_cast<std::size_t>(file_bytes));
  const double msg = net.message_cost(static_cast<std::size_t>(file_bytes));
  const double fanout = std::ceil(std::log2(std::max(2.0, p)));

  Projection proj;
  // Collective: every rank receives every file once and forwards up to
  // log2(p) times at the tree root; charge recv + average forward.
  proj.collective = io_s + n_files * msg * 2.0;
  // Avoiding: each rank's files leave once (p-1 slices) and its block
  // arrives once.
  proj.avoiding = io_s + 2.0 * reads_per_rank * msg;
  // RCA: one slab of the total per rank + shared-file contention.
  const double slab = n_files * file_bytes / p;
  proj.rca = io.shared_call_cost(static_cast<std::size_t>(slab),
                                 static_cast<int>(p));
  (void)fanout;
  return proj;
}

}  // namespace

int main() {
  BenchDir dir("fig7");
  const int ranks = 24;  // scaled from the paper's 90 processes
  const std::size_t channels = 48;
  const std::size_t samples = 4000;  // ~1.5 MB of doubles per file

  bench::section("Fig 7: reading a VCA, " + std::to_string(ranks) +
                 " ranks (scaled from 90)");
  Table t({"files", "method", "wall_s", "modeled_s", "bcasts",
           "read_calls", "p2p_msgs"});

  double sum_ratio = 0.0;
  int cases = 0;
  int shape_ok = 0;
  for (const std::size_t files_n : {24u, 48u, 96u}) {
    const std::string sub = "acq" + std::to_string(files_n);
    const auto paths =
        bench::make_acquisition(dir, sub, channels, files_n, samples);
    io::Vca vca = io::Vca::build(paths);
    const std::string rca_path = dir.file(sub + ".dh5");
    (void)io::rca_create(paths, rca_path);

    const CaseResult coll = run_case(ranks, [&](mpi::Comm& comm) {
      (void)io::read_vca_collective_per_file(comm, vca);
    });
    const CaseResult avoid = run_case(ranks, [&](mpi::Comm& comm) {
      (void)io::read_vca_comm_avoiding(comm, vca);
    });
    const CaseResult rca = run_case(ranks, [&](mpi::Comm& comm) {
      (void)io::read_rca_direct(comm, rca_path);
    });

    t.row(files_n, "collective", coll.wall, coll.modeled, coll.bcasts,
          coll.read_calls, coll.p2p);
    t.row(files_n, "comm-avoid", avoid.wall, avoid.modeled, avoid.bcasts,
          avoid.read_calls, avoid.p2p);
    t.row(files_n, "rca-direct", rca.wall, rca.modeled, rca.bcasts,
          rca.read_calls, rca.p2p);

    sum_ratio += coll.modeled / avoid.modeled;
    ++cases;
    // The paper's claims: comm-avoiding beats both alternatives; and
    // once files accumulate, collective-per-file falls behind even the
    // RCA (its cost grows with n, the RCA's does not).
    if (avoid.modeled < rca.modeled && avoid.modeled < coll.modeled) {
      ++shape_ok;
    }
    if (files_n == 96u && coll.modeled > rca.modeled) ++shape_ok;
  }
  std::cout << "\nmodeled shape checks passed: " << shape_ok << "/"
            << cases + 1 << " (comm-avoid fastest at every size; "
            << "collective slower than RCA at the largest size)\n"
            << "mean modeled speedup comm-avoiding over collective: "
            << sum_ratio / cases << "x at " << ranks
            << " ranks (grows ~linearly with rank count)\n";

  // Paper-scale projection under the identical cost model.
  bench::section("Cost-model projection at paper scale");
  Table proj_t({"scale", "collective_s", "comm_avoid_s", "rca_s",
                "speedup"});
  const io::IoCostParams io_params{};
  const mpi::CostParams net_params{};
  for (const auto& [label, n, p, fbytes] :
       {std::tuple{"bench (24r)", 96.0, 24.0, 1.5e6},
        std::tuple{"paper (90r)", 2880.0, 90.0, 700.0e6}}) {
    const Projection proj = project(n, p, fbytes, io_params, net_params);
    proj_t.row(label, proj.collective, proj.avoiding, proj.rca,
               proj.collective / proj.avoiding);
  }
  std::cout << "\npaper: comm-avoiding on average 37x faster than "
               "collective-per-file; collective even slower than RCA; "
               "comm-avoiding faster than RCA\n";
  return 0;
}
