// Streaming ingest benchmark: ingest-to-detection latency and the
// bounded-queue backpressure invariants (docs/INGEST.md).
//
// Replays a pre-generated spool through the real daemon pieces --
// SpoolWatcher producer thread, a deliberately tiny BoundedQueue, and
// the IngestDriver consumer -- with the telemetry sampler running, then
// reports the per-file ingest-to-detection latency distribution
// (p50/p99) read back from the *validated* "dassa.telemetry.v1" file
// the run exported, exactly as an operator would read it off a real
// deployment. Writes BENCH_ingest.json and, with --check, gates:
//
//   * correctness: the streamed similarity map is byte-identical to an
//     offline run over the same files, and no file was dropped
//     (queue pushed == popped == files admitted, zero quarantined);
//   * backpressure: the undersized queue actually blocked the producer
//     at least once and its depth never exceeded capacity;
//   * latency: ingest-to-detection p50/p99 stay under generous
//     ceilings (kP50CeilingNs / kP99CeilingNs) sized for noisy shared
//     runners -- a real regression (for example accidentally serial
//     window processing or a quadratic rescan of the spool) blows
//     straight through them.
//
// Usage: bench_ingest [--check] [--out BENCH_ingest.json]
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_util.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/telemetry.hpp"
#include "dassa/das/local_similarity.hpp"
#include "dassa/ingest/driver.hpp"
#include "dassa/ingest/queue.hpp"
#include "dassa/ingest/spool.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

namespace {

constexpr std::size_t kFiles = 8;
constexpr std::size_t kChannels = 32;
constexpr std::size_t kSamplesPerFile = 200;
constexpr std::size_t kQueueCapacity = 2;  // undersized on purpose

// Latency ceilings (ns). A window over this geometry takes a few
// milliseconds of engine time on the reference container; a file waits
// for at most two windows. 1 s / 2 s leave two orders of magnitude of
// headroom for runner noise while still catching real regressions.
constexpr double kP50CeilingNs = 1.0e9;
constexpr double kP99CeilingNs = 2.0e9;

/// p50/p99 of the per-file latency, read from the validated telemetry
/// file the run wrote (not from in-process state).
struct LatencyQuantiles {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  std::uint64_t count = 0;
};

LatencyQuantiles read_back_latency(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  const telemetry::TelemetryFile parsed =
      telemetry::parse_telemetry_jsonl(text.str());
  telemetry::validate_telemetry_file(parsed);
  LatencyQuantiles q;
  for (const telemetry::HistRecord& h : parsed.hists) {
    if (h.name == "ingest.file_to_detection") {
      q.p50_ns = h.p50_ns;
      q.p99_ns = h.p99_ns;
      q.count = h.count;
    }
  }
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_ingest [--check] [--out FILE]\n";
      return 2;
    }
  }

  BenchDir dir("ingest");
  const std::vector<std::string> files = bench::make_acquisition(
      dir, "spool", kChannels, kFiles, kSamplesPerFile);

  ingest::IngestConfig cfg;
  cfg.window_files = 3;
  cfg.overlap_files = 1;
  cfg.similarity.window_half = 10;
  cfg.similarity.lag_half = 5;
  cfg.detect = true;
  cfg.engine.nodes = 2;
  cfg.engine.cores_per_node = 2;

  global_counters().reset();
  global_metrics().reset();

  telemetry::SamplerConfig sampler_config;
  sampler_config.period = std::chrono::milliseconds(10);
  telemetry::TelemetrySampler sampler(sampler_config);

  ingest::BoundedQueue<ingest::SpoolFile> queue(kQueueCapacity);
  telemetry::register_gauge("ingest.queue.depth", [&queue] {
    return static_cast<double>(queue.depth());
  });
  ingest::SpoolWatcher watcher(ingest::SpoolConfig{dir.file("spool")});
  ingest::IngestDriver driver(cfg);

  sampler.start();
  WallTimer run_timer;
  std::thread producer([&] {
    // --once semantics: drain the pre-populated spool flat out. The
    // tiny queue makes every burst of admissions block against the
    // consumer's window processing -- the backpressure under test.
    while (true) {
      const auto admitted = watcher.poll();
      for (auto f : admitted) {
        if (!queue.push(std::move(f))) return;
      }
      if (admitted.empty() && watcher.pending() == 0) break;
    }
    queue.close();
  });
  while (auto f = queue.pop()) driver.add_file(*f);
  producer.join();
  const ingest::IngestResult result = driver.finish();
  const double run_s = run_timer.seconds();
  sampler.stop();
  sampler.tick();
  // Neutralise the gauge before `queue` dies: the registry is global
  // and a later tick from another user would read a dangling ref.
  telemetry::register_gauge("ingest.queue.depth", [] { return 0.0; });

  // Export + validate the telemetry file, then read the latency
  // distribution back off disk -- the same path an operator takes.
  const std::string telemetry_path = dir.file("ingest_telemetry.jsonl");
  {
    telemetry::TelemetryFile file;
    file.meta["tool"] = "bench_ingest";
    file.meta["pipeline"] = "similarity";
    file.meta["world_size"] = std::to_string(cfg.engine.world_size());
    file.meta["threads_per_rank"] =
        std::to_string(cfg.engine.threads_per_rank());
    file.samples = sampler.timeline();
    for (const auto& [name, h] : global_metrics().snapshot()) {
      telemetry::HistRecord rec;
      rec.name = name;
      rec.count = h.count;
      rec.total_ns = h.total_ns;
      rec.p50_ns = h.quantile_ns(0.50);
      rec.p95_ns = h.quantile_ns(0.95);
      rec.p99_ns = h.quantile_ns(0.99);
      rec.buckets = h.buckets;
      file.hists.push_back(std::move(rec));
    }
    std::ofstream out(telemetry_path);
    telemetry::write_telemetry_file(out, file);
  }
  const LatencyQuantiles latency = read_back_latency(telemetry_path);

  // Offline reference for the byte-identity gate.
  const io::Vca vca = io::Vca::build(files);
  const core::Array2D offline =
      das::local_similarity_distributed(cfg.engine, vca, cfg.similarity)
          .output;
  const bool identical = result.similarity == offline;

  const auto counter = [](const char* name) {
    return global_counters().get(name);
  };
  const std::uint64_t pushed = counter(counters::kIngestQueuePushed);
  const std::uint64_t popped = counter(counters::kIngestQueuePopped);
  const std::uint64_t blocked = counter(counters::kIngestQueuePushBlocked);
  const std::uint64_t peak = counter(counters::kIngestQueuePeakDepth);
  const std::uint64_t quarantined =
      counter(counters::kIngestFilesQuarantined);

  bench::section("streaming ingest: spool -> queue -> windows -> events");
  Table table({"metric", "value"});
  table.row("files", static_cast<std::uint64_t>(kFiles));
  table.row("windows", static_cast<std::uint64_t>(result.windows));
  table.row("events", static_cast<std::uint64_t>(result.events.size()));
  table.row("run_seconds", run_s);
  table.row("latency_p50_ms", latency.p50_ns / 1e6);
  table.row("latency_p99_ms", latency.p99_ns / 1e6);
  table.row("queue_pushed", pushed);
  table.row("queue_popped", popped);
  table.row("queue_push_blocked", blocked);
  table.row("queue_peak_depth", peak);
  table.row("byte_identical", identical ? 1.0 : 0.0);

  std::ofstream json(out_path, std::ios::trunc);
  json << "{\n  \"bench\": \"ingest\",\n"
       << "  \"files\": " << kFiles << ",\n"
       << "  \"windows\": " << result.windows << ",\n"
       << "  \"events\": " << result.events.size() << ",\n"
       << "  \"run_seconds\": " << run_s << ",\n"
       << "  \"latency_p50_ns\": " << latency.p50_ns << ",\n"
       << "  \"latency_p99_ns\": " << latency.p99_ns << ",\n"
       << "  \"latency_count\": " << latency.count << ",\n"
       << "  \"queue\": {\"capacity\": " << kQueueCapacity
       << ", \"pushed\": " << pushed << ", \"popped\": " << popped
       << ", \"push_blocked\": " << blocked << ", \"peak_depth\": " << peak
       << "},\n"
       << "  \"quarantined\": " << quarantined << ",\n"
       << "  \"byte_identical_to_offline\": "
       << (identical ? "true" : "false") << ",\n"
       << "  \"thresholds\": {\"p50_ceiling_ns\": " << kP50CeilingNs
       << ", \"p99_ceiling_ns\": " << kP99CeilingNs << "}\n}\n";
  json.close();
  std::cout << "\nwrote " << out_path << "\n";

  if (check) {
    bool ok = true;
    if (!identical) {
      std::cerr << "bench_ingest CHECK FAILED: streamed output is not "
                   "byte-identical to the offline run\n";
      ok = false;
    }
    if (pushed != kFiles || popped != kFiles || quarantined != 0) {
      std::cerr << "bench_ingest CHECK FAILED: files were dropped "
                   "(pushed " << pushed << ", popped " << popped
                << ", quarantined " << quarantined << ", expected "
                << kFiles << ")\n";
      ok = false;
    }
    if (blocked < 1) {
      std::cerr << "bench_ingest CHECK FAILED: the undersized queue "
                   "never blocked the producer (backpressure untested)\n";
      ok = false;
    }
    if (peak > kQueueCapacity) {
      std::cerr << "bench_ingest CHECK FAILED: queue depth " << peak
                << " exceeded capacity " << kQueueCapacity << "\n";
      ok = false;
    }
    if (latency.count != kFiles) {
      std::cerr << "bench_ingest CHECK FAILED: expected " << kFiles
                << " latency samples, telemetry has " << latency.count
                << "\n";
      ok = false;
    }
    if (latency.p50_ns > kP50CeilingNs || latency.p99_ns > kP99CeilingNs) {
      std::cerr << "bench_ingest CHECK FAILED: latency p50 "
                << latency.p50_ns / 1e6 << " ms / p99 "
                << latency.p99_ns / 1e6 << " ms over ceilings\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "bench_ingest check passed: byte-identical, no drops, "
              << "backpressure engaged " << blocked << "x, p50 "
              << latency.p50_ns / 1e6 << " ms, p99 "
              << latency.p99_ns / 1e6 << " ms\n";
  }
  return 0;
}
