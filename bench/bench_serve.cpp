// Query-serving benchmark: shared-decode batching and the time-interval
// index (docs/SERVING.md).
//
// Drives a real in-process das_serve Server over its Unix-domain socket
// with 8 concurrent clients whose time windows overlap 75%, and gates:
//
//   * shared decode: the served run's io.codec.decode_calls stay at or
//     under HALF of the unbatched baseline (one fresh archive handle
//     per request -- fresh file_ids, so the global ChunkCache cannot
//     help, which is exactly what a naive per-request server does);
//   * correctness: every served payload is byte-identical to a direct
//     Dash5File/Vca read of the same slab;
//   * batching engaged: at least one coalesce round folded >= 2
//     requests into one union read (serve.batch.coalesced);
//   * no drops: serve.queue.pushed == serve.queue.popped after drain;
//   * latency: serve.request p50/p99 under generous runner-noise
//     ceilings -- measured WITH request tracing enabled, so the gates
//     below also bound the instrumented configuration;
//   * live-stats reconciliation: a kStats poll taken after the run
//     quiesces agrees EXACTLY -- counter for counter, bucket for
//     bucket -- with the daemon's own in-process registries (what the
//     end-of-run telemetry export serializes), and every serve.lat.*
//     stage histogram holds exactly one record per response;
//   * tracing overhead: the per-request cost tracing adds (5 clock
//     reads + 4 histogram records, micro-measured) stays under 1% of
//     the observed p50;
//   * index scaling: a point query against a 1000-member interval
//     index touches O(log n + k) entries (pinned bound), against the
//     n the linear fallback pays.
//
// Usage: bench_serve [--check] [--out BENCH_serve.json]
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <thread>

#include "bench_util.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/das/search.hpp"
#include "dassa/io/interval_index.hpp"
#include "dassa/serve/client.hpp"
#include "dassa/serve/server.hpp"
#include "dassa/serve/stats.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

namespace {

constexpr std::size_t kClients = 8;
constexpr std::size_t kRequestsPerClient = 4;
constexpr std::size_t kChannels = 32;
constexpr std::size_t kFiles = 8;
constexpr std::size_t kSamplesPerFile = 400;
constexpr std::size_t kWindowCols = 512;
constexpr std::size_t kStrideCols = kWindowCols / 4;  // 75% overlap

constexpr double kP50CeilingNs = 1.0e9;
constexpr double kP99CeilingNs = 2.0e9;

constexpr std::size_t kIndexMembers = 1000;

/// The deterministic 75%-overlapping request schedule: client c's r-th
/// window starts kStrideCols past the previous client's.
Slab2D request_slab(std::size_t client, std::size_t request,
                    const Shape2D& shape) {
  const std::size_t steps = (shape.cols - kWindowCols) / kStrideCols + 1;
  const std::size_t step = (client + request * kClients) % steps;
  return Slab2D{0, step * kStrideCols, shape.rows, kWindowCols};
}

std::uint64_t counter(const char* name) {
  return global_counters().get(name);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--check] [--out FILE]\n";
      return 2;
    }
  }

  BenchDir dir("serve");

  // A chunked + compressed acquisition, so every read really decodes.
  const das::SynthDas synth = das::SynthDas::fig1b_scene(kChannels, 100.0);
  das::AcquisitionSpec spec;
  spec.dir = dir.file("data");
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = kFiles;
  spec.seconds_per_file = static_cast<double>(kSamplesPerFile) / 100.0;
  spec.chunk = io::ChunkShape{16, 128};
  spec.codec = io::CodecSpec::parse("shuffle+lz");
  spec.per_channel_metadata = false;
  const std::vector<std::string> files = das::write_acquisition(synth, spec);

  const std::string vca_path = dir.file("arch.vca");
  das::save_vca_with_index(io::Vca::build(files), vca_path);

  global_counters().reset();
  global_metrics().reset();

  // Expected payloads through one reference handle (decodes charged
  // here are excluded from both measured phases below).
  const io::Vca ref = io::Vca::load(vca_path);
  const Shape2D shape = ref.shape();
  std::vector<std::vector<double>> expected(kClients * kRequestsPerClient);
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
      expected[c * kRequestsPerClient + r] =
          ref.read_slab(request_slab(c, r, shape));
    }
  }

  // ---- Unbatched baseline: a fresh handle per request, the way a
  // per-request server (or N independent das_analyze runs) pays.
  const std::uint64_t decodes_before_baseline =
      counter(counters::kIoCodecDecodeCalls);
  WallTimer baseline_timer;
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
      const io::Vca fresh = io::Vca::load(vca_path);
      const std::vector<double> got =
          fresh.read_slab(request_slab(c, r, shape));
      if (got != expected[c * kRequestsPerClient + r]) {
        std::cerr << "bench_serve: baseline read mismatch\n";
        return 1;
      }
    }
  }
  const double baseline_s = baseline_timer.seconds();
  const std::uint64_t baseline_decodes =
      counter(counters::kIoCodecDecodeCalls) - decodes_before_baseline;

  // ---- Served run: one shared handle behind the coalescing server.
  serve::ServeConfig cfg;
  cfg.socket_path = dir.file("serve.sock");
  cfg.archive = vca_path;
  cfg.workers = 2;
  cfg.max_batch = 16;
  cfg.coalesce_window_us = 20000;  // generous: single-core runners
  serve::Server server(cfg);
  const std::uint64_t decodes_before_served =
      counter(counters::kIoCodecDecodeCalls);
  server.start();

  std::atomic<std::size_t> mismatches{0};
  WallTimer served_timer;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::Client client(cfg.socket_path);
      for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
        const std::vector<double> got =
            client.read_slab(request_slab(c, r, shape));
        if (got != expected[c * kRequestsPerClient + r]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double served_s = served_timer.seconds();

  // ---- Live-stats reconciliation, the das_top attach scenario: poll
  // kStats on the still-running server until the trace quiesces (the
  // worker records a request's histograms after writing its reply, so
  // a client can see the last payload a beat before the counts land),
  // then demand the polled snapshot agree exactly with the in-process
  // registries the end-of-run telemetry export serializes.
  constexpr std::uint64_t kTotalRequests = kClients * kRequestsPerClient;
  serve::StatsSnapshot polled;
  {
    serve::Connection stats_conn = serve::connect_local(cfg.socket_path);
    for (int spin = 0; spin < 2000; ++spin) {
      polled = serve::fetch_stats(stats_conn);
      const auto req = polled.hists.find(serve::lat::kRequest);
      const auto wr = polled.hists.find(serve::lat::kWrite);
      if (req != polled.hists.end() && req->second.count >= kTotalRequests &&
          wr != polled.hists.end() && wr->second.count >= kTotalRequests) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  server.stop();

  bool stats_reconciled = true;
  {
    const auto local_hists = global_metrics().snapshot();
    const auto local_counters = global_counters().snapshot();
    for (const char* name :
         {serve::lat::kRequest, serve::lat::kQueueWait, serve::lat::kCoalesce,
          serve::lat::kDecode, serve::lat::kWrite}) {
      const auto pit = polled.hists.find(name);
      const auto lit = local_hists.find(name);
      if (pit == polled.hists.end() || lit == local_hists.end() ||
          !(pit->second == lit->second) ||
          pit->second.count != kTotalRequests) {
        std::cerr << "bench_serve: stats snapshot disagrees with the local "
                     "registry for "
                  << name << "\n";
        stats_reconciled = false;
      }
    }
    for (const auto& [name, value] : local_counters) {
      // stats.* moved between the poll and this snapshot (our own
      // polling), and the byte counters are charged by the socket layer
      // for the stats reply itself after the snapshot was collected;
      // everything else was quiescent.
      if (name.rfind("stats.", 0) == 0) continue;
      if (name == "serve.bytes_received" || name == "serve.bytes_sent") {
        continue;
      }
      const auto it = polled.counters.find(name);
      if (it == polled.counters.end() || it->second != value) {
        std::cerr << "bench_serve: stats counter " << name
                  << " disagrees with the local registry\n";
        stats_reconciled = false;
      }
    }
  }

  // ---- Tracing-overhead micro-gate: the work request tracing adds to
  // one request's hot path is 5 extra clock reads and 4 extra
  // histogram records; measure that directly and bound it against the
  // observed p50.
  constexpr int kOverheadIters = 100000;
  LatencyHistogram scratch;
  std::uint64_t sink = 0;
  WallTimer overhead_timer;
  for (int i = 0; i < kOverheadIters; ++i) {
    const std::uint64_t t0 = trace::detail::now_ns();
    const std::uint64_t t1 = trace::detail::now_ns();
    const std::uint64_t t2 = trace::detail::now_ns();
    const std::uint64_t t3 = trace::detail::now_ns();
    const std::uint64_t t4 = trace::detail::now_ns();
    scratch.record_ns(t1 - t0);
    scratch.record_ns(t2 - t1);
    scratch.record_ns(t3 - t2);
    scratch.record_ns(t4 - t3);
    sink += t4;
  }
  const double overhead_ns_per_request =
      overhead_timer.seconds() * 1e9 / kOverheadIters;
  if (sink == 0) std::cerr << "";  // keep the measured loop observable
  const std::uint64_t served_decodes =
      counter(counters::kIoCodecDecodeCalls) - decodes_before_served;

  const std::uint64_t pushed = counter(counters::kServeQueuePushed);
  const std::uint64_t popped = counter(counters::kServeQueuePopped);
  const std::uint64_t groups = counter(counters::kServeBatchGroups);
  const std::uint64_t coalesced = counter(counters::kServeBatchCoalesced);
  const std::uint64_t union_reads = counter(counters::kServeBatchUnionReads);
  const std::uint64_t responses = counter(counters::kServeResponses);

  const auto latency = global_metrics().histogram("serve.request").snapshot();
  const double p50_ns = latency.quantile_ns(0.50);
  const double p99_ns = latency.quantile_ns(0.99);
  const double overhead_ratio =
      p50_ns > 0 ? overhead_ns_per_request / p50_ns : 1.0;
  const double decode_ratio =
      baseline_decodes == 0
          ? 1.0
          : static_cast<double>(served_decodes) /
                static_cast<double>(baseline_decodes);

  // ---- Interval index scaling: O(log n + k) probes on 1000 members,
  // persisted and loaded back, vs the n a linear fallback scans.
  std::vector<io::IntervalEntry> entries(kIndexMembers);
  for (std::size_t i = 0; i < kIndexMembers; ++i) {
    entries[i] = io::IntervalEntry{static_cast<std::int64_t>(i * 10),
                                   static_cast<std::int64_t>((i + 1) * 10), i,
                                   i * 100, 100};
  }
  io::IntervalIndex::build(entries).save_atomic(dir.file("big.tix"));
  const io::IntervalIndex big = io::IntervalIndex::load(dir.file("big.tix"));
  const std::uint64_t touches_before =
      counter(counters::kIoIndexEntryTouches);
  const std::vector<io::IntervalEntry> hits = big.query(5000, 5030);
  const std::uint64_t index_touches =
      counter(counters::kIoIndexEntryTouches) - touches_before;
  // Binary search probes plus the k hits plus a constant overscan.
  const std::uint64_t touch_bound =
      2 * static_cast<std::uint64_t>(std::ceil(std::log2(kIndexMembers))) +
      hits.size() + 4;

  bench::section("query serving: shared-decode batching");
  Table table({"metric", "value"});
  table.row("requests", static_cast<std::uint64_t>(kClients *
                                                   kRequestsPerClient));
  table.row("baseline_decodes", baseline_decodes);
  table.row("served_decodes", served_decodes);
  table.row("decode_ratio", decode_ratio);
  table.row("batch_groups", groups);
  table.row("batch_coalesced", coalesced);
  table.row("union_reads", union_reads);
  table.row("latency_p50_ms", p50_ns / 1e6);
  table.row("latency_p99_ms", p99_ns / 1e6);
  table.row("tracing_overhead_ns", overhead_ns_per_request);
  table.row("tracing_overhead_ratio", overhead_ratio);
  table.row("stats_reconciled", stats_reconciled ? 1u : 0u);
  table.row("index_touches", index_touches);
  table.row("index_touch_bound", touch_bound);

  std::ofstream json(out_path, std::ios::trunc);
  json << "{\n  \"bench\": \"serve\",\n"
       << "  \"clients\": " << kClients << ",\n"
       << "  \"requests\": " << kClients * kRequestsPerClient << ",\n"
       << "  \"overlap\": 0.75,\n"
       << "  \"baseline_seconds\": " << baseline_s << ",\n"
       << "  \"served_seconds\": " << served_s << ",\n"
       << "  \"baseline_decodes\": " << baseline_decodes << ",\n"
       << "  \"served_decodes\": " << served_decodes << ",\n"
       << "  \"decode_ratio\": " << decode_ratio << ",\n"
       << "  \"batch\": {\"groups\": " << groups
       << ", \"coalesced\": " << coalesced
       << ", \"union_reads\": " << union_reads << "},\n"
       << "  \"queue\": {\"pushed\": " << pushed << ", \"popped\": " << popped
       << "},\n"
       << "  \"responses\": " << responses << ",\n"
       << "  \"byte_identical\": "
       << (mismatches.load() == 0 ? "true" : "false") << ",\n"
       << "  \"latency_p50_ns\": " << p50_ns << ",\n"
       << "  \"latency_p99_ns\": " << p99_ns << ",\n"
       << "  \"tracing\": {\"enabled\": true, \"overhead_ns_per_request\": "
       << overhead_ns_per_request << ", \"overhead_ratio\": "
       << overhead_ratio << ", \"stats_reconciled\": "
       << (stats_reconciled ? "true" : "false") << "},\n"
       << "  \"index\": {\"members\": " << kIndexMembers
       << ", \"hits\": " << hits.size() << ", \"touches\": " << index_touches
       << ", \"touch_bound\": " << touch_bound
       << ", \"linear_touches\": " << kIndexMembers << "},\n"
       << "  \"thresholds\": {\"decode_ratio_max\": 0.5, "
       << "\"p50_ceiling_ns\": " << kP50CeilingNs
       << ", \"p99_ceiling_ns\": " << kP99CeilingNs << "}\n}\n";
  json.close();
  std::cout << "\nwrote " << out_path << "\n";

  if (check) {
    bool ok = true;
    if (mismatches.load() != 0) {
      std::cerr << "bench_serve CHECK FAILED: " << mismatches.load()
                << " served payloads differ from direct reads\n";
      ok = false;
    }
    if (decode_ratio > 0.5) {
      std::cerr << "bench_serve CHECK FAILED: served decodes "
                << served_decodes << " vs baseline " << baseline_decodes
                << " (ratio " << decode_ratio
                << " > 0.5; shared decode is not engaging)\n";
      ok = false;
    }
    if (coalesced < 2) {
      std::cerr << "bench_serve CHECK FAILED: no coalesce round folded "
                   "multiple requests (serve.batch.coalesced = "
                << coalesced << ")\n";
      ok = false;
    }
    if (pushed != popped ||
        pushed != kClients * kRequestsPerClient) {
      std::cerr << "bench_serve CHECK FAILED: queue dropped work (pushed "
                << pushed << ", popped " << popped << ", expected "
                << kClients * kRequestsPerClient << ")\n";
      ok = false;
    }
    if (responses != kClients * kRequestsPerClient) {
      std::cerr << "bench_serve CHECK FAILED: " << responses
                << " responses for " << kClients * kRequestsPerClient
                << " requests\n";
      ok = false;
    }
    if (p50_ns > kP50CeilingNs || p99_ns > kP99CeilingNs) {
      std::cerr << "bench_serve CHECK FAILED: latency p50 " << p50_ns / 1e6
                << " ms / p99 " << p99_ns / 1e6
                << " ms over ceilings (request tracing enabled)\n";
      ok = false;
    }
    if (!stats_reconciled) {
      std::cerr << "bench_serve CHECK FAILED: the kStats snapshot polled "
                   "off the live server does not reconcile with the "
                   "daemon's own registries\n";
      ok = false;
    }
    if (overhead_ratio >= 0.01) {
      std::cerr << "bench_serve CHECK FAILED: request tracing costs "
                << overhead_ns_per_request << " ns/request, "
                << overhead_ratio * 100
                << "% of the observed p50 (budget: < 1%)\n";
      ok = false;
    }
    if (index_touches > touch_bound) {
      std::cerr << "bench_serve CHECK FAILED: indexed query touched "
                << index_touches << " entries, bound " << touch_bound
                << " (O(log n + k) regressed toward the linear "
                << kIndexMembers << ")\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "bench_serve check passed: decode ratio " << decode_ratio
              << ", " << coalesced << " coalesced, index touched "
              << index_touches << "/" << kIndexMembers << " entries\n";
  }
  return 0;
}
