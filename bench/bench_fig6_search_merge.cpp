// Fig. 6 reproduction: time to search and to create a RCA or VCA, as a
// function of the number of files merged, on a single core.
//
// Paper series (2880 one-minute files, 1.9 TB): search <= 0.002 s;
// VCA creation <= 0.01 s; RCA creation up to 9978 s; VCA on average
// ~70,000x faster to create than RCA. Scaled here to files of
// 64 x 512 float32 samples; the shape to check is
//   search ~ constant and tiny,
//   VCA ~ metadata-only and roughly linear in file count with a tiny
//         constant,
//   RCA ~ linear in data volume and orders of magnitude above VCA.
#include "bench_util.hpp"
#include "dassa/das/search.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

int main() {
  BenchDir dir("fig6");
  const std::size_t channels = 64;
  const std::size_t samples = 512;

  bench::section("Fig 6: search and create RCA/VCA vs number of files");
  Table t({"files", "search_s", "vca_create_s", "rca_create_s",
           "rca/vca"});

  for (const std::size_t files_n : {9u, 18u, 45u, 90u, 180u}) {
    const std::string sub = "acq" + std::to_string(files_n);
    const auto paths =
        bench::make_acquisition(dir, sub, channels, files_n, samples);

    // Search over the catalog (timestamp range query selecting half
    // the files), repeated for a stable measurement.
    const das::Catalog catalog = das::Catalog::scan(dir.file(sub));
    const das::Timestamp start = das::Timestamp::parse("170728224510");
    WallTimer search_timer;
    const int reps = 200;
    std::size_t found = 0;
    for (int r = 0; r < reps; ++r) {
      found += catalog.query_range(start, files_n / 2).size();
    }
    const double search_s = search_timer.seconds() / reps;
    if (found != static_cast<std::size_t>(reps) * (files_n / 2)) return 1;

    WallTimer vca_timer;
    io::Vca::build(paths).save(dir.file(sub + ".vca"));
    const double vca_s = vca_timer.seconds();

    const io::RcaBuildStats rca =
        io::rca_create(paths, dir.file(sub + ".dh5"));

    t.row(files_n, search_s, vca_s, rca.seconds, rca.seconds / vca_s);
  }

  std::cout << "\npaper: search <=0.002 s, VCA <=0.01 s, RCA up to 9978 s "
               "(~70,000x VCA) at 2880 full-size files\n";
  return 0;
}
