// Shared helpers for the per-figure benchmark harnesses: a fixture
// that generates scaled-down synthetic acquisitions, and fixed-width
// table printing so every bench emits the same row/series layout as
// the paper's tables and figures.
#pragma once

#include <filesystem>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dassa/common/counters.hpp"
#include "dassa/common/timer.hpp"
#include "dassa/das/synth.hpp"
#include "dassa/io/vca.hpp"

namespace dassa::bench {

/// Temporary working directory for a bench, cleaned up on destruction.
class BenchDir {
 public:
  explicit BenchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("dassa_bench_" + tag)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

/// Generate a scaled-down acquisition: `files` files of
/// `channels x samples_per_file`, written under `dir/sub`.
inline std::vector<std::string> make_acquisition(
    const BenchDir& dir, const std::string& sub, std::size_t channels,
    std::size_t files, std::size_t samples_per_file,
    double sampling_hz = 100.0, io::DType dtype = io::DType::kF32) {
  const das::SynthDas synth =
      das::SynthDas::fig1b_scene(channels, sampling_hz);
  das::AcquisitionSpec spec;
  spec.dir = dir.file(sub);
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = files;
  spec.seconds_per_file =
      static_cast<double>(samples_per_file) / sampling_hz;
  spec.dtype = dtype;
  spec.per_channel_metadata = false;
  return das::write_acquisition(synth, spec);
}

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {
    std::ostringstream os;
    for (const auto& h : headers_) os << std::setw(width_) << h;
    std::cout << os.str() << "\n"
              << std::string(headers_.size() * static_cast<std::size_t>(width_),
                             '-')
              << "\n";
  }

  template <typename... Cells>
  void row(Cells&&... cells) {
    std::ostringstream os;
    (append(os, std::forward<Cells>(cells)), ...);
    std::cout << os.str() << "\n";
  }

 private:
  template <typename T>
  void append(std::ostringstream& os, T&& v) {
    if constexpr (std::is_floating_point_v<std::decay_t<T>>) {
      os << std::setw(width_) << std::setprecision(4) << v;
    } else {
      os << std::setw(width_) << v;
    }
  }

  std::vector<std::string> headers_;
  int width_;
};

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace dassa::bench
