// Fig. 8 reproduction: original (MPI-per-core) ArrayUDF vs the Hybrid
// ArrayUDF Execution Engine on the FFT-based cross-correlation
// workload (Algorithm 3), sweeping the simulated node count at fixed
// total data size.
//
// Paper findings at 16 cores/node, 91..728 nodes, 1.9 TB:
//   * MPI ArrayUDF runs OUT OF MEMORY at 91 nodes (the master channel
//     is duplicated 16x per node);
//   * at moderate scale MPI ArrayUDF computes slightly faster (no
//     thread-coordination overhead);
//   * at 728 nodes MPI ArrayUDF's read time blows up (11648 concurrent
//     I/O streams); HAEE issues 16x fewer I/O calls;
//   * write time is identical (both write one big array).
//
// Reproduced here with 4 cores/node over a scaled dataset. Rows report
// measured stage walls plus the structural metrics the paper's
// explanation rests on: I/O calls, master-channel copies, and modeled
// peak bytes/node (the OOM predictor).
//
// Also includes the DESIGN.md ablation: ApplyMT's per-thread result
// vectors + prefix merge (Algorithm 1) vs direct pre-sized writes.
#include "bench_util.hpp"
#include "dassa/das/interferometry.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

int main() {
  BenchDir dir("fig8");
  const std::size_t channels = 64;
  const std::size_t files_n = 8;
  const std::size_t samples = 600;
  const int cores = 16;  // the paper's 16 cores per node

  const auto paths =
      bench::make_acquisition(dir, "acq", channels, files_n, samples);
  io::Vca vca = io::Vca::build(paths);

  das::InterferometryParams params;
  params.sampling_hz = 100.0;
  params.butter_order = 3;
  params.band_lo_hz = 2.0;
  params.band_hi_hz = 30.0;
  params.resample_down = 2;
  params.master_channel = channels / 2;

  // Node RAM provisioned with 25% headroom over the single-node
  // working set (HAEE's block + output + one master copy) -- the
  // realistic sizing under which the paper's 91-node MPI run died:
  // the per-node data share fits, cores x duplicated master state
  // does not.
  core::EngineConfig probe;
  probe.nodes = 1;
  probe.cores_per_node = cores;
  probe.mode = core::EngineMode::kHybrid;
  const std::uint64_t node_budget_bytes = static_cast<std::uint64_t>(
      1.25 * static_cast<double>(
                 das::interferometry_distributed(probe, vca, params)
                     .modeled_peak_bytes_per_node));

  bench::section("Fig 8: MPI ArrayUDF vs Hybrid ArrayUDF (HAEE), " +
                 std::to_string(cores) + " cores/node");
  std::cout << "data: " << vca.shape() << ", node memory budget: "
            << node_budget_bytes << " bytes\n\n";
  Table t({"nodes", "engine", "read_s", "compute_s", "write_s", "io_calls",
           "master_copies", "peak_B/node", "status"});

  for (const int nodes : {1, 2, 4, 8}) {
    for (const bool hybrid : {false, true}) {
      core::EngineConfig config;
      config.nodes = nodes;
      config.cores_per_node = cores;
      config.mode =
          hybrid ? core::EngineMode::kHybrid : core::EngineMode::kMpiPerCore;
      config.read_method = hybrid ? core::ReadMethod::kCommunicationAvoiding
                                  : core::ReadMethod::kDirectPerRank;

      global_counters().reset();
      const core::EngineReport report =
          das::interferometry_distributed(config, vca, params);

      const char* status =
          report.modeled_peak_bytes_per_node > node_budget_bytes
              ? "OOM(model)"
              : "ok";
      t.row(nodes, hybrid ? "HAEE" : "MPI", report.stages.get("read"),
            report.stages.get("compute"), report.stages.get("write"),
            global_counters().get(counters::kIoReadCalls),
            global_counters().get(counters::kMemMasterChannelCopies),
            report.modeled_peak_bytes_per_node, status);
    }
  }
  std::cout << "\npaper: MPI ArrayUDF OOMs at 91 nodes (16x master "
               "duplication), reads blow up at 728 nodes (16x more I/O "
               "calls); HAEE completes everywhere, writes identical\n";

  // --- ablation: Algorithm 1 merge vs direct writes ----------------------
  bench::section(
      "Ablation: ApplyMT per-thread vectors + prefix merge vs direct "
      "writes");
  const core::Array2D data(vca.shape(), vca.read_all());
  const core::LocalBlock block = core::LocalBlock::whole(data);
  const core::ScalarUdf udf = [](const core::Stencil& s) {
    const double a = s.in_bounds(-1, 0) ? s(-1, 0) : s(0, 0);
    const double b = s.in_bounds(1, 0) ? s(1, 0) : s(0, 0);
    return (a + s(0, 0) + b) / 3.0;
  };
  ThreadPool pool(static_cast<std::size_t>(cores));
  Table ab({"variant", "seconds"});
  {
    WallTimer timer;
    const core::Array2D out = core::apply_cells_mt(block, udf, pool);
    ab.row("alg1-prefix-merge", timer.seconds());
    if (out.data.empty()) return 1;
  }
  {
    WallTimer timer;
    const core::Array2D out = core::apply_cells_mt_direct(block, udf, pool);
    ab.row("direct-writes", timer.seconds());
    if (out.data.empty()) return 1;
  }
  return 0;
}
