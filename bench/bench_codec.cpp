// Storage-engine benchmark: codec compression ratio and throughput on
// a realistic das_generate acquisition, plus the chunk-cache read
// speedup. Writes BENCH_codec.json at the current directory and, with
// --check, gates the acceptance criteria of the v3 engine:
//
//   * best-chain compression ratio >= 2.0 on quantized synthetic DAS
//     data (the interrogator-ADC case; docs/STORAGE.md explains why
//     full-entropy float mantissas are out of scope for any codec),
//   * cached re-read speedup >= 1.5x over decode-every-time,
//   * per-chain encode/decode throughput floors (kGates below) that
//     catch codec-kernel regressions. The floors are set well under
//     the best numbers this class of host produces, because shared
//     runners are noisy; the JSON records the actual measurements.
//
// Usage: bench_codec [--check] [--out BENCH_codec.json]
#include <algorithm>
#include <cstring>
#include <fstream>

#include "bench_util.hpp"
#include "dassa/common/simd.hpp"
#include "dassa/io/chunk_cache.hpp"
#include "dassa/io/codec.hpp"
#include "dassa/io/dash5.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

namespace {

struct ChainResult {
  std::string chain;
  double ratio = 0.0;        // v2 file bytes / v3 file bytes
  double encode_gbps = 0.0;  // raw GiB/s through encode_chain
  double decode_gbps = 0.0;
};

/// Per-chain throughput floors (GiB/s) for --check. Roughly half the
/// worst single run observed on the 2.1 GHz reference host, so noise
/// does not flake the gate but a real kernel regression (for example
/// reintroducing the per-element varint helper, docs/STORAGE.md) still
/// trips it. delta+lz encode is bounded by the LZ match-storm on delta
/// streams, not by the varint kernels — see the stage breakdown in
/// docs/STORAGE.md before "fixing" it here.
struct ChainGate {
  const char* chain;
  double min_encode_gbps;
  double min_decode_gbps;
};
constexpr ChainGate kGates[] = {
    {"shuffle", 4.0, 4.0},
    {"lz", 0.15, 0.30},
    {"delta+lz", 0.05, 0.08},
    {"shuffle+lz", 0.25, 0.50},
};

/// Best-of-`reps` GiB/s for one direction of a chain over `raw`.
template <typename F>
double best_gbps(std::size_t nbytes, int reps, F&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    body();
    const double s = timer.seconds();
    const double gbps =
        static_cast<double>(nbytes) / (s * 1024.0 * 1024.0 * 1024.0);
    if (gbps > best) best = gbps;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_codec.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_codec [--check] [--out FILE]\n";
      return 2;
    }
  }

  BenchDir dir("codec");

  // A das_generate-equivalent acquisition: the fig 1b synthetic scene,
  // f32 on disk, quantized to a 2^-7 LSB as an interrogator ADC would.
  const das::SynthDas synth = das::SynthDas::fig1b_scene(64, 500.0);
  das::AcquisitionSpec spec;
  spec.dir = dir.file("acq");
  spec.start = das::Timestamp::parse("170728224510");
  spec.file_count = 1;
  spec.seconds_per_file = 16384.0 / 500.0;  // 64 x 16384 samples
  spec.dtype = io::DType::kF32;
  spec.per_channel_metadata = false;
  spec.quantize_lsb = 0.0078125;
  const std::string v2_path = das::write_acquisition(synth, spec).front();
  const auto v2_bytes = std::filesystem::file_size(v2_path);

  const io::Dash5File v2(v2_path);
  const std::vector<double> data = v2.read_all();
  // The raw byte stream the codecs see: the on-disk f32 elements.
  std::vector<float> f32(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    f32[i] = static_cast<float>(data[i]);
  }
  std::vector<std::byte> raw(f32.size() * sizeof(float));
  std::memcpy(raw.data(), f32.data(), raw.size());

  io::Dash5Header header = io::Dash5File::read_header(v2_path);
  header.layout = io::Layout::kChunked;
  header.chunk = {16, 2048};

  bench::section("DASH5 v3 codec pipeline (64 x 16384 f32, quantized)");
  std::cout << "v2 source: " << v2_bytes << " bytes\n\n";
  Table table({"chain", "v3_bytes", "ratio", "enc_GiB/s", "dec_GiB/s"});

  std::vector<ChainResult> results;
  for (const char* chain : {"shuffle", "lz", "delta+lz", "shuffle+lz"}) {
    const io::CodecSpec codec = io::CodecSpec::parse(chain);
    header.codec = codec;
    const std::string v3_path =
        dir.file(std::string("v3_") + chain + ".dh5");
    io::dash5_write(v3_path, header, data);
    const auto v3_bytes = std::filesystem::file_size(v3_path);

    ChainResult r;
    r.chain = chain;
    r.ratio = static_cast<double>(v2_bytes) / static_cast<double>(v3_bytes);
    const std::vector<std::byte> enc = io::encode_chain(codec, raw, 4);
    r.encode_gbps = best_gbps(raw.size(), 5, [&] {
      (void)io::encode_chain(codec, raw, 4);
    });
    r.decode_gbps = best_gbps(raw.size(), 5, [&] {
      (void)io::decode_chain(codec, enc, 4, raw.size());
    });
    table.row(r.chain, static_cast<std::uint64_t>(v3_bytes), r.ratio,
              r.encode_gbps, r.decode_gbps);
    results.push_back(r);
  }

  double best_ratio = 0.0;
  for (const ChainResult& r : results) best_ratio = std::max(best_ratio, r.ratio);

  // Cached-read speedup: strided re-reads of the shuffle+lz file with
  // the chunk cache on (tiles decoded once) vs budget 0 (tiles decoded
  // on every access).
  const std::string v3_path = dir.file("v3_shuffle+lz.dh5");
  const std::size_t passes = 6;
  auto scan = [](const io::Dash5File& f) {
    const Shape2D shape = f.shape();
    for (std::size_t r0 = 0; r0 + 16 <= shape.rows; r0 += 16) {
      (void)f.read_slab({r0, 0, 16, shape.cols});
    }
  };
  const std::size_t default_budget = io::ChunkCache::global().budget();

  io::Dash5File warm_file(v3_path);
  scan(warm_file);  // warm the cache
  WallTimer warm_timer;
  for (std::size_t p = 0; p < passes; ++p) scan(warm_file);
  const double warm_s = warm_timer.seconds();

  io::ChunkCache::global().set_budget(0);
  io::Dash5File cold_file(v3_path);
  WallTimer cold_timer;
  for (std::size_t p = 0; p < passes; ++p) scan(cold_file);
  const double cold_s = cold_timer.seconds();
  io::ChunkCache::global().set_budget(default_budget);

  const double speedup = cold_s / warm_s;
  bench::section("chunk cache: repeated strided reads");
  Table cache_table({"mode", "seconds", "speedup"});
  cache_table.row("decode-always", cold_s, 1.0);
  cache_table.row("cached", warm_s, speedup);

  std::ofstream json(out_path, std::ios::trunc);
  json << "{\n  \"bench\": \"codec\",\n  \"simd_level\": \""
       << simd::level_name(simd::active_level()) << "\",\n  \"chains\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ChainResult& r = results[i];
    json << "    {\"chain\": \"" << r.chain << "\", \"ratio\": " << r.ratio
         << ", \"encode_gbps\": " << r.encode_gbps
         << ", \"decode_gbps\": " << r.decode_gbps << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"best_ratio\": " << best_ratio
       << ",\n  \"cached_read_speedup\": " << speedup
       << ",\n  \"thresholds\": {\"ratio\": 2.0, \"speedup\": 1.5,"
       << " \"chain_gbps\": {";
  for (std::size_t i = 0; i < std::size(kGates); ++i) {
    json << "\"" << kGates[i].chain << "\": ["
         << kGates[i].min_encode_gbps << ", " << kGates[i].min_decode_gbps
         << "]" << (i + 1 < std::size(kGates) ? ", " : "");
  }
  json << "}}\n}\n";
  json.close();
  std::cout << "\nwrote " << out_path << "\n";

  if (check) {
    bool ok = true;
    if (best_ratio < 2.0) {
      std::cerr << "bench_codec CHECK FAILED: best compression ratio "
                << best_ratio << " < 2.0\n";
      ok = false;
    }
    if (speedup < 1.5) {
      std::cerr << "bench_codec CHECK FAILED: cached-read speedup "
                << speedup << " < 1.5\n";
      ok = false;
    }
    for (const ChainGate& g : kGates) {
      const auto it = std::find_if(
          results.begin(), results.end(),
          [&](const ChainResult& r) { return r.chain == g.chain; });
      if (it == results.end()) {
        std::cerr << "bench_codec CHECK FAILED: gated chain " << g.chain
                  << " was not measured\n";
        ok = false;
        continue;
      }
      if (it->encode_gbps < g.min_encode_gbps) {
        std::cerr << "bench_codec CHECK FAILED: " << g.chain << " encode "
                  << it->encode_gbps << " GiB/s < " << g.min_encode_gbps
                  << "\n";
        ok = false;
      }
      if (it->decode_gbps < g.min_decode_gbps) {
        std::cerr << "bench_codec CHECK FAILED: " << g.chain << " decode "
                  << it->decode_gbps << " GiB/s < " << g.min_decode_gbps
                  << "\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cout << "bench_codec check passed: ratio " << best_ratio
              << " >= 2.0, cached-read speedup " << speedup
              << " >= 1.5, all chain throughput floors met\n";
  }
  return 0;
}
