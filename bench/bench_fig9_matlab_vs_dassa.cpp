// Fig. 9 reproduction: the same DAS analysis pipeline (Algorithm 3)
// developed MATLAB-style vs with DASSA, single node, one 1-minute file.
//
// Paper setup: one ~700 MB minute file, 12 threads for both systems;
// result: read and write are similar, MATLAB's compute is up to 16x
// slower because only individual vectorised kernels multithread while
// DASSA parallelises the entire per-channel pipeline.
//
// The baseline reproduces MATLAB's execution structure (stage-at-a-
// time, full-array temporaries, pass-by-value copies, serial channel
// loop; see src/das/baseline.cpp). This host has one core, so the
// thread-level part of the gap cannot appear in wall time; the bench
// therefore reports, per the substitution note in EXPERIMENTS.md:
//   * measured single-core walls (structure-only gap), and
//   * the modeled 12-thread compute walls: DASSA's per-channel
//     pipeline divides across threads; the baseline's serial channel
//     loop does not (MATLAB for-loops are single-threaded).
#include "bench_util.hpp"
#include "dassa/das/baseline.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

int main() {
  BenchDir dir("fig9");
  const std::size_t channels = 128;
  const std::size_t samples = 3000;  // scaled "1-minute file"
  const int threads = 12;            // the paper's thread count

  const auto paths = bench::make_acquisition(dir, "acq", channels, 1,
                                             samples, 500.0);
  WallTimer read_timer;
  io::Dash5File file(paths.front());
  const core::Array2D data(file.shape(), file.read_all());
  const double read_s = read_timer.seconds();

  das::InterferometryParams params;
  params.sampling_hz = 500.0;
  params.butter_order = 3;
  params.band_lo_hz = 2.0;
  params.band_hi_hz = 120.0;
  params.resample_down = 2;
  params.master_channel = channels / 2;

  const das::BaselineReport matlab =
      das::baseline_interferometry(data, params);
  const das::BaselineReport dassa =
      das::dassa_interferometry(data, params, threads);

  // Write stage: both emit one array (identical path), measured once.
  WallTimer write_timer;
  io::Dash5Header out_header;
  out_header.shape = dassa.output.shape;
  io::dash5_write(dir.file("out.dh5"), out_header, dassa.output.data);
  const double write_s = write_timer.seconds();

  const double matlab_compute = matlab.stages.total();
  const double dassa_compute = dassa.stages.total();

  // Modeled 12-thread walls: DASSA's channel loop divides by
  // min(threads, channels); the baseline's interpreted channel loop
  // stays serial (kernel-internal threading does not apply at
  // per-channel vector sizes, per the paper's explanation).
  const double speedup_threads =
      static_cast<double>(std::min<std::size_t>(threads, channels));
  const double dassa_compute_12t = dassa_compute / speedup_threads;

  bench::section("Fig 9: MATLAB-style baseline vs DASSA, single node");
  std::cout << "input: " << data.shape << " (scaled 1-minute file)\n\n";
  Table t({"system", "read_s", "compute_s", "write_s", "model12t_s"});
  t.row("MATLAB-style", read_s, matlab_compute, write_s, matlab_compute);
  t.row("DASSA", read_s, dassa_compute, write_s, dassa_compute_12t);

  std::cout << "\nmeasured single-core compute ratio (structure only): "
            << matlab_compute / dassa_compute << "x\n"
            << "modeled 12-thread compute ratio: "
            << matlab_compute / dassa_compute_12t
            << "x  (paper: up to 16x)\n"
            << "baseline materialised " << matlab.full_array_temporaries
            << " full-array temporaries, copied " << matlab.bytes_copied
            << " bytes through call boundaries\n";

  // Stage detail of the baseline (the paper's pipeline stages).
  bench::section("Baseline stage breakdown");
  Table s({"stage", "seconds"});
  for (const auto& [name, secs] : matlab.stages.stages()) {
    s.row(name, secs);
  }
  return 0;
}
