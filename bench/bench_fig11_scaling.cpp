// Fig. 11 reproduction: strong- and weak-scaling parallel efficiency of
// DASSA, sweeping the simulated node count with 8 threads per node on
// the Algorithm 3 workload.
//
// Paper setup: 91 -> 1456 nodes, 8 cores/node; strong scaling fixes
// 1.9 TB total, weak scaling fixes 171 MB/core. Findings: compute
// efficiency stays ~100%; I/O efficiency decays as node count grows
// because more concurrent requests contend at the fixed number of
// Lustre storage targets; 364 nodes is the sweet spot.
//
// One host core cannot exhibit wall-clock parallel speedup, so each
// series reports (see EXPERIMENTS.md):
//   * compute efficiency from the exact work balance (cells per rank --
//     the quantity that is ~100% in the paper as long as partitions
//     stay even);
//   * I/O efficiency from the alpha-beta + storage model (per-call
//     latency x request amplification -- the mechanism the paper
//     blames for the decay);
//   * measured wall seconds for reference.
#include "bench_util.hpp"
#include "dassa/das/interferometry.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

namespace {

struct ScalePoint {
  int nodes = 0;
  double compute_eff = 0.0;
  double io_model_s = 0.0;
  double wall_s = 0.0;
};

das::InterferometryParams params_for(double rate, std::size_t channels) {
  das::InterferometryParams p;
  p.sampling_hz = rate;
  p.butter_order = 3;
  p.band_lo_hz = 2.0;
  p.band_hi_hz = 30.0;
  p.resample_down = 2;
  p.master_channel = channels / 2;
  return p;
}

ScalePoint run_point(const io::Vca& vca, int nodes, std::size_t channels) {
  core::EngineConfig config;
  config.nodes = nodes;
  config.cores_per_node = 8;  // the paper's 8 threads per node
  config.mode = core::EngineMode::kHybrid;
  config.gather_output = true;

  WallTimer timer;
  const core::EngineReport report = das::interferometry_distributed(
      config, vca, params_for(100.0, channels));

  ScalePoint point;
  point.nodes = nodes;
  point.wall_s = timer.seconds();
  point.io_model_s = report.comm.modeled_seconds;  // max over ranks:
                                                   // storage + network
  // Work balance: channels are the unit of Algorithm 3 work.
  std::size_t max_rows = 0;
  for (int r = 0; r < nodes; ++r) {
    max_rows = std::max(
        max_rows, even_chunk(channels, static_cast<std::size_t>(nodes),
                             static_cast<std::size_t>(r))
                      .size());
  }
  point.compute_eff = static_cast<double>(channels) /
                      (static_cast<double>(nodes) *
                       static_cast<double>(max_rows));
  return point;
}

}  // namespace

int main() {
  BenchDir dir("fig11");
  const int node_counts[] = {1, 2, 4, 8, 16};

  // --- strong scaling: fixed total data ------------------------------------
  {
    const std::size_t channels = 96;
    const auto paths =
        bench::make_acquisition(dir, "strong", channels, 8, 500);
    io::Vca vca = io::Vca::build(paths);

    bench::section("Fig 11a: strong scaling (fixed " +
                    vca.shape().str() + " total)");
    Table t({"nodes", "compute_eff%", "io_model_s", "io_eff%", "wall_s"});
    double io_base = 0.0;
    for (const int nodes : node_counts) {
      const ScalePoint p = run_point(vca, nodes, channels);
      if (nodes == 1) io_base = p.io_model_s;
      // Strong-scaling efficiency: t1 / (N * tN).
      const double io_eff =
          100.0 * io_base / (static_cast<double>(nodes) * p.io_model_s);
      t.row(nodes, 100.0 * p.compute_eff, p.io_model_s, io_eff, p.wall_s);
    }
  }

  // --- weak scaling: fixed data per node -----------------------------------
  // Every node brings its own 4 acquisition files (the per-minute files
  // accumulate with recording duration, as on the real system); each
  // rank's channel-block share stays constant, so any growth in
  // per-rank time is pure I/O/communication overhead.
  {
    const std::size_t channels = 48;
    bench::section("Fig 11b: weak scaling (4 files and a fixed channel "
                   "share per node)");
    Table t({"nodes", "shape", "compute_eff%", "io_model_s", "io_eff%",
             "wall_s"});
    double io_base = 0.0;
    for (const int nodes : node_counts) {
      const auto paths = bench::make_acquisition(
          dir, "weak" + std::to_string(nodes), channels,
          4 * static_cast<std::size_t>(nodes), 500);
      io::Vca vca = io::Vca::build(paths);
      const ScalePoint p = run_point(vca, nodes, channels);
      if (nodes == 1) io_base = p.io_model_s;
      // Weak-scaling efficiency: t1 / tN.
      const double io_eff = 100.0 * io_base / p.io_model_s;
      t.row(nodes, vca.shape().str(), 100.0 * p.compute_eff, p.io_model_s,
            io_eff, p.wall_s);
    }
  }

  std::cout << "\npaper: compute efficiency ~100% throughout; I/O "
               "efficiency trends down with node count (request "
               "contention at fixed storage targets); best overall at "
               "364 of 1456 nodes\n";
  return 0;
}
