// Ablation (DESIGN.md #4): ghost-zone construction strategies.
//
// ArrayUDF builds ghost zones so UDFs never communicate at apply time;
// the rank still has to *obtain* the ghost channels once. Two ways:
//   * exchange  -- point-to-point halo exchange with neighbour ranks
//                  (2 messages per interior rank, data already in RAM);
//   * overlap   -- each rank re-reads its halo rows from the VCA
//                  (no messages, but O(files) extra small I/O requests,
//                  partial-width reads at that).
// The sweep varies halo width and file count and reports the measured
// messages/read-calls trade plus the modeled times, under which
// exchange wins whenever network latency is cheaper than storage
// latency -- ArrayUDF's actual design choice.
#include "bench_util.hpp"
#include "dassa/das/local_similarity.hpp"

using namespace dassa;
using bench::BenchDir;
using bench::Table;

int main() {
  BenchDir dir("ghost");
  const std::size_t channels = 64;
  const int nodes = 8;

  bench::section("Ablation: ghost zones via halo exchange vs overlap read");
  Table t({"files", "halo", "mode", "p2p_msgs", "read_calls", "modeled_s",
           "wall_s"});

  for (const std::size_t files_n : {4u, 16u}) {
    const auto paths = bench::make_acquisition(
        dir, "acq" + std::to_string(files_n), channels, files_n, 256);
    io::Vca vca = io::Vca::build(paths);

    for (const std::size_t halo : {1u, 4u}) {
      for (const auto mode :
           {core::HaloMode::kExchange, core::HaloMode::kOverlapRead}) {
        das::LocalSimilarityParams p;
        p.window_half = 4;
        p.lag_half = 2;
        p.channel_offset = halo;

        core::EngineConfig config;
        config.nodes = nodes;
        config.cores_per_node = 1;
        config.halo_mode = mode;
        config.gather_output = false;

        global_counters().reset();
        WallTimer timer;
        const core::EngineReport report =
            das::local_similarity_distributed(config, vca, p);
        t.row(files_n, halo,
              mode == core::HaloMode::kExchange ? "exchange" : "overlap",
              report.comm.p2p_sends,
              global_counters().get(counters::kIoReadCalls),
              report.comm.modeled_seconds, timer.seconds());
      }
    }
  }
  std::cout << "\nexchange trades O(files) extra reads for 2 messages per "
               "interior rank; with storage calls ~1000x costlier than "
               "network messages, exchange is the right default "
               "(ArrayUDF's choice)\n";
  return 0;
}
