// Google-benchmark micro-benchmarks for the DasLib kernels that
// dominate the pipelines' compute stages (supporting data for Figs.
// 8/9/11; also covers the FFT design decision in DESIGN.md: radix-2
// vs Bluestein path).
#include <benchmark/benchmark.h>

#include <random>

#include "dassa/dsp/daslib.hpp"

namespace {

using namespace dassa;

std::vector<double> random_signal(std::size_t n, std::uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

void BM_FftPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(daslib::Das_fft(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftPow2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftBluestein(benchmark::State& state) {
  // Non-power-of-two sizes exercise the chirp-z path.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(daslib::Das_fft(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftBluestein)->Arg(250)->Arg(1000)->Arg(3750)->Arg(15000);

void BM_RfftHalf(benchmark::State& state) {
  // Half-spectrum real transform: the packed half-size path for even
  // lengths, emitting only the n/2 + 1 non-redundant bins.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::rfft_half(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RfftHalf)->Arg(1024)->Arg(4096)->Arg(1000)->Arg(3750);

void BM_RfftHalfBatch(benchmark::State& state) {
  // Row-batched transform sharing one plan and workspace, as the
  // interferometry pipelines do across channels.
  const std::size_t rows = 32;
  const auto cols = static_cast<std::size_t>(state.range(0));
  const std::vector<double> data = random_signal(rows * cols);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::rfft_half_batch(data, rows, cols));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cols));
}
BENCHMARK(BM_RfftHalfBatch)->Arg(1024)->Arg(3750);

void BM_Detrend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(daslib::Das_detrend(x));
  }
}
BENCHMARK(BM_Detrend)->Arg(3000)->Arg(30000);

void BM_ButterDesign(benchmark::State& state) {
  const auto order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(daslib::Das_butter_bandpass(order, 0.01, 0.4));
  }
}
BENCHMARK(BM_ButterDesign)->Arg(2)->Arg(4)->Arg(8);

void BM_Filtfilt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n);
  const dsp::FilterCoeffs f = daslib::Das_butter_bandpass(3, 0.02, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(daslib::Das_filtfilt(f, x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Filtfilt)->Arg(3000)->Arg(30000);

void BM_Resample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(daslib::Das_resample(x, 1, 4));
  }
}
BENCHMARK(BM_Resample)->Arg(3000)->Arg(30000);

void BM_Abscorr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> a = random_signal(n, 1);
  const std::vector<double> b = random_signal(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(daslib::Das_abscorr(a, b));
  }
}
BENCHMARK(BM_Abscorr)->Arg(51)->Arg(501);

void BM_XcorrFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> a = random_signal(n, 3);
  const std::vector<double> b = random_signal(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::xcorr_full(a, b));
  }
}
BENCHMARK(BM_XcorrFull)->Arg(1024)->Arg(8192);

void BM_Envelope(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::envelope(x));
  }
}
BENCHMARK(BM_Envelope)->Arg(1024)->Arg(8192);

void BM_StaLta(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n, 7);
  dsp::StaLtaParams p;
  p.sta = 50;
  p.lta = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::sta_lta(x, p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StaLta)->Arg(30000);

void BM_MedianFilter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::median_filter(x, 5));
  }
}
BENCHMARK(BM_MedianFilter)->Arg(3000);

void BM_LocalSimilarityWindowPair(benchmark::State& state) {
  // The inner kernel of paper Algorithm 2: one window against (2L+1)
  // lagged windows on each of two neighbours.
  const std::size_t m = 25;
  const std::size_t l = 10;
  const std::vector<double> a = random_signal(2 * (m + l) + 1, 9);
  const std::vector<double> b = random_signal(2 * (m + l) + 1, 10);
  const std::span<const double> w(a.data() + l, 2 * m + 1);
  for (auto _ : state) {
    double best = 0.0;
    for (std::size_t lag = 0; lag <= 2 * l; ++lag) {
      best = std::max(best, daslib::Das_abscorr(
                                w, std::span<const double>(
                                       b.data() + lag, 2 * m + 1)));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_LocalSimilarityWindowPair);

void BM_SpectralWhiten(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = random_signal(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::spectral_whiten(x, 9));
  }
}
BENCHMARK(BM_SpectralWhiten)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
