#include "dassa/mpi/comm.hpp"

#include "dassa/common/counters.hpp"
#include "dassa/common/trace.hpp"
#include "world.hpp"

namespace dassa::mpi {

int Comm::size() const {
  return group_.empty() ? world_->size()
                        : static_cast<int>(group_.size());
}

namespace {
/// (color, key, world_rank) triple exchanged during split.
struct SplitEntry {
  int color;
  int key;
  int world_rank;
};
}  // namespace

Comm Comm::split(int color, int key) {
  // Collective exchange of (color, key, world rank) over THIS
  // communicator, then each rank derives its group locally.
  const SplitEntry mine{color, key, world_rank_};
  const auto all = allgatherv(std::span<const SplitEntry>(&mine, 1));

  std::vector<SplitEntry> members;
  for (const auto& per_rank : all) {
    for (const SplitEntry& e : per_rank) {
      if (e.color == color) members.push_back(e);
    }
  }
  std::sort(members.begin(), members.end(),
            [](const SplitEntry& a, const SplitEntry& b) {
              return a.key != b.key ? a.key < b.key
                                    : a.world_rank < b.world_rank;
            });

  Comm sub(world_, world_rank_);
  sub.group_.reserve(members.size());
  int local = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    sub.group_.push_back(members[i].world_rank);
    if (members[i].world_rank == world_rank_) local = static_cast<int>(i);
  }
  DASSA_CHECK(local >= 0, "split lost the calling rank");
  sub.rank_ = local;
  // A context id all group members agree on without extra messages:
  // every member computes it from the same shared state. Use the lowest
  // member's world rank combined with a per-call sequence number drawn
  // collectively (the max of next_context() over the group would race;
  // instead fold the parent context, the group's first member, and the
  // parent's collective position into one value).
  sub.context_ = (context_ + 1) * 1000003 +
                 static_cast<std::int64_t>(sub.group_.front()) * 131 +
                 static_cast<std::int64_t>(split_epoch_);
  ++split_epoch_;
  return sub;
}

const CostParams& Comm::cost_params() const { return world_->cost_params(); }

void Comm::send_bytes(const std::byte* data, std::size_t n, int dest,
                      int tag) {
  DASSA_CHECK(dest >= 0 && dest < size(), "destination rank out of range");
  detail::Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.context = context_;
  msg.payload.assign(data, data + n);
  world_->mailbox(to_world(dest)).put(std::move(msg));

  stats_.p2p_sends += 1;
  stats_.bytes_sent += n;
  stats_.modeled_seconds += world_->cost_params().message_cost(n);
  global_counters().add(counters::kMpiP2pMsgs);
  global_counters().add(counters::kMpiP2pBytes, n);
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  DASSA_CHECK(src >= 0 && src < size(), "source rank out of range");
  detail::Message msg = world_->mailbox(world_rank_)
                            .take(src, tag, context_, world_->aborted());
  stats_.p2p_recvs += 1;
  stats_.bytes_received += msg.payload.size();
  stats_.modeled_seconds +=
      world_->cost_params().message_cost(msg.payload.size());
  return std::move(msg.payload);
}

void Comm::barrier() {
  DASSA_TRACE_SPAN("mpi", "mpi.barrier");
  // Dissemination barrier: in round k every rank signals the rank
  // 2^k ahead and waits for the rank 2^k behind; ceil(log2 p) rounds.
  const int p = size();
  if (rank_ == 0) global_counters().add(counters::kMpiBarriers);
  const std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const int dst = (rank_ + dist) % p;
    const int src = (rank_ - dist + p) % p;
    send_bytes(&token, 1, dst, kBarrierTag);
    (void)recv_bytes(src, kBarrierTag);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  DASSA_TRACE_SPAN("mpi", "mpi.bcast");
  // Binomial tree on relative ranks: root sends to relative ranks
  // 1, 2, 4, ...; each receiver forwards down its subtree. log2(p)
  // rounds, p-1 messages total.
  const int p = size();
  DASSA_CHECK(root >= 0 && root < p, "broadcast root out of range");
  if (rank_ == root) {
    global_counters().add(counters::kMpiBcasts);
    global_counters().add(counters::kMpiBcastBytes, data.size());
  }
  const int rel = (rank_ - root + p) % p;

  // Receive from parent (the rank that differs in the highest set bit).
  if (rel != 0) {
    int high = 1;
    while (high <= rel) high <<= 1;
    high >>= 1;
    const int parent_rel = rel - high;
    const int parent = (parent_rel + root) % p;
    data = recv_bytes(parent, kBcastTag);
  }
  // Forward to children: rel + mask for each mask above rel's high bit.
  int mask = 1;
  while (mask <= rel) mask <<= 1;
  for (; mask < p; mask <<= 1) {
    const int child_rel = rel + mask;
    if (child_rel < p) {
      const int child = (child_rel + root) % p;
      send_bytes(data.data(), data.size(), child, kBcastTag);
    }
  }
}

std::vector<std::vector<std::byte>> Comm::gatherv_bytes(
    std::vector<std::byte> mine, int root) {
  DASSA_TRACE_SPAN("mpi", "mpi.gatherv");
  const int p = size();
  DASSA_CHECK(root >= 0 && root < p, "gather root out of range");
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(p));
    out[static_cast<std::size_t>(root)] = std::move(mine);
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv_bytes(r, kGatherTag);
    }
  } else {
    send_bytes(mine.data(), mine.size(), root, kGatherTag);
  }
  return out;
}

std::vector<std::byte> Comm::scatter_bytes(const std::vector<std::byte>& all,
                                           std::size_t per_bytes, int root) {
  DASSA_TRACE_SPAN("mpi", "mpi.scatter");
  const int p = size();
  DASSA_CHECK(root >= 0 && root < p, "scatter root out of range");
  if (rank_ == root) {
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      send_bytes(all.data() + static_cast<std::size_t>(r) * per_bytes,
                 per_bytes, r, kScatterTag);
    }
    const std::size_t off = static_cast<std::size_t>(root) * per_bytes;
    return {all.begin() + static_cast<std::ptrdiff_t>(off),
            all.begin() + static_cast<std::ptrdiff_t>(off + per_bytes)};
  }
  return recv_bytes(root, kScatterTag);
}

std::vector<std::vector<std::byte>> Comm::alltoallv_bytes(
    const std::vector<std::vector<std::byte>>& per_dest) {
  DASSA_TRACE_SPAN("mpi", "mpi.alltoallv");
  // Pairwise exchange: in step s, send to (rank+s) mod p and receive
  // from (rank-s) mod p. Eager buffered sends make this deadlock-free,
  // and each rank issues exactly p-1 sends -- the O(n/p)-exchange
  // structure the communication-avoiding read relies on.
  const int p = size();
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  if (rank_ == 0) global_counters().add(counters::kMpiAlltoalls);
  std::size_t my_bytes = 0;
  for (const auto& v : per_dest) my_bytes += v.size();
  global_counters().add(counters::kMpiAlltoallBytes, my_bytes);

  out[static_cast<std::size_t>(rank_)] =
      per_dest[static_cast<std::size_t>(rank_)];
  for (int step = 1; step < p; ++step) {
    const int dst = (rank_ + step) % p;
    const int src = (rank_ - step + p) % p;
    const auto& payload = per_dest[static_cast<std::size_t>(dst)];
    send_bytes(payload.data(), payload.size(), dst, kAlltoallTag);
    out[static_cast<std::size_t>(src)] = recv_bytes(src, kAlltoallTag);
  }
  return out;
}

}  // namespace dassa::mpi
