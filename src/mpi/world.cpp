#include "world.hpp"

#include "dassa/common/error.hpp"

namespace dassa::mpi::detail {

void Mailbox::put(Message msg) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::take(int src, int tag, std::int64_t context,
                      const std::atomic<bool>& aborted) {
  MutexLock lock(mu_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->src == src && it->tag == tag && it->context == context) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    if (aborted.load(std::memory_order_acquire)) {
      throw MpiError("world aborted while waiting for message");
    }
    cv_.wait(lock);
  }
}

void Mailbox::interrupt() { cv_.notify_all(); }

World::World(int size, const CostParams& params)
    : size_(size), params_(params) {
  boxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& box : boxes_) box->interrupt();
}

}  // namespace dassa::mpi::detail
