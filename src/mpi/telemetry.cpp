#include "dassa/mpi/telemetry.hpp"

#include <cstring>
#include <span>
#include <utility>

#include "dassa/common/error.hpp"

namespace dassa::mpi {

double CounterAggregate::imbalance(int world_size) const {
  DASSA_CHECK(world_size > 0, "imbalance needs a positive world size");
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(world_size);
  return static_cast<double>(max) / mean;
}

namespace {

// Wire format (host byte order -- MiniMPI never leaves the process):
//   u64 counter_count, then per counter: u64 name_len, name bytes,
//   u64 value; u64 hist_count, then per hist: u64 name_len, name
//   bytes, u64 count, u64 total_ns, 64 x u64 buckets.

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_string(std::vector<std::byte>& out, const std::string& s) {
  put_u64(out, s.size());
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

struct Cursor {
  const std::vector<std::byte>& buf;
  std::size_t pos = 0;

  std::uint64_t u64() {
    DASSA_CHECK(pos + sizeof(std::uint64_t) <= buf.size(),
                "truncated telemetry payload");
    std::uint64_t v = 0;
    std::memcpy(&v, buf.data() + pos, sizeof v);
    pos += sizeof v;
    return v;
  }

  std::string str() {
    const std::uint64_t len = u64();
    DASSA_CHECK(pos + len <= buf.size(), "truncated telemetry payload");
    std::string s(reinterpret_cast<const char*>(buf.data() + pos),
                  static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return s;
  }
};

std::vector<std::byte> serialize(const RankTelemetry& t) {
  std::vector<std::byte> out;
  put_u64(out, t.counters.size());
  for (const auto& [name, value] : t.counters) {
    put_string(out, name);
    put_u64(out, value);
  }
  put_u64(out, t.hists.size());
  for (const auto& [name, h] : t.hists) {
    put_string(out, name);
    put_u64(out, h.count);
    put_u64(out, h.total_ns);
    for (const std::uint64_t b : h.buckets) put_u64(out, b);
  }
  return out;
}

RankTelemetry deserialize(const std::vector<std::byte>& buf) {
  Cursor c{buf};
  RankTelemetry t;
  const std::uint64_t n_counters = c.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    std::string name = c.str();
    const std::uint64_t value = c.u64();
    t.counters.emplace(std::move(name), value);
  }
  const std::uint64_t n_hists = c.u64();
  for (std::uint64_t i = 0; i < n_hists; ++i) {
    std::string name = c.str();
    HistogramSnapshot h;
    h.count = c.u64();
    h.total_ns = c.u64();
    for (auto& b : h.buckets) b = c.u64();
    t.hists.emplace(std::move(name), h);
  }
  DASSA_CHECK(c.pos == buf.size(), "trailing bytes in telemetry payload");
  return t;
}

}  // namespace

ClusterTelemetry reduce_telemetry(Comm& comm, const RankTelemetry& mine,
                                  int root) {
  const std::vector<std::byte> payload = serialize(mine);
  std::vector<std::vector<std::byte>> gathered =
      comm.gatherv<std::byte>(payload, root);

  ClusterTelemetry cluster;
  cluster.world_size = comm.size();
  if (comm.rank() != root) return cluster;

  DASSA_CHECK(gathered.size() == static_cast<std::size_t>(comm.size()),
              "telemetry gather returned wrong rank count");
  cluster.per_rank.reserve(gathered.size());
  for (const auto& raw : gathered) {
    cluster.per_rank.push_back(deserialize(raw));
  }

  // Union of counter names: a counter a rank never charged counts as
  // zero there, so min/max stay meaningful across heterogeneous ranks.
  for (const RankTelemetry& rt : cluster.per_rank) {
    for (const auto& [name, _] : rt.counters) cluster.counters[name];
  }
  for (auto& [name, agg] : cluster.counters) {
    bool first = true;
    for (int r = 0; r < cluster.world_size; ++r) {
      const auto& counters =
          cluster.per_rank[static_cast<std::size_t>(r)].counters;
      const auto it = counters.find(name);
      const std::uint64_t v = it == counters.end() ? 0 : it->second;
      agg.sum += v;
      if (first || v < agg.min) {
        agg.min = v;
        agg.min_rank = r;
      }
      if (first || v > agg.max) {
        agg.max = v;
        agg.max_rank = r;
      }
      first = false;
    }
  }

  for (const RankTelemetry& rt : cluster.per_rank) {
    for (const auto& [name, h] : rt.hists) {
      cluster.hists[name].merge(h);
    }
  }
  return cluster;
}

}  // namespace dassa::mpi
