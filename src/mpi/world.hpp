// MiniMPI internals: the world of mailboxes shared by all rank threads.
// Private to src/mpi; not installed as a public header.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <cstdint>
#include <vector>

#include "dassa/common/sync.hpp"
#include "dassa/mpi/cost_model.hpp"

namespace dassa::mpi::detail {

/// One in-flight message. Payload is always a private copy: MiniMPI
/// ranks are threads, and copying through the mailbox is what enforces
/// MPI's no-shared-memory discipline.
struct Message {
  int src = 0;   ///< sender rank in the COMMUNICATOR's numbering
  int tag = 0;
  std::int64_t context = 0;  ///< communicator context id (0 = world)
  std::vector<std::byte> payload;
};

/// Per-rank message queue with (src, tag) matching. FIFO per matching
/// key, which gives MPI's non-overtaking guarantee.
class Mailbox {
 public:
  void put(Message msg);

  /// Block until a message matching (src, tag, context) is available
  /// (or the world aborts), then remove and return the earliest match.
  Message take(int src, int tag, std::int64_t context,
               const std::atomic<bool>& aborted);

  /// Wake any blocked take() so it can observe an abort.
  void interrupt();

 private:
  Mutex mu_;
  CondVar cv_;
  std::deque<Message> queue_ DASSA_GUARDED_BY(mu_);
};

/// Shared state of one MiniMPI execution: p mailboxes + cost model.
class World {
 public:
  World(int size, const CostParams& params);

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] const CostParams& cost_params() const { return params_; }
  [[nodiscard]] Mailbox& mailbox(int rank) {
    return *boxes_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const std::atomic<bool>& aborted() const { return aborted_; }

  /// Fresh communicator context ids for split().
  [[nodiscard]] std::int64_t next_context() {
    return next_context_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Mark the world as failed and wake all blocked receivers.
  void abort();

 private:
  int size_;
  CostParams params_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<bool> aborted_{false};
  std::atomic<std::int64_t> next_context_{1};
};

}  // namespace dassa::mpi::detail
