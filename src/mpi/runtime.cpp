#include "dassa/mpi/runtime.hpp"

#include <exception>
#include <thread>

#include "dassa/common/error.hpp"
#include "dassa/common/sync.hpp"
#include "dassa/common/trace.hpp"
#include "world.hpp"

namespace dassa::mpi {

RunReport Runtime::run(int world_size, const std::function<void(Comm&)>& fn) {
  return run(world_size, CostParams{}, fn);
}

RunReport Runtime::run(int world_size, const CostParams& params,
                       const std::function<void(Comm&)>& fn) {
  DASSA_CHECK(world_size >= 1, "world size must be at least 1");
  detail::World world(world_size, params);

  RunReport report;
  report.per_rank.resize(static_cast<std::size_t>(world_size));

  std::exception_ptr first_error;
  Mutex error_mu;

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    ranks.emplace_back([&, r] {
      // Label this rank thread's trace lane: every span it (or a pool
      // it creates) emits merges into the per-rank chrome-trace view.
      trace::set_thread_rank(r);
      Comm comm(&world, r);
      try {
        DASSA_TRACE_SPAN("mpi", "mpi.rank");
        fn(comm);
      } catch (...) {
        {
          MutexLock lock(error_mu);
          // Keep the first *root-cause* error; ranks that die with the
          // secondary "world aborted" error are collateral.
          if (!first_error) first_error = std::current_exception();
        }
        world.abort();
      }
      report.per_rank[static_cast<std::size_t>(r)] = comm.stats();
    });
  }
  for (auto& t : ranks) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return report;
}

}  // namespace dassa::mpi
