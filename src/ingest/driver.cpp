#include "dassa/ingest/driver.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/metrics.hpp"
#include "dassa/common/trace.hpp"

namespace dassa::ingest {

std::size_t udf_margin_cols(const das::LocalSimilarityParams& p) {
  DASSA_CHECK(p.window_half <= std::numeric_limits<std::size_t>::max() -
                                   p.lag_half,
              "similarity window + lag overflows");
  return p.window_half + p.lag_half;
}

IngestDriver::IngestDriver(IngestConfig cfg)
    : cfg_(std::move(cfg)),
      vca_(cfg_.vca_index_path),
      planner_(cfg_.window_files, cfg_.overlap_files,
               udf_margin_cols(cfg_.similarity)) {
  DASSA_CHECK(cfg_.engine.output_path.empty(),
              "the ingest driver writes its own output; leave "
              "EngineConfig::output_path empty");
  cfg_.engine.gather_output = true;
}

void IngestDriver::add_file(const SpoolFile& file) {
  DASSA_CHECK(!finished_, "add_file after finish()");
  vca_.append(file.path);  // validates header + channel count
  const auto snap = vca_.snapshot();
  member_paths_.push_back(file.path);
  planner_.add_file(snap->members().back().shape.cols);
  pending_latency_.push_back(
      PendingLatency{file.admit_ns, planner_.total_cols()});
  while (auto w = planner_.next_ready()) process_window(*w);
}

IngestResult IngestDriver::finish() {
  DASSA_CHECK(!finished_, "finish() called twice");
  if (auto w = planner_.finish()) process_window(*w);
  finished_ = true;

  IngestResult r;
  r.files = planner_.files_added();
  r.windows = windows_processed_;
  if (blocks_.empty()) return r;

  const auto snap = vca_.snapshot();
  r.global_meta = snap->global_meta();
  const std::size_t rows = snap->shape().rows;
  const std::size_t total = planner_.emitted_cols();
  r.similarity = core::Array2D({rows, total});
  std::size_t expect = 0;
  for (const EmittedBlock& b : blocks_) {
    DASSA_CHECK(b.col0 == expect, "emitted blocks do not tile the stream");
    for (std::size_t ch = 0; ch < rows; ++ch) {
      std::copy_n(b.data.row(ch).data(), b.data.shape.cols,
                  r.similarity.row(ch).data() + b.col0);
    }
    expect = b.col0 + b.data.shape.cols;
  }
  DASSA_CHECK(expect == total, "emitted blocks do not cover the stream");
  blocks_.clear();

  if (cfg_.detect) r.events = das::detect_events(r.similarity, cfg_.detector);
  return r;
}

void IngestDriver::process_window(const WindowSpec& w) {
  DASSA_CHECK(w.first_file + w.file_count <= member_paths_.size(),
              "window extends past the ingested files");
  DASSA_TRACE_SPAN("ingest", "window");
  const std::vector<std::string> files(
      member_paths_.begin() +
          static_cast<std::ptrdiff_t>(w.first_file),
      member_paths_.begin() +
          static_cast<std::ptrdiff_t>(w.first_file + w.file_count));
  const io::Vca sub = io::Vca::build(files);
  core::EngineReport report =
      das::local_similarity_distributed(cfg_.engine, sub, cfg_.similarity);

  const std::size_t rows = report.output.shape.rows;
  const std::size_t lo = w.emit_lo - w.start_col;  // window-local
  const std::size_t cols = w.emit_hi - w.emit_lo;
  EmittedBlock block;
  block.col0 = w.emit_lo;
  block.data = core::Array2D({rows, cols});
  for (std::size_t ch = 0; ch < rows; ++ch) {
    std::copy_n(report.output.row(ch).data() + lo, cols,
                block.data.row(ch).data());
  }

  if (cfg_.detect) {
    std::vector<das::DetectedEvent> events =
        das::detect_events(block.data, cfg_.detector);
    for (das::DetectedEvent& e : events) {
      e.time_lo += block.col0;  // window-local -> global stream columns
      e.time_hi += block.col0;
    }
    global_counters().add(counters::kIngestEvents, events.size());
    if (on_events && !events.empty()) on_events(events);
  }

  blocks_.push_back(std::move(block));
  ++windows_processed_;
  global_counters().add(counters::kIngestWindows);
  global_counters().add(counters::kIngestColsEmitted, cols);
  DASSA_SLOG(kInfo, "ingest.window")
      .field("index", w.index)
      .field("files", w.file_count)
      .field("emit_lo", w.emit_lo)
      .field("emit_hi", w.emit_hi)
      .field("final", w.final);
  retire_latencies();
}

void IngestDriver::retire_latencies() {
  const std::size_t frontier = planner_.emitted_cols();
  const std::uint64_t now = trace::detail::now_ns();
  auto& hist = global_metrics().histogram("ingest.file_to_detection");
  auto it = pending_latency_.begin();
  while (it != pending_latency_.end()) {
    if (it->end_col <= frontier) {
      hist.record_ns(now >= it->admit_ns ? now - it->admit_ns : 0);
      it = pending_latency_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dassa::ingest
