#include "dassa/ingest/window.hpp"

#include <limits>
#include <string>

#include "dassa/common/error.hpp"

namespace dassa::ingest {

WindowPlanner::WindowPlanner(std::size_t window_files,
                             std::size_t overlap_files,
                             std::size_t margin_cols)
    : window_files_(window_files),
      overlap_files_(overlap_files),
      step_(window_files - overlap_files),
      margin_(margin_cols),
      col_starts_{0} {
  DASSA_CHECK(window_files >= 1, "window must span at least one file");
  DASSA_CHECK(overlap_files < window_files,
              "overlap must be smaller than the window (the window must "
              "advance)");
}

void WindowPlanner::add_file(std::size_t cols) {
  DASSA_CHECK(!finished_, "add_file after finish()");
  DASSA_CHECK(cols >= 1, "a member file must contribute columns");
  DASSA_CHECK(cols <=
                  std::numeric_limits<std::size_t>::max() - total_cols(),
              "stream width overflows");
  col_starts_.push_back(total_cols() + cols);
}

std::optional<WindowSpec> WindowPlanner::next_ready() {
  DASSA_CHECK(!finished_, "next_ready after finish()");
  const std::size_t first = next_window_ * step_;
  if (files_added() < first + window_files_) return std::nullopt;

  WindowSpec w;
  w.index = windows_planned_;
  w.first_file = first;
  w.file_count = window_files_;
  w.start_col = col_starts_[first];
  w.end_col = col_starts_[first + window_files_];
  w.emit_lo = emit_lo_;
  w.final = false;
  // The emit region must end margin_ before the window edge (cells
  // nearer the edge see a clipped neighbourhood the full stream does
  // not) and, unless the window starts at the stream head, must begin
  // at least margin_ inside the window (same reason, left side). Both
  // hold iff overlap_cols >= 2 * margin_cols.
  if (w.end_col < margin_ + 1 || w.end_col - margin_ <= w.emit_lo ||
      (w.start_col > 0 && w.emit_lo < w.start_col + margin_)) {
    throw InvalidArgument(
        "ingest window geometry cannot honour the UDF margin of " +
        std::to_string(margin_) + " columns (window [" +
        std::to_string(w.start_col) + "," + std::to_string(w.end_col) +
        "), emit carry " + std::to_string(w.emit_lo) +
        "): increase --overlap (overlap columns must be >= 2x margin) or "
        "use longer files");
  }
  w.emit_hi = w.end_col - margin_;

  emit_lo_ = w.emit_hi;
  ++next_window_;
  ++windows_planned_;
  return w;
}

std::optional<WindowSpec> WindowPlanner::finish() {
  DASSA_CHECK(!finished_, "finish() called twice");
  finished_ = true;
  const std::size_t n = files_added();
  const std::size_t total = total_cols();
  if (n == 0 || emit_lo_ >= total) return std::nullopt;

  // Deepest file that still leaves margin_ columns of context before
  // the carry; falls back to file 0, whose left edge is the stream
  // edge (where offline clipping is identical by construction).
  std::size_t first = 0;
  for (std::size_t i = n; i-- > 0;) {
    if (col_starts_[i] + margin_ <= emit_lo_) {
      first = i;
      break;
    }
  }

  WindowSpec w;
  w.index = windows_planned_;
  w.first_file = first;
  w.file_count = n - first;
  w.start_col = col_starts_[first];
  w.end_col = total;
  w.emit_lo = emit_lo_;
  w.emit_hi = total;
  w.final = true;
  ++windows_planned_;
  emit_lo_ = total;
  return w;
}

}  // namespace dassa::ingest
