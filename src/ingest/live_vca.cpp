#include "dassa/ingest/live_vca.hpp"

#include <utility>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/das/search.hpp"
#include "dassa/io/interval_index.hpp"

namespace dassa::ingest {

LiveVca::LiveVca(std::string index_path)
    : index_path_(std::move(index_path)),
      current_(std::make_shared<const io::Vca>()) {}

void LiveVca::append(const std::string& path) {
  DASSA_CHECK(!path.empty(), "LiveVca::append needs a member path");
  // Copy-extend-swap: mutate a private copy so concurrent snapshot()
  // holders keep a consistent index. The copy shares the original's
  // member handles, so open files and chunk caches survive the swap.
  auto next = std::make_shared<io::Vca>();
  {
    ReaderLock lock(mu_);
    *next = *current_;
  }
  next->append_member(path);
  if (!index_path_.empty()) {
    // Republish the .vca and its .tix sidecar together, both via
    // atomic rename, so a concurrent server always sees a matching
    // pair (the sidecar may trail the .vca by one append, never tear).
    next->save_atomic(index_path_);
    das::build_interval_index(*next).save_atomic(
        io::IntervalIndex::sidecar_path(index_path_));
  }
  {
    WriterLock lock(mu_);
    current_ = std::move(next);
  }
  global_counters().add(counters::kIngestVcaAppends);
}

std::shared_ptr<const io::Vca> LiveVca::snapshot() const {
  ReaderLock lock(mu_);
  return current_;
}

std::size_t LiveVca::member_count() const {
  ReaderLock lock(mu_);
  return current_->members().size();
}

}  // namespace dassa::ingest
