#include "dassa/ingest/spool.hpp"

#include <algorithm>
#include <system_error>
#include <utility>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/io/dash5.hpp"

namespace dassa::ingest {

namespace fs = std::filesystem;

SpoolWatcher::SpoolWatcher(SpoolConfig cfg) : cfg_(std::move(cfg)) {
  DASSA_CHECK(!cfg_.dir.empty(), "spool watcher needs a directory");
  DASSA_CHECK(!cfg_.quarantine_subdir.empty(),
              "quarantine subdirectory name must not be empty");
  std::error_code ec;
  if (!fs::is_directory(cfg_.dir, ec)) {
    throw IoError("spool directory does not exist: " + cfg_.dir);
  }
}

std::vector<SpoolFile> SpoolWatcher::poll() {
  global_counters().add(counters::kIngestPolls);
  const fs::path quarantine_dir = fs::path(cfg_.dir) / cfg_.quarantine_subdir;

  std::vector<SpoolFile> admitted;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    const fs::path& p = entry.path();
    if (p.extension() != ".dh5") continue;
    std::string key = p.string();
    if (done_.count(key) != 0) continue;
    std::error_code stat_ec;
    if (!entry.is_regular_file(stat_ec) || stat_ec) continue;

    Observation now;
    now.size = entry.file_size(stat_ec);
    if (stat_ec) continue;
    now.mtime = entry.last_write_time(stat_ec);
    if (stat_ec) continue;

    auto it = pending_.find(key);
    if (it == pending_.end()) {
      // First sighting: start the stability clock, admit next poll at
      // the earliest.
      pending_.emplace(std::move(key), now);
      continue;
    }
    if (it->second.size != now.size || it->second.mtime != now.mtime) {
      it->second = now;  // still growing; restart the clock
      continue;
    }

    // Stable across two polls: validate the header before admission.
    pending_.erase(it);
    done_.insert(key);
    try {
      (void)io::Dash5File::read_header(key);
    } catch (const Error& e) {
      quarantine(p, e.what());
      continue;
    }
    global_counters().add(counters::kIngestFilesAdmitted);
    ++admitted_count_;
    admitted.push_back(SpoolFile{std::move(key), trace::detail::now_ns()});
  }
  if (ec) {
    throw IoError("cannot scan spool directory " + cfg_.dir + ": " +
                  ec.message());
  }

  std::sort(admitted.begin(), admitted.end(),
            [](const SpoolFile& a, const SpoolFile& b) {
              return a.path < b.path;
            });
  return admitted;
}

void SpoolWatcher::quarantine(const fs::path& path, const std::string& why) {
  DASSA_CHECK(!path.empty() && !why.empty(),
              "quarantine needs a file path and a reason");
  global_counters().add(counters::kIngestFilesQuarantined);
  ++quarantined_count_;
  const fs::path dir = fs::path(cfg_.dir) / cfg_.quarantine_subdir;
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path dest = dir / path.filename();
  if (!ec) fs::rename(path, dest, ec);
  if (ec) {
    // Leaving a malformed file in place would re-quarantine it every
    // poll; done_ already remembers it, so just log the failed move.
    DASSA_SLOG(kWarn, "ingest.quarantine_move_failed")
        .field("path", path.string())
        .field("error", ec.message());
    return;
  }
  DASSA_SLOG(kWarn, "ingest.file_quarantined")
      .field("path", path.string())
      .field("moved_to", dest.string())
      .field("reason", why);
}

}  // namespace dassa::ingest
