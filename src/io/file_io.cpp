#include "dassa/io/file_io.hpp"

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"

namespace dassa::io {

InputFile::InputFile(const std::string& path)
    : path_(path), stream_(path, std::ios::binary) {
  if (!stream_) throw IoError("cannot open for reading: " + path);
  global_counters().add(counters::kIoOpens);
  stream_.seekg(0, std::ios::end);
  size_ = static_cast<std::uint64_t>(stream_.tellg());
  stream_.seekg(0, std::ios::beg);
  pos_ = 0;
}

void InputFile::read_at(std::uint64_t off, void* dst, std::size_t n) {
  // Subtraction form: `off + n` wraps for corrupted offsets near 2^64.
  if (off > size_ || n > size_ - off) {
    throw IoError("read past end of " + path_ + " (offset " +
                  std::to_string(off) + ", size " + std::to_string(n) + ")");
  }
  if (off != pos_) {
    stream_.seekg(static_cast<std::streamoff>(off));
    global_counters().add(counters::kIoSeeks);
  }
  stream_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(stream_.gcount()) != n) {
    throw IoError("short read from " + path_);
  }
  pos_ = off + n;
  global_counters().add(counters::kIoReadCalls);
  global_counters().add(counters::kIoReadBytes, n);
}

std::vector<std::byte> InputFile::read_vec(std::uint64_t off, std::size_t n) {
  // Validate before sizing the buffer, so a corrupted length faults as
  // IoError instead of std::bad_alloc.
  if (off > size_ || n > size_ - off) {
    throw IoError("read past end of " + path_ + " (offset " +
                  std::to_string(off) + ", size " + std::to_string(n) + ")");
  }
  std::vector<std::byte> buf(n);
  read_at(off, buf.data(), n);
  return buf;
}

OutputFile::OutputFile(const std::string& path, Mode mode)
    : path_(path),
      stream_(path, mode == Mode::kTruncate
                        ? (std::ios::binary | std::ios::trunc)
                        : (std::ios::binary | std::ios::in |
                           std::ios::out)) {
  if (!stream_) throw IoError("cannot open for writing: " + path);
  global_counters().add(counters::kIoOpens);
}

void OutputFile::write(const void* src, std::size_t n) {
  stream_.write(static_cast<const char*>(src),
                static_cast<std::streamsize>(n));
  if (!stream_) throw IoError("write failed on " + path_);
  pos_ += n;
  global_counters().add(counters::kIoWriteCalls);
  global_counters().add(counters::kIoWriteBytes, n);
}

void OutputFile::write_at(std::uint64_t off, const void* src, std::size_t n) {
  stream_.seekp(static_cast<std::streamoff>(off));
  global_counters().add(counters::kIoSeeks);
  stream_.write(static_cast<const char*>(src),
                static_cast<std::streamsize>(n));
  if (!stream_) throw IoError("write failed on " + path_);
  stream_.seekp(static_cast<std::streamoff>(pos_));
  global_counters().add(counters::kIoWriteCalls);
  global_counters().add(counters::kIoWriteBytes, n);
}

void OutputFile::close() {
  stream_.flush();
  stream_.close();
  if (stream_.fail()) throw IoError("close failed on " + path_);
}

}  // namespace dassa::io
