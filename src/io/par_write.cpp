#include "dassa/io/par_write.hpp"

#include <vector>

namespace dassa::io {

void write_dash5_distributed(mpi::Comm& comm, const std::string& path,
                             const Dash5Header& header, const Range& rows,
                             std::span<const double> block,
                             const IoCostParams& io) {
  const Shape2D global = header.shape;
  DASSA_CHECK(block.size() == rows.size() * global.cols,
              "rank block does not match its row range");
  const std::size_t esize = dtype_size(header.dtype);

  // Rank 0 lays down the header and pre-extends the data region so the
  // other ranks' positioned writes land inside the file.
  std::vector<std::uint64_t> offset_box(1, 0);
  if (comm.rank() == 0) {
    Dash5StreamWriter writer(path, header);
    // The stream writer wrote the prelude + header; the data region
    // starts at the current position. Extend with zeros in bounded
    // chunks, then close via append-completion.
    const std::size_t total = global.size();
    const std::vector<double> zeros(std::min<std::size_t>(total, 1 << 16),
                                    0.0);
    std::size_t remaining = total;
    while (remaining > 0) {
      const std::size_t n = std::min(zeros.size(), remaining);
      writer.append(std::span<const double>(zeros.data(), n));
      remaining -= n;
    }
    writer.close();
    // Recover the data offset by re-reading the header size.
    InputFile probe(path);
    std::uint64_t head_size = 0;
    probe.read_at(8, &head_size, sizeof head_size);
    offset_box[0] = 16 + head_size;
  }
  comm.bcast(offset_box, 0);
  const std::uint64_t data_offset = offset_box[0];

  if (rows.size() > 0) {
    OutputFile out(path, OutputFile::Mode::kUpdate);
    const std::uint64_t off =
        data_offset +
        static_cast<std::uint64_t>(global.at(rows.begin, 0)) * esize;
    if (header.dtype == DType::kF64) {
      out.write_at(off, block.data(), block.size_bytes());
    } else {
      std::vector<float> f(block.size());
      for (std::size_t i = 0; i < block.size(); ++i) {
        f[i] = static_cast<float>(block[i]);
      }
      out.write_at(off, f.data(), f.size() * sizeof(float));
    }
    out.close();
    // All ranks write their slab into the same file concurrently.
    comm.charge_modeled_seconds(
        io.shared_call_cost(block.size() * esize, comm.size()));
  }
  // Nobody reads the result before every writer is done.
  comm.barrier();
}

}  // namespace dassa::io
