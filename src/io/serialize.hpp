// DASH5 internals: little-endian buffer serialisation + CRC32.
// Private to src/io.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "dassa/common/error.hpp"

namespace dassa::io::detail {

/// CRC-32 (IEEE 802.3 polynomial) of a byte buffer.
[[nodiscard]] std::uint32_t crc32(const std::byte* data, std::size_t n);

/// Append-only little-endian encoder.
class Encoder {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian decoder; throws FormatError on
/// truncation.
class Decoder {
 public:
  explicit Decoder(const std::vector<std::byte>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    check(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  void raw(void* p, std::size_t n) {
    check(n);
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  // Subtraction form so a huge `n` cannot wrap past the bound
  // (pos_ <= buf_.size() is a class invariant).
  void check(std::size_t n) const {
    if (n > buf_.size() - pos_) {
      throw FormatError("truncated DASH5 header");
    }
  }
  const std::vector<std::byte>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace dassa::io::detail
