// Delta + zigzag + varint stage: lane-wise predictive coding.
//
// Each element lane (the dataset element width) is read as a
// little-endian unsigned integer; consecutive lanes are differenced
// with wrap-around arithmetic, the differences are zigzag-mapped so
// small magnitudes of either sign become small unsigned values, and
// those are LEB128 varint-packed. Interrogator-style fixed-point DAS
// data (quantised floats, integer counts) turns into streams of
// near-zero deltas that pack into one byte each; full-entropy mantissa
// bits pass through at ~1.25x expansion, which the raw-fallback in the
// chunk writer absorbs.
//
// Stream layout: [u64 decoded_size][varints for each whole lane]
// [tail bytes verbatim]. The embedded size is validated against the
// caller's bound before any allocation.
#include <cstring>

#include "dassa/common/simd.hpp"
#include "stages.hpp"

namespace dassa::io::detail {

namespace {

/// Lane width used for differencing: the element size when it is a
/// power-of-two machine width, one byte otherwise.
std::size_t lane_width(std::size_t elem_size) {
  switch (elem_size) {
    case 1:
    case 2:
    case 4:
    case 8:
      return elem_size;
    default:
      return 1;
  }
}

std::uint64_t load_lane(const std::byte* p, std::size_t w) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, w);  // little-endian host, as everywhere in DASH5
  return v;
}

void store_lane(std::byte* p, std::uint64_t v, std::size_t w) {
  std::memcpy(p, &v, w);
}

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

/// Bounds-checked LEB128 reader; rejects truncation and overlong
/// (> 64 bit) encodings.
std::uint64_t get_varint(std::span<const std::byte> in, std::size_t& pos) {
  std::uint64_t v = 0;
  for (std::size_t shift = 0; shift < 64; shift += 7) {
    if (pos >= in.size()) {
      throw FormatError("truncated varint in delta stream");
    }
    const auto b = static_cast<std::uint64_t>(in[pos++]);
    if (shift == 63 && (b & 0xFE) != 0) {
      throw FormatError("overlong varint in delta stream");
    }
    v |= (b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  throw FormatError("unterminated varint in delta stream");
}

class DeltaCodec final : public Codec {
 public:
  [[nodiscard]] CodecId id() const override { return CodecId::kDelta; }
  [[nodiscard]] const char* name() const override { return "delta"; }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::byte> raw, std::size_t elem_size) const override {
    DASSA_CHECK(elem_size >= 1, "delta needs a positive element size");
    const std::size_t w = lane_width(elem_size);
    const std::size_t nlanes = raw.size() / w;
    const std::size_t body = nlanes * w;
    const std::size_t tail = raw.size() - body;
    const std::uint64_t n = raw.size();

    if (w == 4 || w == 8) {
      // Two-pass fast path. Pass 1: lane-wise delta+zigzag into a
      // scratch buffer (vectorized). Pass 2: varint-pack with raw
      // pointer writes into a worst-case-sized output. The historical
      // single-pass loop paid a branchy per-element helper call plus a
      // push_back capacity check per *byte*, which is what cratered
      // delta+lz encode to ~0.12 GB/s (docs/STORAGE.md).
      const std::size_t worst = w == 4 ? 5 : 10;
      std::vector<std::byte> zz(body);
      if (w == 4) {
        simd::delta_zigzag_w4(raw.data(), zz.data(), nlanes);
      } else {
        simd::delta_zigzag_w8(raw.data(), zz.data(), nlanes);
      }
      std::vector<std::byte> out(sizeof n + nlanes * worst + tail +
                                 simd::kVarintPad);
      std::memcpy(out.data(), &n, sizeof n);
      const std::size_t len =
          w == 4 ? simd::varint_encode_w4(zz.data(), nlanes,
                                          out.data() + sizeof n)
                 : simd::varint_encode_w8(zz.data(), nlanes,
                                          out.data() + sizeof n);
      if (tail > 0) {
        std::memcpy(out.data() + sizeof n + len, raw.data() + body, tail);
      }
      out.resize(sizeof n + len + tail);
      return out;
    }

    // Generic path (1- and 2-byte lanes): original per-lane loop.
    const std::size_t bits = w * 8;
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    std::vector<std::byte> out;
    out.reserve(16 + raw.size() + raw.size() / 4);
    out.resize(sizeof n);
    std::memcpy(out.data(), &n, sizeof n);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < nlanes; ++i) {
      const std::uint64_t v = load_lane(raw.data() + i * w, w);
      const std::uint64_t d = (v - prev) & mask;
      // Interpret the wrap-difference as signed in `bits` bits, then
      // zigzag so both directions map to small varints.
      const std::uint64_t half = std::uint64_t{1} << (bits - 1);
      const auto sd = static_cast<std::int64_t>(
          d >= half ? d - half - half : d);
      const std::uint64_t zz =
          (static_cast<std::uint64_t>(sd) << 1) ^
          static_cast<std::uint64_t>(sd >> 63);
      put_varint(out, zz);
      prev = v;
    }
    out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(body),
               raw.end());
    return out;
  }

  [[nodiscard]] std::vector<std::byte> decode(
      std::span<const std::byte> stored, std::size_t elem_size,
      std::size_t max_decoded_size) const override {
    DASSA_CHECK(elem_size >= 1, "delta needs a positive element size");
    if (stored.size() < sizeof(std::uint64_t)) {
      throw FormatError("delta stream smaller than its size header");
    }
    std::uint64_t n = 0;
    std::memcpy(&n, stored.data(), sizeof n);
    if (n > max_decoded_size) {
      throw FormatError("delta stream claims an implausible decoded size");
    }

    const std::size_t w = lane_width(elem_size);
    std::vector<std::byte> out(static_cast<std::size_t>(n));
    const std::size_t nlanes = out.size() / w;
    const std::size_t tail = out.size() - nlanes * w;
    std::size_t pos = sizeof n;
    if (w == 4 || w == 8) {
      // Batch varint decode straight into the output lanes (word-at-a-
      // time fast path for single-byte runs), then reconstruct values
      // with a vector unzigzag + prefix sum in place.
      const simd::VarintResult r =
          w == 4 ? simd::varint_decode_w4(stored.data() + pos,
                                          stored.size() - pos, out.data(),
                                          nlanes)
                 : simd::varint_decode_w8(stored.data() + pos,
                                          stored.size() - pos, out.data(),
                                          nlanes);
      if (r.status == simd::VarintStatus::kTruncated) {
        throw FormatError("truncated varint in delta stream");
      }
      if (r.status == simd::VarintStatus::kOverlong) {
        throw FormatError("overlong varint in delta stream");
      }
      pos += r.consumed;
      if (w == 4) {
        simd::unzigzag_prefix_w4(out.data(), nlanes);
      } else {
        simd::unzigzag_prefix_w8(out.data(), nlanes);
      }
    } else {
      const std::size_t bits = w * 8;
      const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
      std::uint64_t prev = 0;
      for (std::size_t i = 0; i < nlanes; ++i) {
        const std::uint64_t zz = get_varint(stored, pos);
        const auto sd =
            static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
        const std::uint64_t v =
            (prev + (static_cast<std::uint64_t>(sd) & mask)) & mask;
        store_lane(out.data() + i * w, v, w);
        prev = v;
      }
    }
    // Subtraction form: pos <= stored.size() is a loop invariant.
    if (tail > stored.size() - pos) {
      throw FormatError("truncated tail in delta stream");
    }
    if (tail > 0) {
      std::memcpy(out.data() + nlanes * w, stored.data() + pos, tail);
    }
    pos += tail;
    if (pos != stored.size()) {
      throw FormatError("trailing garbage after delta stream");
    }
    return out;
  }
};

}  // namespace

const Codec& delta_codec() {
  static const DeltaCodec codec;
  return codec;
}

}  // namespace dassa::io::detail
