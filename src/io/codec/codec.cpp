// Codec registry, chain spec parsing, and the encode/decode chain
// drivers used by the DASH5 v3 chunk reader/writer.
#include "dassa/io/codec.hpp"

#include <chrono>
#include <cstring>

#include "dassa/common/counters.hpp"
#include "dassa/common/trace.hpp"
#include "stages.hpp"

namespace dassa::io {

namespace detail {

namespace {

class NoneCodec final : public Codec {
 public:
  [[nodiscard]] CodecId id() const override { return CodecId::kNone; }
  [[nodiscard]] const char* name() const override { return "none"; }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::byte> raw,
      std::size_t /*elem_size*/) const override {
    return {raw.begin(), raw.end()};
  }

  [[nodiscard]] std::vector<std::byte> decode(
      std::span<const std::byte> stored, std::size_t /*elem_size*/,
      std::size_t max_decoded_size) const override {
    if (stored.size() > max_decoded_size) {
      throw FormatError("none stream larger than its decode bound");
    }
    return {stored.begin(), stored.end()};
  }
};

}  // namespace

const Codec& none_codec() {
  static const NoneCodec codec;
  return codec;
}

}  // namespace detail

CodecRegistry::CodecRegistry() {
  stages_ = {
      &detail::none_codec(),
      &detail::shuffle_codec(),
      &detail::delta_codec(),
      &detail::lz_codec(),
  };
}

const CodecRegistry& CodecRegistry::instance() {
  static const CodecRegistry registry;
  return registry;
}

const Codec* CodecRegistry::find(CodecId id) const {
  for (const Codec* stage : stages_) {
    if (stage->id() == id) return stage;
  }
  return nullptr;
}

const Codec* CodecRegistry::find(const std::string& name) const {
  for (const Codec* stage : stages_) {
    if (name == stage->name()) return stage;
  }
  return nullptr;
}

std::string CodecSpec::str() const {
  if (chain.empty()) return "none";
  std::string out;
  for (const CodecId id : chain) {
    const Codec* stage = CodecRegistry::instance().find(id);
    if (!out.empty()) out += '+';
    out += stage ? stage->name() : "?";
  }
  return out;
}

CodecSpec CodecSpec::parse(const std::string& text) {
  DASSA_CHECK(!text.empty(), "codec spec must not be empty");
  if (text == "none") return {};
  CodecSpec spec;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t plus = text.find('+', start);
    const std::string name = text.substr(
        start, plus == std::string::npos ? std::string::npos : plus - start);
    const Codec* stage = CodecRegistry::instance().find(name);
    if (stage == nullptr) {
      throw InvalidArgument("unknown codec stage '" + name + "' in spec '" +
                            text + "'");
    }
    if (spec.chain.size() >= kMaxChain) {
      throw InvalidArgument("codec chain '" + text + "' exceeds " +
                            std::to_string(kMaxChain) + " stages");
    }
    spec.chain.push_back(stage->id());
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  return spec;
}

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

const Codec& stage_for(CodecId id) {
  const Codec* stage = CodecRegistry::instance().find(id);
  if (stage == nullptr) {
    throw FormatError("unknown codec id " +
                      std::to_string(static_cast<unsigned>(id)));
  }
  return *stage;
}

}  // namespace

std::vector<std::byte> encode_chain(const CodecSpec& spec,
                                    std::span<const std::byte> raw,
                                    std::size_t elem_size) {
  DASSA_CHECK(elem_size == 4 || elem_size == 8,
              "codec chains operate on 4- or 8-byte elements");
  DASSA_TRACE_SPAN("codec", "codec.encode_chain");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::byte> cur;
  std::span<const std::byte> in = raw;
  for (const CodecId id : spec.chain) {
    cur = stage_for(id).encode(in, elem_size);
    in = cur;
  }
  if (spec.chain.empty()) cur.assign(raw.begin(), raw.end());
  global_counters().add(counters::kIoCodecEncodeCalls, 1);
  global_counters().add(counters::kIoCodecEncodeNs, elapsed_ns(t0));
  return cur;
}

std::vector<std::byte> decode_chain(const CodecSpec& spec,
                                    std::span<const std::byte> stored,
                                    std::size_t elem_size,
                                    std::size_t raw_size) {
  DASSA_CHECK(elem_size == 4 || elem_size == 8,
              "codec chains operate on 4- or 8-byte elements");
  DASSA_TRACE_SPAN("codec", "codec.decode_chain");
  const auto t0 = std::chrono::steady_clock::now();
  // Intermediate stages may be mildly expansive (varint worst case is
  // ~1.25x); give every stage the same generous-but-bounded ceiling.
  const std::size_t bound = raw_size + raw_size / 2 + 4096;
  std::vector<std::byte> cur;
  std::span<const std::byte> in = stored;
  for (auto it = spec.chain.rbegin(); it != spec.chain.rend(); ++it) {
    cur = stage_for(*it).decode(in, elem_size, bound);
    in = cur;
  }
  if (spec.chain.empty()) cur.assign(stored.begin(), stored.end());
  if (cur.size() != raw_size) {
    throw FormatError("codec chain decoded " + std::to_string(cur.size()) +
                      " bytes, chunk index says " + std::to_string(raw_size));
  }
  global_counters().add(counters::kIoCodecDecodeCalls, 1);
  global_counters().add(counters::kIoCodecDecodeNs, elapsed_ns(t0));
  return cur;
}

}  // namespace dassa::io
