// Codec stage accessors, private to src/io/codec. Each stage lives in
// its own translation unit as a stateless singleton; the registry
// (codec.cpp) assembles them.
#pragma once

#include "dassa/io/codec.hpp"

namespace dassa::io::detail {

const Codec& none_codec();
const Codec& shuffle_codec();
const Codec& delta_codec();
const Codec& lz_codec();

}  // namespace dassa::io::detail
