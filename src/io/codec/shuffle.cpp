// Byte-shuffle stage: transpose an element stream into per-byte
// planes. IEEE-float DAS samples share sign/exponent/high-mantissa
// structure across neighbouring samples, so plane 3 (f32) or planes
// 6-7 (f64) become long near-constant runs that the LZ stage folds up
// — the classic shuffle+LZ arrangement HDF5 and DASPack both use.
// Size-preserving and header-free: decode output size equals input
// size.
#include <cstring>

#include "dassa/common/simd.hpp"
#include "stages.hpp"

namespace dassa::io::detail {

namespace {

class ShuffleCodec final : public Codec {
 public:
  [[nodiscard]] CodecId id() const override { return CodecId::kShuffle; }
  [[nodiscard]] const char* name() const override { return "shuffle"; }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::byte> raw, std::size_t elem_size) const override {
    DASSA_CHECK(elem_size >= 1, "shuffle needs a positive element size");
    return transpose(raw, elem_size, /*forward=*/true);
  }

  [[nodiscard]] std::vector<std::byte> decode(
      std::span<const std::byte> stored, std::size_t elem_size,
      std::size_t max_decoded_size) const override {
    DASSA_CHECK(elem_size >= 1, "shuffle needs a positive element size");
    if (stored.size() > max_decoded_size) {
      throw FormatError("shuffle stream larger than its decode bound");
    }
    return transpose(stored, elem_size, /*forward=*/false);
  }

 private:
  /// Forward: element-major -> plane-major. Backward: inverse. Only
  /// the elem_size-divisible prefix is transposed; tail bytes (never
  /// present for whole chunks, but the stage stays total) ride along
  /// unchanged at the end.
  static std::vector<std::byte> transpose(std::span<const std::byte> in,
                                          std::size_t elem_size,
                                          bool forward) {
    std::vector<std::byte> out(in.size());
    const std::size_t nelem = in.size() / elem_size;
    if (forward) {
      simd::shuffle_bytes(in.data(), out.data(), nelem, elem_size);
    } else {
      simd::unshuffle_bytes(in.data(), out.data(), nelem, elem_size);
    }
    const std::size_t body = nelem * elem_size;
    if (body < in.size()) {
      std::memcpy(out.data() + body, in.data() + body, in.size() - body);
    }
    return out;
  }
};

}  // namespace

const Codec& shuffle_codec() {
  static const ShuffleCodec codec;
  return codec;
}

}  // namespace dassa::io::detail
