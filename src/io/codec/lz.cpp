// LZ stage: greedy LZ77 with a hash-table match finder and an
// LZ4-flavoured token stream. General-purpose back-end of every chain:
// it folds up the byte-plane runs the shuffle stage exposes and the
// zero runs the delta stage produces.
//
// Stream layout: [u64 decoded_size] then sequences of
//   token      1 byte: high nibble = literal count, low nibble =
//              match length - kMinMatch; nibble value 15 extends with
//              255-run bytes (LZ4 style)
//   literals   `literal count` verbatim bytes
//   offset     u16 LE back-reference distance (1..65535), omitted for
//              the final sequence (which ends exactly at decoded_size)
//   (match bytes are reproduced from the sliding window)
//
// The decoder is written against hostile input: every length is
// bounded before use, offsets must land inside the produced output,
// and the stream must consume exactly its input — anything else is a
// FormatError.
#include <cstring>

#include "stages.hpp"

namespace dassa::io::detail {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 15;
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

std::uint32_t load32(const std::byte* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::size_t hash4(std::uint32_t v) {
  return static_cast<std::size_t>((v * 2654435761u) >> (32 - kHashBits));
}

void put_len(std::vector<std::byte>& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(std::byte{255});
    extra -= 255;
  }
  out.push_back(static_cast<std::byte>(extra));
}

/// Read an extended length: `nibble` plus 255-run continuation bytes.
/// Bounded by `limit` so a hostile run cannot spin or overflow.
std::size_t get_len(std::span<const std::byte> in, std::size_t& pos,
                    std::size_t nibble, std::size_t limit) {
  std::size_t len = nibble;
  if (nibble == 15) {
    for (;;) {
      if (pos >= in.size()) {
        throw FormatError("truncated length run in lz stream");
      }
      const auto b = static_cast<std::size_t>(in[pos++]);
      len += b;
      if (len > limit) {
        throw FormatError("length run exceeds decoded size in lz stream");
      }
      if (b < 255) break;
    }
  }
  return len;
}

class LzCodec final : public Codec {
 public:
  [[nodiscard]] CodecId id() const override { return CodecId::kLz; }
  [[nodiscard]] const char* name() const override { return "lz"; }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::byte> raw,
      std::size_t /*elem_size*/) const override {
    std::vector<std::byte> out;
    out.reserve(16 + raw.size() / 2);
    const std::uint64_t n = raw.size();
    out.resize(sizeof n);
    std::memcpy(out.data(), &n, sizeof n);
    if (raw.empty()) return out;

    std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, kNoPos);
    const std::byte* src = raw.data();
    std::size_t anchor = 0;
    std::size_t i = 0;
    // Leave kMinMatch + headroom at the end: the tail is emitted as
    // plain literals, which also gives the decoder its final,
    // offset-less sequence.
    while (raw.size() >= 12 && i + 12 <= raw.size()) {
      const std::uint32_t v = load32(src + i);
      const std::size_t h = hash4(v);
      const std::uint32_t cand = table[h];
      table[h] = static_cast<std::uint32_t>(i);
      if (cand == kNoPos || i - cand > kMaxOffset ||
          load32(src + cand) != v) {
        ++i;
        continue;
      }
      std::size_t len = kMinMatch;
      const std::size_t max_len = raw.size() - i;
      while (len < max_len && src[cand + len] == src[i + len]) ++len;
      emit(out, src, anchor, i, i - cand, len);
      i += len;
      anchor = i;
    }
    // Final literal-only sequence. Omitted entirely when the stream
    // ends exactly on a match: the decoder stops at decoded_size, so a
    // trailing empty token would never be consumed.
    const std::size_t lit = raw.size() - anchor;
    if (lit > 0) {
      const std::size_t lit_nibble = lit < 15 ? lit : 15;
      out.push_back(static_cast<std::byte>(lit_nibble << 4));
      if (lit_nibble == 15) put_len(out, lit - 15);
      out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(anchor),
                 raw.end());
    }
    return out;
  }

  [[nodiscard]] std::vector<std::byte> decode(
      std::span<const std::byte> stored, std::size_t /*elem_size*/,
      std::size_t max_decoded_size) const override {
    if (stored.size() < sizeof(std::uint64_t)) {
      throw FormatError("lz stream smaller than its size header");
    }
    std::uint64_t n = 0;
    std::memcpy(&n, stored.data(), sizeof n);
    if (n > max_decoded_size) {
      throw FormatError("lz stream claims an implausible decoded size");
    }
    std::vector<std::byte> out;
    out.reserve(static_cast<std::size_t>(n));
    std::size_t pos = sizeof n;

    while (out.size() < n) {
      if (pos >= stored.size()) {
        throw FormatError("truncated sequence in lz stream");
      }
      const auto token = static_cast<std::size_t>(stored[pos++]);
      const std::size_t lit =
          get_len(stored, pos, token >> 4, static_cast<std::size_t>(n));
      // Subtraction forms: pos <= stored.size(), out.size() <= n.
      if (lit > stored.size() - pos) {
        throw FormatError("literal run past end of lz stream");
      }
      if (lit > n - out.size()) {
        throw FormatError("literal run past decoded size in lz stream");
      }
      out.insert(out.end(), stored.begin() + static_cast<std::ptrdiff_t>(pos),
                 stored.begin() + static_cast<std::ptrdiff_t>(pos + lit));
      pos += lit;
      if (out.size() == n) break;  // final sequence carries no match

      if (stored.size() - pos < 2) {
        throw FormatError("truncated match offset in lz stream");
      }
      std::uint16_t offset = 0;
      std::memcpy(&offset, stored.data() + pos, sizeof offset);
      pos += sizeof offset;
      if (offset == 0 || offset > out.size()) {
        throw FormatError("match offset outside window in lz stream");
      }
      const std::size_t match =
          kMinMatch +
          get_len(stored, pos, token & 15, static_cast<std::size_t>(n));
      if (match > n - out.size()) {
        throw FormatError("match run past decoded size in lz stream");
      }
      // Byte-wise: matches may overlap their own output (RLE case).
      std::size_t from = out.size() - offset;
      for (std::size_t k = 0; k < match; ++k) {
        out.push_back(out[from + k]);
      }
    }
    if (pos != stored.size()) {
      throw FormatError("trailing garbage after lz stream");
    }
    return out;
  }

 private:
  static void emit(std::vector<std::byte>& out, const std::byte* src,
                   std::size_t anchor, std::size_t end, std::size_t offset,
                   std::size_t match_len) {
    const std::size_t lit = end - anchor;
    const std::size_t ml = match_len - kMinMatch;
    const std::size_t lit_nibble = lit < 15 ? lit : 15;
    const std::size_t ml_nibble = ml < 15 ? ml : 15;
    out.push_back(static_cast<std::byte>((lit_nibble << 4) | ml_nibble));
    if (lit_nibble == 15) put_len(out, lit - 15);
    out.insert(out.end(), src + anchor, src + end);
    const auto off16 = static_cast<std::uint16_t>(offset);
    const std::byte* ob = reinterpret_cast<const std::byte*>(&off16);
    out.insert(out.end(), ob, ob + sizeof off16);
    if (ml_nibble == 15) put_len(out, ml - 15);
  }
};

}  // namespace

const Codec& lz_codec() {
  static const LzCodec codec;
  return codec;
}

}  // namespace dassa::io::detail
