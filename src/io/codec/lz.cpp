// LZ stage: greedy LZ77 with a hash-table match finder and an
// LZ4-flavoured token stream. General-purpose back-end of every chain:
// it folds up the byte-plane runs the shuffle stage exposes and the
// zero runs the delta stage produces.
//
// Stream layout: [u64 decoded_size] then sequences of
//   token      1 byte: high nibble = literal count, low nibble =
//              match length - kMinMatch; nibble value 15 extends with
//              255-run bytes (LZ4 style)
//   literals   `literal count` verbatim bytes
//   offset     u16 LE back-reference distance (1..65535), omitted for
//              the final sequence (which ends exactly at decoded_size)
//   (match bytes are reproduced from the sliding window)
//
// The decoder is written against hostile input: every length is
// bounded before use, offsets must land inside the produced output,
// and the stream must consume exactly its input — anything else is a
// FormatError.
#include <cstring>

#include "dassa/common/simd.hpp"
#include "stages.hpp"

namespace dassa::io::detail {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kSkipTrigger = 6;
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

std::uint32_t load32(const std::byte* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::size_t hash4(std::uint32_t v) {
  return static_cast<std::size_t>((v * 2654435761u) >> (32 - kHashBits));
}

std::byte* put_len(std::byte* op, std::size_t extra) {
  while (extra >= 255) {
    *op++ = std::byte{255};
    extra -= 255;
  }
  *op++ = static_cast<std::byte>(extra);
  return op;
}

/// Read an extended length: `nibble` plus 255-run continuation bytes.
/// Bounded by `limit` so a hostile run cannot spin or overflow.
std::size_t get_len(std::span<const std::byte> in, std::size_t& pos,
                    std::size_t nibble, std::size_t limit) {
  std::size_t len = nibble;
  if (nibble == 15) {
    for (;;) {
      if (pos >= in.size()) {
        throw FormatError("truncated length run in lz stream");
      }
      const auto b = static_cast<std::size_t>(in[pos++]);
      len += b;
      if (len > limit) {
        throw FormatError("length run exceeds decoded size in lz stream");
      }
      if (b < 255) break;
    }
  }
  return len;
}

class LzCodec final : public Codec {
 public:
  [[nodiscard]] CodecId id() const override { return CodecId::kLz; }
  [[nodiscard]] const char* name() const override { return "lz"; }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::byte> raw,
      std::size_t /*elem_size*/) const override {
    // Worst-case output: every literal byte (+1/255 length-run bytes),
    // plus token + offset + length-run sentinels per match (a match
    // consumes >= kMinMatch input bytes, so <= raw/4 of them).
    const std::uint64_t n = raw.size();
    std::vector<std::byte> out(sizeof n + raw.size() + raw.size() / 4 +
                               raw.size() / 64 + 64);
    std::memcpy(out.data(), &n, sizeof n);
    if (raw.empty()) {
      out.resize(sizeof n);
      return out;
    }
    std::byte* op = out.data() + sizeof n;

    std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, kNoPos);
    const std::byte* src = raw.data();
    std::size_t anchor = 0;
    std::size_t i = 0;
    // Probe step grows while the finder keeps missing (LZ4-style skip
    // acceleration): after 2^kSkipTrigger consecutive misses the
    // stream is locally incompressible and sampling it more coarsely
    // trades a sliver of ratio for a large encode speedup.
    std::size_t search = std::size_t{1} << kSkipTrigger;
    // Leave kMinMatch + headroom at the end: the tail is emitted as
    // plain literals, which also gives the decoder its final,
    // offset-less sequence.
    while (raw.size() >= 12 && i + 12 <= raw.size()) {
      const std::uint32_t v = load32(src + i);
      const std::size_t h = hash4(v);
      const std::uint32_t cand = table[h];
      table[h] = static_cast<std::uint32_t>(i);
      if (cand == kNoPos || i - cand > kMaxOffset ||
          load32(src + cand) != v) {
        i += search++ >> kSkipTrigger;
        continue;
      }
      search = std::size_t{1} << kSkipTrigger;
      // The hash hit verified bytes 0..3; extend from there with the
      // word-at-a-time kernel (exact, so streams are CPU-independent).
      const std::size_t max_len = raw.size() - i;
      const std::size_t len =
          kMinMatch + simd::match_length(src + cand + kMinMatch,
                                         src + i + kMinMatch,
                                         max_len - kMinMatch);
      op = emit(op, src, anchor, i, i - cand, len);
      i += len;
      anchor = i;
    }
    // Final literal-only sequence. Omitted entirely when the stream
    // ends exactly on a match: the decoder stops at decoded_size, so a
    // trailing empty token would never be consumed.
    const std::size_t lit = raw.size() - anchor;
    if (lit > 0) {
      const std::size_t lit_nibble = lit < 15 ? lit : 15;
      *op++ = static_cast<std::byte>(lit_nibble << 4);
      if (lit_nibble == 15) op = put_len(op, lit - 15);
      std::memcpy(op, src + anchor, lit);
      op += lit;
    }
    out.resize(static_cast<std::size_t>(op - out.data()));
    return out;
  }

  [[nodiscard]] std::vector<std::byte> decode(
      std::span<const std::byte> stored, std::size_t /*elem_size*/,
      std::size_t max_decoded_size) const override {
    if (stored.size() < sizeof(std::uint64_t)) {
      throw FormatError("lz stream smaller than its size header");
    }
    std::uint64_t n = 0;
    std::memcpy(&n, stored.data(), sizeof n);
    if (n > max_decoded_size) {
      throw FormatError("lz stream claims an implausible decoded size");
    }
    // kCopySlack trailing bytes let copy_match run whole-word copies
    // without a tail branch; the buffer is trimmed before returning.
    // Every bound below is validated against `n` first, so the wide
    // copies never reach past cur + match + kCopySlack.
    std::vector<std::byte> out(static_cast<std::size_t>(n) + simd::kCopySlack);
    std::size_t cur = 0;
    std::size_t pos = sizeof n;

    while (cur < n) {
      if (pos >= stored.size()) {
        throw FormatError("truncated sequence in lz stream");
      }
      const auto token = static_cast<std::size_t>(stored[pos++]);
      std::size_t lit = token >> 4;
      if (lit == 15) {
        lit = get_len(stored, pos, 15, static_cast<std::size_t>(n));
      }
      // Subtraction forms: pos <= stored.size(), cur <= n.
      if (lit > stored.size() - pos) {
        throw FormatError("literal run past end of lz stream");
      }
      if (lit > n - cur) {
        throw FormatError("literal run past decoded size in lz stream");
      }
      if (lit > 0) {
        std::memcpy(out.data() + cur, stored.data() + pos, lit);
        pos += lit;
        cur += lit;
        if (cur == n) break;  // final sequence carries no match
      }

      if (stored.size() - pos < 2) {
        throw FormatError("truncated match offset in lz stream");
      }
      std::uint16_t offset = 0;
      std::memcpy(&offset, stored.data() + pos, sizeof offset);
      pos += sizeof offset;
      if (offset == 0 || offset > cur) {
        throw FormatError("match offset outside window in lz stream");
      }
      std::size_t match = kMinMatch + (token & 15);
      if ((token & 15) == 15) {
        match = kMinMatch +
                get_len(stored, pos, 15, static_cast<std::size_t>(n));
      }
      if (match > n - cur) {
        throw FormatError("match run past decoded size in lz stream");
      }
      if (offset >= 8 && match <= 16) {
        // Hot case: short non-overlapping match. Two unconditional
        // 8-byte copies into the kCopySlack region beat a call.
        std::memcpy(out.data() + cur, out.data() + cur - offset, 8);
        std::memcpy(out.data() + cur + 8, out.data() + cur - offset + 8, 8);
      } else {
        // Overlap-safe wide copy: handles the self-referential RLE
        // case (offset < 8) by bootstrapping then widening the period.
        simd::copy_match(out.data() + cur, offset, match);
      }
      cur += match;
    }
    if (pos != stored.size()) {
      throw FormatError("trailing garbage after lz stream");
    }
    out.resize(static_cast<std::size_t>(n));
    return out;
  }

 private:
  static std::byte* emit(std::byte* op, const std::byte* src,
                         std::size_t anchor, std::size_t end,
                         std::size_t offset, std::size_t match_len) {
    const std::size_t lit = end - anchor;
    const std::size_t ml = match_len - kMinMatch;
    const std::size_t lit_nibble = lit < 15 ? lit : 15;
    const std::size_t ml_nibble = ml < 15 ? ml : 15;
    *op++ = static_cast<std::byte>((lit_nibble << 4) | ml_nibble);
    if (lit_nibble == 15) op = put_len(op, lit - 15);
    if (lit > 0) {
      std::memcpy(op, src + anchor, lit);
      op += lit;
    }
    const auto off16 = static_cast<std::uint16_t>(offset);
    std::memcpy(op, &off16, sizeof off16);
    op += sizeof off16;
    if (ml_nibble == 15) op = put_len(op, ml - 15);
    return op;
  }
};

}  // namespace

const Codec& lz_codec() {
  static const LzCodec codec;
  return codec;
}

}  // namespace dassa::io::detail
