// Internal building blocks of the DASH5 container, shared between the
// serial writers in dash5.cpp and the parallel repack engine
// (src/io/repack.cpp). Everything here produces *bytes*, not file
// writes, so a caller that knows its extents in advance (repack ranks
// writing disjoint regions) can assemble a file with positioned writes
// and still be byte-identical to the serial writer.
//
// This header is src/-private on purpose: the on-disk byte layout is
// an implementation detail of the io layer, and nothing outside it may
// depend on magic values or entry sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dassa/io/dash5.hpp"

namespace dassa::io::detail {

// On-disk framing shared by every DASH5 version:
//   [magic 8][header size u64][header block][payload...]
// and, for v3 chunked files, the trailing chunk-index footer
//   [index block][crc u32][block size u64][index magic 8].
inline constexpr char kMagicV2[8] = {'D', 'A', 'S', 'H', '5', '\0', '\0', '\2'};
inline constexpr char kMagicV3[8] = {'D', 'A', 'S', 'H', '5', '\0', '\0', '\3'};
inline constexpr char kIndexMagic[8] = {'D', 'A', 'S', 'I', 'D', 'X',
                                        '\0', '\3'};
inline constexpr std::uint64_t kPreludeSize = 16;  // magic + header size
inline constexpr std::uint64_t kFooterTail = 20;   // crc + size + magic
inline constexpr std::uint64_t kIndexEntrySize = 29;  // u64 x3 + u32 + u8

/// Encoded header block (KV sections, dtype/shape/layout/chunk, the v3
/// codec chain when present) with its trailing CRC. The bytes that
/// follow the u64 size field in the prelude.
[[nodiscard]] std::vector<std::byte> encode_dash5_header(
    const Dash5Header& h);

/// Compressed payload of one dense chunk tile: the codec chain's
/// output, or the raw element bytes with codec flag 0 when compression
/// does not pay (the raw fallback that bounds worst-case growth).
[[nodiscard]] std::pair<std::vector<std::byte>, std::uint8_t>
encode_dash5_tile(const Dash5Header& h, std::span<const double> tile);

/// Complete v3 footer: encoded index entries, block CRC, block size,
/// and the trailing index magic. Appending this after the last chunk
/// payload finishes a valid v3 file.
[[nodiscard]] std::vector<std::byte> encode_chunk_index_footer(
    const std::vector<ChunkIndexEntry>& index);

}  // namespace dassa::io::detail
