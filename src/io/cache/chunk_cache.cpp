#include "dassa/io/chunk_cache.hpp"

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/common/telemetry.hpp"

namespace dassa::io {

namespace {

std::size_t payload_bytes(const ChunkData& data) {
  return data ? data->size() * sizeof(double) : 0;
}

}  // namespace

ChunkCache::ChunkCache(std::size_t budget_bytes) : budget_(budget_bytes) {}

ChunkCache::Shard& ChunkCache::shard_for(const ChunkKey& key) {
  return shards_[KeyHash{}(key) % kShards];
}

ChunkData ChunkCache::get(const ChunkKey& key) {
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    global_counters().add(counters::kIoCacheMisses, 1);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  global_counters().add(counters::kIoCacheHits, 1);
  return it->second->data;
}

void ChunkCache::put(const ChunkKey& key, ChunkData data) {
  DASSA_CHECK(data != nullptr, "cannot cache a null chunk");
  const std::size_t slice = budget() / kShards;
  const std::size_t nbytes = payload_bytes(data);
  if (nbytes == 0 || nbytes > slice) return;  // can never fit

  Shard& shard = shard_for(key);
  {
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh: same key decoded twice by racing readers. Keep the
      // newcomer (identical content) and fix the accounting.
      shard.bytes -= it->second->bytes;
      total_bytes_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
      it->second->data = std::move(data);
      it->second->bytes = nbytes;
      shard.bytes += nbytes;
      total_bytes_.fetch_add(nbytes, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(data), nbytes});
      shard.index[key] = shard.lru.begin();
      shard.bytes += nbytes;
      total_bytes_.fetch_add(nbytes, std::memory_order_relaxed);
      global_counters().add(counters::kIoCacheInserts, 1);
    }
    evict_to_fit(shard, slice);
  }
  global_counters().high_water(counters::kIoCachePeakBytes, bytes());
}

void ChunkCache::evict_to_fit(Shard& shard, std::size_t slice) {
  while (shard.bytes > slice && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    total_bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    global_counters().add(counters::kIoCacheEvictions, 1);
  }
}

void ChunkCache::erase_file(std::uint64_t file_id) {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.file_id == file_id) {
        shard.bytes -= it->bytes;
        total_bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ChunkCache::clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const Entry& entry : shard.lru) {
      total_bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
    }
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

void ChunkCache::set_budget(std::size_t budget_bytes) {
  budget_.store(budget_bytes, std::memory_order_relaxed);
  const std::size_t slice = budget_bytes / kShards;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    evict_to_fit(shard, slice);
  }
}

std::size_t ChunkCache::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.index.size();
  }
  return total;
}

ChunkCache& ChunkCache::global() {
  static ChunkCache cache(kDefaultBudget);
  static const bool gauges_registered = [] {
    telemetry::register_gauge("io.cache.bytes", [] {
      return static_cast<double>(ChunkCache::global().bytes());
    });
    telemetry::register_gauge("io.cache.entries", [] {
      return static_cast<double>(ChunkCache::global().entries());
    });
    return true;
  }();
  (void)gauges_registered;
  return cache;
}

std::uint64_t ChunkCache::next_file_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dassa::io
