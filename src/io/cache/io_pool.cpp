#include <algorithm>
#include <thread>

#include "dassa/common/telemetry.hpp"
#include "dassa/common/thread_pool.hpp"
#include "dassa/io/chunk_cache.hpp"

namespace dassa::io {

ThreadPool& io_pool() {
  // The pool is shared by every Dash5File across all MiniMPI ranks, so
  // its workers must not inherit whichever rank happened to construct it
  // first: their trace spans stay in the unranked lane.
  static ThreadPool pool(
      [] {
        const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
        return static_cast<std::size_t>(std::clamp(hw / 2, 2u, 8u));
      }(),
      /*inherit_trace_rank=*/false);
  static const bool gauges_registered = [] {
    telemetry::register_gauge("io.pool.queue_depth", [] {
      return static_cast<double>(io_pool().queue_depth());
    });
    telemetry::register_gauge("io.pool.threads", [] {
      return static_cast<double>(io_pool().size());
    });
    return true;
  }();
  (void)gauges_registered;
  return pool;
}

}  // namespace dassa::io
