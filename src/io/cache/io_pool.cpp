#include <algorithm>
#include <thread>

#include "dassa/common/thread_pool.hpp"
#include "dassa/io/chunk_cache.hpp"

namespace dassa::io {

ThreadPool& io_pool() {
  static ThreadPool pool([] {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return static_cast<std::size_t>(std::clamp(hw / 2, 2u, 8u));
  }());
  return pool;
}

}  // namespace dassa::io
