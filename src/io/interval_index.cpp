#include "dassa/io/interval_index.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "dassa/common/counters.hpp"
#include "dassa/common/error.hpp"
#include "dassa/io/file_io.hpp"
#include "serialize.hpp"

namespace dassa::io {

namespace {

constexpr char kTixMagic[8] = {'D', 'A', 'S', 'T', 'I', 'X', '\0', '\1'};

// Encoded size of one entry: five 64-bit fields.
constexpr std::size_t kEntryBytes = 40;

/// Shared structural validation: the builder reports InvalidArgument
/// (programming error), the loader FormatError (untrusted bytes).
template <typename Error>
void validate_entries(const std::vector<IntervalEntry>& entries,
                      const std::string& what) {
  std::int64_t prev_begin = 0;
  std::int64_t prev_end = 0;
  bool first = true;
  for (const IntervalEntry& e : entries) {
    if (e.end_s <= e.begin_s) {
      throw Error("empty or inverted interval in " + what);
    }
    if (!first && (e.begin_s < prev_begin || e.end_s < prev_end)) {
      // Non-decreasing begin *and* end is what makes the fence-pointer
      // binary search sound: a nested interval would hide behind its
      // container's end time.
      throw Error("intervals out of order in " + what);
    }
    prev_begin = e.begin_s;
    prev_end = e.end_s;
    first = false;
  }
}

}  // namespace

IntervalIndex IntervalIndex::build(std::vector<IntervalEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const IntervalEntry& a, const IntervalEntry& b) {
              return a.begin_s < b.begin_s ||
                     (a.begin_s == b.begin_s && a.col_start < b.col_start);
            });
  validate_entries<InvalidArgument>(entries, "interval index build");
  IntervalIndex idx;
  idx.entries_ = std::move(entries);
  return idx;
}

void IntervalIndex::save(const std::string& path) const {
  DASSA_CHECK(!path.empty(), "interval index save needs a path");
  detail::Encoder enc;
  enc.u64(entries_.size());
  for (const IntervalEntry& e : entries_) {
    enc.u64(static_cast<std::uint64_t>(e.begin_s));
    enc.u64(static_cast<std::uint64_t>(e.end_s));
    enc.u64(e.member);
    enc.u64(e.col_start);
    enc.u64(e.cols);
  }
  const std::vector<std::byte>& body = enc.bytes();
  const std::uint32_t crc = detail::crc32(body.data(), body.size());

  OutputFile out(path);
  out.write(kTixMagic, sizeof kTixMagic);
  const std::uint64_t size = body.size();
  out.write(&size, sizeof size);
  out.write(body.data(), body.size());
  out.write(&crc, sizeof crc);
  out.close();
  global_counters().add(counters::kIoIndexPublishes);
}

void IntervalIndex::save_atomic(const std::string& path) const {
  DASSA_CHECK(!path.empty(), "save_atomic needs a destination path");
  const std::string tmp = path + ".tmp";
  save(tmp);
  // rename(2) is atomic within a filesystem: a server re-opening the
  // sidecar while the ingest daemon republishes it sees the old or the
  // new complete index, never a torn write.
  std::filesystem::rename(tmp, path);
}

IntervalIndex IntervalIndex::load(const std::string& path) {
  InputFile in(path);
  // Anything shorter than magic + size + CRC cannot be a sidecar at
  // all; reject it as truncation before read_at can hit end-of-file.
  if (in.size() < 20) {
    throw FormatError("truncated interval index " + path);
  }
  char magic[8];
  in.read_at(0, magic, sizeof magic);
  if (std::memcmp(magic, kTixMagic, sizeof magic) != 0) {
    throw FormatError("bad interval-index magic in " + path);
  }
  std::uint64_t size = 0;
  in.read_at(8, &size, sizeof size);
  // Subtraction form: `16 + size + 4` wraps for a corrupted size near
  // 2^64 and would slip past the check into a huge allocation.
  if (size > in.size() - 20) {
    throw FormatError("truncated interval index " + path);
  }
  const std::vector<std::byte> body =
      in.read_vec(16, static_cast<std::size_t>(size));
  std::uint32_t stored_crc = 0;
  in.read_at(16 + size, &stored_crc, sizeof stored_crc);
  if (detail::crc32(body.data(), body.size()) != stored_crc) {
    throw FormatError("interval-index CRC mismatch in " + path);
  }

  detail::Decoder dec(body);
  const std::uint64_t n = dec.u64();
  // Each entry occupies exactly kEntryBytes, so any larger count is a
  // corrupted length -- reject it before reserve() turns it into a
  // std::bad_alloc.
  if (n > (body.size() - sizeof(std::uint64_t)) / kEntryBytes) {
    throw FormatError("implausible entry count in " + path);
  }
  IntervalIndex idx;
  idx.entries_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    IntervalEntry e;
    e.begin_s = static_cast<std::int64_t>(dec.u64());
    e.end_s = static_cast<std::int64_t>(dec.u64());
    e.member = dec.u64();
    e.col_start = dec.u64();
    e.cols = dec.u64();
    idx.entries_.push_back(e);
  }
  validate_entries<FormatError>(idx.entries_, path);
  global_counters().add(counters::kIoIndexLoads);
  return idx;
}

std::vector<IntervalEntry> IntervalIndex::query(std::int64_t begin_s,
                                                std::int64_t end_s) const {
  global_counters().add(counters::kIoIndexQueries);
  std::vector<IntervalEntry> out;
  if (begin_s >= end_s || entries_.empty()) return out;
  // Hand-rolled lower_bound over end_s so every comparator probe is
  // counted: the first entry still alive at `begin_s`. end_s is
  // non-decreasing (build/load invariant), so this is sound.
  std::size_t lo = 0;
  std::size_t hi = entries_.size();
  std::uint64_t touches = 0;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++touches;
    if (entries_[mid].end_s <= begin_s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // Scan the k overlapping entries; the one extra touch is the probe
  // that terminates the scan.
  for (std::size_t i = lo; i < entries_.size(); ++i) {
    ++touches;
    if (entries_[i].begin_s >= end_s) break;
    out.push_back(entries_[i]);
  }
  global_counters().add(counters::kIoIndexEntryTouches, touches);
  return out;
}

std::string IntervalIndex::sidecar_path(const std::string& array_path) {
  DASSA_CHECK(!array_path.empty(), "sidecar_path needs an array path");
  return array_path + ".tix";
}

}  // namespace dassa::io
