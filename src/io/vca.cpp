#include "dassa/io/vca.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>

#include "dassa/common/counters.hpp"
#include "dassa/common/sync.hpp"
#include "dassa/common/timer.hpp"
#include "serialize.hpp"

namespace dassa::io {

namespace {
constexpr char kVcaMagic[8] = {'D', 'A', 'S', 'V', 'C', 'A', '\0', '\1'};
}  // namespace

/// Lazily opened member handles. Slots open on first touch under the
/// mutex; Dash5File handles are immobile (they pin a chunk-cache
/// identity), hence unique_ptr slots.
struct Vca::MemberFiles {
  Mutex mu;
  std::vector<std::unique_ptr<Dash5File>> files DASSA_GUARDED_BY(mu);
};

Dash5File& Vca::member_file(std::size_t i) const {
  DASSA_CHECK(handles_ != nullptr, "member_file on an unbuilt VCA");
  MutexLock lock(handles_->mu);
  DASSA_CHECK(i < handles_->files.size(),
              "member_file index out of range");
  if (!handles_->files[i]) {
    handles_->files[i] = std::make_unique<Dash5File>(members_[i].path);
  }
  return *handles_->files[i];
}

void Vca::finalize() {
  DASSA_CHECK(!members_.empty(), "VCA needs at least one member file");
  col_starts_.clear();
  col_starts_.reserve(members_.size() + 1);
  std::size_t col = 0;
  const std::size_t rows = members_.front().shape.rows;
  for (const auto& m : members_) {
    DASSA_CHECK(m.shape.rows == rows,
                "VCA members must have the same channel count (" + m.path +
                    " differs)");
    // A wrapped total would break col_starts_'s monotonicity, which
    // resolve()'s binary search and piece loop rely on.
    DASSA_CHECK(m.shape.cols <=
                    std::numeric_limits<std::size_t>::max() - col,
                "VCA total width overflows (" + m.path + ")");
    col_starts_.push_back(col);
    col += m.shape.cols;
  }
  col_starts_.push_back(col);
  shape_ = {rows, col};
  handles_ = std::make_shared<MemberFiles>();
  // Freshly built and not yet shared; the lock satisfies the
  // capability analysis and is uncontended.
  MutexLock lock(handles_->mu);
  handles_->files.resize(members_.size());
}

void Vca::append_member(const std::string& path) {
  DASSA_CHECK(!path.empty(), "append_member needs a member path");
  const Dash5Header h = Dash5File::read_header(path);
  if (members_.empty()) {
    members_.push_back({path, h.shape});
    global_ = h.global;
    finalize();
    return;
  }
  DASSA_CHECK(h.shape.rows == shape_.rows,
              "VCA members must have the same channel count (" + path +
                  " differs)");
  const std::size_t total = col_starts_.back();
  DASSA_CHECK(h.shape.cols <=
                  std::numeric_limits<std::size_t>::max() - total,
              "VCA total width overflows (" + path + ")");
  members_.push_back({path, h.shape});
  // col_starts_ is [s_0 .. s_{n-1}, total]: the old total becomes the
  // new member's start, and the new total goes on the end -- the
  // invariant finalize() establishes, maintained incrementally so the
  // append costs one header read, not n.
  col_starts_.push_back(total + h.shape.cols);
  shape_ = {shape_.rows, col_starts_.back()};
  MutexLock lock(handles_->mu);
  handles_->files.resize(members_.size());
}

void Vca::save_atomic(const std::string& path) const {
  DASSA_CHECK(!path.empty(), "save_atomic needs a destination path");
  const std::string tmp = path + ".tmp";
  save(tmp);
  // rename(2) is atomic within a filesystem: readers racing this see
  // the old or the new complete index, never a partial file.
  std::filesystem::rename(tmp, path);
}

Vca Vca::build(const std::vector<std::string>& files) {
  Vca vca;
  vca.members_.reserve(files.size());
  for (const auto& f : files) {
    const Dash5Header h = Dash5File::read_header(f);
    vca.members_.push_back({f, h.shape});
    if (vca.members_.size() == 1) vca.global_ = h.global;
  }
  vca.finalize();
  return vca;
}

void Vca::save(const std::string& path) const {
  detail::Encoder enc;
  enc.u32(static_cast<std::uint32_t>(global_.size()));
  for (const auto& [k, v] : global_.items()) {
    enc.str(k);
    enc.str(v);
  }
  enc.u64(members_.size());
  for (const auto& m : members_) {
    enc.str(m.path);
    enc.u64(m.shape.rows);
    enc.u64(m.shape.cols);
  }
  const std::vector<std::byte>& body = enc.bytes();
  const std::uint32_t crc = detail::crc32(body.data(), body.size());

  OutputFile out(path);
  out.write(kVcaMagic, sizeof kVcaMagic);
  const std::uint64_t size = body.size();
  out.write(&size, sizeof size);
  out.write(body.data(), body.size());
  out.write(&crc, sizeof crc);
  out.close();
}

Vca Vca::load(const std::string& path) {
  InputFile in(path);
  char magic[8];
  in.read_at(0, magic, sizeof magic);
  if (std::memcmp(magic, kVcaMagic, sizeof magic) != 0) {
    throw FormatError("bad VCA magic in " + path);
  }
  std::uint64_t size = 0;
  in.read_at(8, &size, sizeof size);
  // Subtraction form: `16 + size + 4` wraps for a corrupted size near
  // 2^64 and would slip past the check into a huge allocation.
  if (in.size() < 20 || size > in.size() - 20) {
    throw FormatError("truncated VCA " + path);
  }
  const std::vector<std::byte> body =
      in.read_vec(16, static_cast<std::size_t>(size));
  std::uint32_t stored_crc = 0;
  in.read_at(16 + size, &stored_crc, sizeof stored_crc);
  if (detail::crc32(body.data(), body.size()) != stored_crc) {
    throw FormatError("VCA CRC mismatch in " + path);
  }

  detail::Decoder dec(body);
  Vca vca;
  const std::uint32_t nkv = dec.u32();
  for (std::uint32_t i = 0; i < nkv; ++i) {
    std::string k = dec.str();
    std::string v = dec.str();
    vca.global_.set(std::move(k), std::move(v));
  }
  const std::uint64_t nmem = dec.u64();
  // Each member needs >= 20 encoded bytes (path length + two extents),
  // so a count beyond body/20 cannot be satisfied -- reject it before
  // the reserve turns a corrupted count into a std::bad_alloc.
  if (nmem > body.size() / 20) {
    throw FormatError("implausible member count in " + path);
  }
  vca.members_.reserve(nmem);
  for (std::uint64_t i = 0; i < nmem; ++i) {
    VcaMember m;
    m.path = dec.str();
    m.shape.rows = dec.u64();
    m.shape.cols = dec.u64();
    vca.members_.push_back(std::move(m));
  }
  // Validate structural invariants here with FormatError (this is a
  // parser); finalize()'s DASSA_CHECKs guard the programmatic builder.
  if (vca.members_.empty()) {
    throw FormatError("VCA without members in " + path);
  }
  for (const auto& m : vca.members_) {
    if (m.shape.rows != vca.members_.front().shape.rows) {
      throw FormatError("VCA member channel counts differ in " + path);
    }
  }
  vca.finalize();
  return vca;
}

std::vector<VcaPiece> Vca::resolve(const Slab2D& slab) const {
  slab.validate_against(shape_);
  std::vector<VcaPiece> pieces;
  if (slab.empty()) return pieces;
  const std::size_t first_col = slab.col_off;
  const std::size_t last_col = slab.col_off + slab.col_cnt;  // exclusive

  // Binary search for the member containing the first column.
  const auto it = std::upper_bound(col_starts_.begin(), col_starts_.end() - 1,
                                   first_col);
  std::size_t m = static_cast<std::size_t>(it - col_starts_.begin()) - 1;

  std::size_t col = first_col;
  while (col < last_col) {
    const std::size_t member_begin = col_starts_[m];
    const std::size_t member_end = col_starts_[m + 1];
    const std::size_t local_off = col - member_begin;
    const std::size_t take = std::min(last_col, member_end) - col;
    pieces.push_back(VcaPiece{
        m,
        Slab2D{slab.row_off, local_off, slab.row_cnt, take},
        col - first_col});
    col += take;
    ++m;
  }
  return pieces;
}

std::vector<double> Vca::read_slab(const Slab2D& slab) const {
  const std::vector<VcaPiece> pieces = resolve(slab);
  std::vector<double> out(slab.size());
  for (const auto& piece : pieces) {
    const std::vector<double> part =
        member_file(piece.member).read_slab(piece.slab);
    // Scatter the piece's rows into the assembled result.
    for (std::size_t r = 0; r < piece.slab.row_cnt; ++r) {
      std::copy(part.data() + r * piece.slab.col_cnt,
                part.data() + (r + 1) * piece.slab.col_cnt,
                out.data() + r * slab.col_cnt + piece.col_dst);
    }
  }
  return out;
}

RcaBuildStats rca_create(const std::vector<std::string>& files,
                         const std::string& out_path) {
  DASSA_CHECK(!files.empty(), "RCA needs at least one member file");
  WallTimer timer;
  const std::uint64_t read0 =
      global_counters().get(counters::kIoReadBytes);
  const std::uint64_t write0 =
      global_counters().get(counters::kIoWriteBytes);

  // First pass over headers to size the output.
  Vca vca = Vca::build(files);
  const Shape2D total = vca.shape();

  // Read every member in full and place it at its column offset. This
  // is the "accesses the whole data" cost the paper attributes to RCA.
  std::vector<double> merged(total.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    Dash5File file(files[i]);
    const Shape2D fs = file.shape();
    const std::vector<double> data = file.read_all();
    const std::size_t col0 = vca.member_col_start(i);
    for (std::size_t r = 0; r < fs.rows; ++r) {
      std::copy(data.data() + r * fs.cols, data.data() + (r + 1) * fs.cols,
                merged.data() + total.at(r, col0));
    }
  }

  // Keep the members' storage dtype so the merged file costs the same
  // bytes per sample as its sources (Table I: RCA extra space = 100%).
  Dash5Header header = Dash5File::read_header(files.front());
  header.shape = total;
  dash5_write(out_path, header, merged);

  RcaBuildStats stats;
  stats.seconds = timer.seconds();
  stats.bytes_read = global_counters().get(counters::kIoReadBytes) - read0;
  stats.bytes_written =
      global_counters().get(counters::kIoWriteBytes) - write0;
  return stats;
}

RcaBuildStats rca_create_streaming(const std::vector<std::string>& files,
                                   const std::string& out_path,
                                   std::size_t rows_per_block) {
  DASSA_CHECK(!files.empty(), "RCA needs at least one member file");
  DASSA_CHECK(rows_per_block >= 1, "row block must hold at least one row");
  WallTimer timer;
  const std::uint64_t read0 = global_counters().get(counters::kIoReadBytes);
  const std::uint64_t write0 =
      global_counters().get(counters::kIoWriteBytes);

  Vca vca = Vca::build(files);
  const Shape2D total = vca.shape();

  Dash5Header header = Dash5File::read_header(files.front());
  header.shape = total;
  Dash5StreamWriter writer(out_path, header);

  // Keep member files open across blocks (one open per member, not one
  // per block per member).
  std::vector<std::unique_ptr<Dash5File>> members;
  members.reserve(files.size());
  for (const auto& f : files) {
    members.push_back(std::make_unique<Dash5File>(f));
  }

  std::vector<double> block;
  for (std::size_t row0 = 0; row0 < total.rows; row0 += rows_per_block) {
    const std::size_t rows = std::min(rows_per_block, total.rows - row0);
    block.assign(rows * total.cols, 0.0);
    for (std::size_t m = 0; m < members.size(); ++m) {
      const Shape2D fs = members[m]->shape();
      const std::vector<double> part =
          members[m]->read_slab(Slab2D{row0, 0, rows, fs.cols});
      const std::size_t col0 = vca.member_col_start(m);
      for (std::size_t r = 0; r < rows; ++r) {
        std::copy(part.data() + r * fs.cols, part.data() + (r + 1) * fs.cols,
                  block.data() + r * total.cols + col0);
      }
    }
    writer.append(block);
  }
  writer.close();

  RcaBuildStats stats;
  stats.seconds = timer.seconds();
  stats.bytes_read = global_counters().get(counters::kIoReadBytes) - read0;
  stats.bytes_written =
      global_counters().get(counters::kIoWriteBytes) - write0;
  return stats;
}

}  // namespace dassa::io
