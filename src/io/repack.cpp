#include "dassa/io/repack.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "dassa/common/counters.hpp"
#include "dassa/common/log.hpp"
#include "dassa/common/thread_pool.hpp"
#include "dassa/common/timer.hpp"
#include "dassa/common/trace.hpp"
#include "dassa/io/chunk_cache.hpp"
#include "dassa/io/file_io.hpp"
#include "dassa/io/vca.hpp"
#include "dassa/mpi/runtime.hpp"
#include "dash5_detail.hpp"
#include "serialize.hpp"

namespace dassa::io {

namespace {

/// One output chunk owned by this rank, in grid row-major order.
struct OwnedChunk {
  std::size_t id = 0;  ///< gi * grid_cols + gj
  std::vector<std::byte> payload;
  std::uint8_t codec = 0;
  std::uint64_t source_bytes = 0;  ///< raw element bytes read for it
};

/// Read chunk `id`'s slab out of the VCA and densify it into a
/// zero-padded chunk.rows x chunk.cols tile — the same tile bytes
/// dash5_write's fill_tile produces from the merged array, which is
/// what makes the parallel output byte-identical to the serial one.
void fill_tile_from_vca(const Vca& vca, const Dash5Header& header,
                        std::size_t grid_cols, std::size_t id,
                        std::vector<double>& tile) {
  std::fill(tile.begin(), tile.end(), 0.0);
  const std::size_t gi = id / grid_cols;
  const std::size_t gj = id % grid_cols;
  const std::size_t r0 = gi * header.chunk.rows;
  const std::size_t c0 = gj * header.chunk.cols;
  const std::size_t r_cnt =
      std::min(header.chunk.rows, header.shape.rows - r0);
  const std::size_t c_cnt =
      std::min(header.chunk.cols, header.shape.cols - c0);
  const std::vector<double> slab =
      vca.read_slab(Slab2D{r0, c0, r_cnt, c_cnt});
  for (std::size_t r = 0; r < r_cnt; ++r) {
    std::copy(slab.data() + r * c_cnt, slab.data() + (r + 1) * c_cnt,
              tile.data() + r * header.chunk.cols);
  }
}

}  // namespace

RepackReport parallel_repack(mpi::Comm& comm,
                             const std::vector<std::string>& inputs,
                             const std::string& out_path,
                             const RepackOptions& opts) {
  WallTimer timer;
  DASSA_CHECK(!inputs.empty(), "parallel repack needs input files");
  DASSA_CHECK(!opts.codec.empty(),
              "parallel repack targets v3 output and needs a codec chain");
  DASSA_CHECK(opts.chunk.rows >= 1 && opts.chunk.cols >= 1,
              "parallel repack needs positive chunk extents");
  DASSA_CHECK(opts.encode_batch >= 1,
              "parallel repack needs a positive encode batch");
  const auto p = static_cast<std::size_t>(comm.size());
  const auto rank = static_cast<std::size_t>(comm.rank());

  // ---- plan: headers only, identical on every rank -------------------
  Vca vca;
  Dash5Header header;
  std::vector<std::byte> head;
  {
    DASSA_TRACE_SPAN("repack", "repack.plan");
    vca = Vca::build(inputs);
    header = Dash5File::read_header(inputs.front());
    header.shape = vca.shape();
    header.layout = Layout::kChunked;
    header.chunk = opts.chunk;
    header.codec = opts.codec;
    head = detail::encode_dash5_header(header);
  }
  const std::size_t grid_rows =
      (header.shape.rows + header.chunk.rows - 1) / header.chunk.rows;
  const std::size_t grid_cols =
      (header.shape.cols + header.chunk.cols - 1) / header.chunk.cols;
  const std::size_t n_chunks = grid_rows * grid_cols;
  const std::uint64_t data_start = detail::kPreludeSize + head.size();
  const Range mine = even_chunk(n_chunks, p, rank);

  // ---- encode: this rank's contiguous chunk range --------------------
  // Tiles are read from the VCA serially (member handles serialise
  // their own I/O) and encoded in io_pool batches; the batch bounds the
  // staging memory for decoded tiles, while the compressed payloads of
  // the whole range are retained for the single positioned write.
  std::vector<OwnedChunk> owned(mine.size());
  const std::size_t chunk_elems = header.chunk.rows * header.chunk.cols;
  const std::uint64_t tile_raw_size = chunk_elems * dtype_size(header.dtype);
  {
    DASSA_TRACE_SPAN("repack", "repack.encode");
    std::vector<std::vector<double>> tiles(opts.encode_batch);
    for (std::size_t b0 = 0; b0 < owned.size(); b0 += opts.encode_batch) {
      const std::size_t batch =
          std::min(opts.encode_batch, owned.size() - b0);
      for (std::size_t k = 0; k < batch; ++k) {
        OwnedChunk& c = owned[b0 + k];
        c.id = mine.begin + b0 + k;
        tiles[k].resize(chunk_elems);
        fill_tile_from_vca(vca, header, grid_cols, c.id, tiles[k]);
        const std::size_t r_cnt = std::min(
            header.chunk.rows,
            header.shape.rows - (c.id / grid_cols) * header.chunk.rows);
        const std::size_t c_cnt = std::min(
            header.chunk.cols,
            header.shape.cols - (c.id % grid_cols) * header.chunk.cols);
        c.source_bytes = r_cnt * c_cnt * dtype_size(header.dtype);
      }
      io_pool().parallel_for(
          batch, [&](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) {
              auto [payload, flag] =
                  detail::encode_dash5_tile(header, tiles[k]);
              owned[b0 + k].payload = std::move(payload);
              owned[b0 + k].codec = flag;
            }
          });
    }
  }

  // ---- extents: one allgather of compressed sizes --------------------
  // Every rank learns every chunk's compressed size, so global offsets
  // are a local prefix sum: no serial coordinator touches the data.
  std::vector<std::uint64_t> all_sizes(n_chunks, 0);
  std::uint64_t payload_bytes = 0;
  {
    DASSA_TRACE_SPAN("repack", "repack.extents");
    std::vector<std::uint64_t> my_sizes(owned.size());
    for (std::size_t k = 0; k < owned.size(); ++k) {
      my_sizes[k] = owned[k].payload.size();
    }
    const std::vector<std::vector<std::uint64_t>> gathered =
        comm.allgatherv(std::span<const std::uint64_t>(my_sizes));
    std::size_t at = 0;
    for (const auto& part : gathered) {
      for (const std::uint64_t s : part) all_sizes[at++] = s;
    }
    DASSA_CHECK(at == n_chunks,
                "repack size exchange lost chunks (collective mismatch?)");
    payload_bytes =
        std::accumulate(all_sizes.begin(), all_sizes.end(), std::uint64_t{0});
  }
  std::uint64_t my_offset = data_start;
  for (std::size_t i = 0; i < mine.begin; ++i) my_offset += all_sizes[i];

  // ---- write: prelude + header on rank 0, then disjoint extents ------
  {
    DASSA_TRACE_SPAN("repack", "repack.write");
    if (comm.rank() == 0) {
      OutputFile out(out_path);
      out.write(detail::kMagicV3, sizeof detail::kMagicV3);
      const std::uint64_t head_size = head.size();
      out.write(&head_size, sizeof head_size);
      out.write(head.data(), head.size());
      out.close();
    }
    // The file must exist (and own its prelude) before any update-mode
    // open; positioned writes then extend it to each rank's extent.
    comm.barrier();
    if (!owned.empty()) {
      std::uint64_t range_bytes = 0;
      for (const OwnedChunk& c : owned) range_bytes += c.payload.size();
      std::vector<std::byte> blob;
      blob.reserve(range_bytes);
      for (const OwnedChunk& c : owned) {
        blob.insert(blob.end(), c.payload.begin(), c.payload.end());
      }
      OutputFile out(out_path, OutputFile::Mode::kUpdate);
      out.write_at(my_offset, blob.data(), blob.size());
      out.close();
    }
  }

  // ---- merge index: 29 bytes per chunk to rank 0 ---------------------
  std::uint64_t footer_bytes = 0;
  {
    DASSA_TRACE_SPAN("repack", "repack.merge_index");
    std::vector<ChunkIndexEntry> my_entries(owned.size());
    std::uint64_t cursor = my_offset;
    for (std::size_t k = 0; k < owned.size(); ++k) {
      ChunkIndexEntry& e = my_entries[k];
      e.offset = cursor;
      e.csize = owned[k].payload.size();
      e.raw_size = tile_raw_size;
      e.crc = detail::crc32(owned[k].payload.data(),
                            owned[k].payload.size());
      e.codec = owned[k].codec;
      cursor += e.csize;
    }
    const std::vector<std::vector<ChunkIndexEntry>> gathered =
        comm.gatherv(std::span<const ChunkIndexEntry>(my_entries), 0);
    std::vector<std::uint64_t> footer_box(1, 0);
    if (comm.rank() == 0) {
      std::vector<ChunkIndexEntry> index;
      index.reserve(n_chunks);
      for (const auto& part : gathered) {
        index.insert(index.end(), part.begin(), part.end());
      }
      DASSA_CHECK(index.size() == n_chunks,
                  "repack index merge lost chunks (collective mismatch?)");
      const std::vector<std::byte> footer =
          detail::encode_chunk_index_footer(index);
      OutputFile out(out_path, OutputFile::Mode::kUpdate);
      out.write_at(data_start + payload_bytes, footer.data(), footer.size());
      out.close();
      footer_box[0] = footer.size();
    }
    comm.bcast(footer_box, 0);
    footer_bytes = footer_box[0];
    // The footer write completes the file; ranks may re-open it for
    // verification as soon as the barrier releases them.
    comm.barrier();
  }

  // ---- report + accounting -------------------------------------------
  std::uint64_t my_source = 0;
  std::uint64_t my_stored = 0;
  for (const OwnedChunk& c : owned) {
    my_source += c.source_bytes;
    my_stored += c.payload.size();
  }
  global_counters().add(counters::kIoRepackChunks, owned.size());
  global_counters().add(counters::kIoRepackSourceBytes, my_source);
  global_counters().add(counters::kIoRepackStoredBytes, my_stored);
  if (comm.rank() == 0) {
    global_counters().add(counters::kIoRepackRuns, 1);
  }

  RepackReport report;
  report.shape = header.shape;
  report.n_chunks = n_chunks;
  report.out_bytes = data_start + payload_bytes + footer_bytes;
  report.index_bytes = footer_bytes;
  report.rank_source_bytes.assign(p, 0);
  report.rank_chunks.assign(p, 0);
  {
    const std::vector<std::uint64_t> my_stats = {
        my_source, static_cast<std::uint64_t>(owned.size())};
    const std::vector<std::vector<std::uint64_t>> gathered =
        comm.allgatherv(std::span<const std::uint64_t>(my_stats));
    for (std::size_t r = 0; r < p; ++r) {
      report.rank_source_bytes[r] = gathered[r][0];
      report.rank_chunks[r] = gathered[r][1];
    }
  }
  report.seconds = timer.seconds();
  if (comm.rank() == 0) {
    DASSA_SLOG(kInfo, "repack.parallel")
            .field("ranks", static_cast<std::uint64_t>(p))
            .field("chunks", static_cast<std::uint64_t>(n_chunks))
            .field("out_bytes", report.out_bytes)
            .field("max_rank_source_bytes",
                   *std::max_element(report.rank_source_bytes.begin(),
                                     report.rank_source_bytes.end()))
        << report.seconds << "s";
  }
  return report;
}

RepackReport parallel_repack(const std::vector<std::string>& inputs,
                             const std::string& out_path,
                             const RepackOptions& opts, int ranks) {
  DASSA_CHECK(ranks >= 1, "parallel repack needs at least one rank");
  RepackReport root_report;
  mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
    RepackReport r = parallel_repack(comm, inputs, out_path, opts);
    if (comm.rank() == 0) root_report = std::move(r);
  });
  return root_report;
}

}  // namespace dassa::io
