#include "serialize.hpp"

#include <array>

namespace dassa::io::detail {

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(const std::byte* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ static_cast<std::uint32_t>(data[i])) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace dassa::io::detail
