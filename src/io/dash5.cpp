#include "dassa/io/dash5.hpp"

#include <cstring>
#include <limits>

#include "serialize.hpp"

namespace dassa::io {

namespace {

constexpr char kMagic[8] = {'D', 'A', 'S', 'H', '5', '\0', '\0', '\2'};
constexpr std::uint64_t kPreludeSize = 16;  // magic + header size

/// True iff a * b overflows uint64. Extent fields come straight from
/// the (attacker-controllable) file, so every size computation derived
/// from them must be checked before it feeds an allocation or offset.
bool mul_overflows(std::uint64_t a, std::uint64_t b) {
  return b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b;
}

void encode_kv(detail::Encoder& enc, const KvList& kv) {
  enc.u32(static_cast<std::uint32_t>(kv.size()));
  for (const auto& [k, v] : kv.items()) {
    enc.str(k);
    enc.str(v);
  }
}

KvList decode_kv(detail::Decoder& dec) {
  KvList kv;
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = dec.str();
    std::string v = dec.str();
    kv.set(std::move(k), std::move(v));
  }
  return kv;
}

std::vector<std::byte> encode_header(const Dash5Header& h) {
  detail::Encoder enc;
  encode_kv(enc, h.global);
  enc.u64(h.objects.size());
  for (const auto& obj : h.objects) {
    enc.str(obj.path);
    encode_kv(enc, obj.kv);
  }
  enc.u8(static_cast<std::uint8_t>(h.dtype));
  enc.u64(h.shape.rows);
  enc.u64(h.shape.cols);
  enc.u8(static_cast<std::uint8_t>(h.layout));
  enc.u64(h.chunk.rows);
  enc.u64(h.chunk.cols);
  std::vector<std::byte> out = enc.bytes();
  const std::uint32_t crc = detail::crc32(out.data(), out.size());
  detail::Encoder tail;
  tail.u32(crc);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
  return out;
}

Dash5Header decode_header(const std::vector<std::byte>& raw,
                          const std::string& path) {
  if (raw.size() < 4) throw FormatError("header too small in " + path);
  const std::size_t body = raw.size() - 4;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, raw.data() + body, 4);
  if (detail::crc32(raw.data(), body) != stored_crc) {
    throw FormatError("header CRC mismatch in " + path);
  }
  detail::Decoder dec(raw);
  Dash5Header h;
  h.global = decode_kv(dec);
  const std::uint64_t nobj = dec.u64();
  // Each object needs >= 8 encoded bytes (path length + kv count), so
  // a count beyond body/8 cannot be satisfied -- reject it before the
  // reserve turns a 4-byte corruption into a std::bad_alloc.
  if (nobj > raw.size() / 8) {
    throw FormatError("implausible object count in " + path);
  }
  h.objects.reserve(nobj);
  for (std::uint64_t i = 0; i < nobj; ++i) {
    ObjectMeta obj;
    obj.path = dec.str();
    obj.kv = decode_kv(dec);
    h.objects.push_back(std::move(obj));
  }
  const std::uint8_t dtype = dec.u8();
  if (dtype > static_cast<std::uint8_t>(DType::kF32)) {
    throw FormatError("unknown dtype in " + path);
  }
  h.dtype = static_cast<DType>(dtype);
  h.shape.rows = dec.u64();
  h.shape.cols = dec.u64();
  const std::uint8_t layout = dec.u8();
  if (layout > static_cast<std::uint8_t>(Layout::kChunked)) {
    throw FormatError("unknown layout in " + path);
  }
  h.layout = static_cast<Layout>(layout);
  h.chunk.rows = dec.u64();
  h.chunk.cols = dec.u64();
  if (h.layout == Layout::kChunked &&
      (h.chunk.rows == 0 || h.chunk.cols == 0)) {
    throw FormatError("chunked layout without chunk extents in " + path);
  }
  if (mul_overflows(h.shape.rows, h.shape.cols)) {
    throw FormatError("dataset extent overflow " + h.shape.str() + " in " +
                      path);
  }
  if (h.layout == Layout::kChunked &&
      mul_overflows(h.chunk.rows, h.chunk.cols)) {
    throw FormatError("chunk extent overflow in " + path);
  }
  return h;
}

}  // namespace

std::size_t dtype_size(DType t) {
  return t == DType::kF64 ? sizeof(double) : sizeof(float);
}

namespace {

/// Number of chunk tiles along each axis.
std::pair<std::size_t, std::size_t> chunk_grid(const Dash5Header& h) {
  return {(h.shape.rows + h.chunk.rows - 1) / h.chunk.rows,
          (h.shape.cols + h.chunk.cols - 1) / h.chunk.cols};
}

void write_elements(OutputFile& out, const Dash5Header& header,
                    std::span<const double> data) {
  if (header.dtype == DType::kF64) {
    out.write(data.data(), data.size_bytes());
  } else {
    std::vector<float> f(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      f[i] = static_cast<float>(data[i]);
    }
    out.write(f.data(), f.size() * sizeof(float));
  }
}

}  // namespace

void dash5_write(const std::string& path, const Dash5Header& header,
                 std::span<const double> data) {
  DASSA_CHECK(data.size() == header.shape.size(),
              "data size does not match dataset shape");
  if (header.layout == Layout::kChunked) {
    DASSA_CHECK(header.chunk.rows >= 1 && header.chunk.cols >= 1,
                "chunked layout needs positive chunk extents");
  }
  const std::vector<std::byte> head = encode_header(header);

  OutputFile out(path);
  out.write(kMagic, sizeof kMagic);
  const std::uint64_t head_size = head.size();
  out.write(&head_size, sizeof head_size);
  out.write(head.data(), head.size());

  if (header.layout == Layout::kContiguous) {
    write_elements(out, header, data);
  } else {
    // Tile the array: chunks in grid row-major order, each a dense
    // chunk_rows x chunk_cols block, zero-padded at the edges.
    const auto [grid_rows, grid_cols] = chunk_grid(header);
    std::vector<double> tile(header.chunk.rows * header.chunk.cols);
    for (std::size_t gi = 0; gi < grid_rows; ++gi) {
      for (std::size_t gj = 0; gj < grid_cols; ++gj) {
        std::fill(tile.begin(), tile.end(), 0.0);
        const std::size_t r0 = gi * header.chunk.rows;
        const std::size_t c0 = gj * header.chunk.cols;
        const std::size_t r_cnt =
            std::min(header.chunk.rows, header.shape.rows - r0);
        const std::size_t c_cnt =
            std::min(header.chunk.cols, header.shape.cols - c0);
        for (std::size_t r = 0; r < r_cnt; ++r) {
          const double* src = data.data() + header.shape.at(r0 + r, c0);
          std::copy(src, src + c_cnt,
                    tile.data() + r * header.chunk.cols);
        }
        write_elements(out, header, tile);
      }
    }
  }
  out.close();
}

Dash5StreamWriter::Dash5StreamWriter(const std::string& path,
                                     const Dash5Header& header)
    : out_(path), dtype_(header.dtype), expected_(header.shape.size()) {
  DASSA_CHECK(header.layout == Layout::kContiguous,
              "stream writer supports the contiguous layout only");
  const std::vector<std::byte> head = encode_header(header);
  out_.write(kMagic, sizeof kMagic);
  const std::uint64_t head_size = head.size();
  out_.write(&head_size, sizeof head_size);
  out_.write(head.data(), head.size());
}

void Dash5StreamWriter::append(std::span<const double> data) {
  DASSA_CHECK(!closed_, "append on closed stream writer");
  DASSA_CHECK(written_ + data.size() <= expected_,
              "stream writer overflow: more elements than the header shape");
  if (dtype_ == DType::kF64) {
    out_.write(data.data(), data.size_bytes());
  } else {
    std::vector<float> f(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      f[i] = static_cast<float>(data[i]);
    }
    out_.write(f.data(), f.size() * sizeof(float));
  }
  written_ += data.size();
}

void Dash5StreamWriter::close() {
  if (closed_) return;
  if (written_ != expected_) {
    throw StateError("stream writer closed after " +
                     std::to_string(written_) + " of " +
                     std::to_string(expected_) + " elements");
  }
  out_.close();
  closed_ = true;
}

Dash5File::Dash5File(const std::string& path) : file_(path) {
  char magic[8];
  std::uint64_t head_size = 0;
  if (file_.size() < kPreludeSize) {
    throw FormatError("file too small to be DASH5: " + path);
  }
  // One read covers magic + header size + header block.
  file_.read_at(0, magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof magic) != 0) {
    throw FormatError("bad magic in " + path);
  }
  file_.read_at(8, &head_size, sizeof head_size);
  // Subtraction form: `kPreludeSize + head_size` wraps for a corrupted
  // size near 2^64 and would slip past the check into a huge read.
  if (head_size > file_.size() - kPreludeSize) {
    throw FormatError("header exceeds file in " + path);
  }
  const std::vector<std::byte> raw =
      file_.read_vec(kPreludeSize, static_cast<std::size_t>(head_size));
  header_ = decode_header(raw, path);
  data_offset_ = kPreludeSize + head_size;

  // decode_header rejected extent-product overflow, but the chunked
  // stored size rounds each axis up to whole tiles, so recheck every
  // product here; then bound the element count by the bytes actually
  // present (division form -- the multiplied form wraps for corrupted
  // extents and would admit a shape far larger than the file).
  std::uint64_t stored_elems = header_.shape.size();
  if (header_.layout == Layout::kChunked) {
    const std::uint64_t grid_rows =
        header_.shape.rows / header_.chunk.rows +
        (header_.shape.rows % header_.chunk.rows != 0 ? 1 : 0);
    const std::uint64_t grid_cols =
        header_.shape.cols / header_.chunk.cols +
        (header_.shape.cols % header_.chunk.cols != 0 ? 1 : 0);
    const std::uint64_t chunk_elems = header_.chunk.rows * header_.chunk.cols;
    if (mul_overflows(grid_rows, grid_cols) ||
        mul_overflows(grid_rows * grid_cols, chunk_elems)) {
      throw FormatError("chunk grid overflow in " + path);
    }
    stored_elems = grid_rows * grid_cols * chunk_elems;
  }
  const std::uint64_t avail = file_.size() - data_offset_;
  if (stored_elems >
      avail / static_cast<std::uint64_t>(dtype_size(header_.dtype))) {
    throw FormatError("dataset truncated in " + path);
  }
}

Dash5Header Dash5File::read_header(const std::string& path) {
  Dash5File f(path);
  return f.header_;
}

void Dash5File::decode_elems(const std::vector<std::byte>& raw,
                             std::size_t count, double* out) const {
  if (header_.dtype == DType::kF64) {
    std::memcpy(out, raw.data(), count * sizeof(double));
  } else {
    std::vector<float> f(count);
    std::memcpy(f.data(), raw.data(), count * sizeof(float));
    for (std::size_t i = 0; i < count; ++i) out[i] = f[i];
  }
}

std::vector<double> Dash5File::read_all() const {
  return read_slab(Slab2D::whole(header_.shape));
}

std::vector<double> Dash5File::read_slab(const Slab2D& slab) const {
  slab.validate_against(header_.shape);
  const std::size_t esize = dtype_size(header_.dtype);
  std::vector<double> out(slab.size());
  if (slab.empty()) return out;

  if (header_.layout == Layout::kChunked) {
    // One contiguous read per intersecting chunk tile, then copy the
    // intersection out -- the HDF5 chunked-access pattern. Partial-width
    // selections touch O(selection/chunk) tiles instead of one request
    // per row.
    const ChunkShape chunk = header_.chunk;
    const std::size_t grid_cols =
        (header_.shape.cols + chunk.cols - 1) / chunk.cols;
    const std::size_t chunk_elems = chunk.rows * chunk.cols;
    std::vector<double> tile(chunk_elems);

    const std::size_t gi_lo = slab.row_off / chunk.rows;
    const std::size_t gi_hi = (slab.row_off + slab.row_cnt - 1) / chunk.rows;
    const std::size_t gj_lo = slab.col_off / chunk.cols;
    const std::size_t gj_hi = (slab.col_off + slab.col_cnt - 1) / chunk.cols;
    for (std::size_t gi = gi_lo; gi <= gi_hi; ++gi) {
      for (std::size_t gj = gj_lo; gj <= gj_hi; ++gj) {
        const std::uint64_t off =
            data_offset_ +
            static_cast<std::uint64_t>(gi * grid_cols + gj) * chunk_elems *
                esize;
        const std::vector<std::byte> raw =
            file_.read_vec(off, chunk_elems * esize);
        decode_elems(raw, chunk_elems, tile.data());

        // Intersection of this tile with the selection, in global
        // coordinates.
        const std::size_t r_lo = std::max(slab.row_off, gi * chunk.rows);
        const std::size_t r_hi = std::min(slab.row_off + slab.row_cnt,
                                          (gi + 1) * chunk.rows);
        const std::size_t c_lo = std::max(slab.col_off, gj * chunk.cols);
        const std::size_t c_hi = std::min(slab.col_off + slab.col_cnt,
                                          (gj + 1) * chunk.cols);
        for (std::size_t r = r_lo; r < r_hi; ++r) {
          const double* src = tile.data() +
                              (r - gi * chunk.rows) * chunk.cols +
                              (c_lo - gj * chunk.cols);
          std::copy(src, src + (c_hi - c_lo),
                    out.data() + (r - slab.row_off) * slab.col_cnt +
                        (c_lo - slab.col_off));
        }
      }
    }
    return out;
  }

  if (slab.col_cnt == header_.shape.cols) {
    // Full-width row block: contiguous on disk, one read call.
    const std::uint64_t off =
        data_offset_ + static_cast<std::uint64_t>(
                           header_.shape.at(slab.row_off, 0)) * esize;
    const std::vector<std::byte> raw = file_.read_vec(off, slab.size() * esize);
    decode_elems(raw, slab.size(), out.data());
  } else {
    // Partial width: one read per selected row. This is the small-I/O
    // pattern whose amplification across many files motivates the
    // communication-avoiding reader.
    for (std::size_t r = 0; r < slab.row_cnt; ++r) {
      const std::uint64_t off =
          data_offset_ +
          static_cast<std::uint64_t>(
              header_.shape.at(slab.row_off + r, slab.col_off)) * esize;
      const std::vector<std::byte> raw =
          file_.read_vec(off, slab.col_cnt * esize);
      decode_elems(raw, slab.col_cnt, out.data() + r * slab.col_cnt);
    }
  }
  return out;
}

}  // namespace dassa::io
